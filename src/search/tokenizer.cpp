#include "search/tokenizer.h"

#include <cctype>

namespace rlz {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> terms;
  std::string cur;
  bool in_tag = false;
  for (char ch : text) {
    if (ch == '<') {
      in_tag = true;
      if (!cur.empty()) {
        terms.push_back(cur);
        cur.clear();
      }
      continue;
    }
    if (ch == '>') {
      in_tag = false;
      continue;
    }
    if (in_tag) continue;
    const unsigned char uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      cur.push_back(static_cast<char>(std::tolower(uc)));
      // Guard against pathological unbroken runs.
      if (cur.size() >= 64) {
        terms.push_back(cur);
        cur.clear();
      }
    } else if (!cur.empty()) {
      terms.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) terms.push_back(cur);
  return terms;
}

}  // namespace rlz
