#include "search/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "search/tokenizer.h"

namespace rlz {

InvertedIndex InvertedIndex::Build(const Collection& collection) {
  InvertedIndex index;
  index.doc_lengths_.resize(collection.num_docs(), 0);

  std::unordered_map<std::string, uint32_t> doc_tf;
  uint64_t total_terms = 0;
  for (size_t d = 0; d < collection.num_docs(); ++d) {
    doc_tf.clear();
    const std::vector<std::string> terms = Tokenize(collection.doc(d));
    for (const std::string& t : terms) ++doc_tf[t];
    index.doc_lengths_[d] = static_cast<uint32_t>(terms.size());
    total_terms += terms.size();
    for (const auto& [term, tf] : doc_tf) {
      index.postings_[term].push_back(
          {static_cast<uint32_t>(d), tf});
      index.term_frequency_[term] += tf;
    }
  }
  index.avg_doc_length_ =
      collection.num_docs() == 0
          ? 0.0
          : static_cast<double>(total_terms) / collection.num_docs();
  return index;
}

size_t InvertedIndex::DocFrequency(const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second.size();
}

std::vector<SearchHit> InvertedIndex::Query(
    const std::vector<std::string>& terms, size_t k) const {
  std::unordered_map<uint32_t, double> scores;
  const double n = static_cast<double>(num_docs());
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const auto& list = it->second;
    const double df = static_cast<double>(list.size());
    // BM25 idf with the usual +1 to keep scores positive.
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const Posting& p : list) {
      const double tf = static_cast<double>(p.tf);
      const double dl = static_cast<double>(doc_lengths_[p.doc]);
      const double denom =
          tf + kBm25K1 * (1.0 - kBm25B + kBm25B * dl / avg_doc_length_);
      scores[p.doc] += idf * tf * (kBm25K1 + 1.0) / denom;
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back({doc, score});
  const size_t top = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + top, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  hits.resize(top);
  return hits;
}

std::vector<std::pair<std::string, uint64_t>> InvertedIndex::TermsByFrequency()
    const {
  std::vector<std::pair<std::string, uint64_t>> terms(term_frequency_.begin(),
                                                      term_frequency_.end());
  std::sort(terms.begin(), terms.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return terms;
}

}  // namespace rlz
