#include "search/query_log.h"

#include <algorithm>

namespace rlz {

std::vector<std::vector<std::string>> GenerateQueries(
    const InvertedIndex& index, const QueryLogOptions& options) {
  Rng rng(options.seed);
  const auto by_freq = index.TermsByFrequency();
  // Skip the stop-word head, keep the next `vocab_pool` terms.
  const size_t begin = std::min(options.skip_head, by_freq.size());
  const size_t end = std::min(begin + options.vocab_pool, by_freq.size());
  if (begin >= end) return {};
  const ZipfSampler zipf(end - begin, options.zipf_theta);

  std::vector<std::vector<std::string>> queries;
  queries.reserve(options.num_queries);
  for (size_t q = 0; q < options.num_queries; ++q) {
    const size_t nterms = rng.Range(options.terms_per_query_min,
                                    options.terms_per_query_max);
    std::vector<std::string> query;
    query.reserve(nterms);
    for (size_t t = 0; t < nterms; ++t) {
      query.push_back(by_freq[begin + zipf.Sample(rng)].first);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<uint32_t> BuildQueryLogPattern(
    const InvertedIndex& index,
    const std::vector<std::vector<std::string>>& queries,
    const QueryLogOptions& options) {
  std::vector<uint32_t> pattern;
  pattern.reserve(options.cap);
  for (const auto& query : queries) {
    if (pattern.size() >= options.cap) break;
    for (const SearchHit& hit : index.Query(query, options.top_k)) {
      if (pattern.size() >= options.cap) break;
      pattern.push_back(hit.doc);
    }
  }
  return pattern;
}

std::vector<uint32_t> BuildSequentialPattern(size_t num_docs, size_t count) {
  std::vector<uint32_t> pattern;
  if (num_docs == 0) return pattern;
  pattern.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pattern.push_back(static_cast<uint32_t>(i % num_docs));
  }
  return pattern;
}

}  // namespace rlz
