#ifndef RLZ_SEARCH_TOKENIZER_H_
#define RLZ_SEARCH_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rlz {

/// Splits text into lowercase alphanumeric terms, skipping markup and
/// punctuation. Minimal web tokenizer: tags (<...>) are dropped entirely so
/// boilerplate markup does not dominate the vocabulary.
std::vector<std::string> Tokenize(std::string_view text);

}  // namespace rlz

#endif  // RLZ_SEARCH_TOKENIZER_H_
