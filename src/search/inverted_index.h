#ifndef RLZ_SEARCH_INVERTED_INDEX_H_
#define RLZ_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/collection.h"

namespace rlz {

/// A ranked document hit.
struct SearchHit {
  uint32_t doc = 0;
  double score = 0.0;
};

/// In-memory inverted index with BM25 ranking — the repository's stand-in
/// for the Zettair engine the paper uses to produce its query-log access
/// pattern (§4 "Method"). Index construction is single-pass; postings are
/// (doc, term-frequency) lists ordered by doc id.
class InvertedIndex {
 public:
  /// Indexes every document of `collection`.
  static InvertedIndex Build(const Collection& collection);

  /// BM25 top-k disjunctive query.
  std::vector<SearchHit> Query(const std::vector<std::string>& terms,
                               size_t k) const;

  size_t num_docs() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Document frequency of `term` (0 if absent).
  size_t DocFrequency(const std::string& term) const;

  /// Collection frequency of every term, for query sampling. Sorted by
  /// descending frequency.
  std::vector<std::pair<std::string, uint64_t>> TermsByFrequency() const;

  static constexpr double kBm25K1 = 0.9;
  static constexpr double kBm25B = 0.4;

 private:
  struct Posting {
    uint32_t doc;
    uint32_t tf;
  };

  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<std::string, uint64_t> term_frequency_;
  std::vector<uint32_t> doc_lengths_;  // in terms
  double avg_doc_length_ = 0.0;
};

}  // namespace rlz

#endif  // RLZ_SEARCH_INVERTED_INDEX_H_
