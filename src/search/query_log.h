#ifndef RLZ_SEARCH_QUERY_LOG_H_
#define RLZ_SEARCH_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "search/inverted_index.h"
#include "util/random.h"

namespace rlz {

/// Options matching the paper's query-log methodology (§4 "Method"): run
/// queries through a search engine, take the top 20 document ids of each,
/// concatenate, cap at 100 000 requests.
struct QueryLogOptions {
  size_t num_queries = 5000;
  size_t terms_per_query_min = 1;
  size_t terms_per_query_max = 4;
  size_t top_k = 20;
  size_t cap = 100000;
  /// Queries sample terms Zipf-style from the collection vocabulary,
  /// restricted to the `vocab_pool` most frequent terms (stop-word head
  /// excluded via `skip_head`).
  size_t vocab_pool = 8000;
  size_t skip_head = 50;
  double zipf_theta = 0.9;
  uint64_t seed = 42;
};

/// Generates random keyword queries over the index vocabulary.
std::vector<std::vector<std::string>> GenerateQueries(
    const InvertedIndex& index, const QueryLogOptions& options);

/// Runs `queries` through `index` and concatenates the top-k doc ids of
/// each, capped — the paper's query-log document access pattern.
std::vector<uint32_t> BuildQueryLogPattern(
    const InvertedIndex& index,
    const std::vector<std::vector<std::string>>& queries,
    const QueryLogOptions& options);

/// The paper's other access pattern: `count` sequential document ids
/// (wrapping around if count > num_docs).
std::vector<uint32_t> BuildSequentialPattern(size_t num_docs, size_t count);

}  // namespace rlz

#endif  // RLZ_SEARCH_QUERY_LOG_H_
