#ifndef RLZ_CORPUS_GENERATOR_H_
#define RLZ_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/collection.h"

namespace rlz {

/// Corpus flavours modelled on the paper's two test collections (§4).
enum class CorpusStyle {
  kWeb,   ///< GOV2-like crawl: many hosts, heavy per-host boilerplate,
          ///< mirrored sites, ~18 KB average documents.
  kWiki,  ///< Wikipedia-like: fewer "projects", article templates and
          ///< infoboxes, ~45 KB average documents, no mirrors.
};

/// Serialization orders used in the evaluation.
enum class DocOrder {
  kCrawl,  ///< natural crawl order: pages of different hosts interleaved
  kUrl,    ///< sorted by URL (Ferragina & Manzini's locality trick, §3.5)
};

struct CorpusOptions {
  uint64_t seed = 20110613;
  /// Approximate total collection size in bytes.
  size_t target_bytes = 64ull << 20;
  CorpusStyle style = CorpusStyle::kWeb;
  /// 0 = style default (18 KB web / 45 KB wiki, the paper's averages).
  size_t avg_doc_bytes = 0;
  /// 0 = style default (scales with target size).
  size_t num_hosts = 0;
  /// Fraction of hosts that mirror another host's content under different
  /// URLs (web style only) — the failure mode of URL sorting called out in
  /// §3.5.
  double mirror_fraction = 0.06;
  size_t vocab_size = 30000;
  double zipf_theta = 1.0;
};

/// A generated collection plus its per-document URLs (needed for URL
/// sorting and by the search substrate).
struct Corpus {
  Collection collection;
  std::vector<std::string> urls;  // parallel to collection docs
};

/// Generates a deterministic synthetic web collection with the redundancy
/// structure RLZ exploits: global boilerplate shared across hosts,
/// host-level templates, Zipfian body text, intra-document repetition, and
/// (web style) mirrored hosts. Documents are emitted in `order`.
///
/// Substitute for GOV2/ClueWeb-Wikipedia; see DESIGN.md §4 for the
/// behaviour-preservation argument.
Corpus GenerateCorpus(const CorpusOptions& options,
                      DocOrder order = DocOrder::kCrawl);

/// Re-serializes `corpus` with documents sorted by URL. Stable for ties.
Corpus SortByUrl(const Corpus& corpus);

}  // namespace rlz

#endif  // RLZ_CORPUS_GENERATOR_H_
