#include "corpus/generator.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace rlz {
namespace {

// Number of globally shared boilerplate fragments (CSS/JS/footer chunks
// that appear verbatim on every host — the "global repetition" that
// block-local compressors cannot reach but dictionary sampling can).
constexpr int kNumGlobalFragments = 48;

std::string MakeWord(Rng& rng) {
  static const char* kSyllables[] = {"ba", "co", "da", "el", "fi", "go", "ha",
                                     "in", "jo", "ka", "lu", "ma", "ne", "or",
                                     "pa", "qu", "ri", "sa", "te", "um", "ve",
                                     "wa", "xe", "yo", "za", "th", "st", "er"};
  const int ns = 1 + static_cast<int>(rng.Uniform(4));
  std::string w;
  for (int i = 0; i < ns; ++i) {
    w += kSyllables[rng.Uniform(std::size(kSyllables))];
  }
  return w;
}

std::vector<std::string> MakeVocabulary(Rng& rng, size_t size) {
  std::vector<std::string> vocab;
  vocab.reserve(size);
  for (size_t i = 0; i < size; ++i) vocab.push_back(MakeWord(rng));
  return vocab;
}

// A sentence of Zipf-distributed words.
std::string MakeSentence(Rng& rng, const ZipfSampler& zipf,
                         const std::vector<std::string>& vocab,
                         size_t num_words) {
  std::string s;
  for (size_t i = 0; i < num_words; ++i) {
    s += vocab[zipf.Sample(rng)];
    s += (i + 1 == num_words) ? ". " : " ";
  }
  return s;
}

// A paragraph of Zipf-distributed words wrapped in <p> tags.
std::string MakeParagraph(Rng& rng, const ZipfSampler& zipf,
                          const std::vector<std::string>& vocab,
                          size_t num_words) {
  std::string p = "<p>";
  p += MakeSentence(rng, zipf, vocab, num_words);
  p += "</p>\n";
  return p;
}

// Natural-language text repeats phrases and whole sentences across
// documents (quotes, stock phrasing, syndicated snippets). The bank is the
// global pool those repeats come from; Zipf selection over it makes popular
// sentences ubiquitous — the long-range redundancy that gives RLZ its long
// factors on real crawls.
constexpr size_t kSentenceBankSize = 1500;

std::vector<std::string> MakeSentenceBank(Rng& rng, const ZipfSampler& zipf,
                                          const std::vector<std::string>& vocab) {
  std::vector<std::string> bank;
  bank.reserve(kSentenceBankSize);
  for (size_t i = 0; i < kSentenceBankSize; ++i) {
    bank.push_back(
        MakeSentence(rng, zipf, vocab, 8 + rng.Uniform(14)));
  }
  return bank;
}

std::vector<std::string> MakeGlobalFragments(
    Rng& rng, const ZipfSampler& zipf, const std::vector<std::string>& vocab) {
  std::vector<std::string> frags;
  frags.reserve(kNumGlobalFragments);
  for (int i = 0; i < kNumGlobalFragments; ++i) {
    std::string f;
    switch (i % 4) {
      case 0: {  // CSS-like block
        f = "<style type=\"text/css\">\n";
        const int rules = 4 + static_cast<int>(rng.Uniform(8));
        for (int r = 0; r < rules; ++r) {
          f += "." + vocab[zipf.Sample(rng)] +
               " { margin: " + std::to_string(rng.Uniform(32)) +
               "px; padding: " + std::to_string(rng.Uniform(16)) +
               "px; color: #" + std::to_string(100000 + rng.Uniform(899999)) +
               "; }\n";
        }
        f += "</style>\n";
        break;
      }
      case 1: {  // JS-like block
        f = "<script type=\"text/javascript\">function " +
            vocab[zipf.Sample(rng)] + "() { var " + vocab[zipf.Sample(rng)] +
            " = document.getElementById('" + vocab[zipf.Sample(rng)] +
            "'); if (" + vocab[zipf.Sample(rng)] +
            ") { return true; } return false; }</script>\n";
        break;
      }
      case 2: {  // standard footer / disclaimer text
        f = "<div class=\"footer\">";
        f += MakeParagraph(rng, zipf, vocab, 30 + rng.Uniform(30));
        f += "</div>\n";
        break;
      }
      default: {  // meta/header boilerplate
        f = "<meta name=\"" + vocab[zipf.Sample(rng)] + "\" content=\"" +
            vocab[zipf.Sample(rng)] + " " + vocab[zipf.Sample(rng)] +
            "\" />\n<link rel=\"stylesheet\" href=\"/static/" +
            vocab[zipf.Sample(rng)] + ".css\" />\n";
        break;
      }
    }
    frags.push_back(std::move(f));
  }
  return frags;
}

struct HostTemplate {
  std::string name;    // e.g. www.lumate.gov
  std::string header;  // shared prefix of every page on the host
  std::string footer;  // shared suffix
  int mirror_of = -1;  // index of mirrored host, or -1
};

}  // namespace

Corpus GenerateCorpus(const CorpusOptions& options, DocOrder order) {
  Rng rng(options.seed);

  const bool wiki = options.style == CorpusStyle::kWiki;
  const size_t avg_doc =
      options.avg_doc_bytes != 0 ? options.avg_doc_bytes
                                 : (wiki ? 45 * 1024 : 18 * 1024);
  const size_t num_docs = std::max<size_t>(1, options.target_bytes / avg_doc);
  size_t num_hosts = options.num_hosts;
  if (num_hosts == 0) {
    // Web crawls have many small sites; wiki snapshots few "projects".
    num_hosts = std::max<size_t>(4, wiki ? num_docs / 400 : num_docs / 24);
  }

  const std::vector<std::string> vocab = MakeVocabulary(rng, options.vocab_size);
  const ZipfSampler zipf(vocab.size(), options.zipf_theta);
  const std::vector<std::string> global_frags =
      MakeGlobalFragments(rng, zipf, vocab);
  const std::vector<std::string> sentence_bank =
      MakeSentenceBank(rng, zipf, vocab);
  const ZipfSampler sentence_zipf(sentence_bank.size(), 1.0);

  // Build host templates. Mirrors copy another host's template and later
  // its page bodies, but advertise a different hostname.
  std::vector<HostTemplate> hosts(num_hosts);
  for (size_t h = 0; h < num_hosts; ++h) {
    HostTemplate& host = hosts[h];
    host.name = (wiki ? "en.wikipedia.org/wiki/" : "www.") +
                vocab[rng.Uniform(vocab.size())] +
                vocab[rng.Uniform(vocab.size())] + (wiki ? "" : ".gov");
    if (!wiki && h > 0 && rng.Bernoulli(options.mirror_fraction)) {
      host.mirror_of = static_cast<int>(rng.Uniform(h));
      host.header = hosts[host.mirror_of].header;
      host.footer = hosts[host.mirror_of].footer;
      continue;
    }
    std::string& hdr = host.header;
    hdr = "<!DOCTYPE html>\n<html>\n<head>\n<title>" + host.name +
          " :: " + vocab[zipf.Sample(rng)] + "</title>\n";
    // Every host carries the universal fragments (shared CSS framework /
    // analytics snippet — the strongest form of global redundancy), plus a
    // random subset of the remaining pool.
    hdr += global_frags[0];
    hdr += global_frags[1];
    const int nfrags = 3 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < nfrags; ++i) {
      hdr += global_frags[rng.Uniform(global_frags.size())];
    }
    hdr += "</head>\n<body>\n<div class=\"nav\">";
    const int nav_links = 6 + static_cast<int>(rng.Uniform(10));
    for (int i = 0; i < nav_links; ++i) {
      hdr += "<a href=\"/" + vocab[zipf.Sample(rng)] + "/" +
             vocab[zipf.Sample(rng)] + ".html\">" + vocab[zipf.Sample(rng)] +
             "</a> | ";
    }
    hdr += "</div>\n";

    host.footer = "<div class=\"bottom\">";
    host.footer += global_frags[rng.Uniform(global_frags.size())];
    host.footer += "</div>\n</body>\n</html>\n";
  }

  // Assign each document to a host, skewed so that a few hosts are large
  // (as in real crawls). Mirrors get the same number of pages as their
  // originals by construction of the assignment pass below.
  const ZipfSampler host_zipf(num_hosts, 0.8);
  std::vector<int> doc_host(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    doc_host[d] = static_cast<int>(host_zipf.Sample(rng));
  }

  // Generate page bodies. Pages of a mirror host reuse the body of the
  // corresponding page of the original host (identical content, different
  // URL), so we generate originals on demand and cache per (host, page#).
  Corpus corpus;
  corpus.collection.Reserve(options.target_bytes + options.target_bytes / 8,
                            num_docs);
  corpus.urls.reserve(num_docs);

  std::vector<int> pages_on_host(num_hosts, 0);
  // body cache for mirrored hosts: originals keyed by (host, page#).
  std::vector<std::vector<std::string>> body_cache(num_hosts);

  auto make_body = [&](int host_idx, Rng& r) {
    const HostTemplate& host = hosts[host_idx];
    std::string body;
    const double spread = 0.3 + 1.4 * r.NextDouble();
    const size_t target =
        static_cast<size_t>(static_cast<double>(avg_doc) * spread);
    const size_t overhead = host.header.size() + host.footer.size();
    std::vector<std::string> paragraphs;
    body += wiki ? "<h1>" + vocab[zipf.Sample(r)] + " " +
                       vocab[zipf.Sample(r)] + "</h1>\n"
                 : "";
    if (wiki) {
      // Infobox: a global fragment with a few substituted values — template
      // reuse across articles.
      body += "<table class=\"infobox\"><tr><td>" + vocab[zipf.Sample(r)] +
              "</td><td>" + std::to_string(r.Uniform(2000)) +
              "</td></tr><tr><td>population</td><td>" +
              std::to_string(r.Uniform(10000000)) + "</td></tr></table>\n";
    }
    while (body.size() + overhead < target) {
      // Intra-document repetition: occasionally repeat an earlier
      // paragraph verbatim (drives the §3.4 observation that positions
      // within a document are locally skewed).
      if (!paragraphs.empty() && r.Bernoulli(0.12)) {
        body += paragraphs[r.Uniform(paragraphs.size())];
        continue;
      }
      if (wiki && r.Bernoulli(0.15)) {
        body += "<h2>" + vocab[zipf.Sample(r)] + "</h2>\n";
      }
      // Paragraphs splice material mostly from the global bank (shared
      // across all documents): usually a run of consecutive bank sentences
      // (syndicated/boilerplate chunks repeat as multi-sentence blocks on
      // real pages), sometimes single popular sentences, occasionally
      // fresh text.
      std::string p = "<p>";
      const int num_sentences = 3 + static_cast<int>(r.Uniform(6));
      for (int s = 0; s < num_sentences;) {
        const double dice = r.NextDouble();
        if (dice < 0.60) {
          // Run of consecutive bank sentences starting at a skewed index.
          const size_t start = sentence_zipf.Sample(r);
          const size_t run = 2 + r.Uniform(5);
          for (size_t k = 0; k < run && start + k < sentence_bank.size();
               ++k) {
            p += sentence_bank[start + k];
          }
          s += static_cast<int>(run);
        } else if (dice < 0.90) {
          p += sentence_bank[sentence_zipf.Sample(r)];
          ++s;
        } else {
          p += MakeSentence(r, zipf, vocab, 8 + r.Uniform(14));
          ++s;
        }
      }
      p += "</p>\n";
      body += p;
      paragraphs.push_back(std::move(p));
    }
    return body;
  };

  for (size_t d = 0; d < num_docs; ++d) {
    const int h = doc_host[d];
    const HostTemplate& host = hosts[h];
    const int page_no = pages_on_host[h]++;
    std::string body;
    if (host.mirror_of >= 0) {
      // Mirror: reuse (or lazily create) the original host's page body.
      auto& cache = body_cache[host.mirror_of];
      while (static_cast<int>(cache.size()) <= page_no) {
        cache.push_back(make_body(host.mirror_of, rng));
      }
      body = cache[page_no];
    } else {
      auto& cache = body_cache[h];
      while (static_cast<int>(cache.size()) <= page_no) {
        cache.push_back(make_body(h, rng));
      }
      body = cache[page_no];
    }
    std::string doc = host.header;
    doc += body;
    doc += host.footer;
    corpus.urls.push_back("http://" + host.name + "/page" +
                          std::to_string(page_no) + ".html");
    corpus.collection.Append(doc);
  }

  if (order == DocOrder::kUrl) return SortByUrl(corpus);
  return corpus;
}

Corpus SortByUrl(const Corpus& corpus) {
  std::vector<size_t> idx(corpus.urls.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return corpus.urls[a] < corpus.urls[b];
  });
  Corpus out;
  out.collection.Reserve(corpus.collection.size_bytes(),
                         corpus.collection.num_docs());
  out.urls.reserve(corpus.urls.size());
  for (size_t i : idx) {
    out.collection.Append(corpus.collection.doc(i));
    out.urls.push_back(corpus.urls[i]);
  }
  return out;
}

}  // namespace rlz
