#ifndef RLZ_CORPUS_COLLECTION_H_
#define RLZ_CORPUS_COLLECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlz {

/// A document collection: the concatenated document bytes plus document
/// boundaries. This is the unit every compressor in the repository consumes
/// (the paper treats a collection as "a single string" with document
/// boundaries, §3.3).
class Collection {
 public:
  Collection() { offsets_.push_back(0); }

  /// Appends one document.
  void Append(std::string_view doc) {
    data_.append(doc);
    offsets_.push_back(data_.size());
  }

  size_t num_docs() const { return offsets_.size() - 1; }
  size_t size_bytes() const { return data_.size(); }

  /// The whole collection as a single string (dictionary sampling input).
  std::string_view data() const { return data_; }

  /// Document `i` (0-based). i must be < num_docs().
  std::string_view doc(size_t i) const {
    RLZ_CHECK_LT(i, num_docs());
    return std::string_view(data_).substr(offsets_[i],
                                          offsets_[i + 1] - offsets_[i]);
  }

  uint64_t doc_offset(size_t i) const { return offsets_[i]; }
  uint64_t doc_size(size_t i) const { return offsets_[i + 1] - offsets_[i]; }

  /// Average document size in bytes (0 if empty).
  double avg_doc_bytes() const {
    return num_docs() == 0
               ? 0.0
               : static_cast<double>(size_bytes()) / num_docs();
  }

  /// Serializes to a container envelope (store/format.h): per-doc sizes
  /// then the raw data, CRC-protected.
  Status Save(const std::string& path) const;
  /// Loads a collection written by Save — the envelope, or the legacy
  /// pre-envelope "RCO1" layout, which remains readable.
  static StatusOr<Collection> Load(const std::string& path);

  /// Reserves capacity to avoid reallocation while generating.
  void Reserve(size_t bytes, size_t docs) {
    data_.reserve(bytes);
    offsets_.reserve(docs + 1);
  }

 private:
  std::string data_;
  std::vector<uint64_t> offsets_;  // num_docs()+1 entries; [0] == 0
};

}  // namespace rlz

#endif  // RLZ_CORPUS_COLLECTION_H_
