#include "corpus/collection.h"

#include "codecs/int_codecs.h"
#include "io/file.h"
#include "store/format.h"

namespace rlz {
namespace {
// The pre-envelope collection file: "RCO1", vbyte doc count, vbyte32
// per-doc sizes, raw data. Still readable; Save writes the envelope.
constexpr char kLegacyMagic[4] = {'R', 'C', 'O', '1'};
constexpr char kFormatId[] = "collection";
constexpr uint32_t kFormatVersion = 2;  // v1 == the legacy RCO1 layout
}  // namespace

Status Collection::Save(const std::string& path) const {
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutVarint64(num_docs());
  for (size_t i = 0; i < num_docs(); ++i) {
    writer.PutVarint64(doc_size(i));
  }
  writer.PutBytes(data_);
  return std::move(writer).WriteTo(path);
}

namespace {

StatusOr<Collection> LoadLegacy(const std::string& raw,
                                const std::string& path) {
  size_t pos = 4;
  uint32_t ndocs = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &ndocs));
  if (ndocs > raw.size() - pos) {
    return Status::Corruption("collection: document count exceeds " + path);
  }
  std::vector<uint32_t> sizes(ndocs);
  uint64_t total = 0;
  for (uint32_t i = 0; i < ndocs; ++i) {
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &sizes[i]));
    total += sizes[i];
  }
  if (raw.size() - pos != total) {
    return Status::Corruption("collection: size mismatch in " + path);
  }
  Collection c;
  c.Reserve(total, ndocs);
  size_t off = pos;
  for (uint32_t i = 0; i < ndocs; ++i) {
    c.Append(std::string_view(raw).substr(off, sizes[i]));
    off += sizes[i];
  }
  return c;
}

}  // namespace

StatusOr<Collection> Collection::Load(const std::string& path) {
  RLZ_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  if (raw.size() >= 4 && std::string_view(raw.data(), 4) ==
                             std::string_view(kLegacyMagic, 4)) {
    return LoadLegacy(raw, path);
  }
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope,
                       ParsedEnvelope::FromBytes(std::move(raw), path));
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();
  std::vector<uint64_t> sizes;
  RLZ_RETURN_IF_ERROR(reader.ReadSizeTable(&sizes));
  uint64_t total = 0;
  for (uint64_t size : sizes) total += size;
  const std::string_view data = reader.ReadRest();
  Collection c;
  c.Reserve(total, sizes.size());
  size_t off = 0;
  for (uint64_t size : sizes) {
    c.Append(data.substr(off, size));
    off += size;
  }
  return c;
}

}  // namespace rlz
