#include "corpus/collection.h"

#include "codecs/int_codecs.h"
#include "io/file.h"

namespace rlz {
namespace {
constexpr char kMagic[4] = {'R', 'C', 'O', '1'};
}  // namespace

Status Collection::Save(const std::string& path) const {
  std::string out;
  out.append(kMagic, 4);
  VByteCodec::Put(static_cast<uint32_t>(num_docs()), &out);
  for (size_t i = 0; i < num_docs(); ++i) {
    VByteCodec::Put(static_cast<uint32_t>(doc_size(i)), &out);
  }
  out.append(data_);
  return WriteFile(path, out);
}

StatusOr<Collection> Collection::Load(const std::string& path) {
  RLZ_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  if (raw.size() < 4 || std::string_view(raw.data(), 4) !=
                            std::string_view(kMagic, 4)) {
    return Status::Corruption("collection: bad magic in " + path);
  }
  size_t pos = 4;
  uint32_t ndocs = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &ndocs));
  std::vector<uint32_t> sizes(ndocs);
  uint64_t total = 0;
  for (uint32_t i = 0; i < ndocs; ++i) {
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &sizes[i]));
    total += sizes[i];
  }
  if (raw.size() - pos != total) {
    return Status::Corruption("collection: size mismatch in " + path);
  }
  Collection c;
  c.Reserve(total, ndocs);
  size_t off = pos;
  for (uint32_t i = 0; i < ndocs; ++i) {
    c.Append(std::string_view(raw).substr(off, sizes[i]));
    off += sizes[i];
  }
  return c;
}

}  // namespace rlz
