#ifndef RLZ_BUILD_ARCHIVE_BUILDER_H_
#define RLZ_BUILD_ARCHIVE_BUILDER_H_

/// \file
/// Streaming archive construction on the parallel build pipeline (DESIGN.md §7).

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "build/build_pipeline.h"
#include "core/rlz_archive.h"
#include "util/bitmap.h"

namespace rlz {

/// Knobs for RlzArchiveBuilder.
struct ArchiveBuilderOptions {
  /// Position/length coding pair for the factor streams (§3.4).
  PairCoding coding = kZV;
  /// Track per-byte dictionary usage (one bitmap per worker, merged with
  /// Bitmap::OrWith at Finish).
  bool track_coverage = false;
  /// Factorization workers. 1 encodes each document synchronously inside
  /// AddDocument (the §3.6 dynamic setting — stats are live); > 1 batches
  /// documents into chunks and encodes them on the build pipeline
  /// (DESIGN.md §7). Output bytes are identical either way.
  int num_threads = 1;
  /// Documents per pipeline chunk when num_threads > 1; 0 picks 64 (a
  /// streaming default — batch builds pass a balanced value). Never
  /// affects output bytes.
  size_t chunk_docs = 0;
  /// Backpressure: maximum unmerged chunks in flight; AddDocument blocks
  /// beyond it, bounding buffered text. 0 picks 4 x num_threads.
  size_t max_inflight_chunks = 0;
};

/// What a finished build did (Finish's out-param; the basis of
/// RlzBuildInfo and the build-throughput bench).
struct ArchiveBuildReport {
  /// Factor statistics merged over all workers (FactorStats::Merge).
  FactorStats stats;
  /// Merged per-dictionary-byte coverage (empty unless track_coverage).
  Bitmap coverage;
  /// Fraction of dictionary bytes never used (0 unless track_coverage).
  double unused_dictionary_fraction = 0.0;
  /// Thread-CPU seconds summed over workers (serial-equivalent work).
  double cpu_seconds = 0.0;
  /// Busiest worker's thread-CPU seconds (modeled parallel makespan).
  double critical_path_seconds = 0.0;
  /// Pipeline chunks the documents were partitioned into.
  size_t chunks = 0;
  /// Worker count the build ran with.
  int num_threads = 1;
};

/// Incremental archive construction (the §3.6 dynamic setting), rebuilt on
/// the parallel build pipeline: documents are appended one at a time and
/// the finished archive is byte-identical to RlzArchive::Build over the
/// same sequence — for any worker count or chunk size.
///
///   RlzArchiveBuilder builder(dict, {.num_threads = 8});
///   while (crawler.HasNext()) builder.AddDocument(crawler.Next());
///   auto archive = std::move(builder).Finish();
///
/// With one worker each AddDocument factorizes and encodes synchronously
/// (no buffering, live stats). With several, documents accumulate into
/// chunks of chunk_docs; each chunk is factorized by one of the per-worker
/// Factorizers against the shared immutable Dictionary and merged into the
/// archive in submission order. AddDocument applies backpressure once
/// max_inflight_chunks chunks are unmerged, so memory stays bounded while
/// streaming. Not thread-safe: one producer thread calls
/// AddDocument/Finish.
class RlzArchiveBuilder {
 public:
  /// Serial builder (one worker), matching the historical constructor.
  RlzArchiveBuilder(std::shared_ptr<const Dictionary> dict, PairCoding coding,
                    bool track_coverage = false);

  /// Builder with explicit options (worker count, chunking, coverage).
  RlzArchiveBuilder(std::shared_ptr<const Dictionary> dict,
                    const ArchiveBuilderOptions& options);

  /// Factorizes and encodes one document at the next document id. The
  /// bytes are copied if they must outlive the call (parallel mode).
  void AddDocument(std::string_view doc);

  /// Like AddDocument, but the caller guarantees `doc`'s bytes stay valid
  /// until Finish returns — the zero-copy path for collections already
  /// held in memory (RlzArchive::Build, ShardedStore shard builds).
  void AddBorrowedDocument(std::string_view doc);

  /// Documents added so far (including ones still in unmerged chunks).
  size_t num_docs() const { return docs_added_; }

  /// Factor statistics: live and exact with one worker. With several
  /// workers the totals are merged by Finish — until then this returns
  /// zeros (per-worker counters are not safely readable mid-build).
  const FactorStats& stats() const { return stats_; }

  /// Fraction of dictionary bytes unused so far. Live with one worker;
  /// with several, exact after Finish.
  double UnusedDictionaryFraction() const;

  /// Drains the pipeline, merges worker stats/coverage, and returns the
  /// archive. The builder is consumed. If `report` is non-null it
  /// receives the build accounting.
  std::unique_ptr<RlzArchive> Finish(ArchiveBuildReport* report = nullptr) &&;

 private:
  /// Text accumulated for one pipeline chunk. Borrowed documents are
  /// referenced in place; owned ones live in `owned` (a deque, so views
  /// stay stable as more documents arrive).
  struct Chunk {
    std::vector<std::string_view> docs;
    std::deque<std::string> owned;
    std::string payload;
    std::vector<uint64_t> doc_sizes;
  };

  void Append(std::string_view doc, bool copy);
  void FlushChunk();
  void MergeWorkerState();

  ArchiveBuilderOptions options_;
  std::unique_ptr<RlzArchive> archive_;
  // One factorizer per worker: index w is touched only by pipeline worker
  // w (serial mode uses index 0 from the producer thread).
  std::vector<std::unique_ptr<Factorizer>> factorizers_;
  std::vector<std::vector<Factor>> scratch_;  // per-worker factor buffer
  std::shared_ptr<Chunk> open_;               // chunk being filled
  size_t docs_added_ = 0;
  FactorStats stats_;          // serial: live; parallel: set by Finish
  Bitmap merged_coverage_;     // set by Finish (parallel, track_coverage)
  double serial_cpu_seconds_ = 0.0;
  // Declared last so its destructor drains in-flight chunks while the
  // members their callbacks touch are still alive.
  std::unique_ptr<BuildPipeline> pipeline_;
};

}  // namespace rlz

#endif  // RLZ_BUILD_ARCHIVE_BUILDER_H_
