#include "build/build_pipeline.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"
#include "util/timer.h"

namespace rlz {

BuildPipeline::BuildPipeline(const BuildPipelineOptions& options)
    : num_threads_(std::max(1, options.num_threads)),
      max_inflight_(options.max_inflight_chunks != 0
                        ? std::max<size_t>(1, options.max_inflight_chunks)
                        : 4 * static_cast<size_t>(num_threads_)) {
  worker_cpu_.assign(static_cast<size_t>(num_threads_), 0.0);
  if (num_threads_ > 1) {
    threads_.reserve(num_threads_);
    for (int w = 0; w < num_threads_; ++w) {
      threads_.emplace_back(&BuildPipeline::WorkerLoop, this, w);
    }
  }
}

BuildPipeline::~BuildPipeline() {
  if (!finished_) Finish();
}

void BuildPipeline::Submit(EncodeFn encode, MergeFn merge) {
  RLZ_CHECK(!finished_) << "Submit after Finish";
  ++chunks_submitted_;
  if (threads_.empty()) {
    // Inline serial path: encode-then-merge immediately. This IS the
    // reference ordering the parallel path reproduces.
    const double start = ThreadCpuSeconds();
    encode(0);
    merge();
    worker_cpu_[0] += ThreadCpuSeconds() - start;
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  space_free_.wait(lock, [&] { return in_flight_ < max_inflight_; });
  ++in_flight_;
  queue_.push_back(Task{next_seq_++, std::move(encode), std::move(merge)});
  lock.unlock();
  work_ready_.notify_one();
}

void BuildPipeline::WorkerLoop(int worker) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }

    const double encode_start = ThreadCpuSeconds();
    task.encode(worker);
    worker_cpu_[worker] += ThreadCpuSeconds() - encode_start;

    // Ordered merge: park this chunk's merge, then — if the next-in-order
    // chunk is ready and nobody else is merging — drain every consecutive
    // ready merge. Merges run outside the lock (merging_ keeps them
    // mutually exclusive), so other workers keep encoding meanwhile.
    std::unique_lock<std::mutex> lock(mu_);
    ready_.emplace(task.seq, std::move(task.merge));
    while (!merging_ && !ready_.empty() &&
           ready_.begin()->first == next_merge_) {
      MergeFn merge = std::move(ready_.begin()->second);
      ready_.erase(ready_.begin());
      merging_ = true;
      lock.unlock();
      const double merge_start = ThreadCpuSeconds();
      merge();
      worker_cpu_[worker] += ThreadCpuSeconds() - merge_start;
      lock.lock();
      merging_ = false;
      ++next_merge_;
      --in_flight_;
      space_free_.notify_all();
      if (in_flight_ == 0) all_merged_.notify_all();
    }
  }
}

BuildPipelineStats BuildPipeline::Finish() {
  RLZ_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  if (!threads_.empty()) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      all_merged_.wait(lock, [&] { return in_flight_ == 0; });
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }
  BuildPipelineStats stats;
  stats.chunks = chunks_submitted_;
  stats.num_threads = num_threads_;
  stats.worker_cpu_seconds = worker_cpu_;
  return stats;
}

void BuildPipeline::SubmitChunkedEncode(
    size_t num_items, size_t chunk_items,
    std::function<void(DocRange, EncodedChunk*, int)> encode,
    std::function<void(DocRange, const EncodedChunk&)> merge) {
  for (const DocRange& range : Partition(num_items, chunk_items)) {
    auto chunk = std::make_shared<EncodedChunk>();
    Submit(
        [encode, range, chunk](int worker) {
          encode(range, chunk.get(), worker);
        },
        [merge, range, chunk]() { merge(range, *chunk); });
  }
}

std::vector<DocRange> BuildPipeline::Partition(size_t num_docs,
                                               size_t chunk_docs) {
  RLZ_CHECK(chunk_docs >= 1);
  std::vector<DocRange> ranges;
  ranges.reserve(num_docs / chunk_docs + 1);
  for (size_t begin = 0; begin < num_docs; begin += chunk_docs) {
    ranges.push_back(DocRange{begin, std::min(num_docs, begin + chunk_docs)});
  }
  return ranges;
}

}  // namespace rlz
