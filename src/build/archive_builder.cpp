#include "build/archive_builder.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace rlz {
namespace {

// Streaming default: small enough to keep AddDocument latency and
// buffered text low, large enough to amortize per-chunk overhead.
constexpr size_t kDefaultStreamChunkDocs = 64;

}  // namespace

RlzArchiveBuilder::RlzArchiveBuilder(std::shared_ptr<const Dictionary> dict,
                                     PairCoding coding, bool track_coverage)
    : RlzArchiveBuilder(std::move(dict),
                        ArchiveBuilderOptions{coding, track_coverage,
                                              /*num_threads=*/1,
                                              /*chunk_docs=*/0,
                                              /*max_inflight_chunks=*/0}) {}

RlzArchiveBuilder::RlzArchiveBuilder(std::shared_ptr<const Dictionary> dict,
                                     const ArchiveBuilderOptions& options)
    : options_(options),
      archive_(RlzArchive::NewEmpty(std::move(dict), options.coding)) {
  options_.num_threads = std::max(1, options_.num_threads);
  if (options_.chunk_docs == 0) options_.chunk_docs = kDefaultStreamChunkDocs;
  const int workers = options_.num_threads;
  factorizers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    factorizers_.push_back(std::make_unique<Factorizer>(
        &archive_->dictionary(), options_.track_coverage));
  }
  scratch_.resize(workers);
  if (workers > 1) {
    BuildPipelineOptions pipeline_options;
    pipeline_options.num_threads = workers;
    pipeline_options.max_inflight_chunks = options_.max_inflight_chunks;
    pipeline_ = std::make_unique<BuildPipeline>(pipeline_options);
    open_ = std::make_shared<Chunk>();
  }
}

void RlzArchiveBuilder::AddDocument(std::string_view doc) {
  Append(doc, /*copy=*/true);
}

void RlzArchiveBuilder::AddBorrowedDocument(std::string_view doc) {
  Append(doc, /*copy=*/false);
}

void RlzArchiveBuilder::Append(std::string_view doc, bool copy) {
  RLZ_CHECK(archive_ != nullptr) << "AddDocument after Finish";
  ++docs_added_;
  if (pipeline_ == nullptr) {
    // Serial: factorize and encode in place — no buffering, live stats.
    const double start = ThreadCpuSeconds();
    std::vector<Factor>& factors = scratch_[0];
    factors.clear();
    factorizers_[0]->Factorize(doc, &factors);
    archive_->AppendEncodedDoc(factors);
    serial_cpu_seconds_ += ThreadCpuSeconds() - start;
    stats_ = factorizers_[0]->stats();
    return;
  }
  if (copy) {
    open_->owned.emplace_back(doc);
    open_->docs.push_back(open_->owned.back());
  } else {
    open_->docs.push_back(doc);
  }
  if (open_->docs.size() >= options_.chunk_docs) FlushChunk();
}

void RlzArchiveBuilder::FlushChunk() {
  std::shared_ptr<Chunk> chunk = std::move(open_);
  open_ = std::make_shared<Chunk>();
  RlzArchive* archive = archive_.get();
  pipeline_->Submit(
      [this, chunk](int worker) {
        Factorizer& factorizer = *factorizers_[worker];
        std::vector<Factor>& factors = scratch_[worker];
        chunk->doc_sizes.reserve(chunk->docs.size());
        for (std::string_view doc : chunk->docs) {
          factors.clear();
          factorizer.Factorize(doc, &factors);
          const size_t before = chunk->payload.size();
          // The pipeline has no error channel; a document beyond the
          // z-stream format limits (>4 GiB of factor stream) aborts, as
          // AppendEncodedDoc does on the serial path.
          const Status status =
              archive_->coder().EncodeDoc(factors, &chunk->payload);
          RLZ_CHECK(status.ok()) << status.ToString();
          chunk->doc_sizes.push_back(chunk->payload.size() - before);
        }
        // The text is dead once encoded; release it before the chunk
        // waits (possibly behind slower predecessors) to merge.
        chunk->docs.clear();
        chunk->docs.shrink_to_fit();
        chunk->owned.clear();
      },
      [archive, chunk]() {
        archive->AppendEncodedChunk(chunk->payload, chunk->doc_sizes);
      });
}

double RlzArchiveBuilder::UnusedDictionaryFraction() const {
  if (pipeline_ == nullptr && archive_ != nullptr) {
    return factorizers_[0]->UnusedFraction();
  }
  if (merged_coverage_.empty()) return 0.0;
  return 1.0 - static_cast<double>(merged_coverage_.CountSet()) /
                   merged_coverage_.size();
}

void RlzArchiveBuilder::MergeWorkerState() {
  stats_ = FactorStats();
  for (const auto& factorizer : factorizers_) {
    stats_.Merge(factorizer->stats());
  }
  if (options_.track_coverage) {
    merged_coverage_.Assign(archive_->dictionary().size());
    for (const auto& factorizer : factorizers_) {
      merged_coverage_.OrWith(factorizer->coverage());
    }
  }
}

std::unique_ptr<RlzArchive> RlzArchiveBuilder::Finish(
    ArchiveBuildReport* report) && {
  RLZ_CHECK(archive_ != nullptr) << "Finish() called twice";
  if (pipeline_ != nullptr) {
    if (!open_->docs.empty()) FlushChunk();
    const BuildPipelineStats pipeline_stats = pipeline_->Finish();
    MergeWorkerState();
    if (report != nullptr) {
      report->cpu_seconds = pipeline_stats.total_cpu_seconds();
      report->critical_path_seconds = pipeline_stats.critical_path_seconds();
      report->chunks = pipeline_stats.chunks;
      report->num_threads = pipeline_stats.num_threads;
    }
  } else {
    if (options_.track_coverage) {
      merged_coverage_ = factorizers_[0]->coverage();
    }
    if (report != nullptr) {
      report->cpu_seconds = serial_cpu_seconds_;
      report->critical_path_seconds = serial_cpu_seconds_;
      report->chunks = 0;
      report->num_threads = 1;
    }
  }
  if (report != nullptr) {
    report->stats = stats_;
    report->coverage = merged_coverage_;
    report->unused_dictionary_fraction = UnusedDictionaryFraction();
  }
  return std::move(archive_);
}

std::unique_ptr<RlzArchive> RlzArchive::Build(
    const Collection& collection, std::shared_ptr<const Dictionary> dict,
    const RlzBuildOptions& options, RlzBuildInfo* info) {
  RLZ_CHECK(dict != nullptr);
  const size_t ndocs = collection.num_docs();
  ArchiveBuilderOptions builder_options;
  builder_options.coding = options.coding;
  builder_options.track_coverage = options.track_coverage;
  builder_options.num_threads = std::max(1, options.num_threads);
  // Balanced batch default: ~4 chunks per worker, so a skewed range
  // cannot serialize the tail. Chunking never changes the output bytes.
  builder_options.chunk_docs =
      options.chunk_docs != 0
          ? options.chunk_docs
          : std::max<size_t>(
                1, ndocs / (4 * static_cast<size_t>(
                                    builder_options.num_threads)));
  RlzArchiveBuilder builder(std::move(dict), builder_options);
  for (size_t i = 0; i < ndocs; ++i) {
    builder.AddBorrowedDocument(collection.doc(i));
  }
  ArchiveBuildReport report;
  std::unique_ptr<RlzArchive> archive = std::move(builder).Finish(&report);
  if (info != nullptr) {
    info->stats = report.stats;
    info->unused_dictionary_fraction = report.unused_dictionary_fraction;
    info->coverage = std::move(report.coverage);
    info->build_cpu_seconds = report.cpu_seconds;
    info->build_critical_path_seconds = report.critical_path_seconds;
    info->build_chunks = report.chunks;
  }
  return archive;
}

}  // namespace rlz
