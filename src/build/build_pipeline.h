#ifndef RLZ_BUILD_BUILD_PIPELINE_H_
#define RLZ_BUILD_BUILD_PIPELINE_H_

/// \file
/// The chunked parallel build executor with ordered merges (DESIGN.md §7).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rlz {

/// A contiguous range of document ids: [begin, end).
struct DocRange {
  /// First document id of the range.
  size_t begin = 0;
  /// One past the last document id of the range.
  size_t end = 0;

  /// Number of documents in the range.
  size_t size() const { return end - begin; }
};

/// Knobs for BuildPipeline.
struct BuildPipelineOptions {
  /// Worker threads. <= 1 runs every chunk inline on the submitting
  /// thread (no threads are spawned) — the serial build, with identical
  /// output by construction.
  int num_threads = 1;
  /// Maximum chunks admitted but not yet merged; Submit blocks beyond
  /// this (backpressure, so a streaming producer cannot buffer an entire
  /// collection ahead of the workers). 0 picks 4 x num_threads.
  size_t max_inflight_chunks = 0;
};

/// Accounting from one pipeline run (valid after Finish()).
struct BuildPipelineStats {
  /// Chunks submitted over the pipeline's lifetime.
  size_t chunks = 0;
  /// Worker count the pipeline ran with (1 for the inline serial path).
  int num_threads = 1;
  /// Thread-CPU seconds per worker (encode + the merges that worker ran).
  std::vector<double> worker_cpu_seconds;

  /// Sum of all workers' CPU seconds — the work a serial build would do.
  double total_cpu_seconds() const {
    double total = 0.0;
    for (double s : worker_cpu_seconds) total += s;
    return total;
  }
  /// The busiest worker's CPU seconds: the modeled build makespan on a
  /// machine with one core per worker (the simulated-wall-time doctrine
  /// of DESIGN.md §4/§6 applied to the build path, §7).
  double critical_path_seconds() const {
    double max = 0.0;
    for (double s : worker_cpu_seconds) max = max > s ? max : s;
    return max;
  }
};

/// The chunked parallel build executor (DESIGN.md §7). Work is submitted
/// as ordered chunks; each chunk's `encode` runs concurrently on a worker
/// thread, and its `merge` runs exactly once, after the chunk's own
/// encode AND the merges of all earlier chunks — i.e. merges are
/// serialized in submission order, on whichever worker completed the
/// ready chunk. Because chunks are merged in submission order and encode
/// work is chunk-local, the merged output is byte-identical to running
/// every (encode, merge) pair inline in order — for ANY thread count,
/// chunk size, or scheduling.
///
/// Submit is single-producer: call it (and Finish) from one thread.
/// Encode callbacks receive the worker index [0, num_threads) so callers
/// can keep per-worker state (e.g. one Factorizer per worker) without
/// locking; merge callbacks never run concurrently with each other.
class BuildPipeline {
 public:
  /// Encodes one chunk into chunk-local storage. The int argument is the
  /// executing worker's index.
  using EncodeFn = std::function<void(int)>;
  /// Appends one encoded chunk to the shared output. Runs serialized, in
  /// submission order.
  using MergeFn = std::function<void()>;

  /// Starts the worker pool (none for num_threads <= 1).
  explicit BuildPipeline(const BuildPipelineOptions& options = {});
  /// Drains and joins; prefer calling Finish() explicitly for the stats.
  ~BuildPipeline();

  /// Not copyable: owns worker threads and in-flight chunk state.
  BuildPipeline(const BuildPipeline&) = delete;
  /// Not assignable: owns worker threads and in-flight chunk state.
  BuildPipeline& operator=(const BuildPipeline&) = delete;

  /// Enqueues one chunk. Blocks while max_inflight_chunks chunks are
  /// admitted but unmerged. With num_threads <= 1, runs encode(0) and
  /// merge() before returning.
  void Submit(EncodeFn encode, MergeFn merge);

  /// Waits until every submitted chunk has merged, stops the workers, and
  /// returns the accounting. Submit must not be called afterwards.
  BuildPipelineStats Finish();

  /// Splits [0, num_docs) into successive ranges of `chunk_docs`
  /// documents (the last may be short). chunk_docs must be >= 1.
  static std::vector<DocRange> Partition(size_t num_docs, size_t chunk_docs);

  /// The chunk shape shared by the concrete builds: a byte payload plus
  /// one encoded size per item in the chunk's range.
  struct EncodedChunk {
    /// Concatenated encoded bytes for the range.
    std::string payload;
    /// Encoded size per item, in range order; sums to payload.size().
    std::vector<uint64_t> item_sizes;
  };

  /// Convenience over Submit for the payload+sizes chunk shape:
  /// partitions [0, num_items) into ranges of `chunk_items`, runs
  /// `encode(range, chunk, worker)` concurrently to fill each chunk, and
  /// hands the filled chunk to `merge(range, chunk)` serialized in range
  /// order. Call Finish() afterwards as usual.
  void SubmitChunkedEncode(
      size_t num_items, size_t chunk_items,
      std::function<void(DocRange, EncodedChunk*, int)> encode,
      std::function<void(DocRange, const EncodedChunk&)> merge);

 private:
  struct Task {
    uint64_t seq = 0;
    EncodeFn encode;
    MergeFn merge;
  };

  void WorkerLoop(int worker);

  int num_threads_;
  size_t max_inflight_;

  std::mutex mu_;
  std::condition_variable work_ready_;   // queue_ gained a task / stopping
  std::condition_variable space_free_;   // in_flight_ dropped below cap
  std::condition_variable all_merged_;   // in_flight_ reached zero
  std::deque<Task> queue_;
  std::map<uint64_t, MergeFn> ready_;    // encoded, awaiting ordered merge
  uint64_t next_seq_ = 0;                // next submission sequence number
  uint64_t next_merge_ = 0;              // next sequence allowed to merge
  size_t in_flight_ = 0;                 // admitted, not yet merged
  bool merging_ = false;                 // a worker is inside a merge
  bool stopping_ = false;
  bool finished_ = false;

  std::vector<double> worker_cpu_;
  uint64_t chunks_submitted_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace rlz

#endif  // RLZ_BUILD_BUILD_PIPELINE_H_
