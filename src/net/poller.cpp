#include "net/poller.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>

#include <algorithm>

namespace rlz {
namespace net {
namespace {

Status ErrnoStatus(const char* op) {
  return Status::IOError(std::string(op) + ": " + ::strerror(errno));
}

uint32_t ToEpoll(uint32_t events, bool edge_triggered) {
  uint32_t out = 0;
  if (events & kPollRead) out |= EPOLLIN;
  if (events & kPollWrite) out |= EPOLLOUT;
  if (edge_triggered) out |= EPOLLET;
  // EPOLLRDHUP makes a half-closed peer visible as readable-EOF without
  // waiting for a write to fail.
  return out | EPOLLRDHUP;
}

}  // namespace

Poller::Poller() : epoll_fd_(::epoll_create1(0)) {}

Poller::~Poller() = default;

Status Poller::Add(int fd, uint64_t tag, uint32_t events,
                   bool edge_triggered) {
  if (!valid()) return Status::Internal("poller: epoll_create1 failed");
  epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.events = ToEpoll(events, edge_triggered);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status Poller::Modify(int fd, uint64_t tag, uint32_t events,
                      bool edge_triggered) {
  if (!valid()) return Status::Internal("poller: epoll_create1 failed");
  epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.events = ToEpoll(events, edge_triggered);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status Poller::Remove(int fd) {
  if (!valid()) return Status::Internal("poller: epoll_create1 failed");
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return ErrnoStatus("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status Poller::Wait(std::vector<PollerEvent>* events, int timeout_ms) {
  events->clear();
  if (!valid()) return Status::Internal("poller: epoll_create1 failed");
  // Batch size follows the caller's reserve (see the header contract):
  // a loop that reserved for its connection count drains a fully-ready
  // server in one syscall instead of 64 at a time. The buffer only
  // grows — steady state reuses it allocation-free.
  const size_t want = std::max<size_t>(events->capacity(), 64);
  if (want > raw_capacity_) {
    raw_events_ = std::make_unique<epoll_event[]>(want);
    raw_capacity_ = want;
  }
  epoll_event* raw = raw_events_.get();
  int n;
  for (;;) {
    n = ::epoll_wait(epoll_fd_.get(), raw, static_cast<int>(raw_capacity_),
                     timeout_ms);
    if (n >= 0) break;
    if (errno != EINTR) return ErrnoStatus("epoll_wait");
  }
  events->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    PollerEvent ev;
    ev.tag = raw[i].data.u64;
    ev.readable = (raw[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    ev.writable = (raw[i].events & EPOLLOUT) != 0;
    ev.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events->push_back(ev);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace rlz
