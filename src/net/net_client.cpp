#include "net/net_client.h"

#include <utility>

namespace rlz {
namespace net {
namespace {

// Projects a non-OK wire code back onto the Status a direct DocService
// call would have returned.
Status FromWire(WireCode code, const std::string& message) {
  switch (code) {
    case WireCode::kOk: return Status::OK();
    case WireCode::kInvalidArgument: return Status::InvalidArgument(message);
    case WireCode::kNotFound: return Status::NotFound(message);
    case WireCode::kOutOfRange: return Status::OutOfRange(message);
    case WireCode::kCorruption: return Status::Corruption(message);
    case WireCode::kIOError: return Status::IOError(message);
    case WireCode::kUnimplemented: return Status::Unimplemented(message);
    case WireCode::kInternal: return Status::Internal(message);
    case WireCode::kUnavailable: return Status::Unavailable(message);
  }
  return Status::Internal(message);
}

}  // namespace

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    uint16_t port, const NetClientOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ScopedFd fd, ConnectLoopback(port));
  return std::unique_ptr<NetClient>(new NetClient(std::move(fd), options));
}

void NetClient::SendGet(uint64_t id) {
  EncodeGetRequest(id, options_.use_crc, &send_buf_);
}

void NetClient::SendMultiGet(const std::vector<uint64_t>& ids) {
  EncodeMultiGetRequest(ids.data(), ids.size(), options_.use_crc,
                        &send_buf_);
}

void NetClient::SendGetRange(uint64_t id, uint64_t offset, uint64_t length) {
  EncodeGetRangeRequest(id, offset, length, options_.use_crc, &send_buf_);
}

void NetClient::SendStat() { EncodeStatRequest(options_.use_crc, &send_buf_); }

void NetClient::SendRaw(std::string_view bytes) {
  send_buf_.append(bytes.data(), bytes.size());
}

Status NetClient::Flush() {
  if (send_buf_.empty()) return Status::OK();
  RLZ_RETURN_IF_ERROR(WriteAll(fd_.get(), send_buf_.data(), send_buf_.size()));
  send_buf_.clear();
  return Status::OK();
}

StatusOr<NetResponse> NetClient::Receive() {
  RLZ_RETURN_IF_ERROR(Flush());
  for (;;) {
    MessageType type;
    uint8_t flags;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    const ParseResult r =
        ParseFrame(recv_buf_, &type, &flags, &body, &consumed, &error);
    if (r == ParseResult::kError) {
      return Status::Corruption("malformed response frame: " + error);
    }
    if (r == ParseResult::kFrame) {
      NetResponse response;
      RLZ_RETURN_IF_ERROR(DecodeResponseBody(type, flags, body, &response));
      recv_buf_.erase(0, consumed);
      return response;
    }
    char buf[16384];
    size_t n = 0;
    switch (ReadSome(fd_.get(), buf, sizeof(buf), &n)) {
      case IoResult::kOk:
        recv_buf_.append(buf, n);
        break;
      case IoResult::kWouldBlock:
        // Blocking socket: only possible under a receive timeout, which
        // the client does not set; retry.
        break;
      case IoResult::kClosed:
        return Status::Unavailable("connection closed by server");
      case IoResult::kError:
        return Status::IOError("socket read failed");
    }
  }
}

StatusOr<std::string> NetClient::Get(uint64_t id) {
  SendGet(id);
  RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
  if (response.type != MessageType::kGet &&
      response.type != MessageType::kError) {
    return Status::Internal("out-of-order response type");
  }
  if (!response.ok()) return FromWire(response.code, response.payload);
  return std::move(response.payload);
}

StatusOr<std::string> NetClient::GetRange(uint64_t id, uint64_t offset,
                                          uint64_t length) {
  SendGetRange(id, offset, length);
  RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
  if (response.type != MessageType::kGetRange &&
      response.type != MessageType::kError) {
    return Status::Internal("out-of-order response type");
  }
  if (!response.ok()) return FromWire(response.code, response.payload);
  return std::move(response.payload);
}

StatusOr<std::vector<MultiGetElement>> NetClient::MultiGet(
    const std::vector<uint64_t>& ids) {
  SendMultiGet(ids);
  RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
  if (response.type != MessageType::kMultiGet) {
    if (response.type == MessageType::kError) {
      return FromWire(response.code, response.payload);
    }
    return Status::Internal("out-of-order response type");
  }
  if (!response.ok()) return FromWire(response.code, response.payload);
  return std::move(response.elements);
}

StatusOr<WireStats> NetClient::Stat() {
  SendStat();
  RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
  if (response.type != MessageType::kStat) {
    if (response.type == MessageType::kError) {
      return FromWire(response.code, response.payload);
    }
    return Status::Internal("out-of-order response type");
  }
  if (!response.ok()) return FromWire(response.code, response.payload);
  return response.stats;
}

}  // namespace net
}  // namespace rlz
