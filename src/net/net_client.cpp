#include "net/net_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace rlz {
namespace net {
namespace {

// Projects a non-OK wire code back onto the Status a direct DocService
// call would have returned.
Status FromWire(WireCode code, const std::string& message) {
  switch (code) {
    case WireCode::kOk: return Status::OK();
    case WireCode::kInvalidArgument: return Status::InvalidArgument(message);
    case WireCode::kNotFound: return Status::NotFound(message);
    case WireCode::kOutOfRange: return Status::OutOfRange(message);
    case WireCode::kCorruption: return Status::Corruption(message);
    case WireCode::kIOError: return Status::IOError(message);
    case WireCode::kUnimplemented: return Status::Unimplemented(message);
    case WireCode::kInternal: return Status::Internal(message);
    case WireCode::kUnavailable: return Status::Unavailable(message);
    case WireCode::kDeadlineExceeded: return Status::DeadlineExceeded(message);
  }
  return Status::Internal(message);
}

}  // namespace

uint32_t RetryBackoffMs(int attempt, uint32_t base_ms, uint32_t cap_ms,
                        uint32_t retry_after_ms, Rng* rng) {
  // Capped exponential: base << attempt, saturating at cap (shift guarded
  // so a large attempt count cannot overflow into a tiny backoff).
  uint64_t nominal = attempt >= 32 ? cap_ms
                                   : static_cast<uint64_t>(base_ms)
                                         << attempt;
  nominal = std::min<uint64_t>(nominal, cap_ms);
  if (nominal == 0) nominal = 1;
  // Jitter into [nominal/2, nominal] so shed clients desynchronize.
  const uint64_t half = nominal / 2;
  const uint64_t jittered = half + rng->Uniform(nominal - half + 1);
  // The server's hint is a floor: it knows the backlog better than the
  // attempt counter does.
  return static_cast<uint32_t>(
      std::max<uint64_t>(jittered, retry_after_ms));
}

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    uint16_t port, const NetClientOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ScopedFd fd, ConnectLoopback(port));
  if (options.deadline_ms != 0) {
    RLZ_RETURN_IF_ERROR(SetRecvTimeout(fd.get(), options.deadline_ms));
  }
  return std::unique_ptr<NetClient>(new NetClient(std::move(fd), options));
}

RequestOptions NetClient::EncodeOptions() const {
  RequestOptions opts;
  opts.crc = options_.use_crc;
  opts.priority = options_.priority;
  opts.deadline_ms = options_.deadline_ms;
  return opts;
}

bool NetClient::ShouldRetryShed(const NetResponse& response, int attempt) {
  if (response.code != WireCode::kUnavailable) return false;
  if (attempt >= options_.max_retries) return false;
  const uint32_t delay_ms = RetryBackoffMs(
      attempt, options_.retry_backoff_base_ms, options_.retry_backoff_cap_ms,
      response.retry_after_ms, &rng_);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  return true;
}

void NetClient::SendGet(uint64_t id) {
  EncodeGetRequest(id, EncodeOptions(), &send_buf_);
}

void NetClient::SendMultiGet(const std::vector<uint64_t>& ids) {
  EncodeMultiGetRequest(ids.data(), ids.size(), EncodeOptions(), &send_buf_);
}

void NetClient::SendGetRange(uint64_t id, uint64_t offset, uint64_t length) {
  EncodeGetRangeRequest(id, offset, length, EncodeOptions(), &send_buf_);
}

void NetClient::SendStat() { EncodeStatRequest(options_.use_crc, &send_buf_); }

void NetClient::SendRaw(std::string_view bytes) {
  send_buf_.append(bytes.data(), bytes.size());
}

Status NetClient::Flush() {
  if (send_buf_.empty()) return Status::OK();
  RLZ_RETURN_IF_ERROR(WriteAll(fd_.get(), send_buf_.data(), send_buf_.size()));
  send_buf_.clear();
  return Status::OK();
}

StatusOr<NetResponse> NetClient::Receive() {
  RLZ_RETURN_IF_ERROR(Flush());
  for (;;) {
    MessageType type;
    uint8_t flags;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    const ParseResult r =
        ParseFrame(recv_buf_, &type, &flags, &body, &consumed, &error);
    if (r == ParseResult::kError) {
      return Status::Corruption("malformed response frame: " + error);
    }
    if (r == ParseResult::kFrame) {
      NetResponse response;
      RLZ_RETURN_IF_ERROR(DecodeResponseBody(type, flags, body, &response));
      recv_buf_.erase(0, consumed);
      return response;
    }
    char buf[16384];
    size_t n = 0;
    switch (ReadSome(fd_.get(), buf, sizeof(buf), &n)) {
      case IoResult::kOk:
        recv_buf_.append(buf, n);
        break;
      case IoResult::kWouldBlock:
        // Blocking socket: kWouldBlock means the SO_RCVTIMEO receive
        // timeout fired (set iff a deadline is configured) — the server
        // is hung or the response is past its deadline.
        if (options_.deadline_ms != 0) {
          return Status::DeadlineExceeded(
              "no response within the configured deadline");
        }
        break;
      case IoResult::kClosed:
        return Status::Unavailable("connection closed by server");
      case IoResult::kError:
        return Status::IOError("socket read failed");
    }
  }
}

StatusOr<std::string> NetClient::Get(uint64_t id) {
  for (int attempt = 0;; ++attempt) {
    SendGet(id);
    RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
    if (response.type != MessageType::kGet &&
        response.type != MessageType::kError) {
      return Status::Internal("out-of-order response type");
    }
    if (response.ok()) return std::move(response.payload);
    if (ShouldRetryShed(response, attempt)) continue;
    return FromWire(response.code, response.payload);
  }
}

StatusOr<std::string> NetClient::GetRange(uint64_t id, uint64_t offset,
                                          uint64_t length) {
  for (int attempt = 0;; ++attempt) {
    SendGetRange(id, offset, length);
    RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
    if (response.type != MessageType::kGetRange &&
        response.type != MessageType::kError) {
      return Status::Internal("out-of-order response type");
    }
    if (response.ok()) return std::move(response.payload);
    if (ShouldRetryShed(response, attempt)) continue;
    return FromWire(response.code, response.payload);
  }
}

StatusOr<std::vector<MultiGetElement>> NetClient::MultiGet(
    const std::vector<uint64_t>& ids) {
  for (int attempt = 0;; ++attempt) {
    SendMultiGet(ids);
    RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
    if (response.type != MessageType::kMultiGet &&
        response.type != MessageType::kError) {
      return Status::Internal("out-of-order response type");
    }
    if (response.type == MessageType::kMultiGet && response.ok()) {
      return std::move(response.elements);
    }
    if (ShouldRetryShed(response, attempt)) continue;
    return FromWire(response.code, response.payload);
  }
}

StatusOr<WireStats> NetClient::Stat() {
  SendStat();
  RLZ_ASSIGN_OR_RETURN(NetResponse response, Receive());
  if (response.type != MessageType::kStat) {
    if (response.type == MessageType::kError) {
      return FromWire(response.code, response.payload);
    }
    return Status::Internal("out-of-order response type");
  }
  if (!response.ok()) return FromWire(response.code, response.payload);
  return response.stats;
}

}  // namespace net
}  // namespace rlz
