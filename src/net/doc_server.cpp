#include "net/doc_server.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "serve/doc_service.h"
#include "util/logging.h"

namespace rlz {
namespace net {
namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

}  // namespace

DocServerOptions DocServerOptions::Validated() const {
  DocServerOptions v = *this;
  if (v.max_connections < 1) v.max_connections = 1;
  if (v.max_outbound_bytes < (4u << 10)) v.max_outbound_bytes = 4u << 10;
  if (v.max_pipelined_requests < 1) v.max_pipelined_requests = 1;
  if (v.read_chunk_bytes < (4u << 10)) v.read_chunk_bytes = 4u << 10;
  if (v.drain_timeout_ms < 0) v.drain_timeout_ms = 0;
  return v;
}

// Loop-thread-owned per-connection state: the read/write state machine
// of DESIGN.md §13. No lock guards any field — only the loop touches it.
struct DocServer::Connection {
  ScopedFd fd;
  uint64_t id = 0;
  std::string in;       // unparsed inbound bytes
  size_t in_off = 0;    // parsed prefix of `in` (compacted lazily)
  std::string out;      // serialized, not yet written response bytes
  size_t out_off = 0;   // written prefix of `out` (compacted lazily)
  size_t inflight_ops = 0;  // parsed requests not yet answered
  uint32_t interest = kPollRead;  // current epoll interest set
  bool bp_paused = false;   // reads paused for backpressure (hysteresis)
  bool poisoned = false;    // unparseable input: answer error, then close
  bool read_eof = false;    // peer half-closed: flush what's owed, close
  NetRequest scratch;       // reused request decoder state

  size_t unflushed() const { return out.size() - out_off; }
};

DocServer::DocServer(DocService* service, const DocServerOptions& options)
    : service_(service), options_(options.Validated()) {
  RLZ_CHECK(service != nullptr);
}

DocServer::~DocServer() { Shutdown(); }

Status DocServer::Start() {
  if (started_.load()) return Status::Internal("server already started");
  if (!poller_.valid()) {
    return Status::Internal("doc server: epoll unavailable");
  }
  RLZ_ASSIGN_OR_RETURN(listen_fd_, ListenLoopback(options_.port, &port_));
  wake_fd_.Reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.ok()) return Status::IOError("eventfd failed");
  RLZ_RETURN_IF_ERROR(poller_.Add(listen_fd_.get(), kListenTag, kPollRead));
  RLZ_RETURN_IF_ERROR(poller_.Add(wake_fd_.get(), kWakeTag, kPollRead));
  started_.store(true);
  loop_thread_ = std::thread(&DocServer::LoopThread, this);
  batcher_thread_ = std::thread(&DocServer::BatcherThread, this);
  return Status::OK();
}

void DocServer::Shutdown() {
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_ || !started_.load()) return;
  shutdown_requested_.store(true, std::memory_order_release);
  WakeLoop();
  loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    batcher_stop_ = true;
    handoff_cv_.notify_all();
  }
  batcher_thread_.join();
  joined_ = true;
}

NetServerStats DocServer::stats() const {
  NetServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.coalesced_requests =
      coalesced_requests_.load(std::memory_order_relaxed);
  s.reads_paused = reads_paused_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

void DocServer::WakeLoop() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the result is advisory.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

WireStats DocServer::BuildWireStats() const {
  const ServiceStats s = service_->Stats();
  const NetServerStats n = stats();
  WireStats w;
  w.requests = s.requests;
  w.failures = s.failures;
  w.steals = s.steals;
  w.queued = s.queued;
  w.cache_hits = s.cache.hits;
  w.cache_misses = s.cache.misses;
  w.cache_evictions = s.cache.evictions;
  w.cache_erased = s.cache.erased;
  w.cache_entries = s.cache.entries;
  w.cache_bytes = s.cache.bytes;
  w.disk_bytes = s.disk_bytes;
  w.disk_seeks = s.disk_seeks;
  w.archive_docs = service_->archive().num_docs();
  w.disk_seconds = s.disk_seconds;
  w.cpu_seconds = s.cpu_seconds;
  w.critical_path_seconds = s.critical_path_seconds;
  w.latency_p50_us = s.latency_p50_us;
  w.latency_p99_us = s.latency_p99_us;
  w.latency_p999_us = s.latency_p999_us;
  w.num_threads = static_cast<uint32_t>(s.num_threads);
  w.net_connections_accepted = n.connections_accepted;
  w.net_connections_active = n.connections_active;
  w.net_frames_received = n.frames_received;
  w.net_frames_sent = n.frames_sent;
  w.net_bytes_received = n.bytes_received;
  w.net_bytes_sent = n.bytes_sent;
  w.net_batches = n.batches;
  w.net_coalesced_requests = n.coalesced_requests;
  w.net_reads_paused = n.reads_paused;
  w.net_protocol_errors = n.protocol_errors;
  return w;
}

// ---------------------------------------------------------------------
// Loop thread: accept / read / parse / write / close.

void DocServer::LoopThread() {
  std::vector<PollerEvent> events;
  std::chrono::steady_clock::time_point deadline;
  for (;;) {
    // Level-triggered wait: -1 while serving (the eventfd wakes us);
    // a short tick while draining so the deadline is honored even with
    // a stalled client.
    if (!poller_.Wait(&events, draining_ ? 20 : -1).ok()) break;
    for (const PollerEvent& ev : events) {
      if (ev.tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (ev.tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Connections may be closed by earlier events of this round; a
      // stale tag just misses.
      auto it = connections_.find(ev.tag);
      if (it == connections_.end()) continue;
      if (ev.error) {
        CloseConnection(ev.tag);
        continue;
      }
      if (ev.readable) HandleReadable(it->second.get());
      it = connections_.find(ev.tag);
      if (it != connections_.end() && ev.writable) {
        HandleWritable(it->second.get());
      }
    }
    PumpCompletions();
    if (!draining_ && shutdown_requested_.load(std::memory_order_acquire)) {
      // Enter the drain: stop accepting, stop reading, keep answering.
      draining_ = true;
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(options_.drain_timeout_ms);
      poller_.Remove(listen_fd_.get());
      listen_fd_.Reset();
      std::vector<uint64_t> idle;
      for (auto& entry : connections_) {
        if (ReadyToClose(*entry.second)) {
          idle.push_back(entry.first);
        } else {
          UpdateInterest(entry.second.get());
        }
      }
      for (uint64_t id : idle) CloseConnection(id);
    }
    if (draining_ &&
        ((outstanding_ops_ == 0 && connections_.empty()) ||
         std::chrono::steady_clock::now() >= deadline)) {
      break;
    }
  }
  // Deadline (or poller failure) force-close: anything still here had
  // its chance to drain.
  for (auto& entry : connections_) {
    poller_.Remove(entry.second->fd.get());
  }
  connections_.clear();
  connections_active_.store(0, std::memory_order_relaxed);
}

void DocServer::HandleAccept() {
  for (;;) {
    StatusOr<ScopedFd> accepted = AcceptConnection(listen_fd_.get());
    if (!accepted.ok()) return;  // listener error: drop this round
    ScopedFd fd = std::move(accepted).value();
    if (!fd.ok()) return;  // nothing pending
    if (draining_ ||
        connections_.size() >=
            static_cast<size_t>(options_.max_connections)) {
      continue;  // ScopedFd closes: refused by immediate close
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = std::move(fd);
    if (!poller_.Add(conn->fd.get(), conn->id, kPollRead).ok()) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void DocServer::HandleReadable(Connection* conn) {
  if (conn->poisoned || conn->read_eof || conn->bp_paused || draining_) {
    return;
  }
  char buf[16384];
  size_t budget = options_.read_chunk_bytes;
  bool fatal = false;
  while (budget > 0) {
    const size_t ask = budget < sizeof(buf) ? budget : sizeof(buf);
    size_t n = 0;
    const IoResult r = ReadSome(conn->fd.get(), buf, ask, &n);
    if (r == IoResult::kOk) {
      conn->in.append(buf, n);
      bytes_received_.fetch_add(n, std::memory_order_relaxed);
      budget -= n;
      if (n < ask) break;  // socket likely drained
      continue;
    }
    if (r == IoResult::kWouldBlock) break;
    if (r == IoResult::kClosed) {
      conn->read_eof = true;
      break;
    }
    fatal = true;  // kError
    break;
  }
  if (fatal) {
    CloseConnection(conn->id);
    return;
  }
  std::vector<PendingOp> ops;
  ParseFrames(conn, &ops);
  if (!ops.empty()) {
    conn->inflight_ops += ops.size();
    outstanding_ops_ += ops.size();
    {
      std::lock_guard<std::mutex> lock(handoff_mu_);
      for (PendingOp& op : ops) pending_.push_back(std::move(op));
      handoff_cv_.notify_one();
    }
  }
  if (ReadyToClose(*conn)) {
    CloseConnection(conn->id);
    return;
  }
  UpdateInterest(conn);
}

void DocServer::ParseFrames(Connection* conn, std::vector<PendingOp>* ops) {
  while (!conn->poisoned) {
    const std::string_view buf =
        std::string_view(conn->in).substr(conn->in_off);
    MessageType type;
    uint8_t flags;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    const ParseResult r =
        ParseFrame(buf, &type, &flags, &body, &consumed, &error);
    if (r == ParseResult::kNeedMore) break;
    PendingOp op;
    op.conn_id = conn->id;
    if (r == ParseResult::kError) {
      // Poison: one in-order error response, then close after flush.
      // The rest of the inbound buffer is untrustworthy — discard it.
      conn->poisoned = true;
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->in.clear();
      conn->in_off = 0;
      op.type = MessageType::kError;
      op.error = error;
      ops->push_back(std::move(op));
      return;
    }
    conn->in_off += consumed;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    const Status decoded =
        DecodeRequestBody(type, flags, body, &conn->scratch);
    if (!decoded.ok()) {
      conn->poisoned = true;
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->in.clear();
      conn->in_off = 0;
      op.type = MessageType::kError;
      op.error = decoded.message();
      ops->push_back(std::move(op));
      return;
    }
    op.type = conn->scratch.type;
    op.flags = conn->scratch.flags;
    op.id = conn->scratch.id;
    op.offset = conn->scratch.offset;
    op.length = conn->scratch.length;
    op.ids = std::move(conn->scratch.ids);
    ops->push_back(std::move(op));
  }
  // Compact the parsed prefix so the buffer cannot grow without bound
  // across partially-received frames.
  if (conn->in_off > 0) {
    conn->in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
}

void DocServer::HandleWritable(Connection* conn) {
  while (conn->unflushed() > 0) {
    size_t n = 0;
    const IoResult r = WriteSome(conn->fd.get(), conn->out.data() + conn->out_off,
                                 conn->unflushed(), &n);
    if (r == IoResult::kOk) {
      conn->out_off += n;
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      continue;
    }
    if (r == IoResult::kWouldBlock) break;
    CloseConnection(conn->id);  // kClosed / kError: peer is gone
    return;
  }
  if (conn->unflushed() == 0) {
    conn->out.clear();
    conn->out_off = 0;
  } else if (conn->out_off > (1u << 20)) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  if (ReadyToClose(*conn)) {
    CloseConnection(conn->id);
    return;
  }
  UpdateInterest(conn);
}

void DocServer::PumpCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    if (completions_.empty()) return;
    done.swap(completions_);
  }
  for (Completion& c : done) {
    RLZ_CHECK(outstanding_ops_ > 0);
    --outstanding_ops_;
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) continue;  // closed mid-flight: drop
    Connection* conn = it->second.get();
    RLZ_CHECK(conn->inflight_ops > 0);
    --conn->inflight_ops;
    conn->out.append(c.frame);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  // Opportunistic flush, once per touched connection (a second visit
  // finds the frame already flushed or the connection gone).
  for (const Completion& c : done) {
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) continue;
    if (it->second->unflushed() > 0 || ReadyToClose(*it->second)) {
      HandleWritable(it->second.get());
    } else {
      UpdateInterest(it->second.get());
    }
  }
}

void DocServer::UpdateInterest(Connection* conn) {
  // Backpressure hysteresis: pause at the bound, resume below half —
  // so a connection hovering at the cap does not thrash epoll_ctl.
  const size_t unflushed = conn->unflushed();
  const bool over = unflushed >= options_.max_outbound_bytes ||
                    conn->inflight_ops >= options_.max_pipelined_requests;
  const bool under = unflushed < options_.max_outbound_bytes / 2 + 1 &&
                     conn->inflight_ops < options_.max_pipelined_requests / 2 + 1;
  if (!conn->bp_paused && over) {
    conn->bp_paused = true;
    reads_paused_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn->bp_paused && under) {
    conn->bp_paused = false;
  }
  uint32_t interest = kPollNone;
  if (!conn->poisoned && !conn->read_eof && !conn->bp_paused && !draining_) {
    interest |= kPollRead;
  }
  if (unflushed > 0) interest |= kPollWrite;
  if (interest == conn->interest) return;
  if (poller_.Modify(conn->fd.get(), conn->id, interest).ok()) {
    conn->interest = interest;
  }
}

bool DocServer::ReadyToClose(const Connection& conn) const {
  if (conn.inflight_ops > 0 || conn.unflushed() > 0) return false;
  return conn.poisoned || conn.read_eof || draining_;
}

void DocServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  poller_.Remove(it->second->fd.get());
  connections_.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Batcher thread: coalesce parsed requests into DocService submissions,
// serialize the responses in request order.

void DocServer::BatcherThread() {
  ServeBatch batch;               // reused: steady-state allocation-free
  std::vector<PendingOp> ops;     // the coalescing window
  std::vector<BatchItem> items;   // flattened doc requests
  std::vector<MultiGetOut> mgout; // per-MultiGet response staging
  std::vector<Completion> done;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(handoff_mu_);
      handoff_cv_.wait(lock,
                       [&] { return !pending_.empty() || batcher_stop_; });
      if (pending_.empty() && batcher_stop_) return;
      // Everything parsed since the last round is one coalescing
      // window: requests that arrived across connections while the
      // previous batch decoded ride the next submission together.
      ops.clear();
      ops.swap(pending_);
    }
    items.clear();
    for (const PendingOp& op : ops) {
      switch (op.type) {
        case MessageType::kGet:
          items.push_back({op.id, 0, 0, false});
          break;
        case MessageType::kGetRange:
          items.push_back({op.id, op.offset, op.length, true});
          break;
        case MessageType::kMultiGet:
          for (uint64_t id : op.ids) items.push_back({id, 0, 0, false});
          break;
        default:  // kStat / kError: no decode work
          break;
      }
    }
    if (!items.empty()) {
      service_->SubmitBatch(items.data(), items.size(), &batch);
      batch.Wait();
      batches_.fetch_add(1, std::memory_order_relaxed);
      coalesced_requests_.fetch_add(items.size(),
                                    std::memory_order_relaxed);
    }
    done.clear();
    size_t cursor = 0;
    for (const PendingOp& op : ops) {
      Completion c;
      c.conn_id = op.conn_id;
      const bool crc = (op.flags & kFlagCrc) != 0;
      switch (op.type) {
        case MessageType::kGet:
        case MessageType::kGetRange: {
          const GetResult& r = batch.results()[cursor++];
          if (r.ok()) {
            EncodeDocResponse(op.type, WireCode::kOk, *r.text, crc,
                              &c.frame);
          } else {
            EncodeDocResponse(op.type, ToWireCode(r.status),
                              r.status.message(), crc, &c.frame);
          }
          break;
        }
        case MessageType::kMultiGet: {
          mgout.clear();
          for (size_t i = 0; i < op.ids.size(); ++i) {
            const GetResult& r = batch.results()[cursor++];
            MultiGetOut o;
            if (r.ok()) {
              o.bytes = *r.text;
            } else {
              o.code = ToWireCode(r.status);
              o.bytes = r.status.message();
            }
            mgout.push_back(o);
          }
          EncodeMultiGetResponse(mgout.data(), mgout.size(), crc, &c.frame);
          break;
        }
        case MessageType::kStat:
          EncodeStatResponse(BuildWireStats(), crc, &c.frame);
          break;
        case MessageType::kError:
          EncodeDocResponse(MessageType::kError, WireCode::kInvalidArgument,
                            op.error, /*crc=*/false, &c.frame);
          break;
      }
      done.push_back(std::move(c));
    }
    {
      std::lock_guard<std::mutex> lock(handoff_mu_);
      for (Completion& c : done) completions_.push_back(std::move(c));
    }
    WakeLoop();
  }
}

}  // namespace net
}  // namespace rlz
