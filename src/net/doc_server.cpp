#include "net/doc_server.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "serve/doc_service.h"
#include "util/logging.h"

namespace rlz {
namespace net {
namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

// Steady-clock stamps for the timeout sweep (ms) and request deadlines
// (ns, the clock ServeRequest::deadline_ns is compared against).
uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DocServerOptions DocServerOptions::Validated() const {
  DocServerOptions v = *this;
  if (v.max_connections < 1) v.max_connections = 1;
  if (v.max_outbound_bytes < (4u << 10)) v.max_outbound_bytes = 4u << 10;
  if (v.max_pipelined_requests < 1) v.max_pipelined_requests = 1;
  if (v.read_chunk_bytes < (4u << 10)) v.read_chunk_bytes = 4u << 10;
  if (v.drain_timeout_ms < 0) v.drain_timeout_ms = 0;
  if (v.idle_timeout_ms < 0) v.idle_timeout_ms = 0;
  if (v.header_timeout_ms < 0) v.header_timeout_ms = 0;
  if (v.write_stall_timeout_ms < 0) v.write_stall_timeout_ms = 0;
  if (v.max_best_effort_per_conn < 1) v.max_best_effort_per_conn = 1;
  return v;
}

// Loop-thread-owned per-connection state: the read/write state machine
// of DESIGN.md §13. No lock guards any field — only the loop touches it.
struct DocServer::Connection {
  ScopedFd fd;
  uint64_t id = 0;
  std::string in;       // unparsed inbound bytes
  size_t in_off = 0;    // parsed prefix of `in` (compacted lazily)
  std::string out;      // serialized, not yet written response bytes
  size_t out_off = 0;   // written prefix of `out` (compacted lazily)
  size_t inflight_ops = 0;  // parsed requests not yet answered
  size_t best_effort_inflight = 0;  // of those, best-effort (budgeted)
  uint32_t interest = kPollRead;  // current epoll interest set
  bool bp_paused = false;   // reads paused for backpressure (hysteresis)
  bool poisoned = false;    // unparseable input: answer error, then close
  bool read_eof = false;    // peer half-closed: flush what's owed, close
  // Timeout-sweep clocks (DESIGN.md §14), all NowMs() stamps:
  uint64_t last_activity_ms = 0;   // last byte in or out
  uint64_t partial_since_ms = 0;   // partial frame held since; 0 = none
  uint64_t write_progress_ms = 0;  // outbound last advanced; 0 = idle
  NetRequest scratch;       // reused request decoder state

  size_t unflushed() const { return out.size() - out_off; }
};

DocServer::DocServer(DocService* service, const DocServerOptions& options)
    : service_(service), options_(options.Validated()) {
  RLZ_CHECK(service != nullptr);
}

DocServer::~DocServer() { Shutdown(); }

Status DocServer::Start() {
  if (started_.load()) return Status::Internal("server already started");
  if (!poller_.valid()) {
    return Status::Internal("doc server: epoll unavailable");
  }
  RLZ_ASSIGN_OR_RETURN(listen_fd_, ListenLoopback(options_.port, &port_));
  wake_fd_.Reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.ok()) return Status::IOError("eventfd failed");
  RLZ_RETURN_IF_ERROR(poller_.Add(listen_fd_.get(), kListenTag, kPollRead));
  RLZ_RETURN_IF_ERROR(poller_.Add(wake_fd_.get(), kWakeTag, kPollRead));
  started_.store(true);
  loop_thread_ = std::thread(&DocServer::LoopThread, this);
  batcher_thread_ = std::thread(&DocServer::BatcherThread, this);
  return Status::OK();
}

void DocServer::Shutdown() {
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_ || !started_.load()) return;
  shutdown_requested_.store(true, std::memory_order_release);
  WakeLoop();
  loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    batcher_stop_ = true;
    handoff_cv_.notify_all();
  }
  batcher_thread_.join();
  joined_ = true;
}

NetServerStats DocServer::stats() const {
  NetServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.coalesced_requests =
      coalesced_requests_.load(std::memory_order_relaxed);
  s.reads_paused = reads_paused_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.header_timeout_closed =
      header_timeout_closed_.load(std::memory_order_relaxed);
  s.write_stall_closed = write_stall_closed_.load(std::memory_order_relaxed);
  s.high_priority_frames =
      high_priority_frames_.load(std::memory_order_relaxed);
  s.best_effort_frames = best_effort_frames_.load(std::memory_order_relaxed);
  return s;
}

void DocServer::WakeLoop() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the result is advisory.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

WireStats DocServer::BuildWireStats() const {
  const ServiceStats s = service_->Stats();
  const NetServerStats n = stats();
  WireStats w;
  w.requests = s.requests;
  w.failures = s.failures;
  w.steals = s.steals;
  w.queued = s.queued;
  w.cache_hits = s.cache.hits;
  w.cache_misses = s.cache.misses;
  w.cache_evictions = s.cache.evictions;
  w.cache_erased = s.cache.erased;
  w.cache_entries = s.cache.entries;
  w.cache_bytes = s.cache.bytes;
  w.disk_bytes = s.disk_bytes;
  w.disk_seeks = s.disk_seeks;
  w.archive_docs = service_->archive().num_docs();
  w.disk_seconds = s.disk_seconds;
  w.cpu_seconds = s.cpu_seconds;
  w.critical_path_seconds = s.critical_path_seconds;
  w.latency_p50_us = s.latency_p50_us;
  w.latency_p99_us = s.latency_p99_us;
  w.latency_p999_us = s.latency_p999_us;
  w.num_threads = static_cast<uint32_t>(s.num_threads);
  w.net_connections_accepted = n.connections_accepted;
  w.net_connections_active = n.connections_active;
  w.net_frames_received = n.frames_received;
  w.net_frames_sent = n.frames_sent;
  w.net_bytes_received = n.bytes_received;
  w.net_bytes_sent = n.bytes_sent;
  w.net_batches = n.batches;
  w.net_coalesced_requests = n.coalesced_requests;
  w.net_reads_paused = n.reads_paused;
  w.net_protocol_errors = n.protocol_errors;
  w.shed = s.shed;
  w.expired = s.expired;
  w.net_sheds = n.sheds;
  w.net_idle_closed = n.idle_closed;
  w.net_header_timeout_closed = n.header_timeout_closed;
  w.net_write_stall_closed = n.write_stall_closed;
  w.net_high_priority_frames = n.high_priority_frames;
  w.net_best_effort_frames = n.best_effort_frames;
  return w;
}

// ---------------------------------------------------------------------
// Loop thread: accept / read / parse / write / close.

void DocServer::LoopThread() {
  std::vector<PollerEvent> events;
  std::chrono::steady_clock::time_point deadline;
  for (;;) {
    // Level-triggered wait: while serving, block until the eventfd (or a
    // socket) wakes us, bounded by the timeout-sweep tick; a short tick
    // while draining so the deadline is honored even with a stalled
    // client. The reserve sizes Poller::Wait's report batch (see its
    // contract) so a fully-ready server drains in one syscall.
    events.reserve(connections_.size() + 2);
    if (!poller_.Wait(&events, draining_ ? 20 : TimeoutTickMs()).ok()) break;
    for (const PollerEvent& ev : events) {
      if (ev.tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (ev.tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Connections may be closed by earlier events of this round; a
      // stale tag just misses.
      auto it = connections_.find(ev.tag);
      if (it == connections_.end()) continue;
      if (ev.error) {
        CloseConnection(ev.tag);
        continue;
      }
      if (ev.readable) HandleReadable(it->second.get());
      it = connections_.find(ev.tag);
      if (it != connections_.end() && ev.writable) {
        HandleWritable(it->second.get());
      }
    }
    PumpCompletions();
    if (!draining_) SweepTimeouts();
    if (!draining_ && shutdown_requested_.load(std::memory_order_acquire)) {
      // Enter the drain: stop accepting, stop reading, keep answering.
      draining_ = true;
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(options_.drain_timeout_ms);
      poller_.Remove(listen_fd_.get());
      listen_fd_.Reset();
      std::vector<uint64_t> idle;
      for (auto& entry : connections_) {
        if (ReadyToClose(*entry.second)) {
          idle.push_back(entry.first);
        } else {
          UpdateInterest(entry.second.get());
        }
      }
      for (uint64_t id : idle) CloseConnection(id);
    }
    if (draining_ &&
        ((outstanding_ops_ == 0 && connections_.empty()) ||
         std::chrono::steady_clock::now() >= deadline)) {
      break;
    }
  }
  // Deadline (or poller failure) force-close: anything still here had
  // its chance to drain.
  for (auto& entry : connections_) {
    poller_.Remove(entry.second->fd.get());
  }
  connections_.clear();
  connections_active_.store(0, std::memory_order_relaxed);
}

void DocServer::HandleAccept() {
  for (;;) {
    StatusOr<ScopedFd> accepted = AcceptConnection(listen_fd_.get());
    if (!accepted.ok()) return;  // listener error: drop this round
    ScopedFd fd = std::move(accepted).value();
    if (!fd.ok()) return;  // nothing pending
    if (draining_ ||
        connections_.size() >=
            static_cast<size_t>(options_.max_connections)) {
      continue;  // ScopedFd closes: refused by immediate close
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = std::move(fd);
    conn->last_activity_ms = NowMs();
    if (!poller_.Add(conn->fd.get(), conn->id, kPollRead).ok()) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void DocServer::HandleReadable(Connection* conn) {
  if (conn->poisoned || conn->read_eof || conn->bp_paused || draining_) {
    return;
  }
  char buf[16384];
  size_t budget = options_.read_chunk_bytes;
  bool fatal = false;
  bool progress = false;
  while (budget > 0) {
    const size_t ask = budget < sizeof(buf) ? budget : sizeof(buf);
    size_t n = 0;
    const IoResult r = ReadSome(conn->fd.get(), buf, ask, &n);
    if (r == IoResult::kOk) {
      conn->in.append(buf, n);
      bytes_received_.fetch_add(n, std::memory_order_relaxed);
      budget -= n;
      progress = true;
      if (n < ask) break;  // socket likely drained
      continue;
    }
    if (r == IoResult::kWouldBlock) break;
    if (r == IoResult::kClosed) {
      conn->read_eof = true;
      break;
    }
    fatal = true;  // kError
    break;
  }
  if (fatal) {
    CloseConnection(conn->id);
    return;
  }
  if (progress) conn->last_activity_ms = NowMs();
  std::vector<PendingOp> ops;
  ParseFrames(conn, &ops);
  // Slow-loris clock: arm while a partial frame sits in the buffer,
  // disarm only when a complete frame clears it — trickled bytes reset
  // the idle clock but never this one.
  if (conn->in.size() == conn->in_off) {
    conn->partial_since_ms = 0;
  } else if (conn->partial_since_ms == 0) {
    conn->partial_since_ms = NowMs();
  }
  if (!ops.empty()) {
    conn->inflight_ops += ops.size();
    outstanding_ops_ += ops.size();
    {
      std::lock_guard<std::mutex> lock(handoff_mu_);
      for (PendingOp& op : ops) pending_.push_back(std::move(op));
      handoff_cv_.notify_one();
    }
  }
  if (ReadyToClose(*conn)) {
    CloseConnection(conn->id);
    return;
  }
  UpdateInterest(conn);
}

void DocServer::ParseFrames(Connection* conn, std::vector<PendingOp>* ops) {
  while (!conn->poisoned) {
    const std::string_view buf =
        std::string_view(conn->in).substr(conn->in_off);
    MessageType type;
    uint8_t flags;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    const ParseResult r =
        ParseFrame(buf, &type, &flags, &body, &consumed, &error);
    if (r == ParseResult::kNeedMore) break;
    PendingOp op;
    op.conn_id = conn->id;
    if (r == ParseResult::kError) {
      // Poison: one in-order error response, then close after flush.
      // The rest of the inbound buffer is untrustworthy — discard it.
      conn->poisoned = true;
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->in.clear();
      conn->in_off = 0;
      op.type = MessageType::kError;
      op.error = error;
      ops->push_back(std::move(op));
      return;
    }
    conn->in_off += consumed;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    const Status decoded =
        DecodeRequestBody(type, flags, body, &conn->scratch);
    if (!decoded.ok()) {
      conn->poisoned = true;
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->in.clear();
      conn->in_off = 0;
      op.type = MessageType::kError;
      op.error = decoded.message();
      ops->push_back(std::move(op));
      return;
    }
    op.type = conn->scratch.type;
    op.flags = conn->scratch.flags;
    op.id = conn->scratch.id;
    op.offset = conn->scratch.offset;
    op.length = conn->scratch.length;
    op.priority = conn->scratch.priority;
    if (conn->scratch.deadline_ms != 0) {
      op.deadline_ns = NowNs() + static_cast<uint64_t>(
                                     conn->scratch.deadline_ms) *
                                     1'000'000;
    }
    if (op.priority == RequestPriority::kHigh) {
      high_priority_frames_.fetch_add(1, std::memory_order_relaxed);
    } else if (op.priority == RequestPriority::kBestEffort) {
      best_effort_frames_.fetch_add(1, std::memory_order_relaxed);
      // Per-connection best-effort budget: over-budget doc requests are
      // shed right here, before any decode work — the op still flows
      // through the batcher so its kUnavailable answer stays in
      // per-connection request order.
      if (op.type != MessageType::kStat) {
        if (conn->best_effort_inflight >= options_.max_best_effort_per_conn) {
          op.reject = WireCode::kUnavailable;
          op.error = "overloaded: best-effort budget exhausted";
          sheds_.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++conn->best_effort_inflight;
        }
      }
    }
    op.ids = std::move(conn->scratch.ids);
    ops->push_back(std::move(op));
  }
  // Compact the parsed prefix so the buffer cannot grow without bound
  // across partially-received frames.
  if (conn->in_off > 0) {
    conn->in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
}

void DocServer::HandleWritable(Connection* conn) {
  while (conn->unflushed() > 0) {
    size_t n = 0;
    const IoResult r = WriteSome(conn->fd.get(), conn->out.data() + conn->out_off,
                                 conn->unflushed(), &n);
    if (r == IoResult::kOk) {
      conn->out_off += n;
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      const uint64_t now = NowMs();
      conn->last_activity_ms = now;
      conn->write_progress_ms = now;
      continue;
    }
    if (r == IoResult::kWouldBlock) break;
    CloseConnection(conn->id);  // kClosed / kError: peer is gone
    return;
  }
  if (conn->unflushed() == 0) {
    conn->out.clear();
    conn->out_off = 0;
    conn->write_progress_ms = 0;  // nothing owed: stall clock disarmed
  } else if (conn->out_off > (1u << 20)) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  if (ReadyToClose(*conn)) {
    CloseConnection(conn->id);
    return;
  }
  UpdateInterest(conn);
}

void DocServer::PumpCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    if (completions_.empty()) return;
    done.swap(completions_);
  }
  for (Completion& c : done) {
    RLZ_CHECK(outstanding_ops_ > 0);
    --outstanding_ops_;
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) continue;  // closed mid-flight: drop
    Connection* conn = it->second.get();
    RLZ_CHECK(conn->inflight_ops > 0);
    --conn->inflight_ops;
    if (c.best_effort && conn->best_effort_inflight > 0) {
      --conn->best_effort_inflight;
    }
    // Arm the write-stall clock when this frame starts a fresh outbound
    // buffer (a peer that never drains it is reaped by the sweep).
    if (conn->unflushed() == 0) conn->write_progress_ms = NowMs();
    conn->out.append(c.frame);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  // Opportunistic flush, once per touched connection (a second visit
  // finds the frame already flushed or the connection gone).
  for (const Completion& c : done) {
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) continue;
    if (it->second->unflushed() > 0 || ReadyToClose(*it->second)) {
      HandleWritable(it->second.get());
    } else {
      UpdateInterest(it->second.get());
    }
  }
}

void DocServer::UpdateInterest(Connection* conn) {
  // Backpressure hysteresis: pause at the bound, resume below half —
  // so a connection hovering at the cap does not thrash epoll_ctl.
  const size_t unflushed = conn->unflushed();
  const bool over = unflushed >= options_.max_outbound_bytes ||
                    conn->inflight_ops >= options_.max_pipelined_requests;
  const bool under = unflushed < options_.max_outbound_bytes / 2 + 1 &&
                     conn->inflight_ops < options_.max_pipelined_requests / 2 + 1;
  if (!conn->bp_paused && over) {
    conn->bp_paused = true;
    reads_paused_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn->bp_paused && under) {
    conn->bp_paused = false;
  }
  uint32_t interest = kPollNone;
  if (!conn->poisoned && !conn->read_eof && !conn->bp_paused && !draining_) {
    interest |= kPollRead;
  }
  if (unflushed > 0) interest |= kPollWrite;
  if (interest == conn->interest) return;
  if (poller_.Modify(conn->fd.get(), conn->id, interest).ok()) {
    conn->interest = interest;
  }
}

bool DocServer::ReadyToClose(const Connection& conn) const {
  if (conn.inflight_ops > 0 || conn.unflushed() > 0) return false;
  return conn.poisoned || conn.read_eof || draining_;
}

void DocServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  poller_.Remove(it->second->fd.get());
  connections_.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

int DocServer::TimeoutTickMs() const {
  int min_armed = 0;
  const auto consider = [&min_armed](int t) {
    if (t > 0 && (min_armed == 0 || t < min_armed)) min_armed = t;
  };
  consider(options_.idle_timeout_ms);
  consider(options_.header_timeout_ms);
  consider(options_.write_stall_timeout_ms);
  if (min_armed == 0) return -1;  // nothing armed: block indefinitely
  // A quarter of the smallest armed timeout keeps sweep lag under 25%
  // of the bound without spinning; clamped so tiny test timeouts do not
  // busy-poll and huge ones still sweep at least once a second.
  return std::clamp(min_armed / 4, 10, 1000);
}

void DocServer::SweepTimeouts() {
  if (TimeoutTickMs() < 0) return;
  const uint64_t now = NowMs();
  std::vector<uint64_t> doomed;
  for (const auto& entry : connections_) {
    const Connection& c = *entry.second;
    // Slow loris first: a partial frame held past the header deadline is
    // reaped even though its trickled bytes keep last_activity fresh.
    if (options_.header_timeout_ms > 0 && c.partial_since_ms != 0 &&
        now - c.partial_since_ms >=
            static_cast<uint64_t>(options_.header_timeout_ms)) {
      header_timeout_closed_.fetch_add(1, std::memory_order_relaxed);
      doomed.push_back(entry.first);
      continue;
    }
    // Write stall: the peer stopped draining bytes it is owed.
    if (options_.write_stall_timeout_ms > 0 && c.unflushed() > 0 &&
        c.write_progress_ms != 0 &&
        now - c.write_progress_ms >=
            static_cast<uint64_t>(options_.write_stall_timeout_ms)) {
      write_stall_closed_.fetch_add(1, std::memory_order_relaxed);
      doomed.push_back(entry.first);
      continue;
    }
    // Idle: quiet in both directions and owed nothing.
    if (options_.idle_timeout_ms > 0 && c.inflight_ops == 0 &&
        c.unflushed() == 0 &&
        now - c.last_activity_ms >=
            static_cast<uint64_t>(options_.idle_timeout_ms)) {
      idle_closed_.fetch_add(1, std::memory_order_relaxed);
      doomed.push_back(entry.first);
    }
  }
  for (uint64_t id : doomed) CloseConnection(id);
}

// ---------------------------------------------------------------------
// Batcher thread: coalesce parsed requests into per-priority DocService
// submissions, serialize the responses in per-connection request order.
//
// Priority without inversion (DESIGN.md §14): each coalescing window is
// split into one ServeBatch per class, all submitted together (the
// queue's strict-priority pop does the actual ordering), then waited
// high → normal → best-effort. After each class completes, an emission
// pass walks the window in arrival order and releases every response
// that is ready AND not behind an unanswered earlier request on the
// same connection — positional pipelining requires per-connection
// responses in request order, but responses for *different* connections
// need not wait for the best-effort stragglers.

void DocServer::BatcherThread() {
  ServeBatch batches[kNumPriorities];  // reused: steady-state alloc-free
  std::vector<PendingOp> ops;          // the coalescing window
  std::vector<BatchItem> items[kNumPriorities];
  // Per-op result location: which class batch, at what offset. cls -1 =
  // no service work (Stat, poison error, parse-time reject).
  struct OpPlan {
    int cls = -1;
    size_t off = 0;
  };
  std::vector<OpPlan> plan;
  std::vector<char> emitted;           // per-op: response already sent
  std::unordered_set<uint64_t> blocked; // conns waiting on an earlier op
  std::vector<MultiGetOut> mgout;      // per-MultiGet response staging
  std::vector<Completion> done;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(handoff_mu_);
      handoff_cv_.wait(lock,
                       [&] { return !pending_.empty() || batcher_stop_; });
      if (pending_.empty() && batcher_stop_) return;
      // Everything parsed since the last round is one coalescing
      // window: requests that arrived across connections while the
      // previous batch decoded ride the next submission together.
      ops.clear();
      ops.swap(pending_);
    }
    const size_t n = ops.size();
    plan.assign(n, OpPlan{});
    emitted.assign(n, 0);
    for (auto& class_items : items) class_items.clear();
    for (size_t i = 0; i < n; ++i) {
      const PendingOp& op = ops[i];
      if (op.reject != WireCode::kOk) continue;  // answered without decode
      const int cls = static_cast<int>(op.priority);
      switch (op.type) {
        case MessageType::kGet:
          plan[i] = {cls, items[cls].size()};
          items[cls].push_back(
              {op.id, 0, 0, false, op.priority, op.deadline_ns});
          break;
        case MessageType::kGetRange:
          plan[i] = {cls, items[cls].size()};
          items[cls].push_back({op.id, op.offset, op.length, true,
                                op.priority, op.deadline_ns});
          break;
        case MessageType::kMultiGet:
          plan[i] = {cls, items[cls].size()};
          for (uint64_t id : op.ids) {
            items[cls].push_back(
                {id, 0, 0, false, op.priority, op.deadline_ns});
          }
          break;
        default:  // kStat / kError: no decode work
          break;
      }
    }
    size_t total_items = 0;
    for (auto& class_items : items) total_items += class_items.size();
    for (int cls = 0; cls < kNumPriorities; ++cls) {
      if (items[cls].empty()) continue;
      service_->SubmitBatch(items[cls].data(), items[cls].size(),
                            &batches[cls]);
      batches_.fetch_add(1, std::memory_order_relaxed);
    }
    if (total_items > 0) {
      coalesced_requests_.fetch_add(total_items, std::memory_order_relaxed);
    }
    size_t remaining = n;
    bool cls_ready[kNumPriorities];
    for (int cls = 0; cls < kNumPriorities; ++cls) {
      cls_ready[cls] = items[cls].empty();
    }
    for (int stage = 0; stage < kNumPriorities && remaining > 0; ++stage) {
      if (!items[stage].empty()) {
        batches[stage].Wait();
        cls_ready[stage] = true;
      } else if (stage > 0) {
        continue;  // nothing new became ready since the last pass
      }
      done.clear();
      blocked.clear();
      for (size_t i = 0; i < n; ++i) {
        if (emitted[i]) continue;
        const PendingOp& op = ops[i];
        if (blocked.count(op.conn_id) != 0) continue;
        if (plan[i].cls >= 0 && !cls_ready[plan[i].cls]) {
          blocked.insert(op.conn_id);
          continue;
        }
        Completion c;
        c.conn_id = op.conn_id;
        // Mirror of the ParseFrames budget increment, so the loop
        // releases exactly what was charged.
        c.best_effort = op.priority == RequestPriority::kBestEffort &&
                        op.type != MessageType::kStat &&
                        op.reject == WireCode::kOk;
        const bool crc = (op.flags & kFlagCrc) != 0;
        if (op.reject != WireCode::kOk) {
          EncodeRejectResponse(op.type, op.reject,
                               service_->SuggestedRetryAfterMs(), op.error,
                               crc, &c.frame);
        } else {
          switch (op.type) {
            case MessageType::kGet:
            case MessageType::kGetRange: {
              const GetResult& r =
                  batches[plan[i].cls].results()[plan[i].off];
              if (r.ok()) {
                EncodeDocResponse(op.type, WireCode::kOk, *r.text, crc,
                                  &c.frame);
              } else if (r.status.code() == StatusCode::kUnavailable) {
                // Admission shed: attach the retry-after hint.
                EncodeRejectResponse(op.type, WireCode::kUnavailable,
                                     service_->SuggestedRetryAfterMs(),
                                     r.status.message(), crc, &c.frame);
              } else {
                EncodeDocResponse(op.type, ToWireCode(r.status),
                                  r.status.message(), crc, &c.frame);
              }
              break;
            }
            case MessageType::kMultiGet: {
              mgout.clear();
              for (size_t k = 0; k < op.ids.size(); ++k) {
                const GetResult& r =
                    batches[plan[i].cls].results()[plan[i].off + k];
                MultiGetOut o;
                if (r.ok()) {
                  o.bytes = *r.text;
                } else {
                  o.code = ToWireCode(r.status);
                  o.bytes = r.status.message();
                }
                mgout.push_back(o);
              }
              EncodeMultiGetResponse(mgout.data(), mgout.size(), crc,
                                     &c.frame);
              break;
            }
            case MessageType::kStat:
              EncodeStatResponse(BuildWireStats(), crc, &c.frame);
              break;
            case MessageType::kError:
              EncodeDocResponse(MessageType::kError,
                                WireCode::kInvalidArgument, op.error,
                                /*crc=*/false, &c.frame);
              break;
          }
        }
        emitted[i] = 1;
        --remaining;
        done.push_back(std::move(c));
      }
      if (done.empty()) continue;
      {
        std::lock_guard<std::mutex> lock(handoff_mu_);
        for (Completion& c : done) completions_.push_back(std::move(c));
      }
      WakeLoop();
    }
  }
}

}  // namespace net
}  // namespace rlz
