#ifndef RLZ_NET_POLLER_H_
#define RLZ_NET_POLLER_H_

/// \file
/// Readiness notification for the network front end (DESIGN.md §13): a
/// thin ownership-free abstraction over epoll. The event loop registers
/// file descriptors with an interest set (read/write, level- or
/// edge-triggered) and an opaque tag, and Wait() reports which tags are
/// ready. Keeping the poller mechanism-only (no callbacks, no fd
/// ownership) leaves connection lifetime entirely to the event loop,
/// which is where it can be reasoned about.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

struct epoll_event;  // <sys/epoll.h> stays out of this header

namespace rlz {
namespace net {

/// Interest/readiness bit set used by Poller (combinable).
enum PollEvents : uint32_t {
  kPollNone = 0,       ///< no interest (still registered, reports errors)
  kPollRead = 1u << 0, ///< readable (or a pending accept on a listener)
  kPollWrite = 1u << 1,///< writable
};

/// One ready descriptor reported by Poller::Wait.
struct PollerEvent {
  /// The opaque tag the fd was registered with (e.g. a connection id).
  uint64_t tag = 0;
  /// Ready-to-read (includes peer hangup, which reads as EOF).
  bool readable = false;
  /// Ready-to-write.
  bool writable = false;
  /// Error or hangup condition on the descriptor (EPOLLERR/EPOLLHUP);
  /// the owner should read to collect the error/EOF and close.
  bool error = false;
};

/// Level-triggered by default: a descriptor keeps reporting ready until
/// drained, so a loop iteration may service it partially and pick the
/// rest up next round (the server relies on this to cap per-connection
/// read quanta). Edge-triggered registration is available for callers
/// that drain to EAGAIN in one pass.
class Poller {
 public:
  /// Creates the epoll instance (aborts only on resource exhaustion —
  /// construction failure leaves valid() false and Add/Wait failing).
  Poller();
  ~Poller();  // out-of-line: raw_events_ deletes an incomplete type here

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// True when the underlying epoll instance was created successfully.
  bool valid() const { return epoll_fd_.ok(); }

  /// Registers `fd` with interest `events` (PollEvents bits) under `tag`.
  /// `edge_triggered` opts this fd into EPOLLET.
  Status Add(int fd, uint64_t tag, uint32_t events,
             bool edge_triggered = false);
  /// Replaces the interest set (and tag) of an already-registered fd.
  Status Modify(int fd, uint64_t tag, uint32_t events,
                bool edge_triggered = false);
  /// Unregisters `fd`. Safe to call for fds about to be closed.
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and fills `*events`
  /// with the ready set (cleared first). Returns OK on timeout with an
  /// empty vector; EINTR is retried internally.
  ///
  /// Contract: one Wait() reports at most max(events->capacity(), 64)
  /// ready descriptors — reserve the events vector for the connection
  /// count to drain large ready sets in one call. A too-small batch is
  /// never lost readiness: level-triggered fds report again on the next
  /// Wait(), and the kernel round-robins its ready list, so every ready
  /// fd is reached across successive calls.
  Status Wait(std::vector<PollerEvent>* events, int timeout_ms);

 private:
  ScopedFd epoll_fd_;
  // Kernel-facing batch buffer, sized from the caller's capacity at each
  // Wait (grown, never shrunk). Heap-held so the header does not need
  // <sys/epoll.h>.
  std::unique_ptr<epoll_event[]> raw_events_;
  size_t raw_capacity_ = 0;
};

}  // namespace net
}  // namespace rlz

#endif  // RLZ_NET_POLLER_H_
