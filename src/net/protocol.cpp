#include "net/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace rlz {
namespace net {
namespace {

// The wire is little-endian; so is every platform this library targets
// (the same assumption the container format makes).
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "wire protocol assumes a little-endian host");

template <typename T>
void Put(T value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

// Opens a frame: appends the length placeholder and the body header,
// returning the offset of the placeholder for CloseFrame to patch.
size_t OpenFrameFlags(MessageType type, uint8_t flags, std::string* out) {
  const size_t at = out->size();
  Put<uint32_t>(0, out);
  Put<uint8_t>(static_cast<uint8_t>(type), out);
  Put<uint8_t>(flags, out);
  return at;
}

size_t OpenFrame(MessageType type, bool crc, std::string* out) {
  return OpenFrameFlags(type, crc ? kFlagCrc : 0, out);
}

// The flags byte of a v2 request and, when a deadline rides along, the
// payload prefix carrying it.
uint8_t RequestFlags(const RequestOptions& opts) {
  uint8_t flags = opts.crc ? kFlagCrc : 0;
  flags |= PriorityToWireBits(opts.priority);
  if (opts.deadline_ms != 0) flags |= kFlagDeadline;
  return flags;
}

size_t OpenRequestFrame(MessageType type, const RequestOptions& opts,
                        std::string* out) {
  const size_t at = OpenFrameFlags(type, RequestFlags(opts), out);
  if (opts.deadline_ms != 0) Put<uint32_t>(opts.deadline_ms, out);
  return at;
}

// Closes a frame opened at `at`: appends the CRC when requested (over
// the body written so far) and patches the length prefix.
void CloseFrame(size_t at, bool crc, std::string* out) {
  if (crc) {
    const uint32_t sum =
        Crc32(out->data() + at + sizeof(uint32_t),
              out->size() - at - sizeof(uint32_t));
    Put<uint32_t>(sum, out);
  }
  const uint32_t body_len =
      static_cast<uint32_t>(out->size() - at - sizeof(uint32_t));
  std::memcpy(out->data() + at, &body_len, sizeof(body_len));
}

// v2 appended the overload counters (shed/expired/net_* defenses); a v1
// peer rejects the version byte rather than misreading the layout.
constexpr uint8_t kStatVersion = 2;

}  // namespace

uint8_t PriorityToWireBits(RequestPriority priority) {
  // Wire values: 0 = normal (so a v1 client's zero flags mean kNormal),
  // 1 = high, 2 = best-effort, 3 = reserved.
  switch (priority) {
    case RequestPriority::kNormal: return 0;
    case RequestPriority::kHigh: return 1u << kFlagPriorityShift;
    case RequestPriority::kBestEffort: return 2u << kFlagPriorityShift;
  }
  return 0;
}

bool PriorityFromWire(uint8_t flags, RequestPriority* priority) {
  switch ((flags & kFlagPriorityMask) >> kFlagPriorityShift) {
    case 0: *priority = RequestPriority::kNormal; return true;
    case 1: *priority = RequestPriority::kHigh; return true;
    case 2: *priority = RequestPriority::kBestEffort; return true;
  }
  return false;  // 3 is reserved
}

WireCode ToWireCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return WireCode::kOk;
    case StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case StatusCode::kNotFound: return WireCode::kNotFound;
    case StatusCode::kOutOfRange: return WireCode::kOutOfRange;
    case StatusCode::kCorruption: return WireCode::kCorruption;
    case StatusCode::kIOError: return WireCode::kIOError;
    case StatusCode::kUnimplemented: return WireCode::kUnimplemented;
    case StatusCode::kInternal: return WireCode::kInternal;
    case StatusCode::kUnavailable: return WireCode::kUnavailable;
    case StatusCode::kDeadlineExceeded: return WireCode::kDeadlineExceeded;
  }
  return WireCode::kInternal;
}

const char* WireCodeToString(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kInvalidArgument: return "InvalidArgument";
    case WireCode::kNotFound: return "NotFound";
    case WireCode::kOutOfRange: return "OutOfRange";
    case WireCode::kCorruption: return "Corruption";
    case WireCode::kIOError: return "IOError";
    case WireCode::kUnimplemented: return "Unimplemented";
    case WireCode::kInternal: return "Internal";
    case WireCode::kUnavailable: return "Unavailable";
    case WireCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

void EncodeGetRequest(uint64_t id, const RequestOptions& opts,
                      std::string* out) {
  const size_t at = OpenRequestFrame(MessageType::kGet, opts, out);
  Put<uint64_t>(id, out);
  CloseFrame(at, opts.crc, out);
}

void EncodeGetRequest(uint64_t id, bool crc, std::string* out) {
  RequestOptions opts;
  opts.crc = crc;
  EncodeGetRequest(id, opts, out);
}

void EncodeMultiGetRequest(const uint64_t* ids, size_t n,
                           const RequestOptions& opts, std::string* out) {
  const size_t at = OpenRequestFrame(MessageType::kMultiGet, opts, out);
  Put<uint32_t>(static_cast<uint32_t>(n), out);
  for (size_t i = 0; i < n; ++i) Put<uint64_t>(ids[i], out);
  CloseFrame(at, opts.crc, out);
}

void EncodeMultiGetRequest(const uint64_t* ids, size_t n, bool crc,
                           std::string* out) {
  RequestOptions opts;
  opts.crc = crc;
  EncodeMultiGetRequest(ids, n, opts, out);
}

void EncodeGetRangeRequest(uint64_t id, uint64_t offset, uint64_t length,
                           const RequestOptions& opts, std::string* out) {
  const size_t at = OpenRequestFrame(MessageType::kGetRange, opts, out);
  Put<uint64_t>(id, out);
  Put<uint64_t>(offset, out);
  Put<uint64_t>(length, out);
  CloseFrame(at, opts.crc, out);
}

void EncodeGetRangeRequest(uint64_t id, uint64_t offset, uint64_t length,
                           bool crc, std::string* out) {
  RequestOptions opts;
  opts.crc = crc;
  EncodeGetRangeRequest(id, offset, length, opts, out);
}

void EncodeStatRequest(bool crc, std::string* out) {
  const size_t at = OpenFrame(MessageType::kStat, crc, out);
  CloseFrame(at, crc, out);
}

void EncodeDocResponse(MessageType type, WireCode code,
                       std::string_view body, bool crc, std::string* out) {
  const size_t at = OpenFrame(type, crc, out);
  Put<uint8_t>(static_cast<uint8_t>(code), out);
  out->append(body.data(), body.size());
  CloseFrame(at, crc, out);
}

void EncodeRejectResponse(MessageType type, WireCode code,
                          uint32_t retry_after_ms, std::string_view message,
                          bool crc, std::string* out) {
  const uint8_t flags = (crc ? kFlagCrc : 0) | kFlagRetryAfter;
  const size_t at = OpenFrameFlags(type, flags, out);
  Put<uint8_t>(static_cast<uint8_t>(code), out);
  Put<uint32_t>(retry_after_ms, out);
  out->append(message.data(), message.size());
  CloseFrame(at, crc, out);
}

void EncodeMultiGetResponse(const MultiGetOut* elements, size_t n, bool crc,
                            std::string* out) {
  const size_t at = OpenFrame(MessageType::kMultiGet, crc, out);
  Put<uint8_t>(static_cast<uint8_t>(WireCode::kOk), out);
  Put<uint32_t>(static_cast<uint32_t>(n), out);
  for (size_t i = 0; i < n; ++i) {
    Put<uint8_t>(static_cast<uint8_t>(elements[i].code), out);
    Put<uint32_t>(static_cast<uint32_t>(elements[i].bytes.size()), out);
    out->append(elements[i].bytes.data(), elements[i].bytes.size());
  }
  CloseFrame(at, crc, out);
}

void EncodeStatResponse(const WireStats& stats, bool crc, std::string* out) {
  const size_t at = OpenFrame(MessageType::kStat, crc, out);
  Put<uint8_t>(static_cast<uint8_t>(WireCode::kOk), out);
  Put<uint8_t>(kStatVersion, out);
  Put<uint64_t>(stats.requests, out);
  Put<uint64_t>(stats.failures, out);
  Put<uint64_t>(stats.steals, out);
  Put<uint64_t>(stats.queued, out);
  Put<uint64_t>(stats.cache_hits, out);
  Put<uint64_t>(stats.cache_misses, out);
  Put<uint64_t>(stats.cache_evictions, out);
  Put<uint64_t>(stats.cache_erased, out);
  Put<uint64_t>(stats.cache_entries, out);
  Put<uint64_t>(stats.cache_bytes, out);
  Put<uint64_t>(stats.disk_bytes, out);
  Put<uint64_t>(stats.disk_seeks, out);
  Put<uint64_t>(stats.archive_docs, out);
  Put<double>(stats.disk_seconds, out);
  Put<double>(stats.cpu_seconds, out);
  Put<double>(stats.critical_path_seconds, out);
  Put<double>(stats.latency_p50_us, out);
  Put<double>(stats.latency_p99_us, out);
  Put<double>(stats.latency_p999_us, out);
  Put<uint32_t>(stats.num_threads, out);
  Put<uint64_t>(stats.net_connections_accepted, out);
  Put<uint64_t>(stats.net_connections_active, out);
  Put<uint64_t>(stats.net_frames_received, out);
  Put<uint64_t>(stats.net_frames_sent, out);
  Put<uint64_t>(stats.net_bytes_received, out);
  Put<uint64_t>(stats.net_bytes_sent, out);
  Put<uint64_t>(stats.net_batches, out);
  Put<uint64_t>(stats.net_coalesced_requests, out);
  Put<uint64_t>(stats.net_reads_paused, out);
  Put<uint64_t>(stats.net_protocol_errors, out);
  Put<uint64_t>(stats.shed, out);
  Put<uint64_t>(stats.expired, out);
  Put<uint64_t>(stats.net_sheds, out);
  Put<uint64_t>(stats.net_idle_closed, out);
  Put<uint64_t>(stats.net_header_timeout_closed, out);
  Put<uint64_t>(stats.net_write_stall_closed, out);
  Put<uint64_t>(stats.net_high_priority_frames, out);
  Put<uint64_t>(stats.net_best_effort_frames, out);
  CloseFrame(at, crc, out);
}

ParseResult ParseFrame(std::string_view buf, MessageType* type,
                       uint8_t* flags, std::string_view* body,
                       size_t* consumed, std::string* error) {
  *consumed = 0;
  if (buf.size() < sizeof(uint32_t)) return ParseResult::kNeedMore;
  uint32_t body_len;
  std::memcpy(&body_len, buf.data(), sizeof(body_len));
  if (body_len > kMaxFrameBytes) {
    *error = "frame length " + std::to_string(body_len) +
             " exceeds the protocol limit";
    return ParseResult::kError;
  }
  if (body_len < 2) {
    *error = "frame body shorter than its two-byte header";
    return ParseResult::kError;
  }
  if (buf.size() < sizeof(uint32_t) + body_len) return ParseResult::kNeedMore;
  const uint8_t raw_type = static_cast<uint8_t>(buf[4]);
  const uint8_t raw_flags = static_cast<uint8_t>(buf[5]);
  if (raw_type < static_cast<uint8_t>(MessageType::kGet) ||
      raw_type > static_cast<uint8_t>(MessageType::kError)) {
    *error = "unknown frame type " + std::to_string(raw_type);
    return ParseResult::kError;
  }
  if ((raw_flags & ~kKnownFlags) != 0) {
    *error = "unknown frame flags " + std::to_string(raw_flags);
    return ParseResult::kError;
  }
  std::string_view payload = buf.substr(6, body_len - 2);
  if (raw_flags & kFlagCrc) {
    if (payload.size() < sizeof(uint32_t)) {
      *error = "CRC flag set on a frame too short to carry one";
      return ParseResult::kError;
    }
    uint32_t expected;
    std::memcpy(&expected, payload.data() + payload.size() - sizeof(uint32_t),
                sizeof(expected));
    // The CRC covers the body (type, flags, payload) up to itself.
    const uint32_t actual =
        Crc32(buf.data() + sizeof(uint32_t),
              2 + payload.size() - sizeof(uint32_t));
    if (expected != actual) {
      *error = "frame CRC mismatch";
      return ParseResult::kError;
    }
    payload.remove_suffix(sizeof(uint32_t));
  }
  *type = static_cast<MessageType>(raw_type);
  *flags = raw_flags;
  *body = payload;
  *consumed = sizeof(uint32_t) + body_len;
  return ParseResult::kFrame;
}

Status DecodeRequestBody(MessageType type, uint8_t flags,
                         std::string_view body, NetRequest* out) {
  out->type = type;
  out->flags = flags;
  out->id = out->offset = out->length = 0;
  out->deadline_ms = 0;
  out->ids.clear();
  if (!PriorityFromWire(flags, &out->priority)) {
    return Status::InvalidArgument("reserved priority bits in frame flags");
  }
  if (flags & kFlagDeadline) {
    if (!Get(&body, &out->deadline_ms)) {
      return Status::InvalidArgument(
          "deadline flag set on a frame too short to carry one");
    }
  }
  switch (type) {
    case MessageType::kGet:
      if (body.size() != sizeof(uint64_t) || !Get(&body, &out->id)) {
        return Status::InvalidArgument("Get request payload malformed");
      }
      return Status::OK();
    case MessageType::kMultiGet: {
      uint32_t count;
      if (!Get(&body, &count)) {
        return Status::InvalidArgument("MultiGet request payload malformed");
      }
      if (count > kMaxMultiGetIds) {
        return Status::InvalidArgument("MultiGet id count exceeds limit");
      }
      if (body.size() != static_cast<size_t>(count) * sizeof(uint64_t)) {
        return Status::InvalidArgument(
            "MultiGet payload size disagrees with its id count");
      }
      out->ids.resize(count);
      for (uint32_t i = 0; i < count; ++i) Get(&body, &out->ids[i]);
      return Status::OK();
    }
    case MessageType::kGetRange:
      if (body.size() != 3 * sizeof(uint64_t) || !Get(&body, &out->id) ||
          !Get(&body, &out->offset) || !Get(&body, &out->length)) {
        return Status::InvalidArgument("GetRange request payload malformed");
      }
      return Status::OK();
    case MessageType::kStat:
      if (!body.empty()) {
        return Status::InvalidArgument("Stat request carries a payload");
      }
      return Status::OK();
    case MessageType::kError:
      return Status::InvalidArgument("kError is not a request type");
  }
  return Status::InvalidArgument("unknown request type");
}

Status DecodeResponseBody(MessageType type, uint8_t flags,
                          std::string_view body, NetResponse* out) {
  out->type = type;
  out->flags = flags;
  out->retry_after_ms = 0;
  out->payload.clear();
  out->elements.clear();
  out->stats = WireStats();
  uint8_t code;
  if (!Get(&body, &code)) {
    return Status::InvalidArgument("response missing its status byte");
  }
  if (code > static_cast<uint8_t>(WireCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("response status byte out of range");
  }
  out->code = static_cast<WireCode>(code);
  if (flags & kFlagRetryAfter) {
    if (!Get(&body, &out->retry_after_ms)) {
      return Status::InvalidArgument(
          "retry-after flag set on a frame too short to carry one");
    }
  }
  // Any rejected request (load shed, expired, unparseable) may be
  // answered with a whole-request error frame whose payload is just a
  // message — including MultiGet and Stat, whose structured payloads
  // exist only when the overall code is kOk.
  if (out->code != WireCode::kOk) {
    out->payload.assign(body.data(), body.size());
    return Status::OK();
  }
  switch (type) {
    case MessageType::kGet:
    case MessageType::kGetRange:
    case MessageType::kError:
      out->payload.assign(body.data(), body.size());
      return Status::OK();
    case MessageType::kMultiGet: {
      uint32_t count;
      if (!Get(&body, &count)) {
        return Status::InvalidArgument("MultiGet response payload malformed");
      }
      if (count > kMaxMultiGetIds) {
        return Status::InvalidArgument(
            "MultiGet response element count exceeds limit");
      }
      out->elements.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t elem_code;
        uint32_t len;
        if (!Get(&body, &elem_code) || !Get(&body, &len) ||
            body.size() < len ||
            elem_code > static_cast<uint8_t>(WireCode::kUnavailable)) {
          return Status::InvalidArgument(
              "MultiGet response element malformed");
        }
        MultiGetElement elem;
        elem.code = static_cast<WireCode>(elem_code);
        elem.bytes.assign(body.data(), len);
        body.remove_prefix(len);
        out->elements.push_back(std::move(elem));
      }
      if (!body.empty()) {
        return Status::InvalidArgument(
            "MultiGet response has trailing bytes");
      }
      return Status::OK();
    }
    case MessageType::kStat: {
      uint8_t version;
      if (!Get(&body, &version) || version != kStatVersion) {
        return Status::InvalidArgument("Stat response version unsupported");
      }
      WireStats& s = out->stats;
      const bool ok =
          Get(&body, &s.requests) && Get(&body, &s.failures) &&
          Get(&body, &s.steals) && Get(&body, &s.queued) &&
          Get(&body, &s.cache_hits) && Get(&body, &s.cache_misses) &&
          Get(&body, &s.cache_evictions) && Get(&body, &s.cache_erased) &&
          Get(&body, &s.cache_entries) && Get(&body, &s.cache_bytes) &&
          Get(&body, &s.disk_bytes) && Get(&body, &s.disk_seeks) &&
          Get(&body, &s.archive_docs) && Get(&body, &s.disk_seconds) &&
          Get(&body, &s.cpu_seconds) &&
          Get(&body, &s.critical_path_seconds) &&
          Get(&body, &s.latency_p50_us) && Get(&body, &s.latency_p99_us) &&
          Get(&body, &s.latency_p999_us) && Get(&body, &s.num_threads) &&
          Get(&body, &s.net_connections_accepted) &&
          Get(&body, &s.net_connections_active) &&
          Get(&body, &s.net_frames_received) &&
          Get(&body, &s.net_frames_sent) &&
          Get(&body, &s.net_bytes_received) &&
          Get(&body, &s.net_bytes_sent) && Get(&body, &s.net_batches) &&
          Get(&body, &s.net_coalesced_requests) &&
          Get(&body, &s.net_reads_paused) &&
          Get(&body, &s.net_protocol_errors) && Get(&body, &s.shed) &&
          Get(&body, &s.expired) && Get(&body, &s.net_sheds) &&
          Get(&body, &s.net_idle_closed) &&
          Get(&body, &s.net_header_timeout_closed) &&
          Get(&body, &s.net_write_stall_closed) &&
          Get(&body, &s.net_high_priority_frames) &&
          Get(&body, &s.net_best_effort_frames);
      if (!ok || !body.empty()) {
        return Status::InvalidArgument("Stat response payload malformed");
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown response type");
}

}  // namespace net
}  // namespace rlz
