#include "net/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace rlz {
namespace net {
namespace {

// The wire is little-endian; so is every platform this library targets
// (the same assumption the container format makes).
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "wire protocol assumes a little-endian host");

template <typename T>
void Put(T value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

// Opens a frame: appends the length placeholder and the body header,
// returning the offset of the placeholder for CloseFrame to patch.
size_t OpenFrame(MessageType type, bool crc, std::string* out) {
  const size_t at = out->size();
  Put<uint32_t>(0, out);
  Put<uint8_t>(static_cast<uint8_t>(type), out);
  Put<uint8_t>(crc ? kFlagCrc : 0, out);
  return at;
}

// Closes a frame opened at `at`: appends the CRC when requested (over
// the body written so far) and patches the length prefix.
void CloseFrame(size_t at, bool crc, std::string* out) {
  if (crc) {
    const uint32_t sum =
        Crc32(out->data() + at + sizeof(uint32_t),
              out->size() - at - sizeof(uint32_t));
    Put<uint32_t>(sum, out);
  }
  const uint32_t body_len =
      static_cast<uint32_t>(out->size() - at - sizeof(uint32_t));
  std::memcpy(out->data() + at, &body_len, sizeof(body_len));
}

constexpr uint8_t kStatVersion = 1;

}  // namespace

WireCode ToWireCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return WireCode::kOk;
    case StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case StatusCode::kNotFound: return WireCode::kNotFound;
    case StatusCode::kOutOfRange: return WireCode::kOutOfRange;
    case StatusCode::kCorruption: return WireCode::kCorruption;
    case StatusCode::kIOError: return WireCode::kIOError;
    case StatusCode::kUnimplemented: return WireCode::kUnimplemented;
    case StatusCode::kInternal: return WireCode::kInternal;
    case StatusCode::kUnavailable: return WireCode::kUnavailable;
  }
  return WireCode::kInternal;
}

const char* WireCodeToString(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kInvalidArgument: return "InvalidArgument";
    case WireCode::kNotFound: return "NotFound";
    case WireCode::kOutOfRange: return "OutOfRange";
    case WireCode::kCorruption: return "Corruption";
    case WireCode::kIOError: return "IOError";
    case WireCode::kUnimplemented: return "Unimplemented";
    case WireCode::kInternal: return "Internal";
    case WireCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

void EncodeGetRequest(uint64_t id, bool crc, std::string* out) {
  const size_t at = OpenFrame(MessageType::kGet, crc, out);
  Put<uint64_t>(id, out);
  CloseFrame(at, crc, out);
}

void EncodeMultiGetRequest(const uint64_t* ids, size_t n, bool crc,
                           std::string* out) {
  const size_t at = OpenFrame(MessageType::kMultiGet, crc, out);
  Put<uint32_t>(static_cast<uint32_t>(n), out);
  for (size_t i = 0; i < n; ++i) Put<uint64_t>(ids[i], out);
  CloseFrame(at, crc, out);
}

void EncodeGetRangeRequest(uint64_t id, uint64_t offset, uint64_t length,
                           bool crc, std::string* out) {
  const size_t at = OpenFrame(MessageType::kGetRange, crc, out);
  Put<uint64_t>(id, out);
  Put<uint64_t>(offset, out);
  Put<uint64_t>(length, out);
  CloseFrame(at, crc, out);
}

void EncodeStatRequest(bool crc, std::string* out) {
  const size_t at = OpenFrame(MessageType::kStat, crc, out);
  CloseFrame(at, crc, out);
}

void EncodeDocResponse(MessageType type, WireCode code,
                       std::string_view body, bool crc, std::string* out) {
  const size_t at = OpenFrame(type, crc, out);
  Put<uint8_t>(static_cast<uint8_t>(code), out);
  out->append(body.data(), body.size());
  CloseFrame(at, crc, out);
}

void EncodeMultiGetResponse(const MultiGetOut* elements, size_t n, bool crc,
                            std::string* out) {
  const size_t at = OpenFrame(MessageType::kMultiGet, crc, out);
  Put<uint8_t>(static_cast<uint8_t>(WireCode::kOk), out);
  Put<uint32_t>(static_cast<uint32_t>(n), out);
  for (size_t i = 0; i < n; ++i) {
    Put<uint8_t>(static_cast<uint8_t>(elements[i].code), out);
    Put<uint32_t>(static_cast<uint32_t>(elements[i].bytes.size()), out);
    out->append(elements[i].bytes.data(), elements[i].bytes.size());
  }
  CloseFrame(at, crc, out);
}

void EncodeStatResponse(const WireStats& stats, bool crc, std::string* out) {
  const size_t at = OpenFrame(MessageType::kStat, crc, out);
  Put<uint8_t>(static_cast<uint8_t>(WireCode::kOk), out);
  Put<uint8_t>(kStatVersion, out);
  Put<uint64_t>(stats.requests, out);
  Put<uint64_t>(stats.failures, out);
  Put<uint64_t>(stats.steals, out);
  Put<uint64_t>(stats.queued, out);
  Put<uint64_t>(stats.cache_hits, out);
  Put<uint64_t>(stats.cache_misses, out);
  Put<uint64_t>(stats.cache_evictions, out);
  Put<uint64_t>(stats.cache_erased, out);
  Put<uint64_t>(stats.cache_entries, out);
  Put<uint64_t>(stats.cache_bytes, out);
  Put<uint64_t>(stats.disk_bytes, out);
  Put<uint64_t>(stats.disk_seeks, out);
  Put<uint64_t>(stats.archive_docs, out);
  Put<double>(stats.disk_seconds, out);
  Put<double>(stats.cpu_seconds, out);
  Put<double>(stats.critical_path_seconds, out);
  Put<double>(stats.latency_p50_us, out);
  Put<double>(stats.latency_p99_us, out);
  Put<double>(stats.latency_p999_us, out);
  Put<uint32_t>(stats.num_threads, out);
  Put<uint64_t>(stats.net_connections_accepted, out);
  Put<uint64_t>(stats.net_connections_active, out);
  Put<uint64_t>(stats.net_frames_received, out);
  Put<uint64_t>(stats.net_frames_sent, out);
  Put<uint64_t>(stats.net_bytes_received, out);
  Put<uint64_t>(stats.net_bytes_sent, out);
  Put<uint64_t>(stats.net_batches, out);
  Put<uint64_t>(stats.net_coalesced_requests, out);
  Put<uint64_t>(stats.net_reads_paused, out);
  Put<uint64_t>(stats.net_protocol_errors, out);
  CloseFrame(at, crc, out);
}

ParseResult ParseFrame(std::string_view buf, MessageType* type,
                       uint8_t* flags, std::string_view* body,
                       size_t* consumed, std::string* error) {
  *consumed = 0;
  if (buf.size() < sizeof(uint32_t)) return ParseResult::kNeedMore;
  uint32_t body_len;
  std::memcpy(&body_len, buf.data(), sizeof(body_len));
  if (body_len > kMaxFrameBytes) {
    *error = "frame length " + std::to_string(body_len) +
             " exceeds the protocol limit";
    return ParseResult::kError;
  }
  if (body_len < 2) {
    *error = "frame body shorter than its two-byte header";
    return ParseResult::kError;
  }
  if (buf.size() < sizeof(uint32_t) + body_len) return ParseResult::kNeedMore;
  const uint8_t raw_type = static_cast<uint8_t>(buf[4]);
  const uint8_t raw_flags = static_cast<uint8_t>(buf[5]);
  if (raw_type < static_cast<uint8_t>(MessageType::kGet) ||
      raw_type > static_cast<uint8_t>(MessageType::kError)) {
    *error = "unknown frame type " + std::to_string(raw_type);
    return ParseResult::kError;
  }
  if ((raw_flags & ~kFlagCrc) != 0) {
    *error = "unknown frame flags " + std::to_string(raw_flags);
    return ParseResult::kError;
  }
  std::string_view payload = buf.substr(6, body_len - 2);
  if (raw_flags & kFlagCrc) {
    if (payload.size() < sizeof(uint32_t)) {
      *error = "CRC flag set on a frame too short to carry one";
      return ParseResult::kError;
    }
    uint32_t expected;
    std::memcpy(&expected, payload.data() + payload.size() - sizeof(uint32_t),
                sizeof(expected));
    // The CRC covers the body (type, flags, payload) up to itself.
    const uint32_t actual =
        Crc32(buf.data() + sizeof(uint32_t),
              2 + payload.size() - sizeof(uint32_t));
    if (expected != actual) {
      *error = "frame CRC mismatch";
      return ParseResult::kError;
    }
    payload.remove_suffix(sizeof(uint32_t));
  }
  *type = static_cast<MessageType>(raw_type);
  *flags = raw_flags;
  *body = payload;
  *consumed = sizeof(uint32_t) + body_len;
  return ParseResult::kFrame;
}

Status DecodeRequestBody(MessageType type, uint8_t flags,
                         std::string_view body, NetRequest* out) {
  out->type = type;
  out->flags = flags;
  out->id = out->offset = out->length = 0;
  out->ids.clear();
  switch (type) {
    case MessageType::kGet:
      if (body.size() != sizeof(uint64_t) || !Get(&body, &out->id)) {
        return Status::InvalidArgument("Get request payload malformed");
      }
      return Status::OK();
    case MessageType::kMultiGet: {
      uint32_t count;
      if (!Get(&body, &count)) {
        return Status::InvalidArgument("MultiGet request payload malformed");
      }
      if (count > kMaxMultiGetIds) {
        return Status::InvalidArgument("MultiGet id count exceeds limit");
      }
      if (body.size() != static_cast<size_t>(count) * sizeof(uint64_t)) {
        return Status::InvalidArgument(
            "MultiGet payload size disagrees with its id count");
      }
      out->ids.resize(count);
      for (uint32_t i = 0; i < count; ++i) Get(&body, &out->ids[i]);
      return Status::OK();
    }
    case MessageType::kGetRange:
      if (body.size() != 3 * sizeof(uint64_t) || !Get(&body, &out->id) ||
          !Get(&body, &out->offset) || !Get(&body, &out->length)) {
        return Status::InvalidArgument("GetRange request payload malformed");
      }
      return Status::OK();
    case MessageType::kStat:
      if (!body.empty()) {
        return Status::InvalidArgument("Stat request carries a payload");
      }
      return Status::OK();
    case MessageType::kError:
      return Status::InvalidArgument("kError is not a request type");
  }
  return Status::InvalidArgument("unknown request type");
}

Status DecodeResponseBody(MessageType type, uint8_t flags,
                          std::string_view body, NetResponse* out) {
  out->type = type;
  out->flags = flags;
  out->payload.clear();
  out->elements.clear();
  out->stats = WireStats();
  uint8_t code;
  if (!Get(&body, &code)) {
    return Status::InvalidArgument("response missing its status byte");
  }
  if (code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return Status::InvalidArgument("response status byte out of range");
  }
  out->code = static_cast<WireCode>(code);
  switch (type) {
    case MessageType::kGet:
    case MessageType::kGetRange:
    case MessageType::kError:
      out->payload.assign(body.data(), body.size());
      return Status::OK();
    case MessageType::kMultiGet: {
      uint32_t count;
      if (!Get(&body, &count)) {
        return Status::InvalidArgument("MultiGet response payload malformed");
      }
      if (count > kMaxMultiGetIds) {
        return Status::InvalidArgument(
            "MultiGet response element count exceeds limit");
      }
      out->elements.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t elem_code;
        uint32_t len;
        if (!Get(&body, &elem_code) || !Get(&body, &len) ||
            body.size() < len ||
            elem_code > static_cast<uint8_t>(WireCode::kUnavailable)) {
          return Status::InvalidArgument(
              "MultiGet response element malformed");
        }
        MultiGetElement elem;
        elem.code = static_cast<WireCode>(elem_code);
        elem.bytes.assign(body.data(), len);
        body.remove_prefix(len);
        out->elements.push_back(std::move(elem));
      }
      if (!body.empty()) {
        return Status::InvalidArgument(
            "MultiGet response has trailing bytes");
      }
      return Status::OK();
    }
    case MessageType::kStat: {
      uint8_t version;
      if (!Get(&body, &version) || version != kStatVersion) {
        return Status::InvalidArgument("Stat response version unsupported");
      }
      WireStats& s = out->stats;
      const bool ok =
          Get(&body, &s.requests) && Get(&body, &s.failures) &&
          Get(&body, &s.steals) && Get(&body, &s.queued) &&
          Get(&body, &s.cache_hits) && Get(&body, &s.cache_misses) &&
          Get(&body, &s.cache_evictions) && Get(&body, &s.cache_erased) &&
          Get(&body, &s.cache_entries) && Get(&body, &s.cache_bytes) &&
          Get(&body, &s.disk_bytes) && Get(&body, &s.disk_seeks) &&
          Get(&body, &s.archive_docs) && Get(&body, &s.disk_seconds) &&
          Get(&body, &s.cpu_seconds) &&
          Get(&body, &s.critical_path_seconds) &&
          Get(&body, &s.latency_p50_us) && Get(&body, &s.latency_p99_us) &&
          Get(&body, &s.latency_p999_us) && Get(&body, &s.num_threads) &&
          Get(&body, &s.net_connections_accepted) &&
          Get(&body, &s.net_connections_active) &&
          Get(&body, &s.net_frames_received) &&
          Get(&body, &s.net_frames_sent) &&
          Get(&body, &s.net_bytes_received) &&
          Get(&body, &s.net_bytes_sent) && Get(&body, &s.net_batches) &&
          Get(&body, &s.net_coalesced_requests) &&
          Get(&body, &s.net_reads_paused) &&
          Get(&body, &s.net_protocol_errors);
      if (!ok || !body.empty()) {
        return Status::InvalidArgument("Stat response payload malformed");
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown response type");
}

}  // namespace net
}  // namespace rlz
