#ifndef RLZ_NET_SOCKET_H_
#define RLZ_NET_SOCKET_H_

/// \file
/// Non-blocking TCP socket primitives for the network front end
/// (DESIGN.md §13): an owning fd wrapper plus the small set of socket
/// operations the event loop and client need, all returning Status
/// instead of errno so no caller touches raw POSIX error handling.

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace rlz {
namespace net {

/// Owning file-descriptor handle: closes on destruction, movable,
/// non-copyable. -1 means "no fd".
class ScopedFd {
 public:
  /// Wraps `fd` (-1 for empty).
  explicit ScopedFd(int fd = -1) : fd_(fd) {}
  /// Closes the held fd (if any).
  ~ScopedFd() { Reset(); }

  /// Takes ownership from `other`, which becomes empty.
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  /// Closes the held fd, then takes ownership from `other`.
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  /// The held fd, or -1.
  int get() const { return fd_; }
  /// True when a valid fd is held.
  bool ok() const { return fd_ >= 0; }
  /// Relinquishes ownership and returns the fd without closing it.
  int Release() { return std::exchange(fd_, -1); }
  /// Closes the held fd and adopts `fd` (default: become empty).
  void Reset(int fd = -1);

 private:
  int fd_;
};

/// Puts `fd` into non-blocking mode (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Sets SO_RCVTIMEO on blocking socket `fd`: a recv() with no data for
/// `timeout_ms` returns EAGAIN (surfaced as IoResult::kWouldBlock), so a
/// hung peer bounds the caller's wait. 0 clears the timeout.
Status SetRecvTimeout(int fd, uint32_t timeout_ms);

/// Creates a non-blocking loopback (127.0.0.1) listen socket on `port`
/// (0 picks an ephemeral port) with SO_REUSEADDR. On success returns the
/// socket and stores the actually-bound port in `*bound_port`.
StatusOr<ScopedFd> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Accepts one pending connection from non-blocking listen socket
/// `listen_fd`, returned already non-blocking with TCP_NODELAY set.
/// Returns an empty ScopedFd (ok() == false) when no connection is
/// pending (EAGAIN) — distinct from an error Status.
StatusOr<ScopedFd> AcceptConnection(int listen_fd);

/// Connects a blocking TCP socket to 127.0.0.1:`port` with TCP_NODELAY
/// (the client side; the server side is non-blocking throughout).
StatusOr<ScopedFd> ConnectLoopback(uint16_t port);

/// Outcome of one non-blocking read/write attempt.
enum class IoResult {
  kOk,        ///< made progress (`*n` bytes)
  kWouldBlock,///< no progress possible now (EAGAIN/EWOULDBLOCK)
  kClosed,    ///< peer closed the connection (read side: EOF; write: EPIPE)
  kError,     ///< unrecoverable socket error
};

/// Reads up to `len` bytes into `buf`; `*n` receives the byte count on
/// kOk. Retries EINTR internally.
IoResult ReadSome(int fd, void* buf, size_t len, size_t* n);

/// Writes up to `len` bytes from `buf` with MSG_NOSIGNAL (a dead peer
/// yields kClosed, never SIGPIPE); `*n` receives the byte count on kOk.
/// Retries EINTR internally.
IoResult WriteSome(int fd, const void* buf, size_t len, size_t* n);

/// Writes all `len` bytes to blocking socket `fd` (the client's send
/// path), retrying partial writes; IOError/kClosed become a Status.
Status WriteAll(int fd, const void* buf, size_t len);

}  // namespace net
}  // namespace rlz

#endif  // RLZ_NET_SOCKET_H_
