#ifndef RLZ_NET_PROTOCOL_H_
#define RLZ_NET_PROTOCOL_H_

/// \file
/// The wire protocol of the network front end (DESIGN.md §13): tiny
/// length-prefixed binary frames, little-endian throughout.
///
/// Every frame is `[u32 body_len][u8 type][u8 flags][payload]` where
/// body_len counts everything after the length field. When `flags` has
/// kFlagCrc set, the last four payload bytes are a CRC32 over the body
/// up to (excluding) the CRC itself; the parser verifies and strips it.
/// Responses reuse the same envelope with the request's type echoed and
/// a leading status-code byte in the payload, so one incremental parser
/// serves both directions. Requests on one connection are answered in
/// order (pipelining matches responses positionally, as in Redis), so
/// no sequence numbers travel on the wire.
///
/// Protocol v2 (DESIGN.md §14) widens the flags byte, all of it
/// backward-compatible for v1 clients whose extra bits were required to
/// be zero: bits 1–2 carry the request's priority class (0 = normal, so
/// v1 clients land on kNormal; 3 is reserved and rejected), and bit 3 is
/// overloaded by direction — on a request (kFlagDeadline) the payload
/// begins with a u32 relative deadline in milliseconds; on a response
/// (kFlagRetryAfter) the payload after the status byte begins with a u32
/// retry-after hint in milliseconds (attached to load-shed
/// kUnavailable responses).
///
/// Malformed input (oversized length, unknown type, short payload, CRC
/// mismatch, inconsistent counts) is a parse *error*, distinct from
/// "need more bytes": the connection that produced it is poisoned — the
/// server answers with a kError frame when it still can, then closes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request_queue.h"  // RequestPriority travels on the wire
#include "util/status.h"

namespace rlz {
namespace net {

/// Frame type tags. Responses echo the request's tag; kError is a
/// server-originated response to an unparseable request.
enum class MessageType : uint8_t {
  kGet = 1,       ///< one whole document by id
  kMultiGet = 2,  ///< a batch of documents by id
  kGetRange = 3,  ///< a byte range of one document (the snippet path)
  kStat = 4,      ///< service + network counters snapshot
  kError = 5,     ///< response-only: the request could not be parsed
};

/// Frame flag bits (`flags` header byte). v1 defined only kFlagCrc and
/// rejected every other bit; v2 uses bits 1–3 as documented in the file
/// header, which is why a v1 frame decodes identically under v2.
constexpr uint8_t kFlagCrc = 0x01;
/// Bits 1–2: the request's priority class on the wire.
constexpr uint8_t kFlagPriorityMask = 0x06;
/// Shift of the priority field within the flags byte.
constexpr int kFlagPriorityShift = 1;
/// Bit 3 on a request: payload begins with a u32 deadline (ms, relative).
constexpr uint8_t kFlagDeadline = 0x08;
/// Bit 3 on a response: payload (after the status byte) begins with a
/// u32 retry-after hint (ms).
constexpr uint8_t kFlagRetryAfter = 0x08;
/// Every flag bit v2 understands; others are a protocol error.
constexpr uint8_t kKnownFlags = 0x0F;

/// Priority class → its wire bit pattern (within kFlagPriorityMask,
/// already shifted). kNormal maps to 0 so v1 clients are normal class.
uint8_t PriorityToWireBits(RequestPriority priority);
/// Decodes the priority field of `flags`. False for the reserved wire
/// value 3 (a protocol error at the caller).
bool PriorityFromWire(uint8_t flags, RequestPriority* priority);

/// Largest accepted frame body; anything longer is a protocol error
/// (memory-safety bound against hostile length prefixes).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Largest accepted MultiGet id count (bounds allocation before the
/// body-size consistency check can catch a lying count).
constexpr uint32_t kMaxMultiGetIds = 1u << 20;

/// Wire status codes: StatusCode projected onto one stable byte.
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kCorruption = 4,
  kIOError = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,
  kDeadlineExceeded = 9,
};

/// Maps a Status onto its wire byte (unknown future codes → kInternal).
WireCode ToWireCode(const Status& status);
/// Human-readable name of a wire code (mirrors StatusCodeToString).
const char* WireCodeToString(WireCode code);

/// A decoded request frame. `ids` is reused across decodes (cleared,
/// not reallocated), keeping the per-frame parse allocation-free once
/// warm.
struct NetRequest {
  /// Request kind.
  MessageType type = MessageType::kGet;
  /// Echoed into the response (the server answers CRC with CRC).
  uint8_t flags = 0;
  /// Document id (kGet, kGetRange).
  uint64_t id = 0;
  /// Range start (kGetRange).
  uint64_t offset = 0;
  /// Range length (kGetRange).
  uint64_t length = 0;
  /// Priority class from the flags byte (kNormal for v1 clients).
  RequestPriority priority = RequestPriority::kNormal;
  /// Relative deadline (ms) from the kFlagDeadline prefix; 0 = none.
  uint32_t deadline_ms = 0;
  /// Batch ids (kMultiGet).
  std::vector<uint64_t> ids;
};

/// Per-request knobs of the v2 encoders. The v1 `bool crc` encoder
/// signatures survive as wrappers over this (priority normal, no
/// deadline) — existing call sites encode byte-identical v1 frames.
struct RequestOptions {
  /// Append and set the CRC32 trailer (kFlagCrc).
  bool crc = false;
  /// Priority class (flags bits 1–2).
  RequestPriority priority = RequestPriority::kNormal;
  /// Relative deadline in ms (kFlagDeadline payload prefix); 0 = none.
  uint32_t deadline_ms = 0;
};

/// The Stat response payload: the DocService ServiceStats snapshot plus
/// the server's own network counters, field-for-field on the wire
/// (version-tagged so either side can reject a future layout).
struct WireStats {
  /// Requests executed by the DocService workers.
  uint64_t requests = 0;
  /// Requests that completed with a non-OK status.
  uint64_t failures = 0;
  /// Requests popped from another worker's queue.
  uint64_t steals = 0;
  /// Requests sitting in worker queues at snapshot time.
  uint64_t queued = 0;
  /// Decode-cache hits.
  uint64_t cache_hits = 0;
  /// Decode-cache misses.
  uint64_t cache_misses = 0;
  /// Decode-cache capacity evictions.
  uint64_t cache_evictions = 0;
  /// Decode-cache explicit invalidations (live-store deletes).
  uint64_t cache_erased = 0;
  /// Decode-cache resident entries.
  uint64_t cache_entries = 0;
  /// Decode-cache charged bytes.
  uint64_t cache_bytes = 0;
  /// Bytes charged to the simulated disks.
  uint64_t disk_bytes = 0;
  /// Seeks charged to the simulated disks.
  uint64_t disk_seeks = 0;
  /// Documents in the served archive (lets a thin client pick ids).
  uint64_t archive_docs = 0;
  /// Simulated disk seconds.
  double disk_seconds = 0.0;
  /// Worker thread-CPU seconds.
  double cpu_seconds = 0.0;
  /// Modeled makespan seconds (DESIGN.md §6).
  double critical_path_seconds = 0.0;
  /// Request latency p50, microseconds.
  double latency_p50_us = 0.0;
  /// Request latency p99, microseconds.
  double latency_p99_us = 0.0;
  /// Request latency p99.9, microseconds.
  double latency_p999_us = 0.0;
  /// DocService worker-pool size.
  uint32_t num_threads = 0;
  /// Connections accepted since the server started.
  uint64_t net_connections_accepted = 0;
  /// Connections currently open.
  uint64_t net_connections_active = 0;
  /// Request frames parsed.
  uint64_t net_frames_received = 0;
  /// Response frames written.
  uint64_t net_frames_sent = 0;
  /// Bytes read off sockets.
  uint64_t net_bytes_received = 0;
  /// Bytes written to sockets.
  uint64_t net_bytes_sent = 0;
  /// ServeBatch submissions the batcher made.
  uint64_t net_batches = 0;
  /// Doc requests coalesced into those submissions (avg batch size =
  /// coalesced / batches).
  uint64_t net_coalesced_requests = 0;
  /// Times a connection's reads were paused for outbound backpressure.
  uint64_t net_reads_paused = 0;
  /// Connections dropped for unparseable input.
  uint64_t net_protocol_errors = 0;
  // --- v2 fields (Stat version 2, DESIGN.md §14) ---
  /// Best-effort requests shed by DocService admission.
  uint64_t shed = 0;
  /// Requests expired in queue (kDeadlineExceeded without decoding).
  uint64_t expired = 0;
  /// Requests the server shed at parse time (per-connection budget).
  uint64_t net_sheds = 0;
  /// Connections closed by the idle timeout.
  uint64_t net_idle_closed = 0;
  /// Connections closed for holding a partial frame past the header
  /// deadline (slow-loris).
  uint64_t net_header_timeout_closed = 0;
  /// Connections closed for not draining their outbound buffer.
  uint64_t net_write_stall_closed = 0;
  /// Request frames that arrived flagged high priority.
  uint64_t net_high_priority_frames = 0;
  /// Request frames that arrived flagged best-effort.
  uint64_t net_best_effort_frames = 0;
};

/// One element of a MultiGet response: a per-id status byte and, when
/// OK, the document bytes (an error message otherwise).
struct MultiGetElement {
  /// Per-id outcome.
  WireCode code = WireCode::kOk;
  /// Document bytes (code == kOk) or error message.
  std::string bytes;
};

/// A decoded response frame (client side). Which members are meaningful
/// depends on `type`: payload for kGet/kGetRange/kError, elements for
/// kMultiGet, stats for kStat.
struct NetResponse {
  /// Echo of the request type (kError for unparseable requests).
  MessageType type = MessageType::kError;
  /// Frame flags as received.
  uint8_t flags = 0;
  /// Overall outcome (per-element codes qualify kMultiGet).
  WireCode code = WireCode::kInternal;
  /// Retry-after hint in ms (kFlagRetryAfter responses — load sheds);
  /// 0 when absent.
  uint32_t retry_after_ms = 0;
  /// Document bytes (kGet/kGetRange, code kOk) or error message.
  std::string payload;
  /// Per-id results (kMultiGet).
  std::vector<MultiGetElement> elements;
  /// Counters snapshot (kStat).
  WireStats stats;

  /// True when the overall code is kOk.
  bool ok() const { return code == WireCode::kOk; }
};

/// Appends a Get request frame for `id` to `*out`.
void EncodeGetRequest(uint64_t id, const RequestOptions& opts,
                      std::string* out);
/// As above, v1 shape: CRC only, normal priority, no deadline.
void EncodeGetRequest(uint64_t id, bool crc, std::string* out);
/// Appends a MultiGet request frame for `ids[0..n)` to `*out`.
void EncodeMultiGetRequest(const uint64_t* ids, size_t n,
                           const RequestOptions& opts, std::string* out);
/// As above, v1 shape.
void EncodeMultiGetRequest(const uint64_t* ids, size_t n, bool crc,
                           std::string* out);
/// Appends a GetRange request frame to `*out`.
void EncodeGetRangeRequest(uint64_t id, uint64_t offset, uint64_t length,
                           const RequestOptions& opts, std::string* out);
/// As above, v1 shape.
void EncodeGetRangeRequest(uint64_t id, uint64_t offset, uint64_t length,
                           bool crc, std::string* out);
/// Appends a Stat request frame to `*out`.
void EncodeStatRequest(bool crc, std::string* out);

/// Appends a kGet/kGetRange/kError response frame: `body` is the
/// document bytes when `code` is kOk, an error message otherwise.
void EncodeDocResponse(MessageType type, WireCode code,
                       std::string_view body, bool crc, std::string* out);

/// Appends a load-shed/expiry response frame carrying a retry-after
/// hint (kFlagRetryAfter): `message` explains the rejection, `code` is
/// typically kUnavailable or kDeadlineExceeded. Works for any response
/// type — a shed MultiGet is answered with one whole-request frame whose
/// payload is the message, not per-element results.
void EncodeRejectResponse(MessageType type, WireCode code,
                          uint32_t retry_after_ms, std::string_view message,
                          bool crc, std::string* out);

/// Input view for one MultiGet response element.
struct MultiGetOut {
  /// Per-id outcome.
  WireCode code = WireCode::kOk;
  /// Document bytes or error message (borrowed; copied into the frame).
  std::string_view bytes;
};
/// Appends a kMultiGet response frame carrying `elements[0..n)`.
void EncodeMultiGetResponse(const MultiGetOut* elements, size_t n, bool crc,
                            std::string* out);
/// Appends a kStat response frame carrying `stats`.
void EncodeStatResponse(const WireStats& stats, bool crc, std::string* out);

/// Outcome of one ParseFrame attempt.
enum class ParseResult {
  kFrame,     ///< one complete frame extracted
  kNeedMore,  ///< the buffer holds only a frame prefix — read more
  kError,     ///< malformed input; the connection is poisoned
};

/// Extracts one frame from the front of `buf` (an accumulation buffer).
/// On kFrame: `*type`/`*flags` hold the header, `*body` views the
/// payload (CRC verified and stripped; aliases `buf`), and `*consumed`
/// is the byte count to drop from the buffer. On kError, `*error` says
/// why. kNeedMore touches only `*consumed` (set to 0).
ParseResult ParseFrame(std::string_view buf, MessageType* type,
                       uint8_t* flags, std::string_view* body,
                       size_t* consumed, std::string* error);

/// Decodes a request payload (server side). `out->ids` is reused.
Status DecodeRequestBody(MessageType type, uint8_t flags,
                         std::string_view body, NetRequest* out);
/// Decodes a response payload (client side).
Status DecodeResponseBody(MessageType type, uint8_t flags,
                          std::string_view body, NetResponse* out);

}  // namespace net
}  // namespace rlz

#endif  // RLZ_NET_PROTOCOL_H_
