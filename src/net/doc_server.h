#ifndef RLZ_NET_DOC_SERVER_H_
#define RLZ_NET_DOC_SERVER_H_

/// \file
/// The network front end (DESIGN.md §13): an epoll event loop accepting
/// loopback TCP connections that speak the length-prefixed protocol of
/// net/protocol.h, plus a batcher thread that coalesces requests
/// arriving across connections into DocService batched submissions.
///
/// Threading: the *loop thread* owns every connection (accept, read,
/// parse, write, close — no locks on connection state); the *batcher
/// thread* owns one reused ServeBatch and the DocService submission;
/// they meet at two mutex-guarded vectors (parsed ops in, serialized
/// response frames out) and an eventfd that wakes the loop. DocService
/// workers never touch a socket.
///
/// Backpressure: each connection has a bounded outbound buffer and a
/// bounded count of parsed-but-unanswered requests; crossing either
/// bound pauses reading that socket (its bytes stay in the kernel
/// buffer, eventually stalling the sender via TCP flow control) until
/// the buffer drains below half. Queued work is therefore bounded by
/// connections × the two per-connection caps, independent of how fast
/// clients write.
///
/// Overload protection (DESIGN.md §14): request frames carry a priority
/// class routed into DocService's weighted admission; best-effort
/// requests over the per-connection budget (or past the service's
/// queue-latency watermark) are shed with kUnavailable + a retry-after
/// hint; expired-in-queue requests complete kDeadlineExceeded without
/// decoding; and a periodic sweep closes idle, slow-loris (partial
/// frame held past the header deadline), and write-stalled connections.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/status.h"

namespace rlz {

class DocService;

namespace net {

/// Knobs for DocServer. Every bound has a documented floor applied by
/// Validated(); zero/negative values are clamped, not trusted.
struct DocServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port,
  /// readable from port() after Start().
  uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately. Floor: 1.
  int max_connections = 1024;
  /// Outbound-buffer backpressure bound per connection: once this many
  /// un-flushed response bytes accumulate, the connection's reads pause
  /// until the buffer drains below half. Floor: 4 KB.
  size_t max_outbound_bytes = 4u << 20;
  /// Pipelining backpressure bound per connection: parsed requests not
  /// yet answered. Crossing it pauses reads until half are answered.
  /// Floor: 1.
  size_t max_pipelined_requests = 1024;
  /// Read quantum per poll round per connection (level-triggered: the
  /// remainder is picked up next round, so one firehose connection
  /// cannot starve the loop). Floor: 4 KB.
  size_t read_chunk_bytes = 64u << 10;
  /// Graceful-drain deadline for Shutdown(): connections still
  /// unflushed after this are closed anyway. Floor: 0 (immediate).
  int drain_timeout_ms = 5000;
  /// Idle-connection timeout (ms): a connection with no traffic in
  /// either direction and nothing owed to it for this long is closed
  /// (DESIGN.md §14). 0 disables.
  int idle_timeout_ms = 120'000;
  /// Header deadline (ms): a connection holding a *partial* frame —
  /// bytes received but no complete frame parsed — past this is closed.
  /// This is the slow-loris defense: trickling one byte at a time resets
  /// the idle clock but never this one. 0 disables.
  int header_timeout_ms = 30'000;
  /// Write-stall deadline (ms): a connection whose outbound buffer made
  /// no progress for this long (peer stopped draining) is closed. 0
  /// disables.
  int write_stall_timeout_ms = 30'000;
  /// Per-connection budget of parsed-but-unanswered best-effort
  /// requests: excess best-effort frames are shed at parse time with
  /// kUnavailable + retry-after, before any decode work. Floor: 1.
  size_t max_best_effort_per_conn = 64;

  /// Returns a copy with every knob clamped to its documented floor
  /// (the DocServer constructor applies this, mirroring
  /// DocServiceOptions::Validated).
  DocServerOptions Validated() const;
};

/// Server-side network counters (monotonic since Start, except
/// connections_active). Also travel on the wire inside the Stat
/// response (WireStats net_* fields).
struct NetServerStats {
  /// Connections accepted.
  uint64_t connections_accepted = 0;
  /// Connections currently open.
  uint64_t connections_active = 0;
  /// Request frames parsed.
  uint64_t frames_received = 0;
  /// Response frames serialized.
  uint64_t frames_sent = 0;
  /// Bytes read off sockets.
  uint64_t bytes_received = 0;
  /// Bytes written to sockets.
  uint64_t bytes_sent = 0;
  /// ServeBatch submissions made by the batcher.
  uint64_t batches = 0;
  /// Document requests coalesced into those submissions.
  uint64_t coalesced_requests = 0;
  /// Times a connection's reads were paused for backpressure.
  uint64_t reads_paused = 0;
  /// Connections poisoned by unparseable input.
  uint64_t protocol_errors = 0;
  /// Requests shed at parse time (per-connection best-effort budget).
  uint64_t sheds = 0;
  /// Connections closed by the idle timeout.
  uint64_t idle_closed = 0;
  /// Connections closed by the header (slow-loris) deadline.
  uint64_t header_timeout_closed = 0;
  /// Connections closed by the write-stall deadline.
  uint64_t write_stall_closed = 0;
  /// Request frames flagged high priority.
  uint64_t high_priority_frames = 0;
  /// Request frames flagged best-effort.
  uint64_t best_effort_frames = 0;
};

/// The socket front end over a DocService (DESIGN.md §13). Start() binds
/// and spawns the loop and batcher threads; Shutdown() stops accepting,
/// answers everything already parsed, flushes, and joins. The service
/// (and its archive) must outlive the server.
class DocServer {
 public:
  /// Prepares a server over `service` (not owned). No sockets exist
  /// until Start().
  explicit DocServer(DocService* service, const DocServerOptions& options = {});
  /// Shutdown(), then releases everything.
  ~DocServer();

  DocServer(const DocServer&) = delete;
  DocServer& operator=(const DocServer&) = delete;

  /// Binds the loopback listen socket and spawns the loop and batcher
  /// threads. Fails (and leaves the object inert) when the port is
  /// taken or fd resources are exhausted.
  Status Start();

  /// The bound TCP port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting and reading, answer every request
  /// already parsed, flush every outbound buffer (up to
  /// drain_timeout_ms), close all connections, join both threads.
  /// Idempotent; safe to call concurrently with serving traffic.
  void Shutdown();

  /// Counters snapshot; never blocks serving (atomics, like
  /// DocService::Stats).
  NetServerStats stats() const;

  /// The validated options this server runs with.
  const DocServerOptions& options() const { return options_; }

 private:
  // One parsed request (or a poisoned-connection error marker) on its
  // way to the batcher, in per-connection parse order.
  struct PendingOp {
    uint64_t conn_id = 0;
    MessageType type = MessageType::kGet;
    uint8_t flags = 0;
    uint64_t id = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    RequestPriority priority = RequestPriority::kNormal;
    uint64_t deadline_ns = 0;   // absolute steady-clock expiry; 0 = none
    // Non-kOk: rejected at parse time (per-connection budget) — the
    // batcher answers with this code + retry-after, no decode.
    WireCode reject = WireCode::kOk;
    std::vector<uint64_t> ids;  // kMultiGet
    std::string error;          // kError/reject: the message to report
  };

  // One serialized response frame on its way back to the loop.
  struct Completion {
    uint64_t conn_id = 0;
    bool best_effort = false;  // releases the per-conn best-effort budget
    std::string frame;
  };

  struct Connection;

  void LoopThread();
  void BatcherThread();
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  // Parses every complete frame in conn->in into pending ops; poisons
  // the connection on malformed input.
  void ParseFrames(Connection* conn, std::vector<PendingOp>* ops);
  // Delivers serialized frames into their connections' outbound buffers.
  void PumpCompletions();
  // Recomputes and applies a connection's epoll interest set from its
  // pause/flush state.
  void UpdateInterest(Connection* conn);
  // True when the connection has nothing left to say (no unanswered
  // ops, empty outbound buffer) and should close (poisoned, peer EOF,
  // or server draining).
  bool ReadyToClose(const Connection& conn) const;
  void CloseConnection(uint64_t conn_id);
  // The loop's poll timeout (ms) while serving: -1 when no
  // idle/header/write-stall timeout is armed, else a fraction of the
  // smallest armed timeout so sweeps run often enough to honor it.
  int TimeoutTickMs() const;
  // Closes every connection past an armed timeout (DESIGN.md §14):
  // idle (quiet and owed nothing), header deadline (partial frame held
  // too long — slow loris), write stall (outbound bytes not draining).
  void SweepTimeouts();
  // Wakes the loop thread (eventfd write); callable from any thread.
  void WakeLoop();
  // Builds the wire Stat payload: DocService stats + net counters.
  WireStats BuildWireStats() const;

  DocService* service_;
  DocServerOptions options_;  // validated copy
  uint16_t port_ = 0;

  Poller poller_;
  ScopedFd listen_fd_;
  ScopedFd wake_fd_;  // eventfd: completions ready / shutdown requested
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wakeup
  // Parsed ops not yet answered with a delivered completion; loop-thread
  // only (drain termination condition).
  size_t outstanding_ops_ = 0;
  // Loop-thread view of the drain state (set once shutdown_requested_
  // is observed; connections stop reading and close when flushed).
  bool draining_ = false;

  std::mutex handoff_mu_;
  std::condition_variable handoff_cv_;  // batcher: ops arrived / stop
  std::vector<PendingOp> pending_;      // loop -> batcher (guarded)
  std::vector<Completion> completions_; // batcher -> loop (guarded)
  bool batcher_stop_ = false;           // guarded by handoff_mu_

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> started_{false};

  // Counters (relaxed atomics; see NetServerStats).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_requests_{0};
  std::atomic<uint64_t> reads_paused_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> header_timeout_closed_{0};
  std::atomic<uint64_t> write_stall_closed_{0};
  std::atomic<uint64_t> high_priority_frames_{0};
  std::atomic<uint64_t> best_effort_frames_{0};

  std::mutex join_mu_;  // Shutdown is idempotent
  bool joined_ = false;
  std::thread loop_thread_;
  std::thread batcher_thread_;
};

}  // namespace net
}  // namespace rlz

#endif  // RLZ_NET_DOC_SERVER_H_
