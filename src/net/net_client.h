#ifndef RLZ_NET_NET_CLIENT_H_
#define RLZ_NET_NET_CLIENT_H_

/// \file
/// The blocking client of the network front end (DESIGN.md §13), used
/// by tests, the load bench, and snippet_server's --client mode. Sends
/// buffer locally until Flush()/Receive(), so a pipelined burst (N
/// Send* calls, then N Receive() calls) reaches the kernel as one
/// write — the client-side half of request coalescing. One NetClient
/// belongs to one thread; open one per connection.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "util/random.h"
#include "util/status.h"

namespace rlz {
namespace net {

/// Knobs for NetClient::Connect.
struct NetClientOptions {
  /// Stamp every request frame with a CRC32 (the server verifies it and
  /// answers with CRC-stamped responses).
  bool use_crc = false;
  /// Priority class stamped on every request frame (DESIGN.md §14).
  RequestPriority priority = RequestPriority::kNormal;
  /// Per-request deadline in ms; 0 = none. Non-zero does two things:
  /// every request carries the deadline on the wire (the server expires
  /// it in queue), and the socket gets a receive timeout of the same
  /// length, so a hung server surfaces Status::DeadlineExceeded from
  /// Receive() instead of blocking forever.
  uint32_t deadline_ms = 0;
  /// Retries of the round-trip convenience methods (Get/GetRange/
  /// MultiGet) when the server sheds the request with kUnavailable:
  /// each retry re-sends after a capped-exponential backoff with jitter,
  /// floored at the server's retry-after hint. 0 (default) = sheds
  /// surface immediately as Status::Unavailable.
  int max_retries = 0;
  /// First retry's nominal backoff (ms); doubles per attempt.
  uint32_t retry_backoff_base_ms = 2;
  /// Backoff growth stops at this bound (ms).
  uint32_t retry_backoff_cap_ms = 250;
};

/// The delay (ms) before retry number `attempt` (0-based): capped
/// exponential `min(cap, base << attempt)`, jittered uniformly into
/// [b/2, b] so synchronized shed clients don't re-flood in lockstep,
/// floored at the server's `retry_after_ms` hint. Free function so the
/// policy is unit-testable without a socket.
uint32_t RetryBackoffMs(int attempt, uint32_t base_ms, uint32_t cap_ms,
                        uint32_t retry_after_ms, Rng* rng);

/// A pipelined loopback connection to a DocServer. Responses arrive in
/// request order; interleave Send*/Receive freely up to the server's
/// pipelining bound.
class NetClient {
 public:
  /// Connects to 127.0.0.1:`port`.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      uint16_t port, const NetClientOptions& options = {});
  ~NetClient() = default;

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Queues a Get request for `id`.
  void SendGet(uint64_t id);
  /// Queues a MultiGet request for `ids`.
  void SendMultiGet(const std::vector<uint64_t>& ids);
  /// Queues a GetRange request for bytes [offset, offset+length) of `id`.
  void SendGetRange(uint64_t id, uint64_t offset, uint64_t length);
  /// Queues a Stat request.
  void SendStat();
  /// Queues raw bytes verbatim (test hook for malformed frames).
  void SendRaw(std::string_view bytes);

  /// Writes every queued request to the socket.
  Status Flush();

  /// Returns the next response in request order, flushing queued sends
  /// first. Unavailable when the server closed the connection.
  StatusOr<NetResponse> Receive();

  /// Round-trip convenience: Get one document's bytes (non-OK wire
  /// codes become the equivalent Status). With max_retries > 0, a
  /// load-shed kUnavailable response is retried with backoff.
  StatusOr<std::string> Get(uint64_t id);
  /// Round-trip convenience: one byte range.
  StatusOr<std::string> GetRange(uint64_t id, uint64_t offset,
                                 uint64_t length);
  /// Round-trip convenience: one MultiGet (per-element codes inside).
  StatusOr<std::vector<MultiGetElement>> MultiGet(
      const std::vector<uint64_t>& ids);
  /// Round-trip convenience: one Stat snapshot.
  StatusOr<WireStats> Stat();

 private:
  explicit NetClient(ScopedFd fd, const NetClientOptions& options)
      : fd_(std::move(fd)),
        options_(options),
        rng_(static_cast<uint64_t>(fd_.get()) * 0x9E3779B97F4A7C15ULL + 1) {}

  /// The v2 encoder knobs derived from options_ (CRC, priority,
  /// deadline).
  RequestOptions EncodeOptions() const;
  /// True when `response` is a shed the convenience methods should retry
  /// (wire kUnavailable with retries left); sleeps the backoff.
  bool ShouldRetryShed(const NetResponse& response, int attempt);

  ScopedFd fd_;
  NetClientOptions options_;
  Rng rng_;  // jitter source for retry backoff
  std::string send_buf_;  // queued request frames
  std::string recv_buf_;  // unparsed response bytes
};

}  // namespace net
}  // namespace rlz

#endif  // RLZ_NET_NET_CLIENT_H_
