#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

namespace rlz {
namespace net {
namespace {

Status ErrnoStatus(const char* op) {
  return Status::IOError(std::string(op) + ": " + ::strerror(errno));
}

}  // namespace

void ScopedFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SetRecvTimeout(int fd, uint32_t timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

StatusOr<ScopedFd> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return ErrnoStatus("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) return ErrnoStatus("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ::ntohs(addr.sin_port);
  RLZ_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

StatusOr<ScopedFd> AcceptConnection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      ScopedFd conn(fd);
      RLZ_RETURN_IF_ERROR(SetNonBlocking(fd));
      const int one = 1;
      // Best effort: serving works (slower) without NODELAY.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ScopedFd();
    // A connection that died between readiness and accept is not a
    // listener failure; report "none pending" and let the loop continue.
    if (errno == ECONNABORTED) return ScopedFd();
    return ErrnoStatus("accept");
  }
}

StatusOr<ScopedFd> ConnectLoopback(uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return ErrnoStatus("socket");
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("connect");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

IoResult ReadSome(int fd, void* buf, size_t len, size_t* n) {
  for (;;) {
    const ssize_t got = ::recv(fd, buf, len, 0);
    if (got > 0) {
      *n = static_cast<size_t>(got);
      return IoResult::kOk;
    }
    if (got == 0) return IoResult::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    if (errno == ECONNRESET) return IoResult::kClosed;
    return IoResult::kError;
  }
}

IoResult WriteSome(int fd, const void* buf, size_t len, size_t* n) {
  for (;;) {
    const ssize_t put = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (put >= 0) {
      *n = static_cast<size_t>(put);
      return IoResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    if (errno == EPIPE || errno == ECONNRESET) return IoResult::kClosed;
    return IoResult::kError;
  }
}

Status WriteAll(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  size_t remaining = len;
  while (remaining > 0) {
    size_t n = 0;
    switch (WriteSome(fd, p, remaining, &n)) {
      case IoResult::kOk:
        p += n;
        remaining -= n;
        break;
      case IoResult::kWouldBlock:
        // Blocking socket: kWouldBlock only under SO_SNDTIMEO, which the
        // client does not set; treat as transient and retry.
        break;
      case IoResult::kClosed:
        return Status::Unavailable("connection closed by peer");
      case IoResult::kError:
        return ErrnoStatus("send");
    }
  }
  return Status::OK();
}

}  // namespace net
}  // namespace rlz
