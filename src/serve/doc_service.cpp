#include "serve/doc_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "serve/sharded_store.h"
#include "util/logging.h"
#include "util/timer.h"  // ThreadCpuSeconds (shared with the build pipeline)

namespace rlz {
namespace {

// Steady-clock stamp for queue+service latency accounting.
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DocServiceOptions DocServiceOptions::Validated() const {
  DocServiceOptions v = *this;
  if (v.num_threads < 1) v.num_threads = 1;
  if (v.cache_shards < 1) v.cache_shards = 1;
  if (v.queue_depth < 1) v.queue_depth = 1;
  // Class fractions are shares of queue_depth; the rings floor at one
  // slot, so clamping to [0, 1] is enough.
  v.normal_queue_fraction =
      std::min(1.0, std::max(0.0, v.normal_queue_fraction));
  v.best_effort_queue_fraction =
      std::min(1.0, std::max(0.0, v.best_effort_queue_fraction));
  // A capacity that cannot admit even an empty value is a disabled cache.
  if (v.cache_bytes > 0 && v.cache_bytes <= LruCache::kEntryOverheadBytes) {
    v.cache_bytes = 0;
  }
  return v;
}

const std::vector<GetResult>& ServeBatch::Wait() {
  // Always acquires mu_ (no lock-free fast path): CountDown runs entirely
  // under mu_, so once Wait() has taken the lock and seen zero, no worker
  // is still inside this object — the caller may immediately reuse or
  // destroy the batch.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
  return results_;
}

void ServeBatch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

DocService::DocService(const Archive* archive,
                       const DocServiceOptions& options)
    : archive_(archive),
      options_(options.Validated()),
      cache_(options_.cache_bytes, options_.cache_shards) {
  RLZ_CHECK(archive != nullptr);
  // Queue-per-shard routing: when the archive is sharded, its router maps
  // doc ids to shards, and requests for one shard always land on the same
  // worker (shard mod pool) — that worker's SimDisk then stays on few
  // shard devices (fewer simulated seeks) and its decode locality is per
  // shard. Other archives route by id. The router is re-snapshotted per
  // submission (the store is live and grows shards); the eviction hook
  // keeps the decode cache honest across Delete and compaction.
  if (const auto* sharded = dynamic_cast<const ShardedStore*>(archive)) {
    live_store_ = sharded;
    live_store_->SetEvictionListener(
        [this](size_t id) { cache_.Erase(id); });
  }
  const int num_threads = options_.num_threads;
  workers_.reserve(num_threads);
  queues_.reserve(num_threads);
  threads_.reserve(num_threads);
  // Weighted class capacities (DESIGN.md §14): kHigh owns the full
  // depth; lower classes get their configured shares, so the gap between
  // a lower class's cap and the full depth is headroom only higher
  // classes can use.
  const size_t depth = static_cast<size_t>(options_.queue_depth);
  const size_t class_caps[kNumPriorities] = {
      depth,
      static_cast<size_t>(depth * options_.normal_queue_fraction),
      static_cast<size_t>(depth * options_.best_effort_queue_fraction)};
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(options_.disk));
    queues_.push_back(std::make_unique<BoundedRequestQueue>(class_caps));
  }
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&DocService::WorkerLoop, this, i);
  }
}

DocService::~DocService() {
  // Unregister first: SetEvictionListener(nullptr) blocks until any
  // in-flight callback returns, so no mutator can touch this service's
  // cache once the teardown proceeds.
  if (live_store_ != nullptr) live_store_->SetEvictionListener(nullptr);
  Shutdown();
}

void DocService::Shutdown() {
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    work_cv_.notify_all();
  }
  Drain();
  {
    // Re-notify after the drain so sleeping workers re-evaluate the exit
    // predicate (stopping_ && in_flight_ == 0).
    std::lock_guard<std::mutex> lock(wake_mu_);
    work_cv_.notify_all();
  }
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (!joined_) {
    for (std::thread& t : threads_) t.join();
    joined_ = true;
  }
}

int DocService::WorkerOf(size_t id, const ShardRouter* router) const {
  const size_t num_workers = workers_.size();
  if (router != nullptr && id < router->num_docs()) {
    return static_cast<int>(router->shard_of(id) % num_workers);
  }
  // Tail documents (and non-sharded archives) route by id: the tail is
  // memory-resident, so affinity buys nothing there.
  return static_cast<int>(id % num_workers);
}

std::shared_ptr<const ShardRouter> DocService::RouterSnapshot() const {
  return live_store_ != nullptr ? live_store_->router_snapshot() : nullptr;
}

bool DocService::Accept(size_t n) {
  in_flight_.fetch_add(n);
  if (!stopping_.load()) return true;
  // Stopping: roll the count back; if that made the service idle, wake
  // Drain() waiters and exiting workers.
  if (in_flight_.fetch_sub(n) == n) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    idle_cv_.notify_all();
    work_cv_.notify_all();
  }
  return false;
}

void DocService::NotifyWorkers() {
  if (sleepers_.load() == 0) return;
  std::lock_guard<std::mutex> lock(wake_mu_);
  work_cv_.notify_all();
}

bool DocService::PushWithBackpressure(const ServeRequest& request, int dest) {
  const int num_queues = static_cast<int>(queues_.size());
  for (;;) {
    // Preferred queue first, then spill to peers: any worker can serve
    // any request (routing is a locality optimization, not an ownership
    // constraint), so a full queue under skew never blocks while a peer
    // has room.
    for (int k = 0; k < num_queues; ++k) {
      const int w = (dest + k) % num_queues;
      if (queues_[w]->TryPush(request)) {
        queued_.fetch_add(1);
        NotifyWorkers();
        return true;
      }
    }
    // This class's ring is full on every queue. Best-effort sheds rather
    // than blocks (DESIGN.md §14): a bulk flood must never stall the
    // submitting thread — for the network front end that thread is the
    // batcher serving every connection.
    if (request.priority == RequestPriority::kBestEffort) return false;
    // Higher classes: bounded-memory backpressure. The request was
    // already accepted (in_flight_ counts it), so workers stay alive
    // until it is enqueued and served — even mid-Shutdown.
    std::unique_lock<std::mutex> lock(wake_mu_);
    space_waiters_.fetch_add(1);
    space_cv_.wait(lock, [&] {
      for (int w = 0; w < num_queues; ++w) {
        if (queues_[w]->HasRoom(request.priority)) return true;
      }
      return false;
    });
    space_waiters_.fetch_sub(1);
  }
}

void DocService::CompleteRejected(const ServeRequest& request, Status status) {
  if (request.promise != nullptr) {
    GetResult result;
    result.status = std::move(status);
    request.promise->set_value(std::move(result));
    delete request.promise;
  } else if (request.out != nullptr) {
    request.out->status = std::move(status);
    if (request.batch != nullptr) request.batch->CountDown();
  }
  FinishOne();
}

void DocService::SubmitBatch(const std::vector<size_t>& ids,
                             ServeBatch* batch) {
  SubmitBatch(ids.data(), ids.size(), batch);
}

namespace {

// Adapters for SubmitBatchImpl: a raw id array viewed as whole-document
// items, and a BatchItem array viewed as itself. Both are trivially
// copyable views — nothing is materialized.
struct IdsAsItems {
  const size_t* ids;
  BatchItem operator[](size_t i) const {
    BatchItem item;
    item.id = ids[i];
    return item;
  }
};

struct ItemsView {
  const BatchItem* items;
  const BatchItem& operator[](size_t i) const { return items[i]; }
};

}  // namespace

void DocService::SubmitBatch(const size_t* ids, size_t count,
                             ServeBatch* batch) {
  SubmitBatchImpl(IdsAsItems{ids}, count, batch);
}

void DocService::SubmitBatch(const BatchItem* items, size_t count,
                             ServeBatch* batch) {
  SubmitBatchImpl(ItemsView{items}, count, batch);
}

template <typename View>
void DocService::SubmitBatchImpl(View view, size_t count, ServeBatch* batch) {
  RLZ_CHECK(batch != nullptr);
  batch->Wait();  // a reused batch must be idle before it is re-armed
  batch->results_.clear();
  batch->results_.resize(count);
  if (count == 0) return;
  batch->remaining_.store(count, std::memory_order_release);
  if (!Accept(count)) {
    for (size_t i = 0; i < count; ++i) {
      batch->results_[i].status = Status::Unavailable("stopping");
      batch->CountDown();
    }
    return;
  }
  const uint64_t now_ns = NowNs();
  const int num_workers = static_cast<int>(workers_.size());
  // Admission (DESIGN.md §14): one watermark reading per submission —
  // when the estimated queue wait is past the shed bound, every
  // best-effort item of this batch is shed up front, before any routing
  // or enqueue work is spent on it.
  const uint64_t watermark_us = options_.shed_queue_delay_us;
  const bool overloaded =
      watermark_us != 0 && EstimatedQueueDelayUs() > watermark_us;
  // One routing snapshot per submission: every id in this batch routes
  // against the same epoch's boundaries. kRejectedRoute marks positions
  // completed at admission (shed or already expired) that must not be
  // staged.
  constexpr uint32_t kRejectedRoute = ~uint32_t{0};
  const std::shared_ptr<const ShardRouter> router = RouterSnapshot();
  std::vector<uint32_t>& routes = batch->routes_;
  routes.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const BatchItem item = view[i];
    if (item.deadline_ns != 0 && now_ns >= item.deadline_ns) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      batch->results_[i].status =
          Status::DeadlineExceeded("deadline passed before admission");
      batch->CountDown();
      FinishOne();
      routes[i] = kRejectedRoute;
      continue;
    }
    if (overloaded && item.priority == RequestPriority::kBestEffort) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      batch->results_[i].status =
          Status::Unavailable("overloaded: best-effort request shed");
      batch->CountDown();
      FinishOne();
      routes[i] = kRejectedRoute;
      continue;
    }
    routes[i] = static_cast<uint32_t>(WorkerOf(item.id, router.get()));
  }
  // One staging pass per destination: the whole per-worker group is
  // enqueued under a single lock acquisition of that worker's queue.
  std::vector<ServeRequest>& stage = batch->stage_;
  for (int w = 0; w < num_workers; ++w) {
    stage.clear();
    for (size_t i = 0; i < count; ++i) {
      if (routes[i] != static_cast<uint32_t>(w)) continue;
      const BatchItem item = view[i];
      ServeRequest request;
      request.id = item.id;
      request.offset = item.offset;
      request.length = item.length;
      request.is_range = item.is_range;
      request.priority = item.priority;
      request.deadline_ns = item.deadline_ns;
      request.enqueue_ns = now_ns;
      request.out = &batch->results_[i];
      request.batch = batch;
      stage.push_back(request);
    }
    if (stage.empty()) continue;
    const size_t pushed = queues_[w]->TryPushMany(stage.data(), stage.size());
    if (pushed > 0) {
      queued_.fetch_add(pushed);
      NotifyWorkers();
    }
    for (size_t i = pushed; i < stage.size(); ++i) {
      if (!PushWithBackpressure(stage[i], w)) {
        // Best-effort with its class rings full everywhere: shed.
        shed_.fetch_add(1, std::memory_order_relaxed);
        CompleteRejected(stage[i],
                         Status::Unavailable("overloaded: queue full"));
      }
    }
  }
}

std::future<GetResult> DocService::Get(size_t id) {
  auto* promise = new std::promise<GetResult>();
  std::future<GetResult> future = promise->get_future();
  if (!Accept(1)) {
    GetResult rejected;
    rejected.status = Status::Unavailable("stopping");
    promise->set_value(std::move(rejected));
    delete promise;
    return future;
  }
  ServeRequest request;
  request.id = id;
  request.enqueue_ns = NowNs();
  request.promise = promise;
  PushWithBackpressure(request, WorkerOf(id, RouterSnapshot().get()));
  return future;
}

std::future<GetResult> DocService::GetRange(size_t id, size_t offset,
                                            size_t length) {
  auto* promise = new std::promise<GetResult>();
  std::future<GetResult> future = promise->get_future();
  if (!Accept(1)) {
    GetResult rejected;
    rejected.status = Status::Unavailable("stopping");
    promise->set_value(std::move(rejected));
    delete promise;
    return future;
  }
  ServeRequest request;
  request.id = id;
  request.offset = offset;
  request.length = length;
  request.is_range = true;
  request.enqueue_ns = NowNs();
  request.promise = promise;
  PushWithBackpressure(request, WorkerOf(id, RouterSnapshot().get()));
  return future;
}

std::vector<GetResult> DocService::MultiGet(const std::vector<size_t>& ids) {
  ServeBatch batch;
  SubmitBatch(ids, &batch);
  batch.Wait();
  return std::move(batch.results_);
}

void DocService::WorkerLoop(int index) {
  Worker* worker = workers_[index].get();
  ServeRequest request;
  while (NextRequest(index, &request)) {
    Execute(request, worker);
  }
}

bool DocService::NextRequest(int index, ServeRequest* request) {
  const int num_queues = static_cast<int>(queues_.size());
  Worker* self = workers_[index].get();
  for (;;) {
    // Own queue first (shard affinity), then steal round-robin from peers
    // so skewed routing cannot strand work behind one busy worker.
    for (int k = 0; k < num_queues; ++k) {
      const int w = (index + k) % num_queues;
      if (queues_[w]->TryPop(request)) {
        queued_.fetch_sub(1);
        if (k != 0) self->steals.fetch_add(1, std::memory_order_relaxed);
        if (space_waiters_.load() > 0) {
          std::lock_guard<std::mutex> lock(wake_mu_);
          space_cv_.notify_all();
        }
        return true;
      }
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    sleepers_.fetch_add(1);
    work_cv_.wait(lock, [&] {
      return queued_.load() > 0 ||
             (stopping_.load() && in_flight_.load() == 0);
    });
    sleepers_.fetch_sub(1);
    if (queued_.load() == 0 && stopping_.load() && in_flight_.load() == 0) {
      return false;
    }
  }
}

void DocService::Execute(const ServeRequest& request, Worker* worker) {
  const uint64_t start_ns = NowNs();
  if (request.deadline_ns != 0 && start_ns >= request.deadline_ns) {
    // Expired while queued: the answer is useless, so complete without
    // decoding a byte (DESIGN.md §14). Counts as a request and a failure
    // so per-worker accounting stays consistent with delivery.
    expired_.fetch_add(1, std::memory_order_relaxed);
    worker->requests.fetch_add(1, std::memory_order_relaxed);
    worker->failures.fetch_add(1, std::memory_order_relaxed);
    worker->latency.Record(start_ns - request.enqueue_ns);
    CompleteRejected(request,
                     Status::DeadlineExceeded("deadline passed in queue"));
    return;
  }
  const double cpu_start = ThreadCpuSeconds();
  GetResult result =
      request.is_range
          ? DoGetRange(request.id, request.offset, request.length, worker)
          : DoGet(request.id, worker);
  worker->requests.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    worker->failures.fetch_add(1, std::memory_order_relaxed);
  }
  const double cpu_seconds = ThreadCpuSeconds() - cpu_start;
  worker->cpu_ns.fetch_add(static_cast<uint64_t>(cpu_seconds * 1e9),
                           std::memory_order_relaxed);
  // Publish the worker-owned SimDisk totals so a mid-flight Stats() reads
  // a consistent post-request snapshot without stalling the next decode.
  worker->published_disk_ns.store(
      static_cast<uint64_t>(worker->disk.total_seconds() * 1e9),
      std::memory_order_relaxed);
  worker->published_disk_bytes.store(worker->disk.total_bytes(),
                                     std::memory_order_relaxed);
  worker->published_disk_seeks.store(worker->disk.seeks(),
                                     std::memory_order_relaxed);
  const uint64_t end_ns = NowNs();
  // Feed the admission estimator: EWMA of wall service time. Lost
  // updates under contention are fine — the watermark needs recency, not
  // an exact mean.
  const uint64_t service_ns = end_ns - start_ns;
  const uint64_t ewma = ewma_service_ns_.load(std::memory_order_relaxed);
  ewma_service_ns_.store(
      ewma == 0 ? service_ns : (ewma * 15 + service_ns) / 16,
      std::memory_order_relaxed);
  worker->latency.Record(end_ns - request.enqueue_ns);
  if (request.promise != nullptr) {
    request.promise->set_value(std::move(result));
    delete request.promise;
  } else if (request.out != nullptr) {
    *request.out = std::move(result);
    if (request.batch != nullptr) request.batch->CountDown();
  }
  FinishOne();
}

void DocService::FinishOne() {
  if (in_flight_.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    idle_cv_.notify_all();
    if (stopping_.load()) work_cv_.notify_all();
  }
}

GetResult DocService::DoGet(size_t id, Worker* worker) {
  GetResult result;
  result.text = cache_.Get(id);
  if (result.text == nullptr) {
    // Decode runs lock-free: disk and scratch are worker-owned, and cache
    // admission below synchronizes only inside the cache's own stripe.
    std::string doc;
    result.status = archive_->Get(id, &doc, &worker->disk, &worker->scratch);
    if (result.status.ok()) {
      result.text = cache_.Insert(id, std::move(doc));
      // Close the decode-then-insert race against Delete: the decode ran
      // against an epoch pinned before the tombstone published, and the
      // eviction callback may already have fired (finding nothing to
      // erase) before the Insert above landed. Re-checking liveness after
      // the insert guarantees no tombstoned id stays cached once Delete
      // has returned. The caller still gets the bytes — its request
      // raced the delete and won under snapshot isolation.
      if (live_store_ != nullptr && !live_store_->IsLive(id)) {
        cache_.Erase(id);
      }
    }
  }
  return result;
}

GetResult DocService::DoGetRange(size_t id, size_t offset, size_t length,
                                 Worker* worker) {
  GetResult result;
  // A resident full document serves any range without touching the archive
  // (no disk charge: the cache is memory-resident by construction).
  if (std::shared_ptr<const std::string> doc = cache_.Get(id)) {
    std::string slice;
    if (offset < doc->size()) {
      slice.assign(*doc, offset, std::min(length, doc->size() - offset));
    }
    result.text = std::make_shared<const std::string>(std::move(slice));
  } else {
    std::string slice;
    result.status = archive_->GetRange(id, offset, length, &slice,
                                       &worker->disk, &worker->scratch);
    if (result.status.ok()) {
      result.text = std::make_shared<const std::string>(std::move(slice));
    }
  }
  return result;
}

void DocService::Drain() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [&] { return in_flight_.load() == 0; });
}

uint64_t DocService::EstimatedQueueDelayUs() const {
  const uint64_t queued = queued_.load(std::memory_order_relaxed);
  const uint64_t ewma_ns = ewma_service_ns_.load(std::memory_order_relaxed);
  return queued * ewma_ns / (1000 * static_cast<uint64_t>(workers_.size()));
}

uint32_t DocService::SuggestedRetryAfterMs() const {
  const uint64_t ms = EstimatedQueueDelayUs() / 1000;
  return static_cast<uint32_t>(
      std::min<uint64_t>(std::max<uint64_t>(ms, 1), 1000));
}

ServiceStats DocService::Stats() const {
  ServiceStats stats;
  stats.num_threads = static_cast<int>(workers_.size());
  stats.cache = cache_.stats();
  stats.queued = queued_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  LatencyHistogram::Snapshot latency;
  for (const auto& worker : workers_) {
    stats.requests += worker->requests.load(std::memory_order_relaxed);
    stats.failures += worker->failures.load(std::memory_order_relaxed);
    stats.steals += worker->steals.load(std::memory_order_relaxed);
    const double disk_seconds =
        1e-9 * static_cast<double>(
                   worker->published_disk_ns.load(std::memory_order_relaxed));
    const double cpu_seconds =
        1e-9 * static_cast<double>(
                   worker->cpu_ns.load(std::memory_order_relaxed));
    stats.disk_seconds += disk_seconds;
    stats.disk_bytes +=
        worker->published_disk_bytes.load(std::memory_order_relaxed);
    stats.disk_seeks +=
        worker->published_disk_seeks.load(std::memory_order_relaxed);
    stats.cpu_seconds += cpu_seconds;
    stats.critical_path_seconds =
        std::max(stats.critical_path_seconds, cpu_seconds + disk_seconds);
    worker->latency.AddTo(&latency);
  }
  stats.latency_p50_us = 1e-3 * latency.ValueAtQuantile(0.50);
  stats.latency_p99_us = 1e-3 * latency.ValueAtQuantile(0.99);
  stats.latency_p999_us = 1e-3 * latency.ValueAtQuantile(0.999);
  return stats;
}

}  // namespace rlz
