#include "serve/doc_service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"  // ThreadCpuSeconds (shared with the build pipeline)

namespace rlz {

DocService::DocService(const Archive* archive, const DocServiceOptions& options)
    : archive_(archive),
      cache_(options.cache_bytes, options.cache_shards) {
  RLZ_CHECK(archive != nullptr);
  const int num_threads = std::max(1, options.num_threads);
  workers_.reserve(num_threads);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(options.disk));
  }
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&DocService::WorkerLoop, this, i);
  }
}

DocService::~DocService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void DocService::WorkerLoop(int index) {
  Worker* worker = workers_[index].get();
  for (;;) {
    std::packaged_task<GetResult(Worker*)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

std::future<GetResult> DocService::Submit(
    std::function<GetResult(Worker*)> fn) {
  std::packaged_task<GetResult(Worker*)> task(std::move(fn));
  std::future<GetResult> result = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++in_flight_;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return result;
}

std::future<GetResult> DocService::Get(size_t id) {
  return Submit([this, id](Worker* worker) { return DoGet(id, worker); });
}

std::vector<GetResult> DocService::MultiGet(const std::vector<size_t>& ids) {
  std::vector<std::future<GetResult>> futures;
  futures.reserve(ids.size());
  for (size_t id : ids) futures.push_back(Get(id));
  std::vector<GetResult> results;
  results.reserve(ids.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::future<GetResult> DocService::GetRange(size_t id, size_t offset,
                                            size_t length) {
  return Submit([this, id, offset, length](Worker* worker) {
    return DoGetRange(id, offset, length, worker);
  });
}

GetResult DocService::DoGet(size_t id, Worker* worker) {
  const double cpu_start = ThreadCpuSeconds();
  GetResult result;
  result.text = cache_.Get(id);
  if (result.text == nullptr) {
    std::string doc;
    std::lock_guard<std::mutex> lock(worker->mu);
    result.status = archive_->Get(id, &doc, &worker->disk, &worker->scratch);
    if (result.status.ok()) {
      result.text = cache_.Insert(id, std::move(doc));
    }
  }
  std::lock_guard<std::mutex> lock(worker->mu);
  ++worker->requests;
  if (!result.ok()) ++worker->failures;
  worker->cpu_seconds += ThreadCpuSeconds() - cpu_start;
  return result;
}

GetResult DocService::DoGetRange(size_t id, size_t offset, size_t length,
                                 Worker* worker) {
  const double cpu_start = ThreadCpuSeconds();
  GetResult result;
  // A resident full document serves any range without touching the archive
  // (no disk charge: the cache is memory-resident by construction).
  if (std::shared_ptr<const std::string> doc = cache_.Get(id)) {
    std::string slice;
    if (offset < doc->size()) {
      slice.assign(*doc, offset, std::min(length, doc->size() - offset));
    }
    result.text = std::make_shared<const std::string>(std::move(slice));
  } else {
    std::string slice;
    std::lock_guard<std::mutex> lock(worker->mu);
    result.status = archive_->GetRange(id, offset, length, &slice,
                                       &worker->disk, &worker->scratch);
    if (result.status.ok()) {
      result.text = std::make_shared<const std::string>(std::move(slice));
    }
  }
  std::lock_guard<std::mutex> lock(worker->mu);
  ++worker->requests;
  if (!result.ok()) ++worker->failures;
  worker->cpu_seconds += ThreadCpuSeconds() - cpu_start;
  return result;
}

void DocService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return in_flight_ == 0; });
}

ServiceStats DocService::Stats() const {
  ServiceStats stats;
  stats.num_threads = static_cast<int>(workers_.size());
  stats.cache = cache_.stats();
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    stats.requests += worker->requests;
    stats.failures += worker->failures;
    stats.disk_seconds += worker->disk.total_seconds();
    stats.disk_bytes += worker->disk.total_bytes();
    stats.disk_seeks += worker->disk.seeks();
    stats.cpu_seconds += worker->cpu_seconds;
    stats.critical_path_seconds =
        std::max(stats.critical_path_seconds,
                 worker->cpu_seconds + worker->disk.total_seconds());
  }
  return stats;
}

}  // namespace rlz
