#ifndef RLZ_SERVE_CORPUS_EPOCH_H_
#define RLZ_SERVE_CORPUS_EPOCH_H_

/// \file
/// Immutable epoch snapshots of a live sharded corpus (DESIGN.md §11).
///
/// A CorpusEpoch is the unit of isolation between the mutation path and
/// the serving path: every reader pins one epoch (a shared_ptr copy) for
/// the duration of a request and decodes exclusively against that
/// snapshot, so an Append, Delete, tail seal, or background compaction
/// swap can never race a decode in flight. Epochs share unchanged state
/// structurally — sealed shards, tombstone bitmaps, and tail documents
/// are carried by shared_ptr from one epoch to the next — so publishing
/// a new epoch copies pointers, never payload bytes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rlz_archive.h"
#include "io/sim_disk.h"
#include "serve/shard_router.h"
#include "store/decode_scratch.h"
#include "util/bitmap.h"
#include "util/status.h"

namespace rlz {

/// An immutable snapshot of the open tail segment: the raw bytes of every
/// document appended since the last seal, in append order. The tail is
/// the live store's memtable — documents are served from these
/// memory-resident bytes (no decode, no simulated disk charge) until the
/// segment seals into a compressed shard. Snapshots share document
/// strings structurally: appending copies the pointer vector, never the
/// text.
struct TailSegment {
  /// The appended documents, in id order (doc `sealed_docs + i` is
  /// `docs[i]`).
  std::vector<std::shared_ptr<const std::string>> docs;
  /// Total raw bytes across `docs`.
  uint64_t bytes = 0;
};

/// One immutable snapshot of a live ShardedStore: the sealed compressed
/// shards, the doc-id router over them, per-shard tombstone bitmaps, and
/// a snapshot of the open tail segment. All state is immutable — readers
/// holding an epoch observe byte-identical documents no matter what the
/// mutation path publishes after them (DESIGN.md §11).
///
/// Doc-id model: ids are dense and permanent. Sealed shards own
/// [0, sealed_docs()); tail documents continue at sealed_docs(). Deleting
/// a document tombstones its id (Get returns NotFound) but never
/// reassigns it, so an id means the same bytes in every epoch that can
/// resolve it.
class CorpusEpoch {
 public:
  /// Monotone publication counter: epoch N+1 supersedes epoch N. The
  /// initial build publishes sequence 0.
  uint64_t sequence() const { return sequence_; }

  /// Total documents this epoch can resolve (sealed + tail), including
  /// tombstoned ids.
  size_t num_docs() const { return sealed_docs() + tail_docs(); }
  /// Documents owned by sealed shards.
  size_t sealed_docs() const { return router_->num_docs(); }
  /// Documents in the tail snapshot.
  size_t tail_docs() const {
    return tail_ == nullptr ? 0 : tail_->docs.size();
  }
  /// Tombstoned ids in this epoch (sealed + tail).
  uint64_t deleted_docs() const { return deleted_docs_; }
  /// Documents that Get would serve (num_docs() - deleted_docs()).
  size_t live_docs() const {
    return num_docs() - static_cast<size_t>(deleted_docs_);
  }

  /// True if `id` is tombstoned in this epoch (`id` must be < num_docs()).
  bool IsDeleted(size_t id) const;

  /// Decodes document `id` from this snapshot. Sealed ids decode against
  /// their shard (charging `disk` at the shard's device extent); tail ids
  /// copy the memory-resident raw bytes (no disk charge). Returns
  /// OutOfRange for an id this epoch cannot resolve and NotFound for a
  /// tombstoned id.
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const;

  /// As Get, but retrieves only bytes [offset, offset+length), clamped to
  /// the document end — the snippet path.
  Status GetRange(size_t id, size_t offset, size_t length, std::string* text,
                  SimDisk* disk, DecodeScratch* scratch) const;

  /// Number of sealed shards.
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Sealed shard `s` (s must be < num_shards()).
  const RlzArchive& shard(int s) const { return *shards_[s]; }
  /// Shared handle to sealed shard `s` — lets a compactor decode from a
  /// pinned shard while later epochs have already replaced it.
  std::shared_ptr<const RlzArchive> shard_ptr(int s) const {
    return shards_[static_cast<size_t>(s)];
  }
  /// Rewrite generation of shard `s`: 0 when first sealed, +1 per
  /// compaction that swapped a rewrite in.
  uint64_t shard_generation(int s) const {
    return generations_[static_cast<size_t>(s)];
  }
  /// The doc-id → shard map over the sealed shards.
  const ShardRouter& router() const { return *router_; }
  /// Shared handle to the router (the serving layer's routing snapshot).
  std::shared_ptr<const ShardRouter> router_ptr() const { return router_; }
  /// The tail snapshot; may be null when no documents are unsealed.
  const TailSegment* tail() const { return tail_.get(); }
  /// Tombstone bitmap of sealed shard `s`; null when the shard has no
  /// tombstones. Bit i covers the shard-local document i.
  const Bitmap* tombstones(int s) const {
    return tombstones_[static_cast<size_t>(s)].get();
  }
  /// Tombstone bitmap over tail documents (bit i covers tail doc i); null
  /// when no tail document is tombstoned. May address fewer bits than
  /// tail_docs() — ids past its end are live.
  const Bitmap* tail_tombstones() const { return tail_tombstones_.get(); }

  /// Sum of sealed shard bytes plus raw tail bytes — the epoch's "Enc."
  /// numerator.
  uint64_t stored_bytes() const;

 private:
  friend class ShardedStore;

  CorpusEpoch() = default;

  uint64_t sequence_ = 0;
  std::vector<std::shared_ptr<const RlzArchive>> shards_;
  std::vector<uint64_t> generations_;  // parallel to shards_
  std::shared_ptr<const ShardRouter> router_;
  // Parallel to shards_; a null entry means "no tombstones in this shard".
  std::vector<std::shared_ptr<const Bitmap>> tombstones_;
  std::shared_ptr<const Bitmap> tail_tombstones_;  // null = none
  std::shared_ptr<const TailSegment> tail_;        // null = empty tail
  uint64_t deleted_docs_ = 0;
};

}  // namespace rlz

#endif  // RLZ_SERVE_CORPUS_EPOCH_H_
