#ifndef RLZ_SERVE_DOC_SERVICE_H_
#define RLZ_SERVE_DOC_SERVICE_H_

/// \file
/// The serving layer's request executor: thread pool, decode cache, service stats.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/sim_disk.h"
#include "store/archive.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace rlz {

/// Knobs for DocService.
struct DocServiceOptions {
  /// Worker threads executing requests. Each worker owns a private SimDisk
  /// (the Archive contract requires one disk per concurrent caller) — the
  /// model is one spindle per worker, as a sharded deployment would
  /// provision.
  int num_threads = 4;
  /// Decoded-document cache capacity; 0 disables the cache.
  uint64_t cache_bytes = 32 << 20;
  /// Mutex stripes of the cache (rounded up to a power of two). Documents
  /// larger than cache_bytes / cache_shards are served but never cached —
  /// lower this for collections of multi-megabyte documents.
  int cache_shards = 16;
  /// Simulated-disk parameters for each worker's private SimDisk.
  SimDiskOptions disk;
};

/// Outcome of one request. `text` is the full document for Get and the
/// requested slice for GetRange; on a cache hit it aliases the cached copy
/// (archives are immutable, so shared bytes are safe).
struct GetResult {
  /// Outcome of the request; text is valid only when ok().
  Status status = Status::OK();
  /// The retrieved bytes (possibly shared with the decode cache).
  std::shared_ptr<const std::string> text;

  /// True when the request succeeded.
  bool ok() const { return status.ok(); }
};

/// Aggregated service counters; exact once Drain() has returned (Stats()
/// may also be called mid-flight — counters are internally consistent per
/// worker but requests may land between worker snapshots).
struct ServiceStats {
  /// Requests executed (Get + MultiGet elements + GetRange).
  uint64_t requests = 0;
  /// Requests that returned a non-OK status.
  uint64_t failures = 0;
  /// Decode-cache counters (hits/misses/evictions).
  LruCache::Stats cache;
  /// Simulated disk time summed over per-worker SimDisks.
  double disk_seconds = 0.0;
  /// Bytes charged to the per-worker SimDisks.
  uint64_t disk_bytes = 0;
  /// Seeks charged to the per-worker SimDisks.
  uint64_t disk_seeks = 0;
  /// Thread CPU time consumed by workers while executing requests.
  double cpu_seconds = 0.0;
  /// Modeled service makespan: the busiest worker's CPU + simulated-disk
  /// time. docs/sec against this is the throughput of a machine with one
  /// core and one spindle per worker — the same simulated-wall-time
  /// doctrine as the paper benches (DESIGN.md §4, §6), so the number is
  /// meaningful even on a single-core CI host.
  double critical_path_seconds = 0.0;
  /// Worker-pool size the service ran with.
  int num_threads = 0;
};

/// The request executor of the serving layer (DESIGN.md §6): a fixed
/// thread pool in front of any (thread-safe) Archive, with a sharded LRU
/// cache of decoded documents so hot documents skip factor decoding
/// entirely. Clients may call Get/MultiGet/GetRange from any number of
/// threads; requests are served FIFO by the pool.
class DocService {
 public:
  /// Starts the worker pool in front of `archive` (not owned; must be
  /// thread-safe and outlive the service).
  explicit DocService(const Archive* archive,
                      const DocServiceOptions& options = {});
  /// Drains outstanding requests, then joins the workers.
  ~DocService();

  /// Not copyable: owns threads and per-worker accounting.
  DocService(const DocService&) = delete;
  /// Not assignable: owns threads and per-worker accounting.
  DocService& operator=(const DocService&) = delete;

  /// Asynchronously retrieves one document.
  std::future<GetResult> Get(size_t id);

  /// Retrieves a batch, blocking until every result is ready. Results are
  /// positionally parallel to `ids`; individual failures are per-result.
  std::vector<GetResult> MultiGet(const std::vector<size_t>& ids);

  /// Asynchronously retrieves bytes [offset, offset+length) of a document
  /// (the snippet path). Served from the decode cache when the whole
  /// document is resident; otherwise uses the archive's partial decode and
  /// does not populate the cache.
  std::future<GetResult> GetRange(size_t id, size_t offset, size_t length);

  /// Blocks until the service is momentarily idle (no queued or executing
  /// requests). Under sustained submission from other threads this keeps
  /// waiting — call it at a traffic boundary (as the bench and tests do)
  /// to make Stats() exact.
  void Drain();

  /// Aggregated counters (exact once Drain() has returned).
  ServiceStats Stats() const;
  /// The archive requests are served from.
  const Archive& archive() const { return *archive_; }

 private:
  struct Worker {
    explicit Worker(const SimDiskOptions& disk_options)
        : disk(disk_options) {}
    mutable std::mutex mu;  // guards disk, scratch + the counters below
    SimDisk disk;
    // Per-worker reusable decode buffers (DESIGN.md §9): after warm-up a
    // worker serves requests with zero decode-side heap allocations.
    DecodeScratch scratch;
    double cpu_seconds = 0.0;
    uint64_t requests = 0;
    uint64_t failures = 0;
  };

  std::future<GetResult> Submit(std::function<GetResult(Worker*)> fn);
  void WorkerLoop(int index);

  GetResult DoGet(size_t id, Worker* worker);
  GetResult DoGetRange(size_t id, size_t offset, size_t length,
                       Worker* worker);

  const Archive* archive_;
  LruCache cache_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::packaged_task<GetResult(Worker*)>> queue_;
  uint64_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rlz

#endif  // RLZ_SERVE_DOC_SERVICE_H_
