#ifndef RLZ_SERVE_DOC_SERVICE_H_
#define RLZ_SERVE_DOC_SERVICE_H_

/// \file
/// The serving layer's request executor: sharded request queues, work
/// stealing, batched completion, decode cache, service stats
/// (DESIGN.md §6, §10).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/sim_disk.h"
#include "serve/request_queue.h"
#include "store/archive.h"
#include "util/histogram.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace rlz {

class ShardRouter;
class ShardedStore;

/// Knobs for DocService. Constructors run every instance through
/// Validated(), so out-of-range values are clamped rather than trusted.
struct DocServiceOptions {
  /// Worker threads executing requests. Each worker owns a private SimDisk
  /// (the Archive contract requires one disk per concurrent caller) — the
  /// model is one spindle per worker, as a sharded deployment would
  /// provision. Floor: 1.
  int num_threads = 4;
  /// Decoded-document cache capacity; 0 disables the cache. A non-zero
  /// capacity too small to ever admit an entry (at most
  /// LruCache::kEntryOverheadBytes) is clamped to 0 — a cache that can
  /// never hold anything is a disabled cache, stated rather than silent.
  uint64_t cache_bytes = 32 << 20;
  /// Mutex stripes of the cache (rounded up to a power of two). Documents
  /// larger than cache_bytes / cache_shards are served but never cached —
  /// lower this for collections of multi-megabyte documents. Floor: 1.
  int cache_shards = 16;
  /// Capacity of each worker's bounded request queue — the service's
  /// backpressure unit: when every queue is full, submission blocks until
  /// a worker frees a slot, so queued work is bounded by
  /// num_threads * queue_depth regardless of producer count. Floor: 1.
  /// This is the kHigh class's capacity; lower classes get the fractions
  /// below, so high-priority traffic always has headroom that bulk
  /// traffic cannot consume (DESIGN.md §14).
  int queue_depth = 1024;
  /// kNormal's share of queue_depth (floor: one slot). Defaults just
  /// under 1 so a normal-priority flood can never take the last slots a
  /// high-priority burst needs.
  double normal_queue_fraction = 0.9;
  /// kBestEffort's share of queue_depth (floor: one slot). Half by
  /// default: bulk traffic rides along at light load and hits its cap —
  /// shedding instead of queue-building — under heavy load.
  double best_effort_queue_fraction = 0.5;
  /// Queue-latency watermark (microseconds): when the estimated queue
  /// wait (queued requests × EWMA service time / workers) exceeds this,
  /// newly submitted kBestEffort requests are shed immediately with
  /// Unavailable instead of queued (DESIGN.md §14). Higher classes are
  /// never shed by the watermark. 0 disables watermark shedding (class
  /// caps still apply). Default 200 ms — several client round-trips, so
  /// a shed+retry beats waiting it out.
  uint64_t shed_queue_delay_us = 200'000;
  /// Simulated-disk parameters for each worker's private SimDisk.
  SimDiskOptions disk;

  /// Returns a copy with every knob clamped to its documented floor (see
  /// the per-field comments). The DocService constructor applies this;
  /// it is public so callers and tests can see the effective values.
  DocServiceOptions Validated() const;
};

/// Outcome of one request. `text` is the full document for Get and the
/// requested slice for GetRange; on a cache hit it aliases the cached copy
/// (archives are immutable, so shared bytes are safe).
struct GetResult {
  /// Outcome of the request; text is valid only when ok().
  Status status = Status::OK();
  /// The retrieved bytes (possibly shared with the decode cache).
  std::shared_ptr<const std::string> text;

  /// True when the request succeeded.
  bool ok() const { return status.ok(); }
};

/// Aggregated service counters; exact once Drain() has returned. Stats()
/// may also be called mid-flight — workers publish their counters as
/// atomics, so reading them never blocks serving (counters are internally
/// consistent per worker but requests may land between worker snapshots).
struct ServiceStats {
  /// Requests executed (Get + MultiGet elements + GetRange).
  uint64_t requests = 0;
  /// Requests that returned a non-OK status.
  uint64_t failures = 0;
  /// Requests a worker popped from another worker's queue.
  uint64_t steals = 0;
  /// Best-effort requests shed at admission (watermark crossed or class
  /// rings full); each completed immediately with Unavailable.
  uint64_t shed = 0;
  /// Requests whose deadline passed before a worker reached them;
  /// completed kDeadlineExceeded without decoding (DESIGN.md §14).
  uint64_t expired = 0;
  /// Requests sitting in worker queues at snapshot time (enqueued, not
  /// yet popped) — the live backlog an operator polls a running server
  /// for; exact at a traffic boundary, racy mid-flight like the rest.
  uint64_t queued = 0;
  /// Decode-cache counters (hits/misses/evictions).
  LruCache::Stats cache;
  /// Simulated disk time summed over per-worker SimDisks.
  double disk_seconds = 0.0;
  /// Bytes charged to the per-worker SimDisks.
  uint64_t disk_bytes = 0;
  /// Seeks charged to the per-worker SimDisks.
  uint64_t disk_seeks = 0;
  /// Thread CPU time consumed by workers while executing requests.
  double cpu_seconds = 0.0;
  /// Modeled service makespan: the busiest worker's CPU + simulated-disk
  /// time. docs/sec against this is the throughput of a machine with one
  /// core and one spindle per worker — the same simulated-wall-time
  /// doctrine as the paper benches (DESIGN.md §4, §6), so the number is
  /// meaningful even on a single-core CI host.
  double critical_path_seconds = 0.0;
  /// Request latency (enqueue to completion, microseconds): median.
  double latency_p50_us = 0.0;
  /// Request latency: 99th percentile.
  double latency_p99_us = 0.0;
  /// Request latency: 99.9th percentile.
  double latency_p999_us = 0.0;
  /// Worker-pool size the service ran with.
  int num_threads = 0;
};

/// One request of a mixed batched submission: a whole document
/// (is_range false, offset/length ignored) or a byte range (the snippet
/// path). Plain data so network front ends can stage requests of either
/// kind into one coalesced submission (DESIGN.md §13).
struct BatchItem {
  /// Document id.
  size_t id = 0;
  /// Range start (is_range only).
  size_t offset = 0;
  /// Range length (is_range only).
  size_t length = 0;
  /// False: whole-document Get; true: GetRange.
  bool is_range = false;
  /// Service class: queue share, pop order, shed eligibility
  /// (DESIGN.md §14).
  RequestPriority priority = RequestPriority::kNormal;
  /// Absolute steady-clock expiry (ns); 0 = none. Expired requests
  /// complete kDeadlineExceeded without decoding.
  uint64_t deadline_ns = 0;
};

/// A reusable completion buffer for batched submission (DESIGN.md §10).
/// DocService::SubmitBatch fills `results()` positionally and workers
/// count the batch down as they finish; Wait() blocks until every result
/// has landed. One ServeBatch belongs to one submitting caller at a time;
/// reusing it across submissions reuses its buffers, so the steady-state
/// request path allocates nothing for completion plumbing. The batch must
/// outlive its in-flight requests — the destructor enforces this by
/// waiting.
class ServeBatch {
 public:
  ServeBatch() = default;
  /// Waits for any in-flight requests (workers write into this object).
  ~ServeBatch() { Wait(); }

  /// Not copyable/movable: workers hold pointers into this object.
  ServeBatch(const ServeBatch&) = delete;
  /// Not assignable, for the same reason.
  ServeBatch& operator=(const ServeBatch&) = delete;

  /// Blocks until every request of the current submission has completed,
  /// then returns the results, positionally parallel to the submitted
  /// ids. Idempotent; trivially returns on an idle batch.
  const std::vector<GetResult>& Wait();

  /// True when no submission is in flight (Wait() would not block).
  bool done() const {
    return remaining_.load(std::memory_order_acquire) == 0;
  }

  /// Results of the last submission (valid once Wait() has returned).
  const std::vector<GetResult>& results() const { return results_; }

  /// Number of requests in the current/last submission.
  size_t size() const { return results_.size(); }

 private:
  friend class DocService;

  /// Worker-side completion: one count per delivered result. The final
  /// decrement wakes Wait(). Runs entirely under mu_ so that a waiter
  /// returning from Wait() (and possibly destroying the batch) can never
  /// race a completing worker still inside this object.
  void CountDown();

  std::vector<GetResult> results_;
  std::vector<ServeRequest> stage_;   // per-worker submission staging
  std::vector<uint32_t> routes_;      // per-id destination worker
  std::atomic<size_t> remaining_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// The request executor of the serving layer (DESIGN.md §6, §10): a fixed
/// worker pool in front of any (thread-safe) Archive, with a sharded LRU
/// cache of decoded documents so hot documents skip factor decoding
/// entirely. Clients may call Get/MultiGet/GetRange/SubmitBatch from any
/// number of threads.
///
/// Concurrency skeleton: every worker owns a bounded request queue;
/// submission routes each request to the worker affine to its shard (via
/// the archive's ShardRouter when it has one) and enqueues a whole
/// batch's worth per queue under one lock. Idle workers steal from peers,
/// so skewed traffic cannot strand work behind one queue. Workers decode
/// without holding any lock — the scratch and SimDisk are worker-owned,
/// counters are atomics, and cache admission happens outside any critical
/// section — so Stats() never stalls serving.
class DocService {
 public:
  /// Starts the worker pool in front of `archive` (not owned; must be
  /// thread-safe and outlive the service). A live ShardedStore archive is
  /// recognized: the service routes from its epoch snapshots and
  /// registers as its eviction listener, so deletes invalidate cached
  /// decodes (DESIGN.md §11).
  explicit DocService(const Archive* archive,
                      const DocServiceOptions& options = {});
  /// Unregisters the eviction listener (if any), Shutdown() (drains
  /// accepted requests), then joins the workers.
  ~DocService();

  /// Not copyable: owns threads and per-worker accounting.
  DocService(const DocService&) = delete;
  /// Not assignable: owns threads and per-worker accounting.
  DocService& operator=(const DocService&) = delete;

  /// Asynchronously retrieves one document. Convenience path: allocates
  /// a promise per call; throughput-sensitive callers should batch
  /// through SubmitBatch instead.
  std::future<GetResult> Get(size_t id);

  /// Retrieves a batch, blocking until every result is ready. Results are
  /// positionally parallel to `ids`; individual failures are per-result.
  /// Implemented over SubmitBatch with a local batch.
  std::vector<GetResult> MultiGet(const std::vector<size_t>& ids);

  /// Asynchronously retrieves bytes [offset, offset+length) of a document
  /// (the snippet path). Served from the decode cache when the whole
  /// document is resident; otherwise uses the archive's partial decode and
  /// does not populate the cache.
  std::future<GetResult> GetRange(size_t id, size_t offset, size_t length);

  /// Batched submission (the steady-state serving path): routes each id
  /// to its shard-affine worker queue, enqueueing per-queue groups under
  /// one lock each, and arms `batch` to collect results positionally.
  /// Returns once everything is enqueued (blocking only when every queue
  /// is full — backpressure); call batch->Wait() for completion. A reused
  /// batch re-submits with zero allocations once its buffers are warm.
  /// After Shutdown(), every request completes immediately with
  /// Unavailable.
  void SubmitBatch(const std::vector<size_t>& ids, ServeBatch* batch);

  /// As above, over a raw id array.
  void SubmitBatch(const size_t* ids, size_t count, ServeBatch* batch);

  /// As above, over mixed whole-document and range requests — the
  /// network front end's coalescing path (DESIGN.md §13): requests
  /// arriving across connections are staged as BatchItems and submitted
  /// as one batch, so ranges ride the same shard-affine queues and
  /// completion buffer as whole documents.
  void SubmitBatch(const BatchItem* items, size_t count, ServeBatch* batch);

  /// Blocks until the service is momentarily idle (no queued or executing
  /// requests). Under sustained submission from other threads this keeps
  /// waiting — call it at a traffic boundary (as the bench and tests do)
  /// to make Stats() exact.
  void Drain();

  /// Graceful stop: new submissions complete immediately with
  /// Unavailable, every already-accepted request is served, then the
  /// workers are joined. Idempotent and safe to call concurrently with
  /// submissions; after it returns, Stats() is exact and the object is
  /// still valid (only destruction frees it).
  void Shutdown();

  /// Estimated wait (microseconds) a request entering the queues now
  /// would see: queued requests × EWMA per-request service time / pool
  /// size. Racy snapshot, cheap (three relaxed loads) — this is the
  /// admission watermark's input and the overload signal front ends poll
  /// (DESIGN.md §14).
  uint64_t EstimatedQueueDelayUs() const;

  /// Retry-after hint (milliseconds) to attach to shed responses: the
  /// estimated queue delay, clamped to [1 ms, 1 s] so clients neither
  /// hammer a saturated service nor stall on a transient spike.
  uint32_t SuggestedRetryAfterMs() const;

  /// Aggregated counters (exact once Drain() has returned); never blocks
  /// the workers.
  ServiceStats Stats() const;
  /// The archive requests are served from.
  const Archive& archive() const { return *archive_; }
  /// The validated options this service runs with.
  const DocServiceOptions& options() const { return options_; }

 private:
  struct Worker {
    explicit Worker(const SimDiskOptions& disk_options)
        : disk(disk_options) {}
    // disk and scratch are owned by the worker thread while serving; the
    // published_* atomics mirror the disk's totals after every request so
    // Stats() reads them without synchronizing with a decode in flight.
    SimDisk disk;
    DecodeScratch scratch;
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> cpu_ns{0};
    std::atomic<uint64_t> published_disk_ns{0};
    std::atomic<uint64_t> published_disk_bytes{0};
    std::atomic<uint64_t> published_disk_seeks{0};
    LatencyHistogram latency;
  };

  /// Destination worker for a doc id: its shard modulo the pool when
  /// `router` is non-null, id modulo the pool otherwise.
  int WorkerOf(size_t id, const ShardRouter* router) const;
  /// The routing snapshot for one submission: the live store's current
  /// epoch router (refreshed per call, so appended shards route affinely
  /// once published — a stale snapshot is a locality miss, never an
  /// error), or null for non-sharded archives.
  std::shared_ptr<const ShardRouter> RouterSnapshot() const;
  /// Accounts `n` accepted requests; false (with the count rolled back)
  /// when the service is stopping.
  bool Accept(size_t n);
  /// The shared core of the SubmitBatch overloads: `view[i]` yields the
  /// BatchItem for position i (materialized nowhere — the ids overload
  /// adapts its array on the fly, staying allocation-free).
  template <typename View>
  void SubmitBatchImpl(View view, size_t count, ServeBatch* batch);
  /// Enqueues one routed request, spilling to peers when the preferred
  /// queue is full. Returns true once enqueued. kHigh/kNormal block until
  /// a slot frees (backpressure); kBestEffort returns false when its
  /// class ring is full on every queue — the caller sheds (DESIGN.md
  /// §14), so a bulk flood can never stall a submitting thread.
  bool PushWithBackpressure(const ServeRequest& request, int dest);
  /// Completes an admitted-then-rejected request (shed or expired) with
  /// `status`, off the worker path: delivers to its promise or
  /// batch slot and runs FinishOne().
  void CompleteRejected(const ServeRequest& request, Status status);
  /// Wakes sleeping workers if any.
  void NotifyWorkers();
  /// Pops the next request for worker `index` (own queue first, then
  /// steals); sleeps when idle; returns false to exit (stopped + drained).
  bool NextRequest(int index, ServeRequest* request);
  /// Decodes, delivers, and accounts one request on `worker`.
  void Execute(const ServeRequest& request, Worker* worker);
  /// Completion bookkeeping shared by served and rejected requests.
  void FinishOne();

  GetResult DoGet(size_t id, Worker* worker);
  GetResult DoGetRange(size_t id, size_t offset, size_t length,
                       Worker* worker);
  void WorkerLoop(int index);

  const Archive* archive_;
  DocServiceOptions options_;  // validated copy
  LruCache cache_;
  // Non-null when the archive is a live ShardedStore: the service then
  // routes from per-submission epoch snapshots, registers itself as the
  // store's eviction listener (Delete/compaction erase stale cache
  // entries), and re-checks liveness after every cache insert.
  const ShardedStore* live_store_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<BoundedRequestQueue>> queues_;

  std::atomic<uint64_t> in_flight_{0};  // accepted, not yet completed
  std::atomic<uint64_t> queued_{0};     // enqueued, not yet popped
  std::atomic<uint64_t> shed_{0};       // best-effort sheds at admission
  std::atomic<uint64_t> expired_{0};    // deadline passed while queued
  // EWMA of per-request wall service time (ns), e ← (15e + sample)/16;
  // racy read-modify-write by design — the estimate needs no precision,
  // only recency.
  std::atomic<uint64_t> ewma_service_ns_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<int> sleepers_{0};        // workers blocked in NextRequest
  std::atomic<int> space_waiters_{0};   // producers blocked on full queues

  std::mutex wake_mu_;
  std::condition_variable work_cv_;   // workers: work arrived / exit
  std::condition_variable space_cv_;  // producers: a queue slot freed
  std::condition_variable idle_cv_;   // Drain/Shutdown: in_flight_ == 0

  std::mutex join_mu_;  // guards joined_ (Shutdown is idempotent)
  bool joined_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rlz

#endif  // RLZ_SERVE_DOC_SERVICE_H_
