#include "serve/corpus_epoch.h"

#include <algorithm>

#include "serve/sharded_store.h"
#include "store/doc_map.h"
#include "util/logging.h"

namespace rlz {
namespace {

// True if bit `i` is set in `bm` — where a null or short bitmap means
// "not tombstoned" (tombstone bitmaps are sized when the first delete
// lands, and a tail bitmap may predate later appends).
bool TestTombstone(const Bitmap* bm, size_t i) {
  return bm != nullptr && i < bm->size() && bm->Test(i);
}

}  // namespace

bool CorpusEpoch::IsDeleted(size_t id) const {
  const size_t sealed = sealed_docs();
  if (id < sealed) {
    const size_t s = router_->shard_of(id);
    return TestTombstone(tombstones_[s].get(), id - router_->start(s));
  }
  return TestTombstone(tail_tombstones_.get(), id - sealed);
}

Status CorpusEpoch::Get(size_t id, std::string* doc, SimDisk* disk,
                        DecodeScratch* scratch) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  if (IsDeleted(id)) {
    return Status::NotFound("sharded store: document deleted");
  }
  const size_t sealed = sealed_docs();
  if (id >= sealed) {
    // Tail documents are raw, memory-resident bytes — the store's
    // memtable. No decode, no simulated disk charge (DESIGN.md §11).
    doc->assign(*tail_->docs[id - sealed]);
    return Status::OK();
  }
  const size_t s = router_->shard_of(id);
  const size_t local = id - router_->start(s);
  const RlzArchive& shard = *shards_[s];
  if (disk != nullptr) {
    // Charge the factor-stream read at the shard's device extent, exactly
    // as an unsharded archive would at shard-local offsets.
    const DocMap& map = shard.doc_map();
    disk->Read(ShardedStore::kSimDeviceSpacing * s + map.offset(local),
               map.size(local));
  }
  return shard.Get(local, doc, /*disk=*/nullptr, scratch);
}

Status CorpusEpoch::GetRange(size_t id, size_t offset, size_t length,
                             std::string* text, SimDisk* disk,
                             DecodeScratch* scratch) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  if (IsDeleted(id)) {
    return Status::NotFound("sharded store: document deleted");
  }
  const size_t sealed = sealed_docs();
  if (id >= sealed) {
    const std::string& raw = *tail_->docs[id - sealed];
    text->clear();
    if (offset < raw.size()) {
      text->assign(raw, offset, std::min(length, raw.size() - offset));
    }
    return Status::OK();
  }
  const size_t s = router_->shard_of(id);
  const size_t local = id - router_->start(s);
  const RlzArchive& shard = *shards_[s];
  if (disk != nullptr) {
    const DocMap& map = shard.doc_map();
    disk->Read(ShardedStore::kSimDeviceSpacing * s + map.offset(local),
               map.size(local));
  }
  return shard.GetRange(local, offset, length, text, /*disk=*/nullptr,
                        scratch);
}

uint64_t CorpusEpoch::stored_bytes() const {
  uint64_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->stored_bytes();
  if (tail_ != nullptr) bytes += tail_->bytes;
  return bytes;
}

}  // namespace rlz
