#include "serve/sharded_store.h"

#include <algorithm>

#include "build/archive_builder.h"
#include "build/build_pipeline.h"
#include "core/dictionary.h"
#include "util/logging.h"

namespace rlz {

std::unique_ptr<ShardedStore> ShardedStore::Build(
    const Collection& collection, const ShardedStoreOptions& options) {
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  const size_t ndocs = collection.num_docs();
  const size_t nshards = std::max<size_t>(
      1, std::min<size_t>(options.num_shards > 0 ? options.num_shards : 1,
                          std::max<size_t>(ndocs, 1)));

  // Contiguous ranges balanced by uncompressed bytes: shard s ends at the
  // first doc whose cumulative size reaches s+1 equal slices of the total.
  store->starts_.assign(1, 0);
  const uint64_t total = collection.size_bytes();
  uint64_t seen = 0;
  size_t doc = 0;
  for (size_t s = 0; s + 1 < nshards; ++s) {
    const uint64_t target = total * (s + 1) / nshards;
    // Leave enough docs for the remaining shards to be non-empty.
    const size_t max_end = ndocs - (nshards - 1 - s);
    while (doc < max_end && (seen < target || doc == store->starts_.back())) {
      seen += collection.doc_size(doc);
      ++doc;
    }
    store->starts_.push_back(doc);
  }
  store->starts_.push_back(ndocs);

  const int build_threads =
      options.build_threads > 0 ? options.build_threads
                                : static_cast<int>(nshards);
  const size_t shard_dict_bytes =
      std::max<size_t>(1, options.dict_bytes / nshards);

  store->shards_.resize(nshards);
  auto build_shard = [&](size_t s) {
    const size_t begin = store->starts_[s];
    const size_t end = store->starts_[s + 1];
    // A shard's documents are contiguous in the source collection, so
    // dictionary sampling and the streaming build both work off views —
    // no per-shard copy of the text (peak memory stays one corpus).
    const std::string_view shard_text =
        collection.data().substr(collection.doc_offset(begin),
                                 collection.doc_offset(end) -
                                     collection.doc_offset(begin));
    std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
        shard_text, shard_dict_bytes, options.sample_bytes);
    ArchiveBuilderOptions builder_options;
    builder_options.coding = options.coding;
    builder_options.num_threads = std::max(1, options.threads_per_shard);
    RlzArchiveBuilder builder(std::move(dict), builder_options);
    for (size_t i = begin; i < end; ++i) {
      builder.AddBorrowedDocument(collection.doc(i));
    }
    store->shards_[s] = std::move(builder).Finish();
  };

  // One pipeline chunk per shard: shards build concurrently and land in
  // their slots (merge order is irrelevant here — slots are disjoint —
  // but the pipeline's ordered-merge guarantee costs nothing).
  BuildPipelineOptions pipeline_options;
  pipeline_options.num_threads = static_cast<int>(std::min<size_t>(
      nshards, static_cast<size_t>(std::max(1, build_threads))));
  BuildPipeline pipeline(pipeline_options);
  for (size_t s = 0; s < nshards; ++s) {
    pipeline.Submit([&, s](int) { build_shard(s); }, [] {});
  }
  pipeline.Finish();
  return store;
}

std::string ShardedStore::name() const {
  const std::string coding =
      shards_.empty() ? std::string("rlz") : shards_[0]->name();
  return "sharded-" + coding + "/" + std::to_string(num_shards());
}

size_t ShardedStore::shard_of(size_t id) const {
  RLZ_DCHECK_LT(id, num_docs());
  // First boundary strictly greater than id, minus one.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), id);
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

namespace {

// Charges the factor-stream read of shard-local doc `local` at the
// shard's device base, exactly mirroring what RlzArchive::Get/GetRange
// would charge at shard-local offsets.
void ChargeShardRead(const RlzArchive& shard, size_t shard_index,
                     size_t local, SimDisk* disk) {
  if (disk == nullptr) return;
  const DocMap& map = shard.doc_map();
  disk->Read(ShardedStore::kSimDeviceSpacing * shard_index +
                 map.offset(local),
             map.size(local));
}

}  // namespace

Status ShardedStore::Get(size_t id, std::string* doc, SimDisk* disk) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  const size_t s = shard_of(id);
  const size_t local = id - starts_[s];
  ChargeShardRead(*shards_[s], s, local, disk);
  return shards_[s]->Get(local, doc, /*disk=*/nullptr);
}

Status ShardedStore::GetRange(size_t id, size_t offset, size_t length,
                              std::string* text, SimDisk* disk) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  const size_t s = shard_of(id);
  const size_t local = id - starts_[s];
  ChargeShardRead(*shards_[s], s, local, disk);
  return shards_[s]->GetRange(local, offset, length, text, /*disk=*/nullptr);
}

uint64_t ShardedStore::stored_bytes() const {
  uint64_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->stored_bytes();
  return bytes;
}

}  // namespace rlz
