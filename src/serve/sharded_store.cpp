#include "serve/sharded_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "build/archive_builder.h"
#include "build/build_pipeline.h"
#include "core/dictionary.h"
#include "io/file.h"
#include "store/format.h"
#include "store/wal/wal_reader.h"
#include "util/logging.h"

namespace rlz {
namespace {

// Relative name of shard `s` next to a manifest named `manifest_base`
// (the manifest's own basename): "<base>.shard0007".
std::string ShardFileName(const std::string& manifest_base, size_t s) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard%04llu",
                static_cast<unsigned long long>(s));
  return manifest_base + suffix;
}

// Splits `path` into the directory prefix (empty or ending in '/') and
// the basename.
void SplitPath(const std::string& path, std::string* dir,
               std::string* base) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    dir->clear();
    *base = path;
  } else {
    *dir = path.substr(0, slash + 1);
    *base = path.substr(slash + 1);
  }
}

// Serializes a FactorStats triple as three varints.
void PutStats(const FactorStats& stats, EnvelopeWriter* writer) {
  writer->PutVarint64(stats.num_factors);
  writer->PutVarint64(stats.num_literals);
  writer->PutVarint64(stats.text_bytes);
}

Status ReadStats(EnvelopeReader* reader, FactorStats* stats) {
  RLZ_RETURN_IF_ERROR(reader->ReadVarint64(&stats->num_factors));
  RLZ_RETURN_IF_ERROR(reader->ReadVarint64(&stats->num_literals));
  return reader->ReadVarint64(&stats->text_bytes);
}

// A double round-trips through its IEEE-754 bit pattern (varint-encoded;
// small fractions have high-entropy mantissas, but the manifest is tiny).
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// Serializes a tombstone bitmap as a count plus the ascending set-bit
// indices (sparse: deletes are rare relative to documents). A null bitmap
// writes count 0.
void PutTombstones(const Bitmap* bm, EnvelopeWriter* writer) {
  if (bm == nullptr) {
    writer->PutVarint64(0);
    return;
  }
  writer->PutVarint64(bm->CountSet());
  for (size_t i = 0; i < bm->size(); ++i) {
    if (bm->Test(i)) writer->PutVarint64(i);
  }
}

// Reads a tombstone section back into a bitmap over `bits` bits (null
// when the section is empty). Rejects out-of-range or non-ascending
// indices as Corruption.
Status ReadTombstones(EnvelopeReader* reader, size_t bits,
                      const std::string& context,
                      std::shared_ptr<const Bitmap>* out) {
  uint64_t count = 0;
  RLZ_RETURN_IF_ERROR(reader->ReadVarint64(&count));
  if (count == 0) {
    out->reset();
    return Status::OK();
  }
  if (count > bits || count > reader->remaining()) {
    return Status::Corruption(context + ": bad tombstone count");
  }
  Bitmap bm(bits);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t index = 0;
    RLZ_RETURN_IF_ERROR(reader->ReadVarint64(&index));
    if (index >= bits || (i > 0 && index <= prev)) {
      return Status::Corruption(context + ": bad tombstone index");
    }
    bm.Set(static_cast<size_t>(index));
    prev = index;
  }
  *out = std::make_shared<const Bitmap>(std::move(bm));
  return Status::OK();
}

}  // namespace

std::unique_ptr<ShardedStore> ShardedStore::Build(
    const Collection& collection, const ShardedStoreOptions& options) {
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->options_ = options;
  const size_t ndocs = collection.num_docs();
  const size_t nshards = std::max<size_t>(
      1, std::min<size_t>(options.num_shards > 0 ? options.num_shards : 1,
                          std::max<size_t>(ndocs, 1)));

  // Contiguous ranges balanced by uncompressed bytes: shard s ends at the
  // first doc whose cumulative size reaches s+1 equal slices of the total.
  std::vector<size_t> starts(1, 0);
  const uint64_t total = collection.size_bytes();
  uint64_t seen = 0;
  size_t doc = 0;
  for (size_t s = 0; s + 1 < nshards; ++s) {
    const uint64_t target = total * (s + 1) / nshards;
    // Leave enough docs for the remaining shards to be non-empty.
    const size_t max_end = ndocs - (nshards - 1 - s);
    while (doc < max_end && (seen < target || doc == starts.back())) {
      seen += collection.doc_size(doc);
      ++doc;
    }
    starts.push_back(doc);
  }
  starts.push_back(ndocs);
  store->router_ = std::make_shared<const ShardRouter>(std::move(starts));

  const int build_threads =
      options.build_threads > 0 ? options.build_threads
                                : static_cast<int>(nshards);
  const size_t shard_dict_bytes =
      std::max<size_t>(1, options.dict_bytes / nshards);
  store->shard_dict_bytes_ = shard_dict_bytes;

  store->shards_.resize(nshards);
  std::vector<ArchiveBuildReport> reports(nshards);
  auto build_shard = [&](size_t s) {
    const size_t begin = store->router_->start(s);
    const size_t end = store->router_->start(s + 1);
    // A shard's documents are contiguous in the source collection, so
    // dictionary sampling and the streaming build both work off views —
    // no per-shard copy of the text (peak memory stays one corpus).
    const std::string_view shard_text =
        collection.data().substr(collection.doc_offset(begin),
                                 collection.doc_offset(end) -
                                     collection.doc_offset(begin));
    std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
        shard_text, shard_dict_bytes, options.sample_bytes);
    ArchiveBuilderOptions builder_options;
    builder_options.coding = options.coding;
    builder_options.num_threads = std::max(1, options.threads_per_shard);
    // Coverage feeds the shard-health record the compactor scores
    // (DESIGN.md §11); it never changes the output bytes.
    builder_options.track_coverage = true;
    RlzArchiveBuilder builder(std::move(dict), builder_options);
    for (size_t i = begin; i < end; ++i) {
      builder.AddBorrowedDocument(collection.doc(i));
    }
    store->shards_[s] = std::move(builder).Finish(&reports[s]);
  };

  // One pipeline chunk per shard: shards build concurrently and land in
  // their slots (merge order is irrelevant here — slots are disjoint —
  // but the pipeline's ordered-merge guarantee costs nothing).
  BuildPipelineOptions pipeline_options;
  pipeline_options.num_threads = static_cast<int>(std::min<size_t>(
      nshards, static_cast<size_t>(std::max(1, build_threads))));
  BuildPipeline pipeline(pipeline_options);
  for (size_t s = 0; s < nshards; ++s) {
    pipeline.Submit([&, s](int) { build_shard(s); }, [] {});
  }
  pipeline.Finish();

  // Health bookkeeping: per-shard stats/coverage plus the store-wide
  // baseline the staleness trigger compares against.
  store->generations_.assign(nshards, 0);
  store->tombstones_.assign(nshards, nullptr);
  store->meta_.resize(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    store->meta_[s].stats = reports[s].stats;
    store->meta_[s].unused_dict_fraction =
        reports[s].unused_dictionary_fraction;
    store->baseline_stats_.Merge(reports[s].stats);
  }

  // The append dictionary: sampled across the whole build-time corpus, so
  // tail seals encode against content representative of the initial crawl
  // — and go stale as the crawl drifts (§3.6), which is exactly what the
  // compactor's coverage-decay trigger watches for.
  store->append_dict_ = DictionaryBuilder::BuildSampled(
      collection.data(), shard_dict_bytes, options.sample_bytes);

  {
    std::lock_guard<std::mutex> lock(store->writer_mu_);
    store->next_sequence_ = 0;
    store->PublishLocked();
  }
  return store;
}

ShardedStore::~ShardedStore() {
  StopCompactor();
  std::lock_guard<std::mutex> lock(writer_mu_);
  tail_builder_.reset();  // drains any in-flight tail encode chunks
  if (wal_ != nullptr) {
    // Everything acked was already durable per the group-commit policy;
    // the final sync only narrows a relaxed policy's loss window.
    (void)wal_->Close();
    wal_.reset();
  }
}

std::shared_ptr<const CorpusEpoch> ShardedStore::epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

void ShardedStore::PublishLocked() {
  auto next = std::shared_ptr<CorpusEpoch>(new CorpusEpoch());
  next->sequence_ = next_sequence_++;
  next->shards_ = shards_;
  next->generations_ = generations_;
  next->router_ = router_;
  next->tombstones_ = tombstones_;
  next->tail_tombstones_ = tail_tombstones_;
  next->deleted_docs_ = deleted_docs_;
  if (!tail_docs_.empty()) {
    auto tail = std::make_shared<TailSegment>();
    tail->docs = tail_docs_;
    tail->bytes = tail_bytes_;
    next->tail_ = std::move(tail);
  }
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch_ = std::move(next);
}

std::string ShardedStore::name() const {
  auto snapshot = epoch();
  const std::string coding = snapshot->num_shards() == 0
                                 ? std::string("rlz")
                                 : snapshot->shard(0).name();
  return "sharded-" + coding + "/" + std::to_string(snapshot->num_shards());
}

Status ShardedStore::Get(size_t id, std::string* doc, SimDisk* disk,
                         DecodeScratch* scratch) const {
  return epoch()->Get(id, doc, disk, scratch);
}

Status ShardedStore::GetRange(size_t id, size_t offset, size_t length,
                              std::string* text, SimDisk* disk,
                              DecodeScratch* scratch) const {
  return epoch()->GetRange(id, offset, length, text, disk, scratch);
}

bool ShardedStore::IsLive(size_t id) const {
  auto snapshot = epoch();
  return id < snapshot->num_docs() && !snapshot->IsDeleted(id);
}

ShardHealth ShardedStore::shard_health(int s) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  RLZ_CHECK_LT(static_cast<size_t>(s), meta_.size());
  const ShardMeta& meta = meta_[static_cast<size_t>(s)];
  ShardHealth health;
  health.generation = meta.generation;
  health.tombstoned_payload_bytes = meta.tombstoned_payload_bytes;
  health.unused_dict_fraction = meta.unused_dict_fraction;
  health.stats = meta.stats;
  return health;
}

FactorStats ShardedStore::baseline_stats() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return baseline_stats_;
}

// --- Mutation path --------------------------------------------------------

Status ShardedStore::ResetTailBuilderLocked() {
  if (append_dict_ == nullptr || !append_dict_->has_matcher()) {
    return Status::InvalidArgument(
        "sharded store: no append dictionary (v1 manifest or serving-only "
        "open); appends are disabled");
  }
  ArchiveBuilderOptions builder_options;
  builder_options.coding = options_.coding;
  builder_options.track_coverage = true;
  builder_options.num_threads = std::max(1, options_.live.tail_builder_threads);
  tail_builder_ =
      std::make_unique<RlzArchiveBuilder>(append_dict_, builder_options);
  return Status::OK();
}

Status ShardedStore::ApplyAppendLocked(std::string_view doc, size_t* id) {
  const bool incremental = options_.live.reuse_append_dictionary &&
                           append_dict_ != nullptr &&
                           append_dict_->has_matcher();
  if (incremental && tail_builder_ == nullptr) {
    RLZ_RETURN_IF_ERROR(ResetTailBuilderLocked());
  }
  auto owned = std::make_shared<const std::string>(doc);
  if (incremental) {
    // The borrowed bytes stay alive in tail_docs_ until the seal's
    // Finish() — the zero-copy incremental encode path (DESIGN.md §7).
    tail_builder_->AddBorrowedDocument(*owned);
  }
  tail_bytes_ += owned->size();
  tail_docs_.push_back(std::move(owned));
  *id = router_->num_docs() + tail_docs_.size() - 1;
  return Status::OK();
}

StatusOr<size_t> ShardedStore::Append(std::string_view doc) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  RLZ_RETURN_IF_ERROR(CheckWritableLocked());
  if (append_dict_ == nullptr || !append_dict_->has_matcher()) {
    // Both seal modes need the matcher-capable append dictionary (the
    // fresh-dictionary mode as the fallback for an all-deleted seal);
    // gate up front so Append fails cleanly on serving-only opens.
    return Status::InvalidArgument(
        "sharded store: no append dictionary (v1 manifest or serving-only "
        "open); appends are disabled");
  }
  size_t id = 0;
  RLZ_RETURN_IF_ERROR(ApplyAppendLocked(doc, &id));
  // Log before publish: once the epoch containing this document is
  // visible (and the id returned), the WAL record is on its way to disk
  // — durably there already under fsync_every_n == 1 (DESIGN.md §12).
  if (wal_ != nullptr) {
    RLZ_RETURN_IF_ERROR(LogLocked(wal::RecordType::kAppend, doc));
  }
  PublishLocked();
  if (options_.live.tail_seal_bytes > 0 &&
      tail_bytes_ >= options_.live.tail_seal_bytes) {
    RLZ_RETURN_IF_ERROR(SealTailLocked());
  }
  return id;
}

Status ShardedStore::SealTail() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  RLZ_RETURN_IF_ERROR(CheckWritableLocked());
  return SealTailLocked();
}

Status ShardedStore::SealTailLocked() {
  if (tail_docs_.empty()) return Status::OK();
  if (wal_ != nullptr) {
    RLZ_RETURN_IF_ERROR(LogLocked(wal::RecordType::kSeal, std::string_view()));
  }
  RLZ_RETURN_IF_ERROR(ApplySealLocked());
  PublishLocked();
  return Status::OK();
}

Status ShardedStore::ApplySealLocked() {
  if (tail_docs_.empty()) return Status::OK();

  ArchiveBuildReport report;
  std::shared_ptr<const RlzArchive> sealed;
  if (options_.live.reuse_append_dictionary && tail_builder_ != nullptr) {
    // The incremental path: every Append already encoded through the open
    // builder, so sealing is a drain + finish.
    sealed = std::move(*tail_builder_).Finish(&report);
    tail_builder_.reset();
  } else {
    // Fresh-dictionary seal: sample a dictionary from the tail's own
    // documents and encode them against it.
    std::string text;
    text.reserve(tail_bytes_);
    for (const auto& d : tail_docs_) text.append(*d);
    std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
        text.empty() ? std::string_view(" ") : std::string_view(text),
        shard_dict_bytes_, options_.sample_bytes);
    ArchiveBuilderOptions builder_options;
    builder_options.coding = options_.coding;
    builder_options.track_coverage = true;
    builder_options.num_threads =
        std::max(1, options_.live.tail_builder_threads);
    RlzArchiveBuilder builder(std::move(dict), builder_options);
    for (const auto& d : tail_docs_) builder.AddBorrowedDocument(*d);
    sealed = std::move(builder).Finish(&report);
  }

  // Health record for the new shard; tail documents deleted before the
  // seal carry their tombstones (and their now-stored-but-dead encoded
  // bytes) into the sealed shard.
  ShardMeta meta;
  meta.stats = report.stats;
  meta.unused_dict_fraction = report.unused_dictionary_fraction;
  if (tail_tombstones_ != nullptr) {
    for (size_t i = 0; i < tail_tombstones_->size(); ++i) {
      if (tail_tombstones_->Test(i)) {
        meta.tombstoned_payload_bytes += sealed->doc_map().size(i);
      }
    }
  }

  // Router growth: the sealed shard owns the next contiguous id range.
  std::vector<size_t> starts;
  starts.reserve(shards_.size() + 2);
  for (size_t s = 0; s <= shards_.size(); ++s) {
    starts.push_back(router_->start(s));
  }
  starts.push_back(router_->num_docs() + tail_docs_.size());

  shards_.push_back(std::move(sealed));
  generations_.push_back(0);
  meta_.push_back(meta);
  // The tail bitmap is lazily sized to the tail length at its last
  // delete; widen it to the full shard so every later bitmap copy (and
  // Bitmap::Set) stays in range.
  std::shared_ptr<const Bitmap> sealed_tombstones;
  if (tail_tombstones_ != nullptr) {
    Bitmap bm(tail_docs_.size());
    for (size_t i = 0; i < tail_tombstones_->size(); ++i) {
      if (tail_tombstones_->Test(i)) bm.Set(i);
    }
    sealed_tombstones = std::make_shared<const Bitmap>(std::move(bm));
  }
  tombstones_.push_back(std::move(sealed_tombstones));
  router_ = std::make_shared<const ShardRouter>(std::move(starts));
  tail_docs_.clear();
  tail_bytes_ = 0;
  tail_tombstones_.reset();
  return Status::OK();
}

Status ShardedStore::ApplyDeleteLocked(size_t id) {
  const size_t sealed = router_->num_docs();
  const size_t total = sealed + tail_docs_.size();
  if (id >= total) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  if (id < sealed) {
    const size_t s = router_->shard_of(id);
    const size_t local = id - router_->start(s);
    const size_t shard_docs = router_->start(s + 1) - router_->start(s);
    // Always copy into a full-width bitmap: a stored bitmap may be
    // narrower than the shard (older manifests carry the lazily sized
    // sealed-tail form) and Set past size() is out of range.
    Bitmap bm(shard_docs);
    if (tombstones_[s] != nullptr) {
      const Bitmap& old = *tombstones_[s];
      for (size_t i = 0; i < old.size() && i < shard_docs; ++i) {
        if (old.Test(i)) bm.Set(i);
      }
    }
    if (bm.Test(local)) {
      return Status::NotFound("sharded store: document already deleted");
    }
    bm.Set(local);
    tombstones_[s] = std::make_shared<const Bitmap>(std::move(bm));
    meta_[s].tombstoned_payload_bytes += shards_[s]->doc_map().size(local);
  } else {
    const size_t local = id - sealed;
    // The tail bitmap is sized lazily to the tail's current length;
    // bits past an older bitmap's end are live by construction.
    Bitmap bm(tail_docs_.size());
    if (tail_tombstones_ != nullptr) {
      for (size_t i = 0; i < tail_tombstones_->size(); ++i) {
        if (tail_tombstones_->Test(i)) bm.Set(i);
      }
    }
    if (bm.Test(local)) {
      return Status::NotFound("sharded store: document already deleted");
    }
    bm.Set(local);
    tail_tombstones_ = std::make_shared<const Bitmap>(std::move(bm));
  }
  ++deleted_docs_;
  return Status::OK();
}

Status ShardedStore::Delete(size_t id) {
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    RLZ_RETURN_IF_ERROR(CheckWritableLocked());
    RLZ_RETURN_IF_ERROR(ApplyDeleteLocked(id));
    if (wal_ != nullptr) {
      std::string payload;
      wal::PutFixed64(&payload, id);
      RLZ_RETURN_IF_ERROR(LogLocked(wal::RecordType::kDelete, payload));
    }
    PublishLocked();
  }
  // After the tombstoning epoch is published: a cached decode of this id
  // must not outlive the delete (DESIGN.md §11 invariant I3).
  NotifyEviction(id);
  return Status::OK();
}

void ShardedStore::SetEvictionListener(EvictionListener listener) const {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

void ShardedStore::NotifyEviction(size_t id) const {
  std::lock_guard<std::mutex> lock(listener_mu_);
  if (listener_) listener_(id);
}

// --- Compaction -----------------------------------------------------------

int ShardedStore::PickCompactionVictimLocked(
    CompactionReport::Reason* reason) const {
  const LiveStoreOptions& live = options_.live;
  int victim = -1;
  double victim_score = 0.0;
  CompactionReport::Reason victim_reason = CompactionReport::Reason::kNone;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const uint64_t payload = shards_[s]->payload_bytes();
    if (payload == 0) continue;
    const double tomb_frac =
        static_cast<double>(meta_[s].tombstoned_payload_bytes) /
        static_cast<double>(payload);
    const double decay = meta_[s].stats.avg_factor_decay(baseline_stats_);
    const bool stale =
        meta_[s].unused_dict_fraction >= live.compact_stale_unused_fraction ||
        decay >= live.compact_stale_decay;
    // Tombstone reclamation scores by wasted-byte fraction; staleness by
    // how far the dictionary has decayed. Either trigger qualifies; the
    // worst offender wins.
    double score = 0.0;
    CompactionReport::Reason shard_reason = CompactionReport::Reason::kNone;
    if (meta_[s].tombstoned_payload_bytes > 0 &&
        tomb_frac >= live.compact_tombstone_fraction) {
      score = tomb_frac;
      shard_reason = CompactionReport::Reason::kTombstones;
    }
    if (stale) {
      const double stale_score =
          std::max(meta_[s].unused_dict_fraction, decay);
      if (stale_score > score) {
        score = stale_score;
        shard_reason = CompactionReport::Reason::kStaleDictionary;
      }
    }
    if (shard_reason != CompactionReport::Reason::kNone &&
        (victim < 0 || score > victim_score)) {
      victim = static_cast<int>(s);
      victim_score = score;
      victim_reason = shard_reason;
    }
  }
  *reason = victim_reason;
  return victim;
}

StatusOr<CompactionReport> ShardedStore::CompactOnce() {
  // One rebuild at a time; mutators never wait on this lock.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  CompactionReport report;
  bool durable = false;

  std::shared_ptr<const CorpusEpoch> snapshot;
  int victim = -1;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    RLZ_RETURN_IF_ERROR(CheckWritableLocked());
    victim = PickCompactionVictimLocked(&report.reason);
    if (victim < 0) return report;
    snapshot = [&] {
      std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
      return epoch_;
    }();
  }

  // Offline rebuild against the pinned snapshot: decode every live
  // document, re-sample a fresh dictionary from exactly that text, and
  // re-encode — tombstoned ids shrink to empty entries (their id stays
  // allocated; the tombstone bitmap still answers NotFound). Mutators and
  // readers run concurrently throughout.
  const RlzArchive& old_shard = snapshot->shard(victim);
  const Bitmap* dead = snapshot->tombstones(victim);
  const size_t shard_docs = old_shard.num_docs();
  const size_t shard_start = snapshot->router().start(victim);
  std::string text;
  std::vector<size_t> sizes(shard_docs, 0);
  {
    DecodeScratch scratch;
    std::string buf;
    for (size_t i = 0; i < shard_docs; ++i) {
      if (dead != nullptr && i < dead->size() && dead->Test(i)) continue;
      const Status status =
          old_shard.Get(i, &buf, /*disk=*/nullptr, &scratch);
      if (!status.ok()) return status;
      text.append(buf);
      sizes[i] = buf.size();
    }
  }
  std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
      text.empty() ? std::string_view(" ") : std::string_view(text),
      shard_dict_bytes_, options_.sample_bytes);
  ArchiveBuilderOptions builder_options;
  builder_options.coding = options_.coding;
  builder_options.track_coverage = true;
  builder_options.num_threads = std::max(1, options_.live.compact_threads);
  RlzArchiveBuilder builder(std::move(dict), builder_options);
  size_t offset = 0;
  size_t live_docs = 0;
  for (size_t i = 0; i < shard_docs; ++i) {
    if (dead != nullptr && i < dead->size() && dead->Test(i)) {
      builder.AddBorrowedDocument(std::string_view());
      continue;
    }
    builder.AddBorrowedDocument(std::string_view(text).substr(offset,
                                                              sizes[i]));
    offset += sizes[i];
    ++live_docs;
  }
  ArchiveBuildReport rebuild_report;
  std::shared_ptr<const RlzArchive> rebuilt =
      std::move(builder).Finish(&rebuild_report);

  // Swap the rewrite into the next epoch. Deletes that landed on this
  // shard during the rebuild were encoded live above; they stay pending
  // (tombstoned-but-stored) and a later pass reclaims them.
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    report.bytes_before = shards_[victim]->stored_bytes();
    report.bytes_after = rebuilt->stored_bytes();
    shards_[victim] = std::move(rebuilt);
    generations_[victim] += 1;
    ShardMeta& meta = meta_[victim];
    meta.generation = generations_[victim];
    meta.stats = rebuild_report.stats;
    meta.unused_dict_fraction = rebuild_report.unused_dictionary_fraction;
    meta.tombstoned_payload_bytes = 0;
    const Bitmap* now_dead = tombstones_[victim].get();
    if (now_dead != nullptr) {
      const DocMap& map = shards_[victim]->doc_map();
      for (size_t i = 0; i < now_dead->size(); ++i) {
        if (!now_dead->Test(i)) continue;
        const bool reclaimed =
            dead != nullptr && i < dead->size() && dead->Test(i);
        if (!reclaimed) meta.tombstoned_payload_bytes += map.size(i);
      }
    }
    report.generation = generations_[victim];
    PublishLocked();
    durable = wal_ != nullptr;
  }

  // A compaction is not a WAL record — replaying the log over the old
  // checkpoint reproduces the same logical corpus, just uncompacted. A
  // fresh checkpoint makes the reclaimed bytes durable so a crash does
  // not resurrect the pre-compaction shard files forever.
  if (durable) {
    RLZ_RETURN_IF_ERROR(Checkpoint());
  }

  report.compacted = true;
  report.shard = victim;
  report.live_docs = live_docs;
  report.dead_docs = shard_docs - live_docs;
  // Reclaimed ids were tombstoned long before this pass (their cache
  // entries were erased at Delete time); re-notify anyway so a listener
  // attached later than the delete cannot serve bytes the store no
  // longer holds.
  if (dead != nullptr) {
    for (size_t i = 0; i < dead->size(); ++i) {
      if (dead->Test(i)) NotifyEviction(shard_start + i);
    }
  }
  return report;
}

void ShardedStore::StartCompactor(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(compactor_mu_);
  if (compactor_.joinable()) return;
  compactor_stop_.store(false);
  compactor_ = std::thread(&ShardedStore::CompactorLoop, this, interval);
}

void ShardedStore::StopCompactor() {
  std::lock_guard<std::mutex> lock(compactor_mu_);
  if (!compactor_.joinable()) return;
  {
    std::lock_guard<std::mutex> wait_lock(compactor_wait_mu_);
    compactor_stop_.store(true);
  }
  compactor_cv_.notify_all();
  compactor_.join();
  compactor_ = std::thread();
}

void ShardedStore::CompactorLoop(std::chrono::milliseconds interval) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compactor_wait_mu_);
      compactor_cv_.wait_for(lock, interval,
                             [&] { return compactor_stop_.load(); });
      if (compactor_stop_.load()) return;
    }
    // A failed pass (e.g. decode Corruption) is retried next interval;
    // the store itself is untouched — the rebuild never swaps on error.
    (void)CompactOnce();
  }
}

// --- Persistence ----------------------------------------------------------

Status ShardedStore::Save(const std::string& path) const {
  // A consistent snapshot: the epoch pins the shards/tombstones/tail, and
  // the health records are copied under the same writer lock that every
  // mutation holds while publishing.
  std::shared_ptr<const CorpusEpoch> snapshot;
  std::vector<ShardMeta> meta;
  FactorStats baseline;
  std::string append_dict_text;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    {
      std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
      snapshot = epoch_;
    }
    meta = meta_;
    baseline = baseline_stats_;
    if (append_dict_ != nullptr) {
      append_dict_text.assign(append_dict_->text());
    }
  }

  std::string dir;
  std::string base;
  SplitPath(path, &dir, &base);
  const size_t nshards = static_cast<size_t>(snapshot->num_shards());
  // Shards first, manifest last: a torn save leaves orphan shard files,
  // never a manifest that names missing ones.
  for (size_t s = 0; s < nshards; ++s) {
    RLZ_RETURN_IF_ERROR(
        snapshot->shard(static_cast<int>(s)).Save(dir + ShardFileName(base, s)));
  }
  return WriteFile(
      path, SerializeManifest(*snapshot, meta, baseline, append_dict_text,
                              base));
}

std::string ShardedStore::SerializeManifest(const CorpusEpoch& snapshot,
                                            const std::vector<ShardMeta>& meta,
                                            const FactorStats& baseline,
                                            std::string_view append_dict_text,
                                            const std::string& shard_base) {
  const size_t nshards = static_cast<size_t>(snapshot.num_shards());
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  // The v1-compatible prefix: shard count, boundaries, shard file names.
  writer.PutVarint64(nshards);
  for (size_t s = 0; s <= nshards; ++s) {
    writer.PutVarint64(snapshot.router().start(s));
  }
  for (size_t s = 0; s < nshards; ++s) {
    writer.PutLengthPrefixed(ShardFileName(shard_base, s));
  }
  // v2 sections: the epoch and its mutation state.
  writer.PutVarint64(snapshot.sequence());
  for (size_t s = 0; s < nshards; ++s) {
    writer.PutVarint64(snapshot.shard_generation(static_cast<int>(s)));
    writer.PutVarint64(meta[s].tombstoned_payload_bytes);
    writer.PutVarint64(DoubleBits(meta[s].unused_dict_fraction));
    PutStats(meta[s].stats, &writer);
  }
  PutStats(baseline, &writer);
  for (size_t s = 0; s < nshards; ++s) {
    PutTombstones(snapshot.tombstones(static_cast<int>(s)), &writer);
  }
  PutTombstones(snapshot.tail_tombstones(), &writer);
  const TailSegment* tail = snapshot.tail();
  writer.PutVarint64(tail == nullptr ? 0 : tail->docs.size());
  if (tail != nullptr) {
    for (const auto& doc : tail->docs) writer.PutLengthPrefixed(*doc);
  }
  writer.PutLengthPrefixed(append_dict_text);
  return std::move(writer).Seal();
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::FromEnvelope(
    const ParsedEnvelope& envelope, const std::string& path,
    const OpenOptions& options) {
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();

  uint64_t nshards = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&nshards));
  if (nshards == 0 || nshards > reader.remaining()) {
    return Status::Corruption(envelope.context() +
                              ": bad manifest shard count");
  }
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  std::vector<size_t> starts(nshards + 1);
  for (size_t s = 0; s <= nshards; ++s) {
    uint64_t start = 0;
    RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&start));
    starts[s] = start;
    if ((s == 0 && start != 0) || (s > 0 && start < starts[s - 1])) {
      return Status::Corruption(envelope.context() +
                                ": manifest boundaries not monotone");
    }
  }
  store->router_ = std::make_shared<const ShardRouter>(std::move(starts));
  std::string dir;
  std::string base;
  SplitPath(path, &dir, &base);
  std::vector<std::string> shard_paths(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    std::string_view name;
    RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&name));
    if (name.empty() || name.find('/') != std::string_view::npos) {
      return Status::Corruption(envelope.context() +
                                ": manifest shard name must be a sibling "
                                "file name");
    }
    shard_paths[s] = dir + std::string(name);
  }

  // v2 sections: epoch sequence, per-shard health, tombstones, the raw
  // open tail, and the append dictionary. A v1 manifest is a build-once
  // snapshot: sequence 0, generation 0, nothing deleted, empty tail, no
  // append dictionary (appends disabled until rebuilt).
  store->generations_.assign(nshards, 0);
  store->tombstones_.assign(nshards, nullptr);
  store->meta_.resize(nshards);
  uint64_t sequence = 0;
  std::string_view append_dict_text;
  if (envelope.version() >= 2) {
    RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&sequence));
    for (size_t s = 0; s < nshards; ++s) {
      RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&store->generations_[s]));
      ShardMeta& meta = store->meta_[s];
      meta.generation = store->generations_[s];
      RLZ_RETURN_IF_ERROR(
          reader.ReadVarint64(&meta.tombstoned_payload_bytes));
      uint64_t fraction_bits = 0;
      RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&fraction_bits));
      meta.unused_dict_fraction = DoubleFromBits(fraction_bits);
      RLZ_RETURN_IF_ERROR(ReadStats(&reader, &meta.stats));
    }
    RLZ_RETURN_IF_ERROR(ReadStats(&reader, &store->baseline_stats_));
    for (size_t s = 0; s < nshards; ++s) {
      const size_t shard_docs =
          store->router_->start(s + 1) - store->router_->start(s);
      RLZ_RETURN_IF_ERROR(ReadTombstones(&reader, shard_docs,
                                         envelope.context(),
                                         &store->tombstones_[s]));
      if (store->tombstones_[s] != nullptr) {
        store->deleted_docs_ += store->tombstones_[s]->CountSet();
      }
    }
    uint64_t tail_count = 0;
    {
      // The tail tombstone section precedes the tail documents, so its
      // bitmap bound comes from the doc count read after it; parse the
      // raw section first and validate once the count is known.
      std::shared_ptr<const Bitmap> tail_tombstones;
      // A tail bitmap can never address more docs than bytes remain in
      // the body (each doc costs at least one length byte).
      RLZ_RETURN_IF_ERROR(ReadTombstones(&reader, reader.remaining(),
                                         envelope.context(),
                                         &tail_tombstones));
      RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&tail_count));
      if (tail_count > reader.remaining()) {
        return Status::Corruption(envelope.context() +
                                  ": bad manifest tail count");
      }
      if (tail_tombstones != nullptr &&
          tail_tombstones->size() > 0) {
        // Re-bound the bitmap against the real tail size.
        uint64_t max_index = 0;
        for (size_t i = 0; i < tail_tombstones->size(); ++i) {
          if (tail_tombstones->Test(i)) max_index = i;
        }
        if (max_index >= tail_count) {
          return Status::Corruption(envelope.context() +
                                    ": tail tombstone out of range");
        }
        store->deleted_docs_ += tail_tombstones->CountSet();
      }
      store->tail_tombstones_ = std::move(tail_tombstones);
    }
    store->tail_docs_.reserve(tail_count);
    for (uint64_t i = 0; i < tail_count; ++i) {
      std::string_view doc;
      RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&doc));
      store->tail_docs_.push_back(
          std::make_shared<const std::string>(doc));
      store->tail_bytes_ += doc.size();
    }
    RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&append_dict_text));
  }
  RLZ_RETURN_IF_ERROR(reader.ExpectConsumed());
  store->next_sequence_ = sequence;

  // Shard files open in parallel: each is an independent rlz container,
  // and the suffix-array rebuild (when requested) dominates the open
  // cost, so the pipeline overlaps them across open_threads workers.
  store->shards_.resize(nshards);
  std::vector<Status> statuses(nshards);
  BuildPipelineOptions pipeline_options;
  // `nshards` comes from the (untrusted, CRC-valid) manifest: the default
  // thread count is capped at the hardware parallelism so a crafted count
  // cannot fan out thousands of threads — the per-shard opens then fail
  // cleanly on the missing files.
  const uint64_t default_threads =
      std::max(1u, std::thread::hardware_concurrency());
  pipeline_options.num_threads = static_cast<int>(std::min<uint64_t>(
      nshards,
      options.open_threads > 0 ? static_cast<uint64_t>(options.open_threads)
                               : default_threads));
  BuildPipeline pipeline(pipeline_options);
  for (size_t s = 0; s < nshards; ++s) {
    pipeline.Submit(
        [&, s](int) {
          auto shard = RlzArchive::Load(shard_paths[s], options);
          if (shard.ok()) {
            store->shards_[s] = std::move(shard).value();
          } else {
            statuses[s] = shard.status();
          }
        },
        [] {});
  }
  pipeline.Finish();
  for (const Status& status : statuses) {
    RLZ_RETURN_IF_ERROR(status);
  }
  for (size_t s = 0; s < nshards; ++s) {
    if (store->shards_[s]->num_docs() !=
        store->router_->start(s + 1) - store->router_->start(s)) {
      return Status::Corruption(shard_paths[s] +
                                ": shard document count disagrees with "
                                "the manifest");
    }
  }

  // Restore the mutation path: the coding comes from shard 0 (every shard
  // encodes with the same pair), the append dictionary from its persisted
  // text (matcher-less on a serving-only open — appends then fail
  // cleanly), and the open tail re-encodes through a fresh builder.
  store->options_.coding = store->shards_[0]->coder().coding();
  store->shard_dict_bytes_ =
      std::max<uint64_t>(1, store->shards_[0]->dictionary().size());
  if (!append_dict_text.empty()) {
    store->append_dict_ = std::make_shared<const Dictionary>(
        std::string(append_dict_text), options.build_suffix_array);
  }
  {
    std::lock_guard<std::mutex> lock(store->writer_mu_);
    if (!store->tail_docs_.empty() && store->append_dict_ != nullptr &&
        store->append_dict_->has_matcher() &&
        store->options_.live.reuse_append_dictionary) {
      RLZ_RETURN_IF_ERROR(store->ResetTailBuilderLocked());
      for (const auto& doc : store->tail_docs_) {
        store->tail_builder_->AddBorrowedDocument(*doc);
      }
    }
    store->PublishLocked();
  }
  return store;
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& path, const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope, ReadEnvelopeFile(path));
  return FromEnvelope(envelope, path, options);
}

// --- Durability (DESIGN.md §12) -------------------------------------------

Status ShardedStore::CheckWritableLocked() const {
  if (read_only_) {
    return Status::InvalidArgument(
        "sharded store: serving-only durable open is read-only");
  }
  return Status::OK();
}

Status ShardedStore::LogLocked(wal::RecordType type, std::string_view payload) {
  // A WAL write failure is fail-stop: the in-memory mutation already
  // happened, so acking it without the log record would break the
  // durability contract. Callers propagate the error and the store's
  // next log attempt fails the same way.
  return wal_->Append(type, payload).status();
}

Status ShardedStore::MakeDurable(const std::string& dir,
                                 const wal::WalWriterOptions& wal_options,
                                 std::shared_ptr<FileSystem> fs) {
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    RLZ_RETURN_IF_ERROR(CheckWritableLocked());
    if (wal_ != nullptr) {
      return Status::InvalidArgument("sharded store: already durable");
    }
    fs_ = fs != nullptr ? std::move(fs) : DefaultFileSystem();
    durable_dir_ = dir;
    wal_options_ = wal_options;
    RLZ_RETURN_IF_ERROR(fs_->CreateDir(dir));
    RLZ_ASSIGN_OR_RETURN(
        wal_, wal::WalWriter::Create(fs_, dir, /*generation=*/1, /*seq=*/0,
                                     /*start_lsn=*/0, wal_options));
  }
  // Checkpoint generation 1 captures the pre-durability state; until its
  // CURRENT lands the directory is not yet openable, so a crash inside
  // this call loses nothing that was ever acked as durable.
  return Checkpoint();
}

Status ShardedStore::Checkpoint() {
  // One checkpoint at a time; mutators are blocked only for the
  // sync-and-roll plus the snapshot copy below, not for the shard writes.
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::shared_ptr<const CorpusEpoch> snapshot;
  std::vector<ShardMeta> meta;
  FactorStats baseline;
  std::string append_dict_text;
  uint64_t generation = 0;
  uint64_t covered = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (wal_ == nullptr) {
      return Status::InvalidArgument("sharded store: not durable");
    }
    // Rolling at the coverage boundary keeps every segment wholly inside
    // or wholly outside the checkpoint — recovery's segment GC rule
    // depends on coverage landing exactly between segments.
    generation = checkpoint_generation_ + 1;
    covered = wal_->next_lsn();
    RLZ_RETURN_IF_ERROR(wal_->Roll(generation));
    {
      std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
      snapshot = epoch_;
    }
    meta = meta_;
    baseline = baseline_stats_;
    if (append_dict_ != nullptr) {
      append_dict_text.assign(append_dict_->text());
    }
  }

  // Write-new: every file lands under the next generation, fsync'd,
  // without touching the live checkpoint. A crash anywhere in here
  // leaves CURRENT pointing at the old complete checkpoint.
  const std::string manifest_name =
      wal::CheckpointManifestFileName(generation);
  const size_t nshards = static_cast<size_t>(snapshot->num_shards());
  for (size_t s = 0; s < nshards; ++s) {
    RLZ_RETURN_IF_ERROR(fs_->WriteFileSynced(
        durable_dir_ + "/" + ShardFileName(manifest_name, s),
        snapshot->shard(static_cast<int>(s)).Serialize()));
  }
  RLZ_RETURN_IF_ERROR(fs_->WriteFileSynced(
      durable_dir_ + "/" + manifest_name,
      SerializeManifest(*snapshot, meta, baseline, append_dict_text,
                        manifest_name)));
  wal::CheckpointInfo info;
  info.generation = generation;
  info.covered_lsn = covered;
  info.manifest = manifest_name;
  RLZ_RETURN_IF_ERROR(wal::WriteCheckpointMeta(*fs_, durable_dir_, info));
  RLZ_RETURN_IF_ERROR(fs_->SyncDir(durable_dir_));
  // The commit point: CURRENT flips to the new generation atomically.
  RLZ_RETURN_IF_ERROR(wal::WriteCurrent(*fs_, durable_dir_, generation));
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    checkpoint_generation_ = generation;
    covered_lsn_ = covered;
  }
  // Best-effort cleanup of the superseded generation and covered WAL.
  return wal::GarbageCollect(*fs_, durable_dir_, info);
}

Status ShardedStore::SyncWal() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (wal_ == nullptr) {
    return Status::InvalidArgument("sharded store: not durable");
  }
  return wal_->Sync();
}

bool ShardedStore::durable() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return wal_ != nullptr || read_only_;
}

bool ShardedStore::read_only() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return read_only_;
}

uint64_t ShardedStore::checkpoint_generation() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return checkpoint_generation_;
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::OpenFromCheckpoint(
    const std::string& dir, const wal::CheckpointInfo& info,
    const OpenOptions& options, const wal::WalWriterOptions& wal_options,
    const std::shared_ptr<FileSystem>& fs, RecoveryReport* report) {
  const std::shared_ptr<FileSystem> io =
      fs != nullptr ? fs
                    : (options.fs != nullptr ? options.fs
                                             : DefaultFileSystem());
  // An injected file system routes the shard opens too; otherwise shard
  // reads keep the caller's options (use_mmap on a real disk).
  OpenOptions open_options = options;
  if (fs != nullptr) open_options.fs = fs;

  const std::string manifest_path = dir + "/" + info.manifest;
  RLZ_ASSIGN_OR_RETURN(std::string raw, io->Read(manifest_path));
  RLZ_ASSIGN_OR_RETURN(
      ParsedEnvelope envelope,
      ParsedEnvelope::FromBytes(std::move(raw), manifest_path));
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<ShardedStore> store,
                       FromEnvelope(envelope, manifest_path, open_options));

  store->fs_ = io;
  store->durable_dir_ = dir;
  store->wal_options_ = wal_options;
  store->checkpoint_generation_ = info.generation;
  store->covered_lsn_ = info.covered_lsn;
  // A serving-only open never writes: no WAL writer, mutations disabled.
  store->read_only_ = !options.build_suffix_array;

  wal::ReplayResult replay;
  {
    std::lock_guard<std::mutex> lock(store->writer_mu_);
    ShardedStore* raw_store = store.get();
    auto apply = [raw_store, &dir](uint64_t lsn, wal::RecordType type,
                                   std::string_view payload) -> Status {
      (void)lsn;
      switch (type) {
        case wal::RecordType::kAppend: {
          size_t id = 0;
          return raw_store->ApplyAppendLocked(payload, &id);
        }
        case wal::RecordType::kDelete: {
          if (payload.size() != 8) {
            return Status::Corruption(dir + ": bad wal delete payload");
          }
          const uint64_t id = wal::GetFixed64(payload.data());
          const Status status =
              raw_store->ApplyDeleteLocked(static_cast<size_t>(id));
          if (!status.ok()) {
            // A logged delete must re-apply over the checkpoint it
            // followed; an unknown or doubly-deleted id means the log
            // and checkpoint disagree.
            return Status::Corruption(dir + ": wal replay delete failed: " +
                                      status.message());
          }
          return Status::OK();
        }
        case wal::RecordType::kSeal:
          // Serving-only recovery leaves the tail raw: sealing would
          // re-encode (and want the suffix array this open skipped).
          // Document ids and bytes are identical either way.
          if (raw_store->read_only_) return Status::OK();
          return raw_store->ApplySealLocked();
      }
      return Status::Corruption(dir + ": unknown wal record type");
    };
    RLZ_ASSIGN_OR_RETURN(replay,
                         wal::ReplayWal(io, dir, info.covered_lsn, apply));
    if (!store->read_only_) {
      // Always a fresh segment: recovery never appends to a segment that
      // existed before the crash, so a re-crash cannot mix old and new
      // suffixes in one file.
      RLZ_ASSIGN_OR_RETURN(
          store->wal_,
          wal::WalWriter::Create(io, dir, info.generation, replay.next_seq,
                                 replay.next_lsn, wal_options));
    }
    store->PublishLocked();
  }
  if (report != nullptr) {
    report->generation = info.generation;
    report->replayed_records = replay.replayed;
    report->next_lsn = replay.next_lsn;
    report->torn_tail = replay.torn;
  }
  return store;
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::OpenDurable(
    const std::string& dir, const OpenOptions& options,
    const wal::WalWriterOptions& wal_options, std::shared_ptr<FileSystem> fs,
    RecoveryReport* report) {
  const std::shared_ptr<FileSystem> io =
      fs != nullptr ? fs
                    : (options.fs != nullptr ? options.fs
                                             : DefaultFileSystem());
  // CURRENT names the live checkpoint; when it is missing or damaged,
  // every readable meta is a candidate, newest first. Trying candidates
  // in order turns "CURRENT got corrupted" into a recoverable state
  // instead of a dead directory.
  std::vector<wal::CheckpointInfo> candidates;
  StatusOr<uint64_t> current = wal::ReadCurrent(*io, dir);
  if (current.ok()) {
    StatusOr<wal::CheckpointInfo> info =
        wal::ReadCheckpointMeta(*io, dir, *current);
    if (info.ok()) candidates.push_back(*std::move(info));
  }
  if (candidates.empty()) {
    RLZ_ASSIGN_OR_RETURN(candidates, wal::ListCheckpoints(*io, dir));
  }
  if (candidates.empty()) {
    return Status::Corruption(dir + ": no usable checkpoint");
  }
  Status last = Status::OK();
  for (const wal::CheckpointInfo& info : candidates) {
    StatusOr<std::unique_ptr<ShardedStore>> store =
        OpenFromCheckpoint(dir, info, options, wal_options, fs, report);
    if (store.ok()) return store;
    last = store.status();
  }
  return last;
}

}  // namespace rlz
