#include "serve/sharded_store.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "build/archive_builder.h"
#include "build/build_pipeline.h"
#include "core/dictionary.h"
#include "store/format.h"
#include "util/logging.h"

namespace rlz {
namespace {

// Relative name of shard `s` next to a manifest named `manifest_base`
// (the manifest's own basename): "<base>.shard0007".
std::string ShardFileName(const std::string& manifest_base, size_t s) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard%04llu",
                static_cast<unsigned long long>(s));
  return manifest_base + suffix;
}

// Splits `path` into the directory prefix (empty or ending in '/') and
// the basename.
void SplitPath(const std::string& path, std::string* dir,
               std::string* base) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    dir->clear();
    *base = path;
  } else {
    *dir = path.substr(0, slash + 1);
    *base = path.substr(slash + 1);
  }
}

}  // namespace

std::unique_ptr<ShardedStore> ShardedStore::Build(
    const Collection& collection, const ShardedStoreOptions& options) {
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  const size_t ndocs = collection.num_docs();
  const size_t nshards = std::max<size_t>(
      1, std::min<size_t>(options.num_shards > 0 ? options.num_shards : 1,
                          std::max<size_t>(ndocs, 1)));

  // Contiguous ranges balanced by uncompressed bytes: shard s ends at the
  // first doc whose cumulative size reaches s+1 equal slices of the total.
  std::vector<size_t> starts(1, 0);
  const uint64_t total = collection.size_bytes();
  uint64_t seen = 0;
  size_t doc = 0;
  for (size_t s = 0; s + 1 < nshards; ++s) {
    const uint64_t target = total * (s + 1) / nshards;
    // Leave enough docs for the remaining shards to be non-empty.
    const size_t max_end = ndocs - (nshards - 1 - s);
    while (doc < max_end && (seen < target || doc == starts.back())) {
      seen += collection.doc_size(doc);
      ++doc;
    }
    starts.push_back(doc);
  }
  starts.push_back(ndocs);
  store->router_ = ShardRouter(std::move(starts));

  const int build_threads =
      options.build_threads > 0 ? options.build_threads
                                : static_cast<int>(nshards);
  const size_t shard_dict_bytes =
      std::max<size_t>(1, options.dict_bytes / nshards);

  store->shards_.resize(nshards);
  auto build_shard = [&](size_t s) {
    const size_t begin = store->router_.start(s);
    const size_t end = store->router_.start(s + 1);
    // A shard's documents are contiguous in the source collection, so
    // dictionary sampling and the streaming build both work off views —
    // no per-shard copy of the text (peak memory stays one corpus).
    const std::string_view shard_text =
        collection.data().substr(collection.doc_offset(begin),
                                 collection.doc_offset(end) -
                                     collection.doc_offset(begin));
    std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
        shard_text, shard_dict_bytes, options.sample_bytes);
    ArchiveBuilderOptions builder_options;
    builder_options.coding = options.coding;
    builder_options.num_threads = std::max(1, options.threads_per_shard);
    RlzArchiveBuilder builder(std::move(dict), builder_options);
    for (size_t i = begin; i < end; ++i) {
      builder.AddBorrowedDocument(collection.doc(i));
    }
    store->shards_[s] = std::move(builder).Finish();
  };

  // One pipeline chunk per shard: shards build concurrently and land in
  // their slots (merge order is irrelevant here — slots are disjoint —
  // but the pipeline's ordered-merge guarantee costs nothing).
  BuildPipelineOptions pipeline_options;
  pipeline_options.num_threads = static_cast<int>(std::min<size_t>(
      nshards, static_cast<size_t>(std::max(1, build_threads))));
  BuildPipeline pipeline(pipeline_options);
  for (size_t s = 0; s < nshards; ++s) {
    pipeline.Submit([&, s](int) { build_shard(s); }, [] {});
  }
  pipeline.Finish();
  return store;
}

Status ShardedStore::Save(const std::string& path) const {
  std::string dir;
  std::string base;
  SplitPath(path, &dir, &base);
  // Shards first, manifest last: a torn save leaves orphan shard files,
  // never a manifest that names missing ones.
  for (size_t s = 0; s < shards_.size(); ++s) {
    RLZ_RETURN_IF_ERROR(shards_[s]->Save(dir + ShardFileName(base, s)));
  }
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutVarint64(shards_.size());
  for (size_t s = 0; s <= shards_.size(); ++s) {
    writer.PutVarint64(router_.start(s));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    writer.PutLengthPrefixed(ShardFileName(base, s));
  }
  return std::move(writer).WriteTo(path);
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::FromEnvelope(
    const ParsedEnvelope& envelope, const std::string& path,
    const OpenOptions& options) {
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();

  uint64_t nshards = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&nshards));
  if (nshards == 0 || nshards > reader.remaining()) {
    return Status::Corruption(envelope.context() +
                              ": bad manifest shard count");
  }
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  std::vector<size_t> starts(nshards + 1);
  for (size_t s = 0; s <= nshards; ++s) {
    uint64_t start = 0;
    RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&start));
    starts[s] = start;
    if ((s == 0 && start != 0) || (s > 0 && start < starts[s - 1])) {
      return Status::Corruption(envelope.context() +
                                ": manifest boundaries not monotone");
    }
  }
  store->router_ = ShardRouter(std::move(starts));
  std::string dir;
  std::string base;
  SplitPath(path, &dir, &base);
  std::vector<std::string> shard_paths(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    std::string_view name;
    RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&name));
    if (name.empty() || name.find('/') != std::string_view::npos) {
      return Status::Corruption(envelope.context() +
                                ": manifest shard name must be a sibling "
                                "file name");
    }
    shard_paths[s] = dir + std::string(name);
  }
  RLZ_RETURN_IF_ERROR(reader.ExpectConsumed());

  // Shard files open in parallel: each is an independent rlz container,
  // and the suffix-array rebuild (when requested) dominates the open
  // cost, so the pipeline overlaps them across open_threads workers.
  store->shards_.resize(nshards);
  std::vector<Status> statuses(nshards);
  BuildPipelineOptions pipeline_options;
  // `nshards` comes from the (untrusted, CRC-valid) manifest: the default
  // thread count is capped at the hardware parallelism so a crafted count
  // cannot fan out thousands of threads — the per-shard opens then fail
  // cleanly on the missing files.
  const uint64_t default_threads =
      std::max(1u, std::thread::hardware_concurrency());
  pipeline_options.num_threads = static_cast<int>(std::min<uint64_t>(
      nshards,
      options.open_threads > 0 ? static_cast<uint64_t>(options.open_threads)
                               : default_threads));
  BuildPipeline pipeline(pipeline_options);
  for (size_t s = 0; s < nshards; ++s) {
    pipeline.Submit(
        [&, s](int) {
          auto shard = RlzArchive::Load(shard_paths[s], options);
          if (shard.ok()) {
            store->shards_[s] = std::move(shard).value();
          } else {
            statuses[s] = shard.status();
          }
        },
        [] {});
  }
  pipeline.Finish();
  for (const Status& status : statuses) {
    RLZ_RETURN_IF_ERROR(status);
  }
  for (size_t s = 0; s < nshards; ++s) {
    if (store->shards_[s]->num_docs() !=
        store->router_.start(s + 1) - store->router_.start(s)) {
      return Status::Corruption(shard_paths[s] +
                                ": shard document count disagrees with "
                                "the manifest");
    }
  }
  return store;
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& path, const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope, ReadEnvelopeFile(path));
  return FromEnvelope(envelope, path, options);
}

std::string ShardedStore::name() const {
  const std::string coding =
      shards_.empty() ? std::string("rlz") : shards_[0]->name();
  return "sharded-" + coding + "/" + std::to_string(num_shards());
}

size_t ShardedStore::shard_of(size_t id) const {
  RLZ_DCHECK_LT(id, num_docs());
  return router_.shard_of(id);
}

namespace {

// Charges the factor-stream read of shard-local doc `local` at the
// shard's device base, exactly mirroring what RlzArchive::Get/GetRange
// would charge at shard-local offsets.
void ChargeShardRead(const RlzArchive& shard, size_t shard_index,
                     size_t local, SimDisk* disk) {
  if (disk == nullptr) return;
  const DocMap& map = shard.doc_map();
  disk->Read(ShardedStore::kSimDeviceSpacing * shard_index +
                 map.offset(local),
             map.size(local));
}

}  // namespace

Status ShardedStore::Get(size_t id, std::string* doc, SimDisk* disk,
                         DecodeScratch* scratch) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  const size_t s = shard_of(id);
  const size_t local = id - router_.start(s);
  ChargeShardRead(*shards_[s], s, local, disk);
  return shards_[s]->Get(local, doc, /*disk=*/nullptr, scratch);
}

Status ShardedStore::GetRange(size_t id, size_t offset, size_t length,
                              std::string* text, SimDisk* disk,
                              DecodeScratch* scratch) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("sharded store: bad doc id");
  }
  const size_t s = shard_of(id);
  const size_t local = id - router_.start(s);
  ChargeShardRead(*shards_[s], s, local, disk);
  return shards_[s]->GetRange(local, offset, length, text, /*disk=*/nullptr,
                              scratch);
}

uint64_t ShardedStore::stored_bytes() const {
  uint64_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->stored_bytes();
  return bytes;
}

}  // namespace rlz
