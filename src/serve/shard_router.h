#ifndef RLZ_SERVE_SHARD_ROUTER_H_
#define RLZ_SERVE_SHARD_ROUTER_H_

/// \file
/// The doc-id → shard range map shared by ShardedStore, CorpusEpoch, and
/// the serving layer's shard-affine routing (DESIGN.md §6, §10, §11).

#include <algorithm>
#include <cstddef>
#include <vector>

namespace rlz {

/// The doc-id → shard map of a sharded corpus: N+1 monotone range
/// boundaries (`start(0) == 0`, `start(num_shards()) == num_docs()`),
/// routed by binary search. Immutable after construction and trivially
/// shareable across threads. A live store grows by publishing a *new*
/// router inside the next epoch (a sealed tail appends one boundary), so
/// any router handle a reader holds stays valid and self-consistent; the
/// serving layer routes from a shared snapshot
/// (ShardedStore::router_snapshot(), DESIGN.md §10/§11).
class ShardRouter {
 public:
  /// An empty router: zero shards, zero documents.
  ShardRouter() = default;
  /// Wraps the N+1 boundaries; `starts[0]` must be 0 and the sequence
  /// must be non-decreasing (callers validate — the router only routes).
  explicit ShardRouter(std::vector<size_t> starts)
      : starts_(std::move(starts)) {}

  /// The shard owning doc `id` (`id` must be < num_docs()).
  size_t shard_of(size_t id) const {
    // First boundary strictly greater than id, minus one.
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), id);
    return static_cast<size_t>(it - starts_.begin()) - 1;
  }
  /// Number of shards routed over.
  size_t num_shards() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  /// Total documents across all shards.
  size_t num_docs() const { return starts_.empty() ? 0 : starts_.back(); }
  /// First doc id of shard `s`; `start(num_shards()) == num_docs()`.
  size_t start(size_t s) const { return starts_[s]; }

 private:
  std::vector<size_t> starts_;
};

}  // namespace rlz

#endif  // RLZ_SERVE_SHARD_ROUTER_H_
