#ifndef RLZ_SERVE_REQUEST_QUEUE_H_
#define RLZ_SERVE_REQUEST_QUEUE_H_

/// \file
/// The serving layer's per-worker request queue: a bounded ring of plain
/// request descriptors, multi-producer, popped by the owning worker and
/// (under imbalance) by stealing peers (DESIGN.md §10).

#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

namespace rlz {

struct GetResult;
class ServeBatch;

/// One queued retrieval request. Plain data, passed by value through the
/// ring — enqueueing allocates nothing. Exactly one completion channel is
/// set: `out`+`batch` for the batched path (the worker writes the result
/// into the caller-owned slot, then counts the batch down), or `promise`
/// for the future-returning convenience path (owned by the request; the
/// executing worker fulfils and deletes it).
struct ServeRequest {
  /// Document id to retrieve.
  size_t id = 0;
  /// Range start (kRange only).
  size_t offset = 0;
  /// Range length (kRange only).
  size_t length = 0;
  /// False for a whole-document Get, true for the GetRange snippet path.
  bool is_range = false;
  /// Steady-clock enqueue stamp (ns) for queue+service latency accounting.
  uint64_t enqueue_ns = 0;
  /// Caller-owned result slot (batched path); null on the promise path.
  GetResult* out = nullptr;
  /// Completion counter of the owning batch; null on the promise path.
  ServeBatch* batch = nullptr;
  /// Owned promise (future path); null on the batched path.
  std::promise<GetResult>* promise = nullptr;
};

/// A bounded MPSC-with-stealing queue: fixed capacity decided at
/// construction (the service's backpressure unit — a full queue pushes
/// back on producers), one mutex per queue so contention is spread across
/// the pool instead of funnelled through one lock, O(1) push/pop with no
/// allocation after construction. The owning worker pops from it on every
/// iteration; idle peers may also pop (work stealing), which keeps tail
/// latency bounded under skewed routing.
class BoundedRequestQueue {
 public:
  /// Creates a queue holding at most `capacity` requests (floored at 1).
  explicit BoundedRequestQueue(size_t capacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Pushes one request; returns false when the queue is full.
  bool TryPush(const ServeRequest& request) {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == ring_.size()) return false;
    ring_[(head_ + count_) % ring_.size()] = request;
    ++count_;
    return true;
  }

  /// Pushes up to `n` requests from `requests` under one lock acquisition
  /// (the batched submission path's "one enqueue per shard"); returns how
  /// many were pushed — the rest did not fit.
  size_t TryPushMany(const ServeRequest* requests, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t room = ring_.size() - count_;
    const size_t pushed = n < room ? n : room;
    for (size_t i = 0; i < pushed; ++i) {
      ring_[(head_ + count_) % ring_.size()] = requests[i];
      ++count_;
    }
    return pushed;
  }

  /// Pops the oldest request into `*request`; returns false when empty.
  bool TryPop(ServeRequest* request) {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) return false;
    *request = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
  }

  /// Requests currently queued (racy snapshot, for monitoring).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// The fixed capacity.
  size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<ServeRequest> ring_;
  size_t head_ = 0;   // index of the oldest element
  size_t count_ = 0;  // elements in the ring
};

}  // namespace rlz

#endif  // RLZ_SERVE_REQUEST_QUEUE_H_
