#ifndef RLZ_SERVE_REQUEST_QUEUE_H_
#define RLZ_SERVE_REQUEST_QUEUE_H_

/// \file
/// The serving layer's per-worker request queue: bounded rings of plain
/// request descriptors, multi-producer, popped by the owning worker and
/// (under imbalance) by stealing peers (DESIGN.md §10). Since the
/// overload-protection layer (DESIGN.md §14) the queue is class-aware:
/// one ring per RequestPriority, popped in strict priority order, with a
/// per-class capacity so best-effort traffic cannot consume the headroom
/// reserved for higher classes.

#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

namespace rlz {

struct GetResult;
class ServeBatch;

/// Request classes of the serving layer (DESIGN.md §14). Lower value =
/// served first: workers drain kHigh before kNormal before kBestEffort,
/// and admission gives each class a distinct share of every queue.
/// kNormal is the default (and what protocol-v1 network clients map to);
/// kBestEffort is the only class the admission layer load-sheds.
enum class RequestPriority : uint8_t {
  kHigh = 0,        ///< latency-sensitive: full queue capacity, never shed
  kNormal = 1,      ///< the default: most of the queue, blocks when full
  kBestEffort = 2,  ///< bulk/background: capped share, shed under overload
};

/// Number of RequestPriority classes (array-sizing constant).
constexpr int kNumPriorities = 3;

/// One queued retrieval request. Plain data, passed by value through the
/// ring — enqueueing allocates nothing. Exactly one completion channel is
/// set: `out`+`batch` for the batched path (the worker writes the result
/// into the caller-owned slot, then counts the batch down), or `promise`
/// for the future-returning convenience path (owned by the request; the
/// executing worker fulfils and deletes it).
struct ServeRequest {
  /// Document id to retrieve.
  size_t id = 0;
  /// Range start (kRange only).
  size_t offset = 0;
  /// Range length (kRange only).
  size_t length = 0;
  /// False for a whole-document Get, true for the GetRange snippet path.
  bool is_range = false;
  /// Service class: selects the ring and the pop order (DESIGN.md §14).
  RequestPriority priority = RequestPriority::kNormal;
  /// Steady-clock enqueue stamp (ns) for queue+service latency accounting.
  uint64_t enqueue_ns = 0;
  /// Absolute steady-clock expiry (ns); 0 = no deadline. A request still
  /// queued past this completes kDeadlineExceeded without decoding.
  uint64_t deadline_ns = 0;
  /// Caller-owned result slot (batched path); null on the promise path.
  GetResult* out = nullptr;
  /// Completion counter of the owning batch; null on the promise path.
  ServeBatch* batch = nullptr;
  /// Owned promise (future path); null on the batched path.
  std::promise<GetResult>* promise = nullptr;
};

/// A bounded MPSC-with-stealing queue of three priority rings: fixed
/// per-class capacities decided at construction (the service's
/// backpressure/admission unit — a full ring pushes back on, or sheds,
/// producers of that class), one mutex per queue so contention is spread
/// across the pool instead of funnelled through one lock, O(1) push/pop
/// with no allocation after construction. The owning worker pops on every
/// iteration; idle peers may also pop (work stealing), which keeps tail
/// latency bounded under skewed routing. Pops drain strictly by class —
/// a queued best-effort request never delays a high-priority one behind
/// it, which is what bounds accepted-request latency under overload.
class BoundedRequestQueue {
 public:
  /// Creates a queue whose ring for class `p` holds `class_caps[p]`
  /// requests (each floored at 1). `class_caps` is indexed by
  /// RequestPriority value.
  explicit BoundedRequestQueue(const size_t (&class_caps)[kNumPriorities]) {
    for (int p = 0; p < kNumPriorities; ++p) {
      rings_[p].ring.resize(class_caps[p] > 0 ? class_caps[p] : 1);
    }
  }

  /// Convenience: one capacity shared by every class (legacy shape used
  /// by tests; the service passes per-class shares).
  explicit BoundedRequestQueue(size_t capacity)
      : BoundedRequestQueue({capacity, capacity, capacity}) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Pushes one request onto its class ring; returns false when that
  /// ring is full (the caller spills to a peer, blocks, or sheds —
  /// per-class policy lives in DocService, not here).
  bool TryPush(const ServeRequest& request) {
    std::lock_guard<std::mutex> lock(mu_);
    return PushLocked(request);
  }

  /// Pushes up to `n` requests from `requests` under one lock acquisition
  /// (the batched submission path's "one enqueue per shard"); returns how
  /// many were pushed — it stops at the first request whose class ring is
  /// full (preserving per-class FIFO order), and the caller routes the
  /// rest individually.
  size_t TryPushMany(const ServeRequest* requests, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t pushed = 0;
    while (pushed < n && PushLocked(requests[pushed])) ++pushed;
    return pushed;
  }

  /// Pops the oldest request of the highest non-empty class into
  /// `*request`; returns false when every ring is empty.
  bool TryPop(ServeRequest* request) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int p = 0; p < kNumPriorities; ++p) {
      Ring& r = rings_[p];
      if (r.count == 0) continue;
      *request = r.ring[r.head];
      r.head = (r.head + 1) % r.ring.size();
      --r.count;
      return true;
    }
    return false;
  }

  /// True when class `p`'s ring has room (racy snapshot — the caller's
  /// TryPush may still fail; used as a wakeup predicate).
  bool HasRoom(RequestPriority p) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Ring& r = rings_[static_cast<int>(p)];
    return r.count < r.ring.size();
  }

  /// Requests currently queued across all classes (racy snapshot, for
  /// monitoring).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const Ring& r : rings_) total += r.count;
    return total;
  }

  /// The fixed capacity of class `p`'s ring.
  size_t capacity(RequestPriority p = RequestPriority::kHigh) const {
    return rings_[static_cast<int>(p)].ring.size();
  }

 private:
  struct Ring {
    std::vector<ServeRequest> ring;
    size_t head = 0;   // index of the oldest element
    size_t count = 0;  // elements in the ring
  };

  bool PushLocked(const ServeRequest& request) {
    Ring& r = rings_[static_cast<int>(request.priority)];
    if (r.count == r.ring.size()) return false;
    r.ring[(r.head + r.count) % r.ring.size()] = request;
    ++r.count;
    return true;
  }

  mutable std::mutex mu_;
  Ring rings_[kNumPriorities];
};

}  // namespace rlz

#endif  // RLZ_SERVE_REQUEST_QUEUE_H_
