#ifndef RLZ_SERVE_SHARDED_STORE_H_
#define RLZ_SERVE_SHARDED_STORE_H_

/// \file
/// The live sharded corpus: N independent RLZ shards plus an appendable
/// tail segment behind one Archive interface, published to readers as
/// immutable epoch snapshots (DESIGN.md §6, §11).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/factor_coder.h"
#include "core/factorizer.h"
#include "core/rlz_archive.h"
#include "corpus/collection.h"
#include "io/file_system.h"
#include "serve/corpus_epoch.h"
#include "serve/shard_router.h"
#include "store/archive.h"
#include "store/open_archive.h"
#include "store/wal/checkpoint.h"
#include "store/wal/wal_writer.h"

namespace rlz {

class RlzArchiveBuilder;

/// Mutation-path knobs of a live ShardedStore (DESIGN.md §11).
struct LiveStoreOptions {
  /// Raw tail bytes that trigger an automatic seal: once the open tail
  /// segment holds at least this much appended text, the Append that
  /// crossed the threshold seals it into a new compressed shard before
  /// returning. 0 disables auto-seal (callers seal explicitly).
  size_t tail_seal_bytes = 1 << 20;
  /// Worker threads of the incremental tail encoder (the per-append
  /// RlzArchiveBuilder). 1 encodes each append synchronously — the §3.6
  /// dynamic setting, with live factor stats; more workers encode tail
  /// chunks on the build pipeline in the background.
  int tail_builder_threads = 1;
  /// Worker threads for a compaction rebuild.
  int compact_threads = 1;
  /// Compaction trigger: a shard whose tombstoned-but-still-stored
  /// payload fraction reaches this is tombstone-heavy.
  double compact_tombstone_fraction = 0.25;
  /// Compaction trigger: a shard whose dictionary has at least this
  /// fraction of never-referenced bytes (coverage decay, §3.6) is
  /// stale-dictionary.
  double compact_stale_unused_fraction = 0.5;
  /// Compaction trigger: a shard whose average factor length decayed by
  /// at least this fraction against the store's build-time baseline
  /// (FactorStats::avg_factor_decay) is stale-dictionary.
  double compact_stale_decay = 0.5;
  /// When true, sealed tails reuse the store's append dictionary (cheap
  /// seals, but the dictionary goes stale as content drifts — the §3.6
  /// setting compaction recovers from). When false, every seal samples a
  /// fresh dictionary from its own tail documents.
  bool reuse_append_dictionary = true;
};

/// Build-time knobs for ShardedStore::Build.
struct ShardedStoreOptions {
  /// Number of partitions. Clamped to [1, num_docs]. Shards are contiguous
  /// document ranges balanced by text bytes, so crawl locality (and URL
  /// ordering, §3.5) survives partitioning.
  int num_shards = 4;
  /// Total dictionary budget, split evenly across shards — a 4-shard store
  /// and an unsharded archive with the same `dict_bytes` are comparable in
  /// the paper's Enc. % terms.
  size_t dict_bytes = 1 << 20;
  /// Sample size for each shard's dictionary (the paper's 1 KB default).
  size_t sample_bytes = 1024;
  /// Position/length coding pair used by every shard.
  PairCoding coding = kZV;
  /// Worker threads for the build: shards build concurrently on the build
  /// pipeline, at most one worker per shard (0 means one per shard). Each
  /// shard streams through RlzArchiveBuilder, which is byte-identical to
  /// RlzArchive::Build — so the store is deterministic for any thread
  /// count.
  int build_threads = 0;
  /// Factorization workers inside each shard's RlzArchiveBuilder
  /// (DESIGN.md §7). The default 1 is right when shards already saturate
  /// the machine; raise it for few-shard builds on many-core hosts.
  int threads_per_shard = 1;
  /// Mutation-path knobs (tail sealing, compaction triggers).
  LiveStoreOptions live;
};

/// What one compaction pass did (ShardedStore::CompactOnce).
struct CompactionReport {
  /// Why a shard was rewritten (or kNone when no shard crossed a
  /// threshold).
  enum class Reason {
    kNone,             ///< no shard needed compaction
    kTombstones,       ///< tombstoned payload fraction crossed the trigger
    kStaleDictionary,  ///< dictionary coverage/factor-length decay trigger
  };

  /// True when a shard was rewritten and swapped into a new epoch.
  bool compacted = false;
  /// The rewritten shard's index (-1 when not compacted).
  int shard = -1;
  /// The rewritten shard's new generation.
  uint64_t generation = 0;
  /// Which trigger fired.
  Reason reason = Reason::kNone;
  /// The shard's stored bytes before the rewrite.
  uint64_t bytes_before = 0;
  /// The shard's stored bytes after the rewrite.
  uint64_t bytes_after = 0;
  /// Live documents re-encoded into the rewrite.
  size_t live_docs = 0;
  /// Tombstoned ids whose payload the rewrite reclaimed.
  size_t dead_docs = 0;
};

/// Health and provenance of one sealed shard — the compactor's scoring
/// input (ShardedStore::shard_health).
struct ShardHealth {
  /// Rewrite generation (0 = as first sealed; +1 per compaction swap).
  uint64_t generation = 0;
  /// Encoded payload bytes owned by tombstoned ids that a rewrite has not
  /// yet reclaimed.
  uint64_t tombstoned_payload_bytes = 0;
  /// Fraction of the shard's dictionary never referenced by any factor
  /// (coverage decay; 1.0 - Bitmap::FractionSet of the build coverage).
  double unused_dict_fraction = 0.0;
  /// Factor statistics of the shard's most recent (re)build.
  FactorStats stats;
};

/// Partitions a collection into independent RlzArchive shards behind the
/// Archive interface — the scale-out unit of the serving layer (DESIGN.md
/// §6) — and keeps the corpus *live*: documents can be appended (routed
/// to an open tail segment encoded incrementally through the build
/// pipeline), deleted (tombstoned), and compacted (a tombstone-heavy or
/// stale-dictionary shard is rewritten in the background and swapped into
/// the next epoch).
///
/// Concurrency model (DESIGN.md §11): all reads resolve against an
/// immutable CorpusEpoch published through an atomically swapped
/// shared_ptr. Get/GetRange pin the current epoch for the duration of the
/// call, so decode never races a mutation; writers (Append/Delete/seal/
/// compaction publish) serialize on an internal mutex and never block
/// readers. Any number of threads may read concurrently with any number
/// of mutators.
///
/// SimDisk accounting models each sealed shard as its own device: a real
/// deployment stores one file per shard. The store charges each read at
/// the shard-local payload offset plus a per-shard base far larger than
/// any readahead window (kSimDeviceSpacing), so a cross-shard jump always
/// pays a seek and intra-shard sequential runs stay sequential. The open
/// tail is memory-resident (a memtable) and charges nothing.
class ShardedStore final : public Archive {
 public:
  /// Signature of the cache-invalidation hook (see SetEvictionListener).
  using EvictionListener = std::function<void(size_t id)>;

  /// Partitions `collection`, samples one dictionary per shard, and
  /// builds every shard (concurrently per options.build_threads). Also
  /// samples the append dictionary that future tail seals encode against
  /// and publishes epoch 0.
  static std::unique_ptr<ShardedStore> Build(
      const Collection& collection, const ShardedStoreOptions& options = {});

  /// Joins the background compactor (if running) and drains the tail
  /// encoder.
  ~ShardedStore() override;

  /// The scratch-less convenience overloads stay visible alongside the
  /// scratch-aware overrides below.
  using Archive::Get;
  using Archive::GetRange;

  /// "sharded-<shard coding>/<N>".
  std::string name() const override;
  /// Total documents across sealed shards and the open tail, including
  /// tombstoned ids (ids are permanent; see CorpusEpoch).
  size_t num_docs() const override { return epoch()->num_docs(); }
  /// Pins the current epoch and decodes the document from that snapshot.
  /// Returns NotFound for a tombstoned id.
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const override;
  /// Pins the current epoch and decodes only the requested range.
  Status GetRange(size_t id, size_t offset, size_t length, std::string* text,
                  SimDisk* disk, DecodeScratch* scratch) const override;
  /// Sum of every sealed shard's stored bytes plus the raw open tail.
  uint64_t stored_bytes() const override { return epoch()->stored_bytes(); }

  // --- Mutation API (DESIGN.md §11) -------------------------------------

  /// Appends one document to the open tail segment and publishes the
  /// epoch that contains it. Returns the new document's permanent id.
  /// The document is encoded incrementally through the tail's
  /// RlzArchiveBuilder (synchronously with one tail worker; on the build
  /// pipeline with more), and its raw bytes serve reads until the tail
  /// seals. Crossing LiveStoreOptions::tail_seal_bytes seals the tail
  /// before returning. Thread-safe against concurrent readers and other
  /// mutators. Fails with InvalidArgument on a store opened without an
  /// append dictionary (a v1 manifest or a serving-only open).
  StatusOr<size_t> Append(std::string_view doc);

  /// Tombstones document `id` and publishes the epoch that hides it:
  /// after Delete returns, new Gets return NotFound (readers pinned to an
  /// earlier epoch still see the document — snapshot isolation). The
  /// payload bytes are reclaimed by a later compaction, not here.
  /// Returns OutOfRange for an unknown id, NotFound if already deleted.
  Status Delete(size_t id);

  /// True if `id` resolves to a non-tombstoned document in the current
  /// epoch (the serving layer's post-insert cache check).
  bool IsLive(size_t id) const;

  /// Seals the open tail into a new compressed shard (growing the router
  /// by one range) and publishes the epoch containing it. No-op when the
  /// tail is empty. Called automatically when an Append crosses
  /// LiveStoreOptions::tail_seal_bytes.
  Status SealTail();

  /// One compaction pass: scores every sealed shard (tombstoned-payload
  /// fraction, dictionary staleness), rewrites the worst shard that
  /// crossed a trigger — re-sampling a fresh dictionary from its live
  /// documents, reclaiming tombstoned payload — and swaps it into the
  /// next epoch. The rebuild runs against a pinned epoch without blocking
  /// mutators; only the final swap takes the writer lock. Readers pinned
  /// to older epochs keep decoding from the pre-compaction shard until
  /// they drain. Returns a report (compacted == false when no shard
  /// crossed a trigger).
  StatusOr<CompactionReport> CompactOnce();

  /// Starts a background thread that runs CompactOnce every `interval`
  /// until StopCompactor (or destruction). No-op if already running.
  void StartCompactor(std::chrono::milliseconds interval);

  /// Stops and joins the background compactor, if running.
  void StopCompactor();

  /// Registers (or, with nullptr, clears) the invalidation hook the
  /// mutation path calls with each tombstoned id — after the tombstoning
  /// epoch is published — and with each id whose payload a compaction
  /// reclaimed. The serving layer uses it to erase stale decode-cache
  /// entries (LruCache::Erase). At most one listener; clearing blocks
  /// until any in-flight callback returns, so the previous listener's
  /// captures can be destroyed safely after this returns. Registration is
  /// const: observers do not mutate corpus state.
  void SetEvictionListener(EvictionListener listener) const;

  // --- Epoch and introspection ------------------------------------------

  /// Pins the current epoch: the returned snapshot (and every document in
  /// it) stays byte-identical and decodable for as long as the pointer is
  /// held, regardless of later appends, deletes, seals, or compactions.
  std::shared_ptr<const CorpusEpoch> epoch() const;

  /// The current epoch's publication sequence number.
  uint64_t epoch_sequence() const { return epoch()->sequence(); }

  /// Number of sealed shards in the current epoch.
  int num_shards() const { return epoch()->num_shards(); }
  /// The shard holding doc `id` in the current epoch (id must be <
  /// sealed docs).
  size_t shard_of(size_t id) const { return epoch()->router().shard_of(id); }
  /// Shard `s` of the current epoch (s must be < num_shards()). The
  /// reference stays valid while the store lives (shards are replaced,
  /// never destroyed, while any epoch can reach them) — but prefer
  /// epoch() for multi-call consistency.
  const RlzArchive& shard(int s) const { return epoch()->shard(s); }
  /// First doc id owned by shard `s` in the current epoch.
  size_t starts(int s) const {
    return epoch()->router().start(static_cast<size_t>(s));
  }
  /// Shared doc-id → shard routing snapshot of the current epoch. The
  /// serving layer refreshes this per submission: routing from a stale
  /// snapshot is a locality miss, never an error (DESIGN.md §10).
  std::shared_ptr<const ShardRouter> router_snapshot() const {
    return epoch()->router_ptr();
  }
  /// Health counters of sealed shard `s` in the current epoch — the
  /// compaction triggers' inputs.
  ShardHealth shard_health(int s) const;
  /// The store-wide build-time factor statistics the staleness trigger
  /// compares against (FactorStats::avg_factor_decay).
  FactorStats baseline_stats() const;

  /// Simulated address-space stride between shard devices (1 TiB): far
  /// beyond any SimDiskOptions::sequential_gap, and far above the v1
  /// format's per-shard payload limit, so shard extents never overlap.
  static constexpr uint64_t kSimDeviceSpacing = 1ull << 40;

  /// On-disk format id of the manifest envelope ("sharded").
  static constexpr char kFormatId[] = "sharded";
  /// Current manifest format version. Version 1 (read-compat) is the
  /// build-once manifest: boundaries and shard file names only. Version 2
  /// adds the epoch sequence, per-shard generations and health, tombstone
  /// sections, the raw open-tail documents, and the append dictionary —
  /// Save/Open round-trips a live epoch.
  static constexpr uint32_t kFormatVersion = 2;

  /// Serializes the current epoch as one file per shard plus a manifest:
  /// each sealed shard is written as an rlz container at
  /// `path + ".shardNNNN"`, then the manifest (epoch sequence, shard
  /// boundaries, generations, relative shard file names, tombstones, raw
  /// tail documents, append dictionary) is written at `path` — last, so a
  /// crash mid-save never leaves a manifest pointing at missing shards.
  /// The directory can be moved as a unit: shard names are stored
  /// relative to the manifest.
  Status Save(const std::string& path) const override;

  /// Opens a store written by Save: reads the manifest, then loads every
  /// shard file in parallel (options.open_threads workers; by default one
  /// per shard, capped at the hardware parallelism). A v2 manifest
  /// restores the full epoch: tombstones, generations, the open tail
  /// (re-encoded through a fresh tail builder), and the append
  /// dictionary. A serving-only reopen passes
  /// OpenOptions::build_suffix_array = false, skips every suffix-array
  /// rebuild, and disables Append (InvalidArgument). Fails with
  /// IOError if a shard file named by the manifest is missing, Corruption
  /// if a shard's document count disagrees with the manifest.
  static StatusOr<std::unique_ptr<ShardedStore>> Open(
      const std::string& path, const OpenOptions& options = {});

  /// Materializes a store from a parsed manifest envelope — the
  /// OpenArchive registry hook. `path` locates the sibling shard files.
  static StatusOr<std::unique_ptr<ShardedStore>> FromEnvelope(
      const ParsedEnvelope& envelope, const std::string& path,
      const OpenOptions& options);

  // --- Durability (DESIGN.md §12) ---------------------------------------

  /// What OpenDurable's recovery found.
  struct RecoveryReport {
    /// Generation of the checkpoint recovery started from.
    uint64_t generation = 0;
    /// WAL records replayed over the checkpoint.
    uint64_t replayed_records = 0;
    /// LSN the recovered writer resumes at.
    uint64_t next_lsn = 0;
    /// True if the final WAL segment ended in a torn frame (truncated).
    bool torn_tail = false;
  };

  /// Attaches crash-safe persistence to this store: creates `dir`,
  /// starts a write-ahead log, and writes checkpoint generation 1 of the
  /// current state. From then on every Append/Delete/SealTail is logged
  /// before its epoch publishes — under the default
  /// wal::WalWriterOptions (fsync_every_n = 1) an acknowledged mutation
  /// survives any crash; relaxed group-commit settings bound the loss to
  /// the unsynced batch. Compaction triggers a fresh checkpoint after
  /// its swap. `fs` null means the real file system.
  Status MakeDurable(const std::string& dir,
                     const wal::WalWriterOptions& wal_options = {},
                     std::shared_ptr<FileSystem> fs = nullptr);

  /// Opens (and auto-recovers) a durable store directory: finds the most
  /// recent complete checkpoint (CURRENT, with a scan fallback when
  /// CURRENT itself is damaged), loads its manifest and shards, replays
  /// the WAL over it — tolerating a torn final segment — and resumes
  /// logging. A serving-only open (options.build_suffix_array = false)
  /// skips suffix-array rebuilds, skips re-sealing (WAL'd tail documents
  /// stay raw), writes nothing, and disables every mutation (read_only()
  /// becomes true). `fs` non-null routes ALL I/O — checkpoint, shards,
  /// WAL — through it (the crash-injection tests' hook); otherwise shard
  /// reads honor options.use_mmap/options.fs and the WAL uses the real
  /// file system.
  static StatusOr<std::unique_ptr<ShardedStore>> OpenDurable(
      const std::string& dir, const OpenOptions& options = {},
      const wal::WalWriterOptions& wal_options = {},
      std::shared_ptr<FileSystem> fs = nullptr,
      RecoveryReport* report = nullptr);

  /// Writes a new checkpoint of the current epoch (write-new -> fsync ->
  /// rename; see store/wal/checkpoint.h) and prunes the WAL it covers.
  /// Mutators are blocked only while the WAL is synced and rolled, not
  /// while shards are written. InvalidArgument when not durable.
  Status Checkpoint();

  /// Explicit WAL durability barrier — makes every acknowledged mutation
  /// durable now regardless of the group-commit policy.
  Status SyncWal();

  /// True once MakeDurable/OpenDurable attached a WAL to this store.
  bool durable() const;
  /// True for a serving-only durable open: every mutation is disabled.
  bool read_only() const;
  /// Generation of the live checkpoint (0 when not durable).
  uint64_t checkpoint_generation() const;

 private:
  /// Mutable per-shard bookkeeping behind the published ShardHealth.
  struct ShardMeta {
    uint64_t generation = 0;
    uint64_t tombstoned_payload_bytes = 0;
    double unused_dict_fraction = 0.0;
    FactorStats stats;
  };

  ShardedStore() = default;

  /// Builds the epoch that reflects the current writer state and swaps it
  /// in. Requires writer_mu_.
  void PublishLocked();
  /// Logs (when durable) and seals the open tail into a new shard.
  /// Requires writer_mu_.
  Status SealTailLocked();
  /// Creates the open-tail builder for the next segment. Requires
  /// writer_mu_; returns InvalidArgument without an append dictionary.
  Status ResetTailBuilderLocked();

  // The non-logging mutation cores, shared by the live path (which logs
  // first) and WAL replay (which must not log, publish per record, or
  // notify evictions). All require writer_mu_.
  Status ApplyAppendLocked(std::string_view doc, size_t* id);
  Status ApplyDeleteLocked(size_t id);
  Status ApplySealLocked();

  /// InvalidArgument on a read-only (serving-only durable) open.
  Status CheckWritableLocked() const;
  /// Appends one WAL record under the group-commit policy. Requires
  /// writer_mu_ and wal_ != nullptr.
  Status LogLocked(wal::RecordType type, std::string_view payload);
  /// The manifest envelope bytes for `snapshot` (shard names derive from
  /// `shard_base`) — shared by Save and the checkpoint writer so both
  /// produce the same format.
  static std::string SerializeManifest(const CorpusEpoch& snapshot,
                                       const std::vector<ShardMeta>& meta,
                                       const FactorStats& baseline,
                                       std::string_view append_dict_text,
                                       const std::string& shard_base);
  /// Loads checkpoint `info` from `dir` and replays the WAL over it.
  static StatusOr<std::unique_ptr<ShardedStore>> OpenFromCheckpoint(
      const std::string& dir, const wal::CheckpointInfo& info,
      const OpenOptions& options, const wal::WalWriterOptions& wal_options,
      const std::shared_ptr<FileSystem>& fs, RecoveryReport* report);
  /// Invokes the eviction listener (if any) for `id`, outside writer_mu_.
  void NotifyEviction(size_t id) const;
  /// Background compactor loop.
  void CompactorLoop(std::chrono::milliseconds interval);
  /// Scores sealed shards against the compaction triggers; fills the
  /// reason and returns the victim index, or -1. Requires writer_mu_.
  int PickCompactionVictimLocked(CompactionReport::Reason* reason) const;

  ShardedStoreOptions options_;  // build-time + live knobs

  // The published epoch: readers pin it with a shared_ptr copy under
  // epoch_mu_ (held for the copy only); PublishLocked swaps it under the
  // same mutex. All other members below are writer state.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const CorpusEpoch> epoch_;

  // Writer state, guarded by writer_mu_: the mutable mirror of the
  // current epoch that the next PublishLocked snapshots.
  mutable std::mutex writer_mu_;
  uint64_t next_sequence_ = 1;
  std::vector<std::shared_ptr<const RlzArchive>> shards_;
  std::vector<uint64_t> generations_;
  std::vector<ShardMeta> meta_;
  std::shared_ptr<const ShardRouter> router_;
  std::vector<std::shared_ptr<const Bitmap>> tombstones_;
  std::shared_ptr<const Bitmap> tail_tombstones_;
  std::vector<std::shared_ptr<const std::string>> tail_docs_;
  uint64_t tail_bytes_ = 0;
  uint64_t deleted_docs_ = 0;
  FactorStats baseline_stats_;
  // Per-shard dictionary budget (dict_bytes / initial shard count): the
  // sample size for fresh-dictionary seals and compaction re-samples.
  size_t shard_dict_bytes_ = 1 << 20;
  std::shared_ptr<const Dictionary> append_dict_;  // null: appends disabled
  std::unique_ptr<RlzArchiveBuilder> tail_builder_;

  // Durability state (DESIGN.md §12). wal_ non-null once
  // MakeDurable/OpenDurable attached a log; all guarded by writer_mu_
  // except checkpoint_mu_, which serializes whole checkpoints.
  std::shared_ptr<FileSystem> fs_;
  std::string durable_dir_;
  wal::WalWriterOptions wal_options_;
  std::unique_ptr<wal::WalWriter> wal_;
  uint64_t checkpoint_generation_ = 0;
  uint64_t covered_lsn_ = 0;
  bool read_only_ = false;
  std::mutex checkpoint_mu_;

  // One compaction rebuild at a time; the rebuild holds compact_mu_ but
  // not writer_mu_, so mutators keep running while it decodes/re-encodes.
  std::mutex compact_mu_;
  std::thread compactor_;
  std::mutex compactor_mu_;       // guards compactor_ start/stop/join
  std::mutex compactor_wait_mu_;  // guards the loop's interval wait
  std::condition_variable compactor_cv_;
  std::atomic<bool> compactor_stop_{false};

  // Eviction listener: registration and every invocation hold
  // listener_mu_, so clearing the listener synchronizes with in-flight
  // callbacks. Mutable: observers register through a const store.
  mutable std::mutex listener_mu_;
  mutable EvictionListener listener_;
};

}  // namespace rlz

#endif  // RLZ_SERVE_SHARDED_STORE_H_
