#ifndef RLZ_SERVE_SHARDED_STORE_H_
#define RLZ_SERVE_SHARDED_STORE_H_

/// \file
/// N independent RLZ shards behind one Archive interface (DESIGN.md §6).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/factor_coder.h"
#include "core/rlz_archive.h"
#include "corpus/collection.h"
#include "store/archive.h"
#include "store/open_archive.h"

namespace rlz {

/// The doc-id → shard map of a ShardedStore: N+1 monotone range boundaries
/// (`start(0) == 0`, `start(num_shards()) == num_docs()`), routed by binary
/// search. Immutable after construction and trivially shareable across
/// threads; the serving layer borrows it (ShardedStore::router()) to route
/// requests to shard-affine worker queues without going through the
/// Archive interface (DESIGN.md §10).
class ShardRouter {
 public:
  /// An empty router: zero shards, zero documents.
  ShardRouter() = default;
  /// Wraps the N+1 boundaries; `starts[0]` must be 0 and the sequence
  /// must be non-decreasing (callers validate — the router only routes).
  explicit ShardRouter(std::vector<size_t> starts)
      : starts_(std::move(starts)) {}

  /// The shard owning doc `id` (`id` must be < num_docs()).
  size_t shard_of(size_t id) const {
    // First boundary strictly greater than id, minus one.
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), id);
    return static_cast<size_t>(it - starts_.begin()) - 1;
  }
  /// Number of shards routed over.
  size_t num_shards() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  /// Total documents across all shards.
  size_t num_docs() const { return starts_.empty() ? 0 : starts_.back(); }
  /// First doc id of shard `s`; `start(num_shards()) == num_docs()`.
  size_t start(size_t s) const { return starts_[s]; }

 private:
  std::vector<size_t> starts_;
};

/// Build-time knobs for ShardedStore::Build.
struct ShardedStoreOptions {
  /// Number of partitions. Clamped to [1, num_docs]. Shards are contiguous
  /// document ranges balanced by text bytes, so crawl locality (and URL
  /// ordering, §3.5) survives partitioning.
  int num_shards = 4;
  /// Total dictionary budget, split evenly across shards — a 4-shard store
  /// and an unsharded archive with the same `dict_bytes` are comparable in
  /// the paper's Enc. % terms.
  size_t dict_bytes = 1 << 20;
  /// Sample size for each shard's dictionary (the paper's 1 KB default).
  size_t sample_bytes = 1024;
  /// Position/length coding pair used by every shard.
  PairCoding coding = kZV;
  /// Worker threads for the build: shards build concurrently on the build
  /// pipeline, at most one worker per shard (0 means one per shard). Each
  /// shard streams through RlzArchiveBuilder, which is byte-identical to
  /// RlzArchive::Build — so the store is deterministic for any thread
  /// count.
  int build_threads = 0;
  /// Factorization workers inside each shard's RlzArchiveBuilder
  /// (DESIGN.md §7). The default 1 is right when shards already saturate
  /// the machine; raise it for few-shard builds on many-core hosts.
  int threads_per_shard = 1;
};

/// Partitions a collection into independent RlzArchive shards behind the
/// Archive interface — the scale-out unit of the serving layer (DESIGN.md
/// §6). Each shard samples its own dictionary from its own documents and
/// owns a disjoint contiguous doc-id range; the router is a binary search
/// over the N+1 range boundaries. Shards share nothing, so Get/GetRange
/// inherit RlzArchive's lock-free concurrent reads, and a future
/// multi-machine split falls out of the same boundaries.
///
/// SimDisk accounting models each shard as its own device: a real
/// deployment stores one file per shard. The store charges each read at
/// the shard-local payload offset plus a per-shard base far larger than
/// any readahead window (kSimDeviceSpacing), so a cross-shard jump always
/// pays a seek and intra-shard sequential runs stay sequential.
class ShardedStore final : public Archive {
 public:
  /// Partitions `collection`, samples one dictionary per shard, and
  /// builds every shard (concurrently per options.build_threads).
  static std::unique_ptr<ShardedStore> Build(
      const Collection& collection, const ShardedStoreOptions& options = {});

  /// The scratch-less convenience overloads stay visible alongside the
  /// scratch-aware overrides below.
  using Archive::Get;
  using Archive::GetRange;

  /// "sharded-<shard coding>/<N>".
  std::string name() const override;
  /// Total documents across all shards.
  size_t num_docs() const override { return router_.num_docs(); }
  /// Routes to the owning shard and decodes the document there, passing
  /// the caller's `scratch` through to the shard's decode.
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const override;
  /// Routes to the owning shard and decodes only the requested range.
  Status GetRange(size_t id, size_t offset, size_t length, std::string* text,
                  SimDisk* disk, DecodeScratch* scratch) const override;
  /// Sum of every shard's stored bytes (payload + map + dictionary).
  uint64_t stored_bytes() const override;

  /// Number of shards.
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard holding doc `id` (id must be < num_docs()).
  size_t shard_of(size_t id) const;
  /// Shard `s`'s archive (s must be < num_shards()).
  const RlzArchive& shard(int s) const { return *shards_[s]; }
  /// First doc id owned by shard `s`; starts(num_shards()) == num_docs().
  size_t starts(int s) const {
    return router_.start(static_cast<size_t>(s));
  }
  /// The doc-id → shard map. Borrowed by the serving layer to route
  /// requests to shard-affine worker queues; valid for this store's
  /// lifetime.
  const ShardRouter& router() const { return router_; }

  /// Simulated address-space stride between shard devices (1 TiB): far
  /// beyond any SimDiskOptions::sequential_gap, and far above the v1
  /// format's per-shard payload limit, so shard extents never overlap.
  static constexpr uint64_t kSimDeviceSpacing = 1ull << 40;

  /// On-disk format id of the manifest envelope ("sharded").
  static constexpr char kFormatId[] = "sharded";
  /// Current manifest format version.
  static constexpr uint32_t kFormatVersion = 1;

  /// Serializes the store as one file per shard plus a manifest: each
  /// shard is written as an rlz container at `path + ".shardNNNN"`, then
  /// the manifest (shard boundaries and relative shard file names) is
  /// written at `path` — last, so a crash mid-save never leaves a
  /// manifest pointing at missing shards. The directory can be moved as
  /// a unit: shard names are stored relative to the manifest.
  Status Save(const std::string& path) const override;

  /// Opens a store written by Save: reads the manifest, then loads every
  /// shard file in parallel (options.open_threads workers; by default one
  /// per shard, capped at the hardware parallelism). A serving-only
  /// reopen passes
  /// OpenOptions::build_suffix_array = false and skips every shard's
  /// suffix-array rebuild. Fails with IOError if a shard file named by
  /// the manifest is missing, Corruption if a shard's document count
  /// disagrees with the manifest.
  static StatusOr<std::unique_ptr<ShardedStore>> Open(
      const std::string& path, const OpenOptions& options = {});

  /// Materializes a store from a parsed manifest envelope — the
  /// OpenArchive registry hook. `path` locates the sibling shard files.
  static StatusOr<std::unique_ptr<ShardedStore>> FromEnvelope(
      const ParsedEnvelope& envelope, const std::string& path,
      const OpenOptions& options);

 private:
  ShardedStore() = default;

  std::vector<std::unique_ptr<RlzArchive>> shards_;
  ShardRouter router_;  // num_shards()+1 boundaries, start(0) == 0
};

}  // namespace rlz

#endif  // RLZ_SERVE_SHARDED_STORE_H_
