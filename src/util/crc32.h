#ifndef RLZ_UTIL_CRC32_H_
#define RLZ_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rlz {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip checksum). Used to validate
/// archive blocks and compressed streams on read.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace rlz

#endif  // RLZ_UTIL_CRC32_H_
