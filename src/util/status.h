#ifndef RLZ_UTIL_STATUS_H_
#define RLZ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace rlz {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIOError,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. No exceptions cross public API
/// boundaries in this library; fallible functions return Status or
/// StatusOr<T>. Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr aborts (programming error), matching absl::StatusOr semantics.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   StatusOr<int> F() { if (bad) return Status::InvalidArgument("x"); ... }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    RLZ_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  T& value() & {
    RLZ_CHECK(ok()) << "value() on error StatusOr: " << status().ToString();
    return std::get<T>(rep_);
  }
  const T& value() const& {
    RLZ_CHECK(ok()) << "value() on error StatusOr: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    RLZ_CHECK(ok()) << "value() on error StatusOr: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status to the caller.
#define RLZ_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::rlz::Status _rlz_status = (expr);            \
    if (!_rlz_status.ok()) return _rlz_status;     \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define RLZ_ASSIGN_OR_RETURN(lhs, expr)            \
  RLZ_ASSIGN_OR_RETURN_IMPL(                       \
      RLZ_STATUS_CONCAT(_rlz_statusor, __LINE__), lhs, expr)
#define RLZ_ASSIGN_OR_RETURN_IMPL(var, lhs, expr)  \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()
#define RLZ_STATUS_CONCAT_INNER(a, b) a##b
#define RLZ_STATUS_CONCAT(a, b) RLZ_STATUS_CONCAT_INNER(a, b)

}  // namespace rlz

#endif  // RLZ_UTIL_STATUS_H_
