#ifndef RLZ_UTIL_HISTOGRAM_H_
#define RLZ_UTIL_HISTOGRAM_H_

/// \file
/// Lock-free log-linear latency histogram for the serving layer's
/// percentile accounting (DESIGN.md §10).

#include <atomic>
#include <cstdint>

namespace rlz {

/// A fixed-footprint histogram of nanosecond latencies that can be
/// recorded into from any number of threads without locks and read
/// concurrently (Record is one relaxed atomic increment; readers see a
/// consistent-enough snapshot for percentile reporting).
///
/// Bucketing is HdrHistogram-style log-linear: values below 16 ns get
/// exact buckets; above that, each power-of-two octave is split into 16
/// linear sub-buckets, so the relative quantization error is at most
/// 1/16 (~6%) across the whole 64-bit range. That is plenty for p50/p99/
/// p999 reporting and keeps the footprint at ~8 KB per instance.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave (as a power of two): 2^4 = 16.
  static constexpr int kSubBucketBits = 4;
  /// Total bucket count covering every uint64 nanosecond value.
  static constexpr int kNumBuckets =
      (1 << kSubBucketBits) + (64 - kSubBucketBits) * (1 << kSubBucketBits);

  /// An immutable copy of the counts, mergeable across histograms —
  /// ServiceStats merges one per worker before computing percentiles.
  struct Snapshot {
    /// Per-bucket counts (same bucket layout as the histogram).
    uint64_t buckets[kNumBuckets] = {};
    /// Sum of all bucket counts.
    uint64_t total = 0;

    /// Value (ns) at quantile `q` in [0, 1], linearly interpolated inside
    /// the containing bucket. Returns 0 when the snapshot is empty.
    double ValueAtQuantile(double q) const {
      if (total == 0) return 0.0;
      if (q < 0.0) q = 0.0;
      if (q > 1.0) q = 1.0;
      const double rank = q * static_cast<double>(total);
      uint64_t seen = 0;
      for (int b = 0; b < kNumBuckets; ++b) {
        const uint64_t count = buckets[b];
        if (count == 0) continue;
        if (static_cast<double>(seen + count) >= rank) {
          const double within =
              count == 0 ? 0.0
                         : (rank - static_cast<double>(seen)) /
                               static_cast<double>(count);
          return static_cast<double>(BucketLow(b)) +
                 within * static_cast<double>(BucketWidth(b));
        }
        seen += count;
      }
      return static_cast<double>(BucketLow(kNumBuckets - 1)) +
             static_cast<double>(BucketWidth(kNumBuckets - 1));
    }
  };

  /// Records one latency of `ns` nanoseconds. Wait-free; callable from
  /// any thread.
  void Record(uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Adds this histogram's counts into `out` (used to merge the
  /// per-worker histograms into one service-wide snapshot).
  void AddTo(Snapshot* out) const {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t count = buckets_[b].load(std::memory_order_relaxed);
      out->buckets[b] += count;
      out->total += count;
    }
  }

  /// The bucket index `ns` falls into.
  static int BucketIndex(uint64_t ns) {
    constexpr uint64_t kSub = 1ull << kSubBucketBits;
    if (ns < kSub) return static_cast<int>(ns);
    const int exp = 63 - __builtin_clzll(ns);  // >= kSubBucketBits
    const int shift = exp - kSubBucketBits;
    // (ns >> shift) is in [kSub, 2*kSub): the octave's linear sub-bucket.
    return static_cast<int>(((shift + 1) << kSubBucketBits) +
                            ((ns >> shift) - kSub));
  }

  /// Inclusive lower bound (ns) of bucket `b`.
  static uint64_t BucketLow(int b) {
    constexpr uint64_t kSub = 1ull << kSubBucketBits;
    if (b < static_cast<int>(kSub)) return static_cast<uint64_t>(b);
    const int shift = (b >> kSubBucketBits) - 1;
    const uint64_t sub = static_cast<uint64_t>(b) & (kSub - 1);
    return (kSub + sub) << shift;
  }

  /// Width (ns) of bucket `b`.
  static uint64_t BucketWidth(int b) {
    constexpr uint64_t kSub = 1ull << kSubBucketBits;
    if (b < static_cast<int>(kSub)) return 1;
    return 1ull << ((b >> kSubBucketBits) - 1);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

}  // namespace rlz

#endif  // RLZ_UTIL_HISTOGRAM_H_
