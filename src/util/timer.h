#ifndef RLZ_UTIL_TIMER_H_
#define RLZ_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace rlz {

/// CPU time consumed by the calling thread, in seconds. Thread CPU time
/// (not wall time) keeps per-worker accounting honest when the host has
/// fewer cores than there are threads: a descheduled worker accrues
/// nothing. Returns 0 on platforms without a thread-CPU clock. Used by
/// DocService's per-worker stats and the build pipeline's critical-path
/// model (DESIGN.md §6/§7).
inline double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return 0.0;
}

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rlz

#endif  // RLZ_UTIL_TIMER_H_
