#ifndef RLZ_UTIL_LOGGING_H_
#define RLZ_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rlz {
namespace internal_logging {

/// Accumulates a message and aborts the process when destroyed. Used by the
/// RLZ_CHECK family for invariant violations (programming errors, never
/// data-dependent failures — those return Status).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when a check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

/// Turns a streamed FatalLogMessage expression into void so it can sit in
/// the false branch of the ternary in RLZ_CHECK (operator& binds looser
/// than operator<<).
class Voidify {
 public:
  void operator&(const FatalLogMessage&) {}
};

}  // namespace internal_logging
}  // namespace rlz

/// Aborts with a message if `cond` is false. Supports streaming extra
/// context: RLZ_CHECK(x > 0) << "got " << x;  For invariants only.
#define RLZ_CHECK(cond)                               \
  (cond) ? (void)0                                    \
         : ::rlz::internal_logging::Voidify() &       \
               ::rlz::internal_logging::FatalLogMessage(__FILE__, __LINE__, \
                                                        #cond)

#define RLZ_CHECK_OP(a, b, op)                                            \
  ((a)op(b)) ? (void)0                                                    \
             : ::rlz::internal_logging::Voidify() &                       \
                   (::rlz::internal_logging::FatalLogMessage(             \
                        __FILE__, __LINE__, #a " " #op " " #b)            \
                    << "(" << (a) << " vs " << (b) << ") ")

#define RLZ_CHECK_EQ(a, b) RLZ_CHECK_OP(a, b, ==)
#define RLZ_CHECK_NE(a, b) RLZ_CHECK_OP(a, b, !=)
#define RLZ_CHECK_LT(a, b) RLZ_CHECK_OP(a, b, <)
#define RLZ_CHECK_LE(a, b) RLZ_CHECK_OP(a, b, <=)
#define RLZ_CHECK_GT(a, b) RLZ_CHECK_OP(a, b, >)
#define RLZ_CHECK_GE(a, b) RLZ_CHECK_OP(a, b, >=)

#ifndef NDEBUG
#define RLZ_DCHECK(cond) RLZ_CHECK(cond)
#define RLZ_DCHECK_EQ(a, b) RLZ_CHECK_EQ(a, b)
#define RLZ_DCHECK_LT(a, b) RLZ_CHECK_LT(a, b)
#define RLZ_DCHECK_LE(a, b) RLZ_CHECK_LE(a, b)
#else
#define RLZ_DCHECK(cond) \
  while (false) ::rlz::internal_logging::NullStream()
#define RLZ_DCHECK_EQ(a, b) RLZ_DCHECK((a) == (b))
#define RLZ_DCHECK_LT(a, b) RLZ_DCHECK((a) < (b))
#define RLZ_DCHECK_LE(a, b) RLZ_DCHECK((a) <= (b))
#endif

#endif  // RLZ_UTIL_LOGGING_H_
