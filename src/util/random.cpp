#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace rlz {

ZipfSampler::ZipfSampler(size_t n, double theta) {
  RLZ_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (double& v : cdf_) v *= inv;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace rlz
