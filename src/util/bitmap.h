#ifndef RLZ_UTIL_BITMAP_H_
#define RLZ_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace rlz {

/// A word-packed bitmap over a fixed number of bits.
///
/// This replaces the `std::vector<bool>` coverage bitmaps of the build
/// path with a representation that is *mergeable* (OrWith is a word-wise
/// OR, so per-worker bitmaps combine exactly) and cheap to populate
/// (SetRange writes whole 64-bit words instead of one proxy bit at a
/// time). Exactness is preserved bit for bit: CountSet/Test see precisely
/// the bits Set/SetRange wrote, which keeps UnusedFraction() statistics
/// and DictionaryBuilder::BuildPruned inputs identical to the serial
/// vector<bool> implementation they replace.
class Bitmap {
 public:
  /// An empty bitmap (size() == 0).
  Bitmap() = default;
  /// A bitmap of `bits` zero bits.
  explicit Bitmap(size_t bits) { Assign(bits); }

  /// Resets to `bits` zero bits.
  void Assign(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  /// Number of addressable bits.
  size_t size() const { return bits_; }
  /// True if the bitmap addresses no bits.
  bool empty() const { return bits_ == 0; }

  /// Reads bit `i` (i must be < size()).
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` (i must be < size()).
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  /// Sets bits [begin, begin+len); the range must lie inside the bitmap.
  /// Interior words are written whole — this is the factorizer's hot path
  /// (one call per factor, ranges of tens to hundreds of bytes).
  void SetRange(size_t begin, size_t len) {
    if (len == 0) return;
    const size_t end = begin + len;  // exclusive
    size_t first_word = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
    const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
    if (first_word == last_word) {
      words_[first_word] |= first_mask & last_mask;
      return;
    }
    words_[first_word] |= first_mask;
    for (size_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = ~uint64_t{0};
    }
    words_[last_word] |= last_mask;
  }

  /// Merges `other` into this bitmap (word-wise OR). Both bitmaps must be
  /// the same size. OR is commutative and associative, so merging
  /// per-worker coverage in any order yields the serial bitmap exactly.
  void OrWith(const Bitmap& other) {
    RLZ_CHECK_EQ(bits_, other.bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// Number of set bits (popcount over the packed words).
  size_t CountSet() const {
    size_t count = 0;
    for (uint64_t word : words_) {
      count += static_cast<size_t>(__builtin_popcountll(word));
    }
    return count;
  }

  /// Fraction of bits set (CountSet() / size()); 0.0 for an empty bitmap.
  /// The dictionary-coverage reading: FractionSet of a build's coverage
  /// bitmap is the used fraction, 1.0 minus it the unused (stale) one.
  double FractionSet() const {
    return bits_ == 0
               ? 0.0
               : static_cast<double>(CountSet()) / static_cast<double>(bits_);
  }

  /// Exact bitwise equality (sizes and every bit).
  bool operator==(const Bitmap& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }
  /// Bitwise inequality.
  bool operator!=(const Bitmap& other) const { return !(*this == other); }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;  // bit i lives in words_[i/64] bit (i%64)
};

}  // namespace rlz

#endif  // RLZ_UTIL_BITMAP_H_
