#ifndef RLZ_UTIL_LRU_CACHE_H_
#define RLZ_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rlz {

/// A thread-safe, byte-capacity LRU cache of immutable strings, striped
/// across independently locked shards so concurrent readers on different
/// keys rarely contend. Values are handed out as shared_ptr<const string>:
/// a hit costs one refcount bump, and an entry evicted while a reader still
/// holds it stays alive until the reader drops it.
///
/// This is the decode cache of the serving layer (DESIGN.md §6): a key's
/// value never changes while the key is valid, so Insert on an existing
/// key keeps (and returns) the resident value. A *live* corpus can retire
/// a key outright (Delete tombstones the document, DESIGN.md §11) — Erase
/// is the invalidation hook for exactly that case.
class LruCache {
 public:
  /// Charged against the capacity per entry on top of the value bytes,
  /// approximating the list node + hash node + shared_ptr control block.
  /// This keeps a flood of tiny (or empty) values bounded by the byte
  /// budget instead of growing the index without limit.
  static constexpr uint64_t kEntryOverheadBytes = 64;
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;  // capacity evictions (LRU victims)
    uint64_t erased = 0;     // explicit Erase() invalidations
    uint64_t entries = 0;
    uint64_t bytes = 0;           // charged bytes: values + entry overhead
    uint64_t capacity_bytes = 0;  // total across shards

    double hit_rate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    }
  };

  /// `capacity_bytes == 0` disables caching: every Get misses and Insert
  /// stores nothing (it still wraps and returns the value, so callers can
  /// be capacity-oblivious). `num_shards` is rounded up to a power of two;
  /// each shard owns an equal slice of the capacity, so the largest
  /// cacheable value is capacity_bytes / num_shards - kEntryOverheadBytes —
  /// size num_shards against the biggest item you expect to cache
  /// (BlockedArchive uses 2 stripes for exactly this reason).
  explicit LruCache(uint64_t capacity_bytes, int num_shards = 16)
      : capacity_bytes_(capacity_bytes) {
    size_t shards = 1;
    while (shards < static_cast<size_t>(num_shards > 0 ? num_shards : 1)) {
      shards *= 2;
    }
    shards_ = std::vector<Shard>(shards);
    mask_ = shards - 1;
    per_shard_capacity_ = capacity_bytes / shards;
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value for `key` (promoting it to most recently
  /// used) or nullptr on a miss.
  std::shared_ptr<const std::string> Get(uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->value;
  }

  /// Caches `value` under `key` and returns the resident shared value. If
  /// `key` is already present the existing value is kept and returned (two
  /// threads that raced to decode the same item converge on one copy). A
  /// value larger than a shard's capacity is returned uncached rather than
  /// flushing the whole shard to make room for it.
  std::shared_ptr<const std::string> Insert(uint64_t key, std::string value) {
    auto owned = std::make_shared<const std::string>(std::move(value));
    const uint64_t charge = owned->size() + kEntryOverheadBytes;
    if (capacity_bytes_ == 0 || charge > per_shard_capacity_) {
      return owned;
    }
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->value;
    }
    s.bytes += charge;
    s.lru.push_front(Entry{key, owned});
    s.index.emplace(key, s.lru.begin());
    while (s.bytes > per_shard_capacity_) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.value->size() + kEntryOverheadBytes;
      s.index.erase(victim.key);
      s.lru.pop_back();
      ++s.evictions;
    }
    return owned;
  }

  /// Removes `key` if present; returns whether an entry was dropped.
  /// Readers already holding the value keep it alive (snapshot isolation:
  /// erasure stops future hits, it does not revoke handed-out bytes).
  /// Counted separately from capacity evictions in Stats::erased.
  bool Erase(uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) return false;
    s.bytes -= it->second->value->size() + kEntryOverheadBytes;
    s.lru.erase(it->second);
    s.index.erase(it);
    ++s.erased;
    return true;
  }

  /// Drops every entry. Counters are preserved.
  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.index.clear();
      s.bytes = 0;
    }
  }

  Stats stats() const {
    Stats total;
    total.capacity_bytes = capacity_bytes_;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.erased += s.erased;
      total.entries += s.index.size();
      total.bytes += s.bytes;
    }
    return total;
  }

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const std::string> value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;  // guarded by mu, like everything below
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t erased = 0;
  };

  Shard& shard(uint64_t key) { return shards_[key & mask_]; }

  uint64_t capacity_bytes_;
  uint64_t per_shard_capacity_ = 0;
  uint64_t mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace rlz

#endif  // RLZ_UTIL_LRU_CACHE_H_
