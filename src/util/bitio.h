#ifndef RLZ_UTIL_BITIO_H_
#define RLZ_UTIL_BITIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.h"

namespace rlz {

/// Appends bit fields to a byte buffer, LSB-first within each byte (the
/// deflate convention). Used by the Huffman and range-coder back ends.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Writes the low `nbits` bits of `bits` (0 <= nbits <= 57).
  void WriteBits(uint64_t bits, int nbits) {
    RLZ_DCHECK(nbits >= 0 && nbits <= 57);
    RLZ_DCHECK(nbits == 64 || (bits >> nbits) == 0);
    acc_ |= bits << filled_;
    filled_ += nbits;
    while (filled_ >= 8) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flushes any partial byte (zero-padded). Must be called exactly once,
  /// at the end of the stream.
  void Finish() {
    if (filled_ > 0) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Total bits written so far (excluding padding).
  size_t bit_count() const { return out_->size() * 8 - (8 - filled_) % 8; }

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bit fields written by BitWriter. Reading past the end returns
/// zero bits and sets overflowed(); callers validate with a checksum or
/// symbol count rather than aborting, since inputs may be corrupt files.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BitReader(const std::string& s)
      : BitReader(reinterpret_cast<const uint8_t*>(s.data()), s.size()) {}

  /// Reads `nbits` bits (0 <= nbits <= 57).
  uint64_t ReadBits(int nbits) {
    RLZ_DCHECK(nbits >= 0 && nbits <= 57);
    if (filled_ < nbits) Refill(nbits);
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    const uint64_t v = acc_ & mask;
    acc_ >>= nbits;
    filled_ -= nbits;
    return v;
  }

  /// Peeks at the next `nbits` bits without consuming them.
  uint64_t PeekBits(int nbits) {
    if (filled_ < nbits) Refill(nbits);
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    return acc_ & mask;
  }

  /// Tops the accumulator up to at least `nbits` buffered bits (0 <=
  /// nbits <= 57; zero-padded past the stream end). A decode loop that
  /// knows its worst-case bits-per-iteration calls this once and then
  /// uses the NoRefill variants below, hoisting the refill branch out of
  /// every symbol (DESIGN.md §9).
  void EnsureBits(int nbits) {
    if (filled_ < nbits) Refill(nbits);
  }

  /// PeekBits for callers that already guaranteed `nbits` buffered bits
  /// via EnsureBits.
  uint64_t PeekBitsNoRefill(int nbits) const {
    RLZ_DCHECK_LE(nbits, filled_);
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    return acc_ & mask;
  }

  /// ReadBits for callers that already guaranteed `nbits` buffered bits
  /// via EnsureBits.
  uint64_t ReadBitsNoRefill(int nbits) {
    RLZ_DCHECK_LE(nbits, filled_);
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    const uint64_t v = acc_ & mask;
    acc_ >>= nbits;
    filled_ -= nbits;
    return v;
  }

  /// Discards `nbits` previously peeked bits.
  void SkipBits(int nbits) {
    RLZ_DCHECK_LE(nbits, filled_);
    acc_ >>= nbits;
    filled_ -= nbits;
  }

  bool overflowed() const { return overflowed_; }

  /// Byte position of the next unread byte.
  size_t byte_pos() const { return pos_; }

 private:
  // Tops up the accumulator until it holds at least `nbits` bits. Away
  // from the stream tail this is one unaligned 64-bit load instead of a
  // byte-at-a-time loop — bit-heavy decodes (Huffman symbol streams) are
  // refill-bound, so this is the serving hot path's single most executed
  // memory access (DESIGN.md §9).
  void Refill(int nbits) {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    if (pos_ + 8 <= size_) {
      uint64_t chunk;
      std::memcpy(&chunk, data_ + pos_, 8);
      const int take = (64 - filled_) >> 3;  // whole bytes that fit
      if (take == 8) {  // filled_ == 0, so acc_ is empty
        acc_ = chunk;
        filled_ = 64;
      } else {
        chunk &= (1ULL << (take * 8)) - 1;
        acc_ |= chunk << filled_;
        filled_ += take * 8;
      }
      pos_ += static_cast<size_t>(take);
      return;  // filled_ >= 57 >= nbits
    }
#endif
    while (filled_ < nbits) {
      uint64_t byte = 0;
      if (pos_ < size_) {
        byte = data_[pos_++];
      } else {
        overflowed_ = true;
      }
      acc_ |= byte << filled_;
      filled_ += 8;
    }
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  bool overflowed_ = false;
  int filled_ = 0;
};

}  // namespace rlz

#endif  // RLZ_UTIL_BITIO_H_
