#ifndef RLZ_UTIL_BITIO_H_
#define RLZ_UTIL_BITIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace rlz {

/// Appends bit fields to a byte buffer, LSB-first within each byte (the
/// deflate convention). Used by the Huffman and range-coder back ends.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Writes the low `nbits` bits of `bits` (0 <= nbits <= 57).
  void WriteBits(uint64_t bits, int nbits) {
    RLZ_DCHECK(nbits >= 0 && nbits <= 57);
    RLZ_DCHECK(nbits == 64 || (bits >> nbits) == 0);
    acc_ |= bits << filled_;
    filled_ += nbits;
    while (filled_ >= 8) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flushes any partial byte (zero-padded). Must be called exactly once,
  /// at the end of the stream.
  void Finish() {
    if (filled_ > 0) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Total bits written so far (excluding padding).
  size_t bit_count() const { return out_->size() * 8 - (8 - filled_) % 8; }

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bit fields written by BitWriter. Reading past the end returns
/// zero bits and sets overflowed(); callers validate with a checksum or
/// symbol count rather than aborting, since inputs may be corrupt files.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BitReader(const std::string& s)
      : BitReader(reinterpret_cast<const uint8_t*>(s.data()), s.size()) {}

  /// Reads `nbits` bits (0 <= nbits <= 57).
  uint64_t ReadBits(int nbits) {
    RLZ_DCHECK(nbits >= 0 && nbits <= 57);
    while (filled_ < nbits) {
      uint64_t byte = 0;
      if (pos_ < size_) {
        byte = data_[pos_++];
      } else {
        overflowed_ = true;
      }
      acc_ |= byte << filled_;
      filled_ += 8;
    }
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    const uint64_t v = acc_ & mask;
    acc_ >>= nbits;
    filled_ -= nbits;
    return v;
  }

  /// Peeks at the next `nbits` bits without consuming them.
  uint64_t PeekBits(int nbits) {
    while (filled_ < nbits) {
      uint64_t byte = 0;
      if (pos_ < size_) {
        byte = data_[pos_++];
      } else {
        overflowed_ = true;
      }
      acc_ |= byte << filled_;
      filled_ += 8;
    }
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    return acc_ & mask;
  }

  /// Discards `nbits` previously peeked bits.
  void SkipBits(int nbits) {
    RLZ_DCHECK_LE(nbits, filled_);
    acc_ >>= nbits;
    filled_ -= nbits;
  }

  bool overflowed() const { return overflowed_; }

  /// Byte position of the next unread byte.
  size_t byte_pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int filled_ = 0;
  bool overflowed_ = false;
};

}  // namespace rlz

#endif  // RLZ_UTIL_BITIO_H_
