#ifndef RLZ_UTIL_RANDOM_H_
#define RLZ_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace rlz {

/// Deterministic xorshift128+ PRNG. All randomness in the library (corpus
/// generation, query sampling, property tests) flows through this so that
/// every experiment is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding avoids the all-zero state and decorrelates nearby
    // seeds.
    uint64_t z = seed;
    auto split_mix = [&z]() {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      return x ^ (x >> 31);
    };
    s0_ = split_mix();
    s1_ = split_mix();
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    RLZ_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    RLZ_DCHECK_LE(lo, hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Samples ranks from a Zipf distribution with parameter `theta` over
/// [0, n). Rank 0 is the most frequent. Used for natural-language word
/// frequencies and query sampling. Precomputes the CDF once (O(n)), then
/// samples in O(log n) by binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  /// Returns a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rlz

#endif  // RLZ_UTIL_RANDOM_H_
