#ifndef RLZ_SEMISTATIC_SEMISTATIC_ARCHIVE_H_
#define RLZ_SEMISTATIC_SEMISTATIC_ARCHIVE_H_

#include <memory>
#include <string>

#include "corpus/collection.h"
#include "semistatic/token_coder.h"
#include "semistatic/word_model.h"
#include "store/archive.h"
#include "store/doc_map.h"
#include "store/open_archive.h"

namespace rlz {

/// Which §2.1 coder backs the archive.
enum class SemiStaticScheme : uint8_t {
  kPlainHuffman = 0,  // de Moura et al.'s byte-oriented PH
  kEtdc = 1,          // Brisaboa et al.'s End-Tagged Dense Code
};

/// A semi-static word-based document store — the related-work family the
/// paper compares against conceptually in §2.1. Two passes: build the
/// ranked vocabulary over the whole collection, then code every token of
/// every document. Documents are independently decodable (semi-static
/// codes need no per-block adaptive state), so random access reads only
/// the document's own codes — but overall compression is bounded by the
/// zero-order word entropy (~20% on clean text, worse on markup-heavy
/// collections), which is exactly the limitation §2.1 ends on.
class SemiStaticArchive final : public Archive {
 public:
  /// Builds the ranked vocabulary (pass 1, serial — the vocabulary is a
  /// global frequency ranking), then codes every document (pass 2).
  /// Documents code independently once the vocabulary is fixed, so pass 2
  /// runs on the build pipeline when num_threads > 1, byte-identical to
  /// the serial build (DESIGN.md §7).
  static std::unique_ptr<SemiStaticArchive> Build(const Collection& collection,
                                                  SemiStaticScheme scheme,
                                                  int num_threads = 1);

  /// The scratch-less convenience overloads stay visible alongside the
  /// scratch-aware override below.
  using Archive::Get;
  using Archive::GetRange;

  /// "etdc" or "plainhuff".
  std::string name() const override;
  /// Number of stored documents.
  size_t num_docs() const override { return map_.num_docs(); }
  /// Decodes document `id`'s token codes against the in-memory vocabulary.
  /// Token decode needs no factor buffers; `scratch` is unused.
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const override;

  /// Payload + document map + serialized vocabulary (token bytes with
  /// vbyte length prefixes — what a disk-resident system stores).
  uint64_t stored_bytes() const override;

  const WordVocabulary& vocabulary() const { return vocab_; }

  /// In-memory footprint of the decode-time model — the §2.1 scalability
  /// problem (the paper's ClueWeb vocabulary was 13 GB uncompressed).
  uint64_t model_memory_bytes() const { return vocab_.memory_bytes(); }

  /// On-disk format id inside the container envelope ("semistatic").
  static constexpr char kFormatId[] = "semistatic";
  /// Current format version.
  static constexpr uint32_t kFormatVersion = 1;

  /// Serializes the scheme, the ranked vocabulary (tokens and
  /// frequencies — the word model), the document map, and the coded
  /// payload as a container envelope. The coder is derived data, rebuilt
  /// from the frequencies on load.
  Status Save(const std::string& path) const override;
  /// Opens an archive written by Save; Corruption on format errors.
  static StatusOr<std::unique_ptr<SemiStaticArchive>> Load(
      const std::string& path, const OpenOptions& options = {});
  /// Materializes an archive from a parsed envelope — the OpenArchive
  /// registry hook.
  static StatusOr<std::unique_ptr<SemiStaticArchive>> FromEnvelope(
      const ParsedEnvelope& envelope, const OpenOptions& options);

 private:
  SemiStaticArchive(WordVocabulary vocab, SemiStaticScheme scheme);

  WordVocabulary vocab_;
  SemiStaticScheme scheme_;
  std::unique_ptr<TokenCoder> coder_;
  std::string payload_;
  DocMap map_;
};

}  // namespace rlz

#endif  // RLZ_SEMISTATIC_SEMISTATIC_ARCHIVE_H_
