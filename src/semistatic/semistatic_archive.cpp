#include "semistatic/semistatic_archive.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "build/build_pipeline.h"
#include "store/format.h"
#include "util/logging.h"

namespace rlz {

SemiStaticArchive::SemiStaticArchive(WordVocabulary vocab,
                                     SemiStaticScheme scheme)
    : vocab_(std::move(vocab)), scheme_(scheme) {
  if (scheme_ == SemiStaticScheme::kEtdc) {
    coder_ = std::make_unique<EtdcCoder>();
  } else {
    std::vector<uint64_t> freqs(vocab_.size());
    for (uint32_t r = 0; r < vocab_.size(); ++r) {
      freqs[r] = vocab_.Frequency(r);
    }
    coder_ = std::make_unique<PlainHuffmanCoder>(freqs);
  }
}

std::unique_ptr<SemiStaticArchive> SemiStaticArchive::Build(
    const Collection& collection, SemiStaticScheme scheme, int num_threads) {
  // Pass 1: vocabulary over the whole collection.
  std::vector<std::string_view> docs;
  docs.reserve(collection.num_docs());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    docs.push_back(collection.doc(i));
  }
  WordVocabulary vocab = WordVocabulary::Build(docs);

  std::unique_ptr<SemiStaticArchive> archive(
      new SemiStaticArchive(std::move(vocab), scheme));

  // Pass 2: code every token of every document. The vocabulary and coder
  // are immutable after pass 1 and each document codes independently, so
  // chunks of documents encode concurrently on the build pipeline and
  // merge in document order — byte-identical to the serial loop
  // (DESIGN.md §7).
  BuildPipelineOptions pipeline_options;
  pipeline_options.num_threads = std::max(1, num_threads);
  BuildPipeline pipeline(pipeline_options);
  const size_t chunk_docs = std::max<size_t>(
      1, docs.size() /
             (4 * static_cast<size_t>(pipeline_options.num_threads)));
  pipeline.SubmitChunkedEncode(
      docs.size(), chunk_docs,
      [&docs, archive = archive.get()](
          DocRange range, BuildPipeline::EncodedChunk* chunk, int) {
        chunk->item_sizes.reserve(range.size());
        for (size_t i = range.begin; i < range.end; ++i) {
          const size_t before = chunk->payload.size();
          for (std::string_view token : SplitWordsAndSeparators(docs[i])) {
            auto rank = archive->vocab_.Rank(token);
            RLZ_CHECK(rank.ok()) << "token missing from its own vocabulary";
            archive->coder_->Encode(*rank, &chunk->payload);
          }
          chunk->item_sizes.push_back(chunk->payload.size() - before);
        }
      },
      [archive = archive.get()](DocRange,
                                const BuildPipeline::EncodedChunk& chunk) {
        archive->payload_.append(chunk.payload);
        for (uint64_t size : chunk.item_sizes) archive->map_.Add(size);
      });
  pipeline.Finish();
  return archive;
}

std::string SemiStaticArchive::name() const {
  return scheme_ == SemiStaticScheme::kEtdc ? "etdc" : "plainhuff";
}

Status SemiStaticArchive::Get(size_t id, std::string* doc, SimDisk* disk,
                              DecodeScratch* /*scratch*/) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("semistatic archive: bad doc id");
  }
  doc->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  if (disk != nullptr) disk->Read(off, size);
  const std::string_view codes = std::string_view(payload_).substr(off, size);
  size_t pos = 0;
  while (pos < codes.size()) {
    uint32_t rank = 0;
    RLZ_RETURN_IF_ERROR(coder_->Decode(codes, &pos, &rank));
    if (rank >= vocab_.size()) {
      return Status::Corruption("semistatic archive: rank out of range");
    }
    doc->append(vocab_.Token(rank));
  }
  return Status::OK();
}

Status SemiStaticArchive::Save(const std::string& path) const {
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutByte(static_cast<uint8_t>(scheme_));
  // The word model: ranked tokens, then their frequencies (needed to
  // rebuild the PlainHuffman code table deterministically on load).
  writer.PutVarint64(vocab_.size());
  for (uint32_t r = 0; r < vocab_.size(); ++r) {
    writer.PutLengthPrefixed(vocab_.Token(r));
  }
  for (uint32_t r = 0; r < vocab_.size(); ++r) {
    writer.PutVarint64(vocab_.Frequency(r));
  }
  writer.PutVarint64(num_docs());
  for (size_t i = 0; i < num_docs(); ++i) {
    writer.PutVarint64(map_.size(i));
  }
  writer.PutBytes(payload_);
  return std::move(writer).WriteTo(path);
}

StatusOr<std::unique_ptr<SemiStaticArchive>> SemiStaticArchive::FromEnvelope(
    const ParsedEnvelope& envelope, const OpenOptions& /*options*/) {
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();

  uint8_t scheme_byte = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadByte(&scheme_byte));
  if (scheme_byte > static_cast<uint8_t>(SemiStaticScheme::kEtdc)) {
    return Status::Corruption(envelope.context() + ": unknown scheme byte");
  }
  const SemiStaticScheme scheme = static_cast<SemiStaticScheme>(scheme_byte);

  uint64_t ntokens = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&ntokens));
  // Every token costs at least one length byte plus one frequency byte,
  // so a count beyond the remaining bytes is structural damage — checked
  // before the vector allocations below.
  if (ntokens > reader.remaining()) {
    return Status::Corruption(envelope.context() +
                              ": token count exceeds file");
  }
  std::vector<std::string> tokens(ntokens);
  for (uint64_t r = 0; r < ntokens; ++r) {
    std::string_view token;
    RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&token));
    tokens[r] = std::string(token);
  }
  std::vector<uint64_t> freqs(ntokens);
  for (uint64_t r = 0; r < ntokens; ++r) {
    RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&freqs[r]));
  }

  std::unique_ptr<SemiStaticArchive> archive(new SemiStaticArchive(
      WordVocabulary::FromRanked(std::move(tokens), std::move(freqs)),
      scheme));

  std::vector<uint64_t> sizes;
  RLZ_RETURN_IF_ERROR(reader.ReadSizeTable(&sizes));
  for (uint64_t size : sizes) archive->map_.Add(size);
  archive->payload_ = std::string(reader.ReadRest());
  return archive;
}

StatusOr<std::unique_ptr<SemiStaticArchive>> SemiStaticArchive::Load(
    const std::string& path, const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope, ReadEnvelopeFile(path));
  return FromEnvelope(envelope, options);
}

uint64_t SemiStaticArchive::stored_bytes() const {
  // Serialized vocabulary: vbyte(len) + bytes per token, in rank order
  // (frequencies are not needed to decode ETDC; PH additionally stores
  // code lengths, ~1 byte per token).
  uint64_t vocab_bytes = 0;
  for (uint32_t r = 0; r < vocab_.size(); ++r) {
    uint64_t len = vocab_.Token(r).size();
    do {
      ++vocab_bytes;
      len >>= 7;
    } while (len != 0);
    vocab_bytes += vocab_.Token(r).size();
  }
  if (scheme_ == SemiStaticScheme::kPlainHuffman) vocab_bytes += vocab_.size();
  return payload_.size() + map_.serialized_bytes() + vocab_bytes;
}

}  // namespace rlz
