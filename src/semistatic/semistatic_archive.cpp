#include "semistatic/semistatic_archive.h"

#include <vector>

#include "util/logging.h"

namespace rlz {

SemiStaticArchive::SemiStaticArchive(WordVocabulary vocab,
                                     SemiStaticScheme scheme)
    : vocab_(std::move(vocab)), scheme_(scheme) {
  if (scheme_ == SemiStaticScheme::kEtdc) {
    coder_ = std::make_unique<EtdcCoder>();
  } else {
    std::vector<uint64_t> freqs(vocab_.size());
    for (uint32_t r = 0; r < vocab_.size(); ++r) {
      freqs[r] = vocab_.Frequency(r);
    }
    coder_ = std::make_unique<PlainHuffmanCoder>(freqs);
  }
}

std::unique_ptr<SemiStaticArchive> SemiStaticArchive::Build(
    const Collection& collection, SemiStaticScheme scheme) {
  // Pass 1: vocabulary over the whole collection.
  std::vector<std::string_view> docs;
  docs.reserve(collection.num_docs());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    docs.push_back(collection.doc(i));
  }
  WordVocabulary vocab = WordVocabulary::Build(docs);

  std::unique_ptr<SemiStaticArchive> archive(
      new SemiStaticArchive(std::move(vocab), scheme));

  // Pass 2: code every token of every document.
  for (std::string_view doc : docs) {
    const size_t before = archive->payload_.size();
    for (std::string_view token : SplitWordsAndSeparators(doc)) {
      auto rank = archive->vocab_.Rank(token);
      RLZ_CHECK(rank.ok()) << "token missing from its own vocabulary";
      archive->coder_->Encode(*rank, &archive->payload_);
    }
    archive->map_.Add(archive->payload_.size() - before);
  }
  return archive;
}

std::string SemiStaticArchive::name() const {
  return scheme_ == SemiStaticScheme::kEtdc ? "etdc" : "plainhuff";
}

Status SemiStaticArchive::Get(size_t id, std::string* doc,
                              SimDisk* disk) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("semistatic archive: bad doc id");
  }
  doc->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  if (disk != nullptr) disk->Read(off, size);
  const std::string_view codes = std::string_view(payload_).substr(off, size);
  size_t pos = 0;
  while (pos < codes.size()) {
    uint32_t rank = 0;
    RLZ_RETURN_IF_ERROR(coder_->Decode(codes, &pos, &rank));
    if (rank >= vocab_.size()) {
      return Status::Corruption("semistatic archive: rank out of range");
    }
    doc->append(vocab_.Token(rank));
  }
  return Status::OK();
}

uint64_t SemiStaticArchive::stored_bytes() const {
  // Serialized vocabulary: vbyte(len) + bytes per token, in rank order
  // (frequencies are not needed to decode ETDC; PH additionally stores
  // code lengths, ~1 byte per token).
  uint64_t vocab_bytes = 0;
  for (uint32_t r = 0; r < vocab_.size(); ++r) {
    uint64_t len = vocab_.Token(r).size();
    do {
      ++vocab_bytes;
      len >>= 7;
    } while (len != 0);
    vocab_bytes += vocab_.Token(r).size();
  }
  if (scheme_ == SemiStaticScheme::kPlainHuffman) vocab_bytes += vocab_.size();
  return payload_.size() + map_.serialized_bytes() + vocab_bytes;
}

}  // namespace rlz
