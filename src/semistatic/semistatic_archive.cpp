#include "semistatic/semistatic_archive.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "build/build_pipeline.h"
#include "util/logging.h"

namespace rlz {

SemiStaticArchive::SemiStaticArchive(WordVocabulary vocab,
                                     SemiStaticScheme scheme)
    : vocab_(std::move(vocab)), scheme_(scheme) {
  if (scheme_ == SemiStaticScheme::kEtdc) {
    coder_ = std::make_unique<EtdcCoder>();
  } else {
    std::vector<uint64_t> freqs(vocab_.size());
    for (uint32_t r = 0; r < vocab_.size(); ++r) {
      freqs[r] = vocab_.Frequency(r);
    }
    coder_ = std::make_unique<PlainHuffmanCoder>(freqs);
  }
}

std::unique_ptr<SemiStaticArchive> SemiStaticArchive::Build(
    const Collection& collection, SemiStaticScheme scheme, int num_threads) {
  // Pass 1: vocabulary over the whole collection.
  std::vector<std::string_view> docs;
  docs.reserve(collection.num_docs());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    docs.push_back(collection.doc(i));
  }
  WordVocabulary vocab = WordVocabulary::Build(docs);

  std::unique_ptr<SemiStaticArchive> archive(
      new SemiStaticArchive(std::move(vocab), scheme));

  // Pass 2: code every token of every document. The vocabulary and coder
  // are immutable after pass 1 and each document codes independently, so
  // chunks of documents encode concurrently on the build pipeline and
  // merge in document order — byte-identical to the serial loop
  // (DESIGN.md §7).
  BuildPipelineOptions pipeline_options;
  pipeline_options.num_threads = std::max(1, num_threads);
  BuildPipeline pipeline(pipeline_options);
  const size_t chunk_docs = std::max<size_t>(
      1, docs.size() /
             (4 * static_cast<size_t>(pipeline_options.num_threads)));
  pipeline.SubmitChunkedEncode(
      docs.size(), chunk_docs,
      [&docs, archive = archive.get()](
          DocRange range, BuildPipeline::EncodedChunk* chunk, int) {
        chunk->item_sizes.reserve(range.size());
        for (size_t i = range.begin; i < range.end; ++i) {
          const size_t before = chunk->payload.size();
          for (std::string_view token : SplitWordsAndSeparators(docs[i])) {
            auto rank = archive->vocab_.Rank(token);
            RLZ_CHECK(rank.ok()) << "token missing from its own vocabulary";
            archive->coder_->Encode(*rank, &chunk->payload);
          }
          chunk->item_sizes.push_back(chunk->payload.size() - before);
        }
      },
      [archive = archive.get()](DocRange,
                                const BuildPipeline::EncodedChunk& chunk) {
        archive->payload_.append(chunk.payload);
        for (uint64_t size : chunk.item_sizes) archive->map_.Add(size);
      });
  pipeline.Finish();
  return archive;
}

std::string SemiStaticArchive::name() const {
  return scheme_ == SemiStaticScheme::kEtdc ? "etdc" : "plainhuff";
}

Status SemiStaticArchive::Get(size_t id, std::string* doc,
                              SimDisk* disk) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("semistatic archive: bad doc id");
  }
  doc->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  if (disk != nullptr) disk->Read(off, size);
  const std::string_view codes = std::string_view(payload_).substr(off, size);
  size_t pos = 0;
  while (pos < codes.size()) {
    uint32_t rank = 0;
    RLZ_RETURN_IF_ERROR(coder_->Decode(codes, &pos, &rank));
    if (rank >= vocab_.size()) {
      return Status::Corruption("semistatic archive: rank out of range");
    }
    doc->append(vocab_.Token(rank));
  }
  return Status::OK();
}

uint64_t SemiStaticArchive::stored_bytes() const {
  // Serialized vocabulary: vbyte(len) + bytes per token, in rank order
  // (frequencies are not needed to decode ETDC; PH additionally stores
  // code lengths, ~1 byte per token).
  uint64_t vocab_bytes = 0;
  for (uint32_t r = 0; r < vocab_.size(); ++r) {
    uint64_t len = vocab_.Token(r).size();
    do {
      ++vocab_bytes;
      len >>= 7;
    } while (len != 0);
    vocab_bytes += vocab_.Token(r).size();
  }
  if (scheme_ == SemiStaticScheme::kPlainHuffman) vocab_bytes += vocab_.size();
  return payload_.size() + map_.serialized_bytes() + vocab_bytes;
}

}  // namespace rlz
