#include "semistatic/token_coder.h"

#include <algorithm>
#include <array>
#include <queue>

#include "util/logging.h"

namespace rlz {
namespace {

// Cumulative counts of ETDC codewords shorter than k bytes.
constexpr uint64_t kEtdcBase1 = 0;
constexpr uint64_t kEtdcBase2 = 128;
constexpr uint64_t kEtdcBase3 = 128 + 128ull * 128;
constexpr uint64_t kEtdcBase4 = 128 + 128ull * 128 + 128ull * 128 * 128;

}  // namespace

void EtdcCoder::Encode(uint32_t rank, std::string* out) const {
  uint64_t r = rank;
  if (r < kEtdcBase2) {
    out->push_back(static_cast<char>(r + 128));
    return;
  }
  if (r < kEtdcBase3) {
    r -= kEtdcBase2;
    out->push_back(static_cast<char>(r >> 7));
    out->push_back(static_cast<char>((r & 0x7F) + 128));
    return;
  }
  if (r < kEtdcBase4) {
    r -= kEtdcBase3;
    out->push_back(static_cast<char>(r >> 14));
    out->push_back(static_cast<char>((r >> 7) & 0x7F));
    out->push_back(static_cast<char>((r & 0x7F) + 128));
    return;
  }
  r -= kEtdcBase4;
  out->push_back(static_cast<char>(r >> 21));
  out->push_back(static_cast<char>((r >> 14) & 0x7F));
  out->push_back(static_cast<char>((r >> 7) & 0x7F));
  out->push_back(static_cast<char>((r & 0x7F) + 128));
}

Status EtdcCoder::Decode(std::string_view in, size_t* pos,
                         uint32_t* rank) const {
  uint64_t value = 0;
  size_t len = 0;
  while (true) {
    if (*pos >= in.size()) return Status::Corruption("etdc: truncated code");
    if (++len > 4) return Status::Corruption("etdc: overlong code");
    const uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    if (byte >= 128) {
      value = (value << 7) | (byte - 128);
      break;
    }
    value = (value << 7) | byte;
  }
  static constexpr uint64_t kBases[] = {kEtdcBase1, kEtdcBase2, kEtdcBase3,
                                        kEtdcBase4};
  value += kBases[len - 1];
  if (value > 0xFFFFFFFFull) return Status::Corruption("etdc: rank overflow");
  *rank = static_cast<uint32_t>(value);
  return Status::OK();
}

size_t EtdcCoder::CodeLength(uint32_t rank) const {
  if (rank < kEtdcBase2) return 1;
  if (rank < kEtdcBase3) return 2;
  if (rank < kEtdcBase4) return 3;
  return 4;
}

PlainHuffmanCoder::PlainHuffmanCoder(const std::vector<uint64_t>& freqs) {
  const size_t n = freqs.size();
  codes_.resize(n);
  if (n == 0) return;

  // 256-ary Huffman: pad with zero-frequency dummies so every merge is
  // full, i.e. (num_leaves - 1) % 255 == 0.
  struct Node {
    uint64_t freq;
    uint32_t value;  // kLeafBase+rank for leaves, tree_ index otherwise
    std::vector<uint32_t> children;  // values, for internal nodes
  };
  std::vector<Node> nodes;
  using QEntry = std::pair<uint64_t, uint32_t>;  // (freq, nodes index)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  for (uint32_t r = 0; r < n; ++r) {
    nodes.push_back({freqs[r], kLeafBase + r, {}});
    pq.emplace(freqs[r], static_cast<uint32_t>(nodes.size() - 1));
  }
  size_t dummies = 0;
  if (n > 1) {
    dummies = (255 - ((n - 1) % 255)) % 255;
  }
  for (size_t d = 0; d < dummies; ++d) {
    nodes.push_back({0, kInvalid, {}});
    pq.emplace(0, static_cast<uint32_t>(nodes.size() - 1));
  }

  if (n == 1) {
    tree_.emplace_back();
    tree_[0].fill(kInvalid);
    tree_[0][0] = kLeafBase + 0;
    codes_[0] = std::string(1, '\0');
    return;
  }

  while (pq.size() > 1) {
    Node merged{0, 0, {}};
    const size_t take = std::min<size_t>(256, pq.size());
    merged.children.reserve(take);
    for (size_t k = 0; k < take; ++k) {
      const auto [f, idx] = pq.top();
      pq.pop();
      merged.freq += f;
      merged.children.push_back(idx);
    }
    nodes.push_back(std::move(merged));
    pq.emplace(nodes.back().freq, static_cast<uint32_t>(nodes.size() - 1));
  }

  // DFS from the root assigning byte labels and building the decode table.
  const uint32_t root = pq.top().second;
  std::vector<std::pair<uint32_t, std::string>> stack;  // (nodes idx, code)
  stack.emplace_back(root, "");
  while (!stack.empty()) {
    auto [idx, code] = std::move(stack.back());
    stack.pop_back();
    Node& node = nodes[idx];
    if (node.children.empty()) {
      if (node.value == kInvalid) continue;  // dummy
      RLZ_CHECK(node.value >= kLeafBase);
      codes_[node.value - kLeafBase] = code;
      continue;
    }
    const uint32_t table_idx = static_cast<uint32_t>(tree_.size());
    tree_.emplace_back();
    tree_.back().fill(kInvalid);
    node.value = table_idx;
    // Record this internal node in its parent's slot: we instead resolve
    // children after their tables exist, so process children first and
    // patch below. Simpler: push children, then patch once all are
    // processed — handled by a second pass below.
    for (size_t b = 0; b < node.children.size(); ++b) {
      stack.emplace_back(node.children[b],
                         code + static_cast<char>(static_cast<uint8_t>(b)));
    }
  }
  // Second pass: fill decode tables now that every internal node has a
  // table index in node.value.
  for (const Node& node : nodes) {
    if (node.children.empty()) continue;
    auto& row = tree_[node.value];
    for (size_t b = 0; b < node.children.size(); ++b) {
      const Node& child = nodes[node.children[b]];
      if (child.children.empty()) {
        row[b] = child.value;  // leaf (or kInvalid dummy)
      } else {
        row[b] = child.value;  // internal table index
      }
    }
  }
  // Root must be table 0 for decoding; DFS visits the root first, so it is.
  RLZ_CHECK(nodes[root].value == 0);
}

void PlainHuffmanCoder::Encode(uint32_t rank, std::string* out) const {
  RLZ_DCHECK_LT(rank, codes_.size());
  out->append(codes_[rank]);
}

Status PlainHuffmanCoder::Decode(std::string_view in, size_t* pos,
                                 uint32_t* rank) const {
  uint32_t node = 0;
  while (true) {
    if (*pos >= in.size()) {
      return Status::Corruption("plain huffman: truncated code");
    }
    if (node >= tree_.size()) {
      return Status::Corruption("plain huffman: bad state");
    }
    const uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    const uint32_t next = tree_[node][byte];
    if (next == kInvalid) {
      return Status::Corruption("plain huffman: invalid codeword");
    }
    if (next >= kLeafBase) {
      *rank = next - kLeafBase;
      return Status::OK();
    }
    node = next;
  }
}

size_t PlainHuffmanCoder::CodeLength(uint32_t rank) const {
  RLZ_DCHECK_LT(rank, codes_.size());
  return codes_[rank].size();
}

}  // namespace rlz
