#ifndef RLZ_SEMISTATIC_WORD_MODEL_H_
#define RLZ_SEMISTATIC_WORD_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace rlz {

/// Splits text into a strictly alternating sequence of "words" (alnum
/// runs) and "separators" (everything else), the classic word-based model
/// of the §2.1 semi-static compressors (de Moura et al.). The first token
/// is always a separator (possibly empty), so decoding can reconstruct the
/// byte stream exactly: sep word sep word ... sep.
std::vector<std::string_view> SplitWordsAndSeparators(std::string_view text);

/// A frequency-ranked vocabulary over word and separator tokens of a
/// collection. Rank 0 is the most frequent token. Words and separators
/// share one id space (the "spaceless-ish" simplification keeps the coder
/// single-alphabet; separators are tokens like any other).
class WordVocabulary {
 public:
  // Move-only: the rank index holds views into the token storage, which
  // stays valid across moves but not copies.
  WordVocabulary(WordVocabulary&&) = default;
  WordVocabulary& operator=(WordVocabulary&&) = default;
  WordVocabulary(const WordVocabulary&) = delete;
  WordVocabulary& operator=(const WordVocabulary&) = delete;

  /// Two-pass build, first pass of any semi-static scheme: counts token
  /// frequencies across the whole collection, then assigns ranks by
  /// descending frequency.
  static WordVocabulary Build(const std::vector<std::string_view>& docs);

  /// Reassembles a vocabulary from its serialized form: `tokens[r]` is
  /// the rank-r token and `freqs[r]` its collection frequency (the same
  /// order Build produced). The rank index is rebuilt here. The two
  /// vectors must be the same length (checked).
  static WordVocabulary FromRanked(std::vector<std::string> tokens,
                                   std::vector<uint64_t> freqs);

  /// Token id (== frequency rank) for `token`; NotFound for unseen tokens
  /// (cannot happen for text the vocabulary was built from).
  StatusOr<uint32_t> Rank(std::string_view token) const;

  std::string_view Token(uint32_t rank) const {
    RLZ_CHECK_LT(rank, tokens_.size());
    return tokens_[rank];
  }

  uint64_t Frequency(uint32_t rank) const { return freqs_[rank]; }
  size_t size() const { return tokens_.size(); }

  /// Bytes a decoder must hold resident: all token strings plus per-token
  /// bookkeeping. This is the §2.1 scalability cost the paper calls out
  /// (13 GB vocabulary on ClueWeb Category A).
  uint64_t memory_bytes() const;

  /// Fraction of tokens that occur exactly once (the paper observed ~50%
  /// of the ClueWeb lexicon were once-only non-words).
  double singleton_fraction() const;

 private:
  WordVocabulary() = default;

  std::vector<std::string> tokens_;  // rank -> token
  std::vector<uint64_t> freqs_;      // rank -> collection frequency
  std::unordered_map<std::string_view, uint32_t> rank_;  // views into tokens_
};

}  // namespace rlz

#endif  // RLZ_SEMISTATIC_WORD_MODEL_H_
