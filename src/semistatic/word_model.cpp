#include "semistatic/word_model.h"

#include <algorithm>
#include <cctype>

namespace rlz {
namespace {

bool IsWordByte(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string_view> SplitWordsAndSeparators(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  bool expect_word = false;  // stream starts with a separator token
  while (i < text.size()) {
    size_t j = i;
    if (expect_word) {
      while (j < text.size() && IsWordByte(text[j])) ++j;
    } else {
      while (j < text.size() && !IsWordByte(text[j])) ++j;
    }
    tokens.push_back(text.substr(i, j - i));  // may be empty (leading word)
    expect_word = !expect_word;
    i = j;
  }
  return tokens;
}

WordVocabulary WordVocabulary::Build(
    const std::vector<std::string_view>& docs) {
  // Pass 1: frequencies.
  std::unordered_map<std::string, uint64_t> counts;
  for (std::string_view doc : docs) {
    for (std::string_view token : SplitWordsAndSeparators(doc)) {
      ++counts[std::string(token)];
    }
  }
  // Rank by descending frequency (ties by token for determinism).
  std::vector<std::pair<std::string, uint64_t>> entries;
  entries.reserve(counts.size());
  for (auto& [token, freq] : counts) entries.emplace_back(token, freq);
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  WordVocabulary vocab;
  vocab.tokens_.reserve(entries.size());
  vocab.freqs_.reserve(entries.size());
  for (auto& [token, freq] : entries) {
    vocab.tokens_.push_back(std::move(token));
    vocab.freqs_.push_back(freq);
  }
  vocab.rank_.reserve(vocab.tokens_.size());
  for (uint32_t r = 0; r < vocab.tokens_.size(); ++r) {
    vocab.rank_.emplace(vocab.tokens_[r], r);
  }
  return vocab;
}

WordVocabulary WordVocabulary::FromRanked(std::vector<std::string> tokens,
                                          std::vector<uint64_t> freqs) {
  RLZ_CHECK_EQ(tokens.size(), freqs.size());
  WordVocabulary vocab;
  vocab.tokens_ = std::move(tokens);
  vocab.freqs_ = std::move(freqs);
  vocab.rank_.reserve(vocab.tokens_.size());
  for (uint32_t r = 0; r < vocab.tokens_.size(); ++r) {
    vocab.rank_.emplace(vocab.tokens_[r], r);
  }
  return vocab;
}

StatusOr<uint32_t> WordVocabulary::Rank(std::string_view token) const {
  auto it = rank_.find(token);
  if (it == rank_.end()) {
    return Status::NotFound("token not in vocabulary");
  }
  return it->second;
}

uint64_t WordVocabulary::memory_bytes() const {
  uint64_t bytes = 0;
  for (const std::string& t : tokens_) {
    bytes += t.size() + sizeof(std::string) + sizeof(uint64_t) +
             /* hash-map entry approximation */ 32;
  }
  return bytes;
}

double WordVocabulary::singleton_fraction() const {
  if (freqs_.empty()) return 0.0;
  const size_t singles =
      std::count(freqs_.begin(), freqs_.end(), uint64_t{1});
  return static_cast<double>(singles) / freqs_.size();
}

}  // namespace rlz
