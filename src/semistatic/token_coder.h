#ifndef RLZ_SEMISTATIC_TOKEN_CODER_H_
#define RLZ_SEMISTATIC_TOKEN_CODER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlz {

/// Byte-oriented codes for frequency-ranked token ids — the §2.1
/// semi-static coders. Both operate on ranks (0 = most frequent) and emit
/// whole bytes, which is what makes decoding fast compared to bit-oriented
/// Huffman (de Moura et al. 2000).
class TokenCoder {
 public:
  virtual ~TokenCoder() = default;

  virtual std::string name() const = 0;

  /// Appends the codeword for `rank` to `out`.
  virtual void Encode(uint32_t rank, std::string* out) const = 0;

  /// Decodes one codeword from in[*pos..), advancing *pos. Returns
  /// Corruption on malformed input.
  virtual Status Decode(std::string_view in, size_t* pos,
                        uint32_t* rank) const = 0;

  /// Codeword length in bytes for `rank` (for size accounting).
  virtual size_t CodeLength(uint32_t rank) const = 0;
};

/// End-Tagged Dense Code (Brisaboa et al.): bytes < 128 continue a
/// codeword, bytes >= 128 terminate it. Codes are assigned densely by
/// rank, so no code table is needed — only the ranked vocabulary. The
/// end-tag makes the code self-synchronizing (enables direct compressed
/// search, §2.1).
class EtdcCoder final : public TokenCoder {
 public:
  std::string name() const override { return "ETDC"; }
  void Encode(uint32_t rank, std::string* out) const override;
  Status Decode(std::string_view in, size_t* pos,
                uint32_t* rank) const override;
  size_t CodeLength(uint32_t rank) const override;
};

/// Plain Huffman over a 256-ary tree (de Moura et al.'s PH): optimal
/// byte-oriented code for the given rank frequencies. Needs the frequency
/// profile at construction and a code table at run time (unlike ETDC).
class PlainHuffmanCoder final : public TokenCoder {
 public:
  /// `freqs[rank]` is the collection frequency of rank `rank`.
  explicit PlainHuffmanCoder(const std::vector<uint64_t>& freqs);

  std::string name() const override { return "PlainHuffman"; }
  void Encode(uint32_t rank, std::string* out) const override;
  Status Decode(std::string_view in, size_t* pos,
                uint32_t* rank) const override;
  size_t CodeLength(uint32_t rank) const override;

 private:
  // Decode tree: node -> child[byte]. Values >= kLeafBase are leaves
  // (rank = value - kLeafBase); kInvalid marks unused slots.
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
  static constexpr uint32_t kLeafBase = 0x80000000u;

  std::vector<std::string> codes_;              // rank -> byte string
  std::vector<std::array<uint32_t, 256>> tree_; // internal nodes
};

}  // namespace rlz

#endif  // RLZ_SEMISTATIC_TOKEN_CODER_H_
