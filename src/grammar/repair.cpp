#include "grammar/repair.h"

#include <unordered_map>
#include <vector>

#include "codecs/int_codecs.h"
#include "util/logging.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

constexpr uint8_t kMagic = 0xC9;
constexpr uint32_t kFirstNonterminal = 256;

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// One replacement round: rewrites every non-overlapping occurrence of
// (a, b) with `fresh`, in place. Returns the new length.
size_t ReplacePair(std::vector<uint32_t>* seq, uint32_t a, uint32_t b,
                   uint32_t fresh) {
  std::vector<uint32_t>& s = *seq;
  size_t write = 0;
  size_t read = 0;
  while (read < s.size()) {
    if (read + 1 < s.size() && s[read] == a && s[read + 1] == b) {
      s[write++] = fresh;
      read += 2;
    } else {
      s[write++] = s[read++];
    }
  }
  s.resize(write);
  return write;
}

}  // namespace

RepairCompressor::RepairCompressor(RepairOptions options)
    : options_(options) {
  RLZ_CHECK(options_.min_pair_frequency >= 2);
}

void RepairCompressor::Compress(std::string_view in, std::string* out) const {
  // Phase 1: build the grammar.
  std::vector<uint32_t> seq(in.begin(), in.end());
  for (auto& v : seq) v &= 0xFF;
  std::vector<std::pair<uint32_t, uint32_t>> rules;

  std::unordered_map<uint64_t, uint32_t> pair_counts;
  while (rules.size() < options_.max_rules && seq.size() >= 2) {
    // Count adjacent pairs (skipping self-overlap: "aaa" has one "aa").
    pair_counts.clear();
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const uint64_t key = PairKey(seq[i], seq[i + 1]);
      ++pair_counts[key];
      // Avoid double-counting overlapping identical pairs (aaa -> 1x aa).
      if (i + 2 < seq.size() && seq[i] == seq[i + 1] &&
          seq[i + 1] == seq[i + 2]) {
        ++i;
      }
    }
    uint64_t best_key = 0;
    uint32_t best_count = 0;
    for (const auto& [key, count] : pair_counts) {
      if (count > best_count ||
          (count == best_count && key < best_key)) {
        best_count = count;
        best_key = key;
      }
    }
    if (best_count < options_.min_pair_frequency) break;
    const uint32_t a = static_cast<uint32_t>(best_key >> 32);
    const uint32_t b = static_cast<uint32_t>(best_key & 0xFFFFFFFF);
    const uint32_t fresh =
        kFirstNonterminal + static_cast<uint32_t>(rules.size());
    rules.emplace_back(a, b);
    ReplacePair(&seq, a, b, fresh);
  }

  // Phase 2: serialize (rules as deltas against the nonterminal space,
  // sequence as vbyte ids) and entropy-code with gzipx.
  std::string raw;
  VByteCodec::Put(static_cast<uint32_t>(in.size()), &raw);
  VByteCodec::Put(static_cast<uint32_t>(rules.size()), &raw);
  for (const auto& [a, b] : rules) {
    VByteCodec::Put(a, &raw);
    VByteCodec::Put(b, &raw);
  }
  VByteCodec::Put(static_cast<uint32_t>(seq.size()), &raw);
  for (uint32_t v : seq) VByteCodec::Put(v, &raw);

  out->push_back(static_cast<char>(kMagic));
  GzipxCompressor().Compress(raw, out);
}

Status RepairCompressor::Decompress(std::string_view in,
                                    std::string* out) const {
  if (in.empty() || static_cast<uint8_t>(in[0]) != kMagic) {
    return Status::Corruption("repair: bad magic");
  }
  std::string raw;
  RLZ_RETURN_IF_ERROR(GzipxCompressor().Decompress(in.substr(1), &raw));

  size_t pos = 0;
  uint32_t total = 0;
  uint32_t num_rules = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &total));
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &num_rules));
  if (num_rules > options_.max_rules) {
    return Status::Corruption("repair: too many rules");
  }
  std::vector<std::pair<uint32_t, uint32_t>> rules(num_rules);
  for (auto& [a, b] : rules) {
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &a));
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &b));
  }
  uint32_t seq_len = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &seq_len));
  if (static_cast<uint64_t>(seq_len) > raw.size() - pos + 1) {
    return Status::Corruption("repair: implausible sequence length");
  }

  const size_t out_base = out->size();
  out->reserve(out_base + total);
  // Iterative expansion with an explicit stack.
  std::vector<uint32_t> stack;
  for (uint32_t i = 0; i < seq_len; ++i) {
    uint32_t sym = 0;
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &sym));
    stack.push_back(sym);
    while (!stack.empty()) {
      const uint32_t s = stack.back();
      stack.pop_back();
      if (s < kFirstNonterminal) {
        if (out->size() - out_base >= total) {
          return Status::Corruption("repair: output overrun");
        }
        out->push_back(static_cast<char>(s));
        continue;
      }
      const uint32_t rule = s - kFirstNonterminal;
      if (rule >= rules.size()) {
        return Status::Corruption("repair: undefined nonterminal");
      }
      // A rule's components are always older symbols, so expansion
      // terminates; guard the stack anyway against adversarial input.
      if (rules[rule].first >= s || rules[rule].second >= s) {
        return Status::Corruption("repair: non-monotone rule");
      }
      stack.push_back(rules[rule].second);
      stack.push_back(rules[rule].first);
    }
  }
  if (out->size() - out_base != total) {
    return Status::Corruption("repair: size mismatch");
  }
  return Status::OK();
}

}  // namespace rlz
