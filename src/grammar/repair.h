#ifndef RLZ_GRAMMAR_REPAIR_H_
#define RLZ_GRAMMAR_REPAIR_H_

#include <cstdint>

#include "zip/compressor.h"

namespace rlz {

/// Options for the Re-Pair grammar compressor.
struct RepairOptions {
  /// Stop replacing pairs once the most frequent pair occurs fewer times
  /// than this (a pair must pay for its rule).
  uint32_t min_pair_frequency = 4;
  /// Hard cap on grammar size.
  uint32_t max_rules = 1 << 16;
};

/// Re-Pair (Larsson & Moffat, DCC'99), the offline grammar compressor the
/// paper cites in §2.2: repeatedly replace the most frequent adjacent
/// symbol pair with a fresh nonterminal until no pair repeats enough, then
/// entropy-code the final sequence and the rule table (here: a gzipx pass
/// over the serialized grammar).
///
/// This implementation favours clarity over asymptotics (each round is a
/// full O(n) scan rather than Larsson & Moffat's priority-queue scheme),
/// which makes the §2.2 verdict — "grammar compressors can achieve
/// powerful compression but have enormous construction requirements,
/// limiting their application to smaller collections" — directly
/// measurable in bench/ablation_grammar.
class RepairCompressor final : public Compressor {
 public:
  explicit RepairCompressor(RepairOptions options = {});

  std::string name() const override { return "repair"; }
  void Compress(std::string_view in, std::string* out) const override;
  Status Decompress(std::string_view in, std::string* out) const override;

 private:
  RepairOptions options_;
};

}  // namespace rlz

#endif  // RLZ_GRAMMAR_REPAIR_H_
