#include "suffix/matcher.h"

#include <algorithm>

#include "suffix/suffix_array.h"
#include "util/logging.h"

namespace rlz {

SuffixMatcher::SuffixMatcher(std::string_view text, std::vector<int32_t> sa,
                             bool build_jump_table)
    : text_(text), sa_(std::move(sa)) {
  if (sa_.empty() && !text_.empty()) {
    sa_ = BuildSuffixArray(text_);
  }
  RLZ_CHECK_EQ(sa_.size(), text_.size());
  if (build_jump_table && text_.size() >= 2) {
    jump_lo_.assign(65536, 0);
    jump_hi_.assign(65536, 0);
    // One pass over the SA: suffixes with equal 2-byte prefixes are
    // contiguous, so record each run. Suffixes of length 1 sort at the
    // start of their first-byte group and are excluded from the table
    // (Refine handles them via the slow path).
    size_t i = 0;
    const size_t n = sa_.size();
    while (i < n) {
      const size_t start = i;
      const size_t p = static_cast<size_t>(sa_[i]);
      if (p + 1 >= text_.size()) {
        ++i;
        continue;
      }
      const uint32_t key = (static_cast<uint8_t>(text_[p]) << 8) |
                           static_cast<uint8_t>(text_[p + 1]);
      while (i < n) {
        const size_t q = static_cast<size_t>(sa_[i]);
        if (q + 1 >= text_.size()) break;
        const uint32_t k2 = (static_cast<uint8_t>(text_[q]) << 8) |
                            static_cast<uint8_t>(text_[q + 1]);
        if (k2 != key) break;
        ++i;
      }
      jump_lo_[key] = static_cast<int32_t>(start);
      jump_hi_[key] = static_cast<int32_t>(i);
    }
    has_jump_ = true;
  }
}

bool SuffixMatcher::Refine(int32_t* lb, int32_t* rb, int32_t offset,
                           uint8_t c) const {
  if (*lb > *rb) return false;
  const int target = c;
  // Lower bound: first index in [lb, rb] with CharAt >= target.
  int32_t lo = *lb;
  int32_t hi = *rb + 1;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (CharAt(mid, offset) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const int32_t new_lb = lo;
  if (new_lb > *rb || CharAt(new_lb, offset) != target) return false;
  // Upper bound: first index with CharAt > target.
  hi = *rb + 1;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (CharAt(mid, offset) <= target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *lb = new_lb;
  *rb = lo - 1;
  return true;
}

Match SuffixMatcher::LongestMatch(std::string_view pattern) const {
  Match m;
  if (pattern.empty() || text_.empty()) return m;

  int32_t lb = 0;
  int32_t rb = static_cast<int32_t>(sa_.size()) - 1;
  int32_t j = 0;
  const int32_t plen = static_cast<int32_t>(pattern.size());

  // Jump-start: resolve the first two characters with one table lookup.
  if (has_jump_ && plen >= 2) {
    const uint32_t key =
        (static_cast<uint8_t>(pattern[0]) << 8) |
        static_cast<uint8_t>(pattern[1]);
    if (jump_lo_[key] < jump_hi_[key]) {
      lb = jump_lo_[key];
      rb = jump_hi_[key] - 1;
      j = 2;
    } else {
      // No 2-char match; fall back to a single Refine for 1 char.
      if (!Refine(&lb, &rb, 0, static_cast<uint8_t>(pattern[0]))) return m;
      m.pos = sa_[lb];
      m.len = 1;
      return m;
    }
  }

  while (j < plen) {
    if (lb == rb) {
      // Single candidate: extend by direct comparison (the fast path the
      // paper's Factor function takes once the interval is unique).
      const size_t start = static_cast<size_t>(sa_[lb]);
      while (j < plen && start + j < text_.size() &&
             text_[start + j] == pattern[j]) {
        ++j;
      }
      break;
    }
    int32_t nlb = lb;
    int32_t nrb = rb;
    if (!Refine(&nlb, &nrb, j, static_cast<uint8_t>(pattern[j]))) break;
    lb = nlb;
    rb = nrb;
    ++j;
  }

  if (j == 0) return m;
  m.pos = sa_[lb];
  m.len = j;
  return m;
}

}  // namespace rlz
