#include "suffix/lcp.h"

#include <algorithm>

#include "util/logging.h"

namespace rlz {

std::vector<int32_t> BuildLcpArray(std::string_view text,
                                   const std::vector<int32_t>& sa) {
  const int32_t n = static_cast<int32_t>(text.size());
  RLZ_CHECK_EQ(sa.size(), text.size());
  std::vector<int32_t> lcp(n, 0);
  if (n == 0) return lcp;

  // rank[i] = position of suffix i in the SA.
  std::vector<int32_t> rank(n);
  for (int32_t i = 0; i < n; ++i) rank[sa[i]] = i;

  int32_t h = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    const int32_t j = sa[rank[i] - 1];
    while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
    lcp[rank[i]] = h;
    if (h > 0) --h;
  }
  return lcp;
}

std::vector<int32_t> BuildLcpArrayNaive(std::string_view text,
                                        const std::vector<int32_t>& sa) {
  std::vector<int32_t> lcp(sa.size(), 0);
  for (size_t i = 1; i < sa.size(); ++i) {
    const std::string_view a = text.substr(sa[i - 1]);
    const std::string_view b = text.substr(sa[i]);
    int32_t l = 0;
    while (static_cast<size_t>(l) < std::min(a.size(), b.size()) &&
           a[l] == b[l]) {
      ++l;
    }
    lcp[i] = l;
  }
  return lcp;
}

RepeatStats ComputeRepeatStats(std::string_view text,
                               const std::vector<int32_t>& sa,
                               int32_t threshold) {
  RepeatStats stats;
  if (text.empty()) return stats;
  const std::vector<int32_t> lcp = BuildLcpArray(text, sa);
  const int32_t n = static_cast<int32_t>(text.size());
  int64_t sum = 0;
  int64_t repeated = 0;
  for (int32_t i = 0; i < n; ++i) {
    sum += lcp[i];
    stats.max_lcp = std::max(stats.max_lcp, lcp[i]);
    const int32_t best =
        std::max(lcp[i], i + 1 < n ? lcp[i + 1] : 0);
    if (best >= threshold) ++repeated;
  }
  stats.mean_lcp = static_cast<double>(sum) / n;
  stats.repeat_fraction = static_cast<double>(repeated) / n;
  return stats;
}

}  // namespace rlz
