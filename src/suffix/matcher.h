#ifndef RLZ_SUFFIX_MATCHER_H_
#define RLZ_SUFFIX_MATCHER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace rlz {

/// Result of a longest-match query: `len` characters matched starting at
/// text position `pos` (len == 0 means no character matched).
struct Match {
  int32_t pos = 0;
  int32_t len = 0;
};

/// Pattern matching over a static text via its suffix array — the engine
/// behind the paper's Refine function (Fig. 1 / Table 1). Suffixes sharing
/// a prefix form a contiguous SA interval; Refine narrows the interval by
/// one character with two binary searches.
///
/// Optionally builds a jump-start table: a dense index over the first
/// `prefix_bits`-bit packed 2-byte prefixes of suffixes, which replaces the
/// first two Refine rounds with an O(1) lookup (ablation in
/// bench/micro_factorize; see DESIGN.md §5.1).
class SuffixMatcher {
 public:
  /// `text` must outlive the matcher. If `sa` is empty it is built here.
  explicit SuffixMatcher(std::string_view text,
                         std::vector<int32_t> sa = {},
                         bool build_jump_table = true);

  /// The paper's Refine(lb, rb, offset, c): narrows [*lb, *rb] (inclusive
  /// SA index interval whose suffixes share the first `offset` characters)
  /// to those whose character at `offset` equals `c`. Returns false and
  /// leaves the bounds invalid if no suffix qualifies.
  bool Refine(int32_t* lb, int32_t* rb, int32_t offset, uint8_t c) const;

  /// Longest prefix of `pattern` occurring anywhere in the text. Greedy,
  /// leftmost-lowest SA entry wins, exactly as Fig. 1 returns SA[lb].
  Match LongestMatch(std::string_view pattern) const;

  std::string_view text() const { return text_; }
  const std::vector<int32_t>& sa() const { return sa_; }

 private:
  // Character of suffix sa_[i] at distance `offset`, or -1 if the suffix is
  // shorter than offset+1. -1 sorts before every real character, matching
  // lexicographic suffix order.
  int CharAt(int32_t i, int32_t offset) const {
    const size_t p = static_cast<size_t>(sa_[i]) + offset;
    if (p >= text_.size()) return -1;
    return static_cast<uint8_t>(text_[p]);
  }

  std::string_view text_;
  std::vector<int32_t> sa_;
  // jump_[prefix16] = SA interval [lo, hi) of suffixes starting with the
  // two-byte prefix; empty intervals have lo == hi.
  std::vector<int32_t> jump_lo_;
  std::vector<int32_t> jump_hi_;
  bool has_jump_ = false;
};

}  // namespace rlz

#endif  // RLZ_SUFFIX_MATCHER_H_
