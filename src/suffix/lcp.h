#ifndef RLZ_SUFFIX_LCP_H_
#define RLZ_SUFFIX_LCP_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace rlz {

/// Builds the LCP array of `text` from its suffix array with Kasai's
/// algorithm (O(n)). lcp[i] is the length of the longest common prefix of
/// the suffixes at SA[i-1] and SA[i]; lcp[0] == 0.
std::vector<int32_t> BuildLcpArray(std::string_view text,
                                   const std::vector<int32_t>& sa);

/// Quadratic reference implementation (test oracle).
std::vector<int32_t> BuildLcpArrayNaive(std::string_view text,
                                        const std::vector<int32_t>& sa);

/// Self-redundancy statistics of a text, computed from its LCP array —
/// used to quantify the §6 observation that sampled dictionaries still
/// contain internal duplication that pruning can reclaim.
struct RepeatStats {
  double mean_lcp = 0.0;
  int32_t max_lcp = 0;
  /// Fraction of suffixes whose longest repeat elsewhere in the text is at
  /// least `threshold` bytes (threshold chosen by the caller).
  double repeat_fraction = 0.0;
};

/// Computes RepeatStats for `text`. A suffix counts as repeated when
/// max(lcp[i], lcp[i+1]) >= threshold — i.e. it shares a prefix of at
/// least `threshold` bytes with a neighbouring suffix in SA order.
RepeatStats ComputeRepeatStats(std::string_view text,
                               const std::vector<int32_t>& sa,
                               int32_t threshold);

}  // namespace rlz

#endif  // RLZ_SUFFIX_LCP_H_
