#include "suffix/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace rlz {
namespace {

void GetCounts(const int32_t* s, int32_t n, int32_t k,
               std::vector<int32_t>* cnt) {
  cnt->assign(k, 0);
  for (int32_t i = 0; i < n; ++i) ++(*cnt)[s[i]];
}

// bkt[c] = start (end=false) or one-past-end (end=true) of bucket c.
void GetBuckets(const std::vector<int32_t>& cnt, std::vector<int32_t>* bkt,
                bool end) {
  bkt->resize(cnt.size());
  int32_t sum = 0;
  for (size_t c = 0; c < cnt.size(); ++c) {
    sum += cnt[c];
    (*bkt)[c] = end ? sum : sum - cnt[c];
  }
}

// Induces L-suffixes left-to-right, then S-suffixes right-to-left, from the
// already-placed entries in sa (LMS positions or -1).
void Induce(const int32_t* s, int32_t* sa, int32_t n, int32_t k,
            const std::vector<bool>& is_s) {
  std::vector<int32_t> cnt;
  std::vector<int32_t> bkt;
  GetCounts(s, n, k, &cnt);

  GetBuckets(cnt, &bkt, /*end=*/false);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t j = sa[i] - 1;
    if (sa[i] > 0 && !is_s[j]) sa[bkt[s[j]]++] = j;
  }

  GetBuckets(cnt, &bkt, /*end=*/true);
  for (int32_t i = n - 1; i >= 0; --i) {
    const int32_t j = sa[i] - 1;
    if (sa[i] > 0 && is_s[j]) sa[--bkt[s[j]]] = j;
  }
}

// Core SA-IS over an integer alphabet [0, k). s[n-1] must be a unique
// smallest sentinel (value 0).
void SaIs(const int32_t* s, int32_t* sa, int32_t n, int32_t k) {
  RLZ_DCHECK(n > 0 && s[n - 1] == 0);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Classify suffixes: is_s[i] == true iff suffix i is S-type.
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (int32_t i = n - 2; i >= 0; --i) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](int32_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  std::vector<int32_t> cnt;
  std::vector<int32_t> bkt;
  GetCounts(s, n, k, &cnt);

  // Stage 1: sort LMS substrings by one round of induced sorting.
  std::fill(sa, sa + n, -1);
  GetBuckets(cnt, &bkt, /*end=*/true);
  for (int32_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--bkt[s[i]]] = i;
  }
  Induce(s, sa, n, k, is_s);

  // Compact the sorted LMS positions into sa[0..n1).
  int32_t n1 = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (is_lms(sa[i])) sa[n1++] = sa[i];
  }

  // Name each LMS substring; identical substrings get equal names.
  std::fill(sa + n1, sa + n, -1);
  int32_t name = 0;
  int32_t prev = -1;
  for (int32_t i = 0; i < n1; ++i) {
    const int32_t pos = sa[i];
    bool diff = false;
    for (int32_t d = 0; d < n; ++d) {
      if (prev == -1 || s[pos + d] != s[prev + d] ||
          is_s[pos + d] != is_s[prev + d]) {
        diff = true;
        break;
      }
      if (d > 0 && (is_lms(pos + d) || is_lms(prev + d))) break;
    }
    if (diff) {
      ++name;
      prev = pos;
    }
    sa[n1 + pos / 2] = name - 1;
  }
  for (int32_t i = n - 1, j = n - 1; i >= n1; --i) {
    if (sa[i] >= 0) sa[j--] = sa[i];
  }

  // Stage 2: order the LMS suffixes, recursing if names are not unique.
  int32_t* sa1 = sa;
  int32_t* s1 = sa + n - n1;
  if (name < n1) {
    SaIs(s1, sa1, n1, name);
  } else {
    for (int32_t i = 0; i < n1; ++i) sa1[s1[i]] = i;
  }

  // Stage 3: induce the full order from the sorted LMS suffixes.
  for (int32_t i = 1, j = 0; i < n; ++i) {
    if (is_lms(i)) s1[j++] = i;
  }
  for (int32_t i = 0; i < n1; ++i) sa1[i] = s1[sa1[i]];
  std::fill(sa + n1, sa + n, -1);
  GetBuckets(cnt, &bkt, /*end=*/true);
  for (int32_t i = n1 - 1; i >= 0; --i) {
    const int32_t j = sa[i];
    sa[i] = -1;
    sa[--bkt[s[j]]] = j;
  }
  Induce(s, sa, n, k, is_s);
}

}  // namespace

std::vector<int32_t> BuildSuffixArray(std::string_view text) {
  const size_t n = text.size();
  RLZ_CHECK_LE(n, static_cast<size_t>(INT32_MAX) - 1)
      << "text too large for int32 suffix array";
  if (n == 0) return {};
  // Shift the byte alphabet by one and append a unique 0 sentinel so the
  // core algorithm never has to special-case text containing NUL bytes.
  std::vector<int32_t> s(n + 1);
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<int32_t>(static_cast<uint8_t>(text[i])) + 1;
  }
  s[n] = 0;
  std::vector<int32_t> sa(n + 1);
  SaIs(s.data(), sa.data(), static_cast<int32_t>(n + 1), 257);
  // sa[0] is the sentinel suffix; drop it.
  return std::vector<int32_t>(sa.begin() + 1, sa.end());
}

std::vector<int32_t> BuildSuffixArrayNaive(std::string_view text) {
  std::vector<int32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    return text.substr(a) < text.substr(b);
  });
  return sa;
}

bool IsValidSuffixArray(std::string_view text,
                        const std::vector<int32_t>& sa) {
  const size_t n = text.size();
  if (sa.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (int32_t p : sa) {
    if (p < 0 || static_cast<size_t>(p) >= n || seen[p]) return false;
    seen[p] = true;
  }
  for (size_t i = 1; i < n; ++i) {
    if (text.substr(sa[i - 1]) >= text.substr(sa[i])) return false;
  }
  return true;
}

}  // namespace rlz
