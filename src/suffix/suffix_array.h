#ifndef RLZ_SUFFIX_SUFFIX_ARRAY_H_
#define RLZ_SUFFIX_SUFFIX_ARRAY_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace rlz {

/// Builds the suffix array of `text` with the SA-IS algorithm (Nong, Zhang,
/// Chan 2009): O(n) time, O(n) extra words. Replaces divsufsort/sdsl, which
/// this repository does not depend on. Texts are limited to int32 sizes
/// (dictionaries in this system are far below 2 GB; see DESIGN.md §5).
std::vector<int32_t> BuildSuffixArray(std::string_view text);

/// O(n^2 log n) reference construction used as a test oracle only.
std::vector<int32_t> BuildSuffixArrayNaive(std::string_view text);

/// Checks that `sa` is a permutation of [0, n) in strict suffix order.
/// O(n^2) worst case; test/debug use only.
bool IsValidSuffixArray(std::string_view text, const std::vector<int32_t>& sa);

}  // namespace rlz

#endif  // RLZ_SUFFIX_SUFFIX_ARRAY_H_
