#include "zip/gzipx.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "codecs/int_codecs.h"
#include "util/bitio.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "zip/huffman.h"

namespace rlz {
namespace {

constexpr uint8_t kMagic = 0xC7;
constexpr int kHashBits = 16;
constexpr uint32_t kHashMul = 2654435761U;
constexpr size_t kTokensPerBlock = 1 << 15;

constexpr int kNumLitLen = 286;  // 0..255 literals, 256 unused, 257..285 len
constexpr int kNumDist = 30;

// Deflate length slot tables (symbol 257 + i).
constexpr std::array<int, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10,  11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLenExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};

// Deflate distance slot tables.
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3, 3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8, 8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int LengthSlot(int len) {
  RLZ_DCHECK(len >= GzipxCompressor::kMinMatch &&
             len <= GzipxCompressor::kMaxMatch);
  // Linear scan over 29 slots is fine: called once per match token.
  for (int i = 28; i >= 0; --i) {
    if (len >= kLenBase[i]) return i;
  }
  return 0;
}

int DistSlot(int dist) {
  for (int i = 29; i >= 0; --i) {
    if (dist >= kDistBase[i]) return i;
  }
  return 0;
}

struct Token {
  uint16_t len_or_lit;  // literal byte if dist == 0, else match length
  uint16_t dist;        // 0 for literal; match distance otherwise... 16 bits
                        // cannot hold 32768, so store dist - 1.
};

uint32_t HashAt(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16) |
                     (static_cast<uint32_t>(p[3]) << 24);
  return (v * kHashMul) >> (32 - kHashBits);
}

// LZ77 tokenizer with hash chains and optional one-step lazy matching.
void Tokenize(std::string_view in, const GzipxOptions& options,
              std::vector<Token>* tokens) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(in.data());
  const size_t n = in.size();
  tokens->reserve(n / 4);

  std::vector<int32_t> head(1 << kHashBits, -1);
  std::vector<int32_t> prev(n, -1);

  auto insert = [&](size_t pos) {
    if (pos + 4 > n) return;
    const uint32_t h = HashAt(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<int32_t>(pos);
  };

  auto find_match = [&](size_t pos) -> std::pair<int, int> {
    // Returns (len, dist); len < kMinMatch means none.
    if (pos + 4 > n) return {0, 0};
    const uint32_t h = HashAt(data + pos);
    int32_t cand = head[h];
    const size_t max_len = std::min<size_t>(GzipxCompressor::kMaxMatch,
                                            n - pos);
    int best_len = 0;
    int best_dist = 0;
    int chain = options.max_chain;
    while (cand >= 0 && chain-- > 0) {
      const size_t dist = pos - static_cast<size_t>(cand);
      if (dist > GzipxCompressor::kWindowSize) break;
      // Quick reject: check the byte one past the current best.
      if (best_len > 0 &&
          data[cand + best_len] != data[pos + best_len]) {
        cand = prev[cand];
        continue;
      }
      size_t l = 0;
      while (l < max_len && data[cand + l] == data[pos + l]) ++l;
      if (static_cast<int>(l) > best_len) {
        best_len = static_cast<int>(l);
        best_dist = static_cast<int>(dist);
        if (best_len >= options.nice_length ||
            l == max_len) {
          break;
        }
      }
      cand = prev[cand];
    }
    return {best_len, best_dist};
  };

  size_t pos = 0;
  while (pos < n) {
    auto [len, dist] = find_match(pos);
    if (len >= GzipxCompressor::kMinMatch && options.lazy && pos + 1 < n) {
      // One-step lazy evaluation: if the next position has a strictly
      // longer match, emit a literal here instead.
      insert(pos);
      auto [len2, dist2] = find_match(pos + 1);
      if (len2 > len) {
        tokens->push_back({static_cast<uint16_t>(data[pos]), 0});
        ++pos;
        len = len2;
        dist = dist2;
      }
      tokens->push_back({static_cast<uint16_t>(len),
                         static_cast<uint16_t>(dist)});
      // Insert hash entries for the covered positions (pos itself was
      // already inserted above).
      for (size_t k = 1; k < static_cast<size_t>(len); ++k) {
        insert(pos + k);
      }
      pos += len;
    } else if (len >= GzipxCompressor::kMinMatch) {
      tokens->push_back({static_cast<uint16_t>(len),
                         static_cast<uint16_t>(dist)});
      for (size_t k = 0; k < static_cast<size_t>(len); ++k) {
        insert(pos + k);
      }
      pos += len;
    } else {
      insert(pos);
      tokens->push_back({static_cast<uint16_t>(data[pos]), 0});
      ++pos;
    }
  }
}

}  // namespace

GzipxCompressor::GzipxCompressor(GzipxOptions options) : options_(options) {}

void GzipxCompressor::Compress(std::string_view in, std::string* out) const {
  out->push_back(static_cast<char>(kMagic));
  VByteCodec::Put(static_cast<uint32_t>(in.size()), out);

  std::vector<Token> tokens;
  Tokenize(in, options_, &tokens);

  size_t tok_i = 0;
  size_t in_off = 0;
  while (tok_i < tokens.size() || (in.empty() && tok_i == 0)) {
    if (in.empty()) break;
    const size_t tok_end = std::min(tokens.size(), tok_i + kTokensPerBlock);
    // Uncompressed span covered by this token chunk.
    size_t span = 0;
    for (size_t t = tok_i; t < tok_end; ++t) {
      span += tokens[t].dist == 0 ? 1 : tokens[t].len_or_lit;
    }

    // Huffman-encode the chunk into a scratch buffer.
    std::string block;
    {
      std::vector<uint64_t> lit_freq(kNumLitLen, 0);
      std::vector<uint64_t> dist_freq(kNumDist, 0);
      for (size_t t = tok_i; t < tok_end; ++t) {
        const Token& tk = tokens[t];
        if (tk.dist == 0) {
          ++lit_freq[tk.len_or_lit];
        } else {
          ++lit_freq[257 + LengthSlot(tk.len_or_lit)];
          ++dist_freq[DistSlot(tk.dist)];
        }
      }
      const std::vector<uint8_t> lit_lens = BuildHuffmanCodeLengths(lit_freq);
      std::vector<uint8_t> dist_lens = BuildHuffmanCodeLengths(dist_freq);
      // The decoder requires at least one distance symbol to build a table;
      // pad with a dummy if the block is all literals.
      if (std::all_of(dist_lens.begin(), dist_lens.end(),
                      [](uint8_t l) { return l == 0; })) {
        dist_lens[0] = 1;
      }
      HuffmanEncoder lit_enc(lit_lens);
      HuffmanEncoder dist_enc(dist_lens);

      BitWriter bw(&block);
      for (uint8_t l : lit_lens) bw.WriteBits(l, 4);
      for (uint8_t l : dist_lens) bw.WriteBits(l, 4);
      for (size_t t = tok_i; t < tok_end; ++t) {
        const Token& tk = tokens[t];
        if (tk.dist == 0) {
          lit_enc.Write(&bw, tk.len_or_lit);
        } else {
          const int ls = LengthSlot(tk.len_or_lit);
          lit_enc.Write(&bw, 257 + ls);
          bw.WriteBits(tk.len_or_lit - kLenBase[ls], kLenExtra[ls]);
          const int ds = DistSlot(tk.dist);
          dist_enc.Write(&bw, ds);
          bw.WriteBits(tk.dist - kDistBase[ds], kDistExtra[ds]);
        }
      }
      bw.Finish();
    }

    // Stored fallback for incompressible chunks.
    VByteCodec::Put(static_cast<uint32_t>(span), out);
    VByteCodec::Put(static_cast<uint32_t>(tok_end - tok_i), out);
    if (block.size() >= span) {
      out->push_back(1);  // stored
      out->append(in.substr(in_off, span));
    } else {
      out->push_back(0);  // huffman
      VByteCodec::Put(static_cast<uint32_t>(block.size()), out);
      out->append(block);
    }
    in_off += span;
    tok_i = tok_end;
  }

  const uint32_t crc = Crc32(in);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
}

Status GzipxCompressor::Decompress(std::string_view in, std::string* out,
                                   GzipxDecodeScratch* scratch) const {
  size_t pos = 0;
  if (in.empty() || static_cast<uint8_t>(in[0]) != kMagic) {
    return Status::Corruption("gzipx: bad magic");
  }
  ++pos;
  uint32_t total = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &total));
  // Reject implausible expansion before sizing the output: a corrupt
  // header must not make us allocate gigabytes (max real ratio here is
  // ~1000:1).
  if (static_cast<uint64_t>(total) >
      in.size() * 1024ull + (1ull << 16)) {
    return Status::Corruption("gzipx: implausible uncompressed size");
  }

  GzipxDecodeScratch local_scratch;
  GzipxDecodeScratch* s = scratch != nullptr ? scratch : &local_scratch;

  // The header records the exact uncompressed size, so the output is
  // sized once and written through raw pointers; the historical per-byte
  // push_back dominated decode time. Every write below is bounds-checked
  // against `total` before it happens. On any error the output is rolled
  // back to its input length.
  const size_t out_base = out->size();
  out->resize(out_base + total);
  char* const base = out->data() + out_base;
  size_t produced = 0;
  auto fail = [&](Status status) {
    out->resize(out_base);
    return status;
  };

  while (produced < total) {
    uint32_t span = 0;
    uint32_t num_tokens = 0;
    Status st;
    if (!(st = VByteCodec::Get(in, &pos, &span)).ok()) return fail(st);
    if (!(st = VByteCodec::Get(in, &pos, &num_tokens)).ok()) return fail(st);
    if (pos >= in.size()) {
      return fail(Status::Corruption("gzipx: truncated block"));
    }
    const uint8_t type = static_cast<uint8_t>(in[pos++]);
    if (span > total - produced) {
      return fail(Status::Corruption("gzipx: block overruns stream size"));
    }
    if (type == 1) {
      if (pos + span > in.size()) {
        return fail(Status::Corruption("gzipx: truncated stored block"));
      }
      std::memcpy(base + produced, in.data() + pos, span);
      produced += span;
      pos += span;
      continue;
    }
    if (type != 0) return fail(Status::Corruption("gzipx: bad block type"));

    uint32_t bits_size = 0;
    if (!(st = VByteCodec::Get(in, &pos, &bits_size)).ok()) return fail(st);
    if (pos + bits_size > in.size()) {
      return fail(Status::Corruption("gzipx: truncated huffman block"));
    }
    BitReader br(reinterpret_cast<const uint8_t*>(in.data()) + pos, bits_size);
    pos += bits_size;

    s->lit_lens.resize(kNumLitLen);
    s->dist_lens.resize(kNumDist);
    for (auto& l : s->lit_lens) l = static_cast<uint8_t>(br.ReadBits(4));
    for (auto& l : s->dist_lens) l = static_cast<uint8_t>(br.ReadBits(4));
    if (!(st = s->lit.Init(s->lit_lens)).ok()) return fail(st);
    if (!(st = s->dist.Init(s->dist_lens)).ok()) return fail(st);

    for (uint32_t t = 0; t < num_tokens; ++t) {
      // One refill covers the whole token: literal/length code (<= 15) +
      // length extra (<= 5) + distance code (<= 15) + distance extra
      // (<= 13) = 48 bits, so the per-symbol decodes skip the refill
      // branch. Note: BitReader may peek past the padded end of the block
      // while decoding the final symbols; that is benign (the token count
      // bounds decoding and the trailing CRC catches real truncation), so
      // overflowed() is deliberately not treated as an error here.
      br.EnsureBits(48);
      const int32_t sym = s->lit.DecodeNoRefill(&br);
      if (sym < 0 || sym == 256 || sym >= kNumLitLen) {
        return fail(Status::Corruption("gzipx: bad literal/length symbol"));
      }
      if (sym < 256) {
        if (produced >= total) {
          return fail(Status::Corruption("gzipx: output overrun"));
        }
        base[produced++] = static_cast<char>(sym);
        continue;
      }
      const int ls = sym - 257;
      const int len =
          kLenBase[ls] + static_cast<int>(br.ReadBitsNoRefill(kLenExtra[ls]));
      const int32_t dsym = s->dist.DecodeNoRefill(&br);
      if (dsym < 0 || dsym >= kNumDist) {
        return fail(Status::Corruption("gzipx: bad distance symbol"));
      }
      const int dist =
          kDistBase[dsym] +
          static_cast<int>(br.ReadBitsNoRefill(kDistExtra[dsym]));
      if (static_cast<size_t>(dist) > produced) {
        return fail(Status::Corruption("gzipx: distance before stream start"));
      }
      if (static_cast<size_t>(len) > total - produced) {
        return fail(Status::Corruption("gzipx: output overrun"));
      }
      // Overlap-aware copy: a distance at least the length is a plain
      // memcpy; distance 1 is a byte run; short distances replay bytes.
      char* dst = base + produced;
      const char* src = dst - dist;
      if (dist >= len) {
        std::memcpy(dst, src, static_cast<size_t>(len));
      } else if (dist == 1) {
        std::memset(dst, *src, static_cast<size_t>(len));
      } else {
        for (int k = 0; k < len; ++k) dst[k] = src[k];
      }
      produced += static_cast<size_t>(len);
    }
  }

  if (pos + 4 > in.size()) {
    return fail(Status::Corruption("gzipx: missing crc"));
  }
  uint32_t want = 0;
  for (int i = 0; i < 4; ++i) {
    want |= static_cast<uint32_t>(static_cast<uint8_t>(in[pos + i])) << (8 * i);
  }
  const uint32_t got = Crc32(base, static_cast<size_t>(total));
  if (want != got) return fail(Status::Corruption("gzipx: crc mismatch"));
  return Status::OK();
}

}  // namespace rlz
