#include "zip/gzipx.h"

#include <algorithm>
#include <array>
#include <vector>

#include "codecs/int_codecs.h"
#include "util/bitio.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "zip/huffman.h"

namespace rlz {
namespace {

constexpr uint8_t kMagic = 0xC7;
constexpr int kHashBits = 16;
constexpr uint32_t kHashMul = 2654435761U;
constexpr size_t kTokensPerBlock = 1 << 15;

constexpr int kNumLitLen = 286;  // 0..255 literals, 256 unused, 257..285 len
constexpr int kNumDist = 30;

// Deflate length slot tables (symbol 257 + i).
constexpr std::array<int, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10,  11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLenExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};

// Deflate distance slot tables.
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3, 3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8, 8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int LengthSlot(int len) {
  RLZ_DCHECK(len >= GzipxCompressor::kMinMatch &&
             len <= GzipxCompressor::kMaxMatch);
  // Linear scan over 29 slots is fine: called once per match token.
  for (int i = 28; i >= 0; --i) {
    if (len >= kLenBase[i]) return i;
  }
  return 0;
}

int DistSlot(int dist) {
  for (int i = 29; i >= 0; --i) {
    if (dist >= kDistBase[i]) return i;
  }
  return 0;
}

struct Token {
  uint16_t len_or_lit;  // literal byte if dist == 0, else match length
  uint16_t dist;        // 0 for literal; match distance otherwise... 16 bits
                        // cannot hold 32768, so store dist - 1.
};

uint32_t HashAt(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16) |
                     (static_cast<uint32_t>(p[3]) << 24);
  return (v * kHashMul) >> (32 - kHashBits);
}

// LZ77 tokenizer with hash chains and optional one-step lazy matching.
void Tokenize(std::string_view in, const GzipxOptions& options,
              std::vector<Token>* tokens) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(in.data());
  const size_t n = in.size();
  tokens->reserve(n / 4);

  std::vector<int32_t> head(1 << kHashBits, -1);
  std::vector<int32_t> prev(n, -1);

  auto insert = [&](size_t pos) {
    if (pos + 4 > n) return;
    const uint32_t h = HashAt(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<int32_t>(pos);
  };

  auto find_match = [&](size_t pos) -> std::pair<int, int> {
    // Returns (len, dist); len < kMinMatch means none.
    if (pos + 4 > n) return {0, 0};
    const uint32_t h = HashAt(data + pos);
    int32_t cand = head[h];
    const size_t max_len = std::min<size_t>(GzipxCompressor::kMaxMatch,
                                            n - pos);
    int best_len = 0;
    int best_dist = 0;
    int chain = options.max_chain;
    while (cand >= 0 && chain-- > 0) {
      const size_t dist = pos - static_cast<size_t>(cand);
      if (dist > GzipxCompressor::kWindowSize) break;
      // Quick reject: check the byte one past the current best.
      if (best_len > 0 &&
          data[cand + best_len] != data[pos + best_len]) {
        cand = prev[cand];
        continue;
      }
      size_t l = 0;
      while (l < max_len && data[cand + l] == data[pos + l]) ++l;
      if (static_cast<int>(l) > best_len) {
        best_len = static_cast<int>(l);
        best_dist = static_cast<int>(dist);
        if (best_len >= options.nice_length ||
            l == max_len) {
          break;
        }
      }
      cand = prev[cand];
    }
    return {best_len, best_dist};
  };

  size_t pos = 0;
  while (pos < n) {
    auto [len, dist] = find_match(pos);
    if (len >= GzipxCompressor::kMinMatch && options.lazy && pos + 1 < n) {
      // One-step lazy evaluation: if the next position has a strictly
      // longer match, emit a literal here instead.
      insert(pos);
      auto [len2, dist2] = find_match(pos + 1);
      if (len2 > len) {
        tokens->push_back({static_cast<uint16_t>(data[pos]), 0});
        ++pos;
        len = len2;
        dist = dist2;
      }
      tokens->push_back({static_cast<uint16_t>(len),
                         static_cast<uint16_t>(dist)});
      // Insert hash entries for the covered positions (pos itself was
      // already inserted above).
      for (size_t k = 1; k < static_cast<size_t>(len); ++k) {
        insert(pos + k);
      }
      pos += len;
    } else if (len >= GzipxCompressor::kMinMatch) {
      tokens->push_back({static_cast<uint16_t>(len),
                         static_cast<uint16_t>(dist)});
      for (size_t k = 0; k < static_cast<size_t>(len); ++k) {
        insert(pos + k);
      }
      pos += len;
    } else {
      insert(pos);
      tokens->push_back({static_cast<uint16_t>(data[pos]), 0});
      ++pos;
    }
  }
}

}  // namespace

GzipxCompressor::GzipxCompressor(GzipxOptions options) : options_(options) {}

void GzipxCompressor::Compress(std::string_view in, std::string* out) const {
  out->push_back(static_cast<char>(kMagic));
  VByteCodec::Put(static_cast<uint32_t>(in.size()), out);

  std::vector<Token> tokens;
  Tokenize(in, options_, &tokens);

  size_t tok_i = 0;
  size_t in_off = 0;
  while (tok_i < tokens.size() || (in.empty() && tok_i == 0)) {
    if (in.empty()) break;
    const size_t tok_end = std::min(tokens.size(), tok_i + kTokensPerBlock);
    // Uncompressed span covered by this token chunk.
    size_t span = 0;
    for (size_t t = tok_i; t < tok_end; ++t) {
      span += tokens[t].dist == 0 ? 1 : tokens[t].len_or_lit;
    }

    // Huffman-encode the chunk into a scratch buffer.
    std::string block;
    {
      std::vector<uint64_t> lit_freq(kNumLitLen, 0);
      std::vector<uint64_t> dist_freq(kNumDist, 0);
      for (size_t t = tok_i; t < tok_end; ++t) {
        const Token& tk = tokens[t];
        if (tk.dist == 0) {
          ++lit_freq[tk.len_or_lit];
        } else {
          ++lit_freq[257 + LengthSlot(tk.len_or_lit)];
          ++dist_freq[DistSlot(tk.dist)];
        }
      }
      const std::vector<uint8_t> lit_lens = BuildHuffmanCodeLengths(lit_freq);
      std::vector<uint8_t> dist_lens = BuildHuffmanCodeLengths(dist_freq);
      // The decoder requires at least one distance symbol to build a table;
      // pad with a dummy if the block is all literals.
      if (std::all_of(dist_lens.begin(), dist_lens.end(),
                      [](uint8_t l) { return l == 0; })) {
        dist_lens[0] = 1;
      }
      HuffmanEncoder lit_enc(lit_lens);
      HuffmanEncoder dist_enc(dist_lens);

      BitWriter bw(&block);
      for (uint8_t l : lit_lens) bw.WriteBits(l, 4);
      for (uint8_t l : dist_lens) bw.WriteBits(l, 4);
      for (size_t t = tok_i; t < tok_end; ++t) {
        const Token& tk = tokens[t];
        if (tk.dist == 0) {
          lit_enc.Write(&bw, tk.len_or_lit);
        } else {
          const int ls = LengthSlot(tk.len_or_lit);
          lit_enc.Write(&bw, 257 + ls);
          bw.WriteBits(tk.len_or_lit - kLenBase[ls], kLenExtra[ls]);
          const int ds = DistSlot(tk.dist);
          dist_enc.Write(&bw, ds);
          bw.WriteBits(tk.dist - kDistBase[ds], kDistExtra[ds]);
        }
      }
      bw.Finish();
    }

    // Stored fallback for incompressible chunks.
    VByteCodec::Put(static_cast<uint32_t>(span), out);
    VByteCodec::Put(static_cast<uint32_t>(tok_end - tok_i), out);
    if (block.size() >= span) {
      out->push_back(1);  // stored
      out->append(in.substr(in_off, span));
    } else {
      out->push_back(0);  // huffman
      VByteCodec::Put(static_cast<uint32_t>(block.size()), out);
      out->append(block);
    }
    in_off += span;
    tok_i = tok_end;
  }

  const uint32_t crc = Crc32(in);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
}

Status GzipxCompressor::Decompress(std::string_view in,
                                   std::string* out) const {
  size_t pos = 0;
  if (in.empty() || static_cast<uint8_t>(in[0]) != kMagic) {
    return Status::Corruption("gzipx: bad magic");
  }
  ++pos;
  uint32_t total = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &total));
  // Reject implausible expansion before reserving memory: a corrupt header
  // must not make us allocate gigabytes (max real ratio here is ~1000:1).
  if (static_cast<uint64_t>(total) >
      in.size() * 1024ull + (1ull << 16)) {
    return Status::Corruption("gzipx: implausible uncompressed size");
  }

  const size_t out_base = out->size();
  out->reserve(out_base + total);

  while (out->size() - out_base < total) {
    uint32_t span = 0;
    uint32_t num_tokens = 0;
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &span));
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &num_tokens));
    if (pos >= in.size()) return Status::Corruption("gzipx: truncated block");
    const uint8_t type = static_cast<uint8_t>(in[pos++]);
    if (out->size() - out_base + span > total) {
      return Status::Corruption("gzipx: block overruns stream size");
    }
    if (type == 1) {
      if (pos + span > in.size()) {
        return Status::Corruption("gzipx: truncated stored block");
      }
      out->append(in.substr(pos, span));
      pos += span;
      continue;
    }
    if (type != 0) return Status::Corruption("gzipx: bad block type");

    uint32_t bits_size = 0;
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &bits_size));
    if (pos + bits_size > in.size()) {
      return Status::Corruption("gzipx: truncated huffman block");
    }
    BitReader br(reinterpret_cast<const uint8_t*>(in.data()) + pos, bits_size);
    pos += bits_size;

    std::vector<uint8_t> lit_lens(kNumLitLen);
    std::vector<uint8_t> dist_lens(kNumDist);
    for (auto& l : lit_lens) l = static_cast<uint8_t>(br.ReadBits(4));
    for (auto& l : dist_lens) l = static_cast<uint8_t>(br.ReadBits(4));
    HuffmanDecoder lit_dec;
    HuffmanDecoder dist_dec;
    RLZ_RETURN_IF_ERROR(lit_dec.Init(lit_lens));
    RLZ_RETURN_IF_ERROR(dist_dec.Init(dist_lens));

    for (uint32_t t = 0; t < num_tokens; ++t) {
      // Note: BitReader may peek past the padded end of the block while
      // decoding the final symbols; that is benign (the token count bounds
      // decoding and the trailing CRC catches real truncation), so
      // overflowed() is deliberately not treated as an error here.
      const int32_t sym = lit_dec.Decode(&br);
      if (sym < 0 || sym == 256 || sym >= kNumLitLen) {
        return Status::Corruption("gzipx: bad literal/length symbol");
      }
      if (sym < 256) {
        out->push_back(static_cast<char>(sym));
        continue;
      }
      const int ls = sym - 257;
      const int len =
          kLenBase[ls] + static_cast<int>(br.ReadBits(kLenExtra[ls]));
      const int32_t dsym = dist_dec.Decode(&br);
      if (dsym < 0 || dsym >= kNumDist) {
        return Status::Corruption("gzipx: bad distance symbol");
      }
      const int dist =
          kDistBase[dsym] + static_cast<int>(br.ReadBits(kDistExtra[dsym]));
      if (static_cast<size_t>(dist) > out->size() - out_base) {
        return Status::Corruption("gzipx: distance before stream start");
      }
      if (out->size() - out_base + len > total) {
        return Status::Corruption("gzipx: output overrun");
      }
      // Byte-by-byte copy: source and destination may overlap.
      size_t src = out->size() - dist;
      for (int k = 0; k < len; ++k) {
        out->push_back((*out)[src + k]);
      }
    }
  }

  if (pos + 4 > in.size()) return Status::Corruption("gzipx: missing crc");
  uint32_t want = 0;
  for (int i = 0; i < 4; ++i) {
    want |= static_cast<uint32_t>(static_cast<uint8_t>(in[pos + i])) << (8 * i);
  }
  const uint32_t got =
      Crc32(out->data() + out_base, out->size() - out_base);
  if (want != got) return Status::Corruption("gzipx: crc mismatch");
  return Status::OK();
}

}  // namespace rlz
