#ifndef RLZ_ZIP_BENTLEY_MCILROY_H_
#define RLZ_ZIP_BENTLEY_MCILROY_H_

#include <cstdint>

#include "zip/compressor.h"

namespace rlz {

/// Bentley & McIlroy's "data compression with long repeated strings"
/// (J. Inf. Sci. 2001) — the preprocessing pass Google's Bigtable applies
/// before a small-window compressor (§2.2 of the paper). Fingerprints every
/// `block_size`-aligned block of the input; at each position the next
/// `block_size` bytes are hashed and, on a fingerprint hit, the match is
/// verified and extended, replacing long repeats anywhere earlier in the
/// stream (unbounded window) with (distance, length) copies. Short-range
/// redundancy is deliberately left for the second-pass compressor.
class BmPreprocessor {
 public:
  explicit BmPreprocessor(int block_size = 32);

  /// Encodes `in` as alternating literal-run / copy tokens.
  void Encode(std::string_view in, std::string* out) const;

  /// Inverts Encode. Returns Corruption on malformed token streams.
  Status Decode(std::string_view in, std::string* out) const;

  int block_size() const { return block_size_; }

 private:
  int block_size_;
};

/// The Bigtable recipe as a one-shot Compressor: a Bentley-McIlroy long-
/// range pass followed by gzipx over the token stream ("a fast compression
/// algorithm that looks for repetitions in a small window", §2.2).
class BigtableCompressor final : public Compressor {
 public:
  explicit BigtableCompressor(int block_size = 32);

  std::string name() const override { return "bmdiff"; }
  void Compress(std::string_view in, std::string* out) const override;
  Status Decompress(std::string_view in, std::string* out) const override;

 private:
  BmPreprocessor pre_;
};

}  // namespace rlz

#endif  // RLZ_ZIP_BENTLEY_MCILROY_H_
