#ifndef RLZ_ZIP_COMPRESSOR_H_
#define RLZ_ZIP_COMPRESSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rlz {

/// Compressor families available for baselines and factor-stream coding.
enum class CompressorId : uint8_t {
  kGzipx = 0,  ///< small-window LZ77 + Huffman (plays the role of zlib)
  kLzmax = 1,  ///< large-window LZ + range coder (plays the role of lzma)
};

/// A one-shot block compressor. Implementations write a self-describing
/// stream (magic + uncompressed size header) so Decompress needs no side
/// information. Used both for the blocked-archive baselines and as the "Z"
/// coder for RLZ factor streams.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short name used in benchmark tables (e.g. "gzipx", "lzmax").
  virtual std::string name() const = 0;

  /// Appends a compressed representation of `in` to `out`.
  virtual void Compress(std::string_view in, std::string* out) const = 0;

  /// Decompresses a stream produced by Compress, appending to `out`.
  /// Returns Corruption on malformed input.
  virtual Status Decompress(std::string_view in, std::string* out) const = 0;

  /// Stable on-disk identifier for this compressor family — what
  /// BlockedArchive::Save records so a reopening process can decompress
  /// with GetCompressor(id). Compressors without a registered family
  /// (e.g. the Bigtable recipe) return InvalidArgument and cannot back a
  /// saved archive.
  virtual StatusOr<CompressorId> persistent_id() const {
    return Status::InvalidArgument("compressor '" + name() +
                                   "' has no persistent id");
  }
};

/// Returns a process-lifetime singleton for `id` at default settings.
const Compressor* GetCompressor(CompressorId id);

}  // namespace rlz

#endif  // RLZ_ZIP_COMPRESSOR_H_
