#ifndef RLZ_ZIP_COMPRESSOR_H_
#define RLZ_ZIP_COMPRESSOR_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rlz {

/// A one-shot block compressor. Implementations write a self-describing
/// stream (magic + uncompressed size header) so Decompress needs no side
/// information. Used both for the blocked-archive baselines and as the "Z"
/// coder for RLZ factor streams.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short name used in benchmark tables (e.g. "gzipx", "lzmax").
  virtual std::string name() const = 0;

  /// Appends a compressed representation of `in` to `out`.
  virtual void Compress(std::string_view in, std::string* out) const = 0;

  /// Decompresses a stream produced by Compress, appending to `out`.
  /// Returns Corruption on malformed input.
  virtual Status Decompress(std::string_view in, std::string* out) const = 0;
};

/// Compressor families available for baselines and factor-stream coding.
enum class CompressorId : uint8_t {
  kGzipx = 0,  ///< small-window LZ77 + Huffman (plays the role of zlib)
  kLzmax = 1,  ///< large-window LZ + range coder (plays the role of lzma)
};

/// Returns a process-lifetime singleton for `id` at default settings.
const Compressor* GetCompressor(CompressorId id);

}  // namespace rlz

#endif  // RLZ_ZIP_COMPRESSOR_H_
