#include "zip/lzmax.h"

#include <algorithm>
#include <array>
#include <vector>

#include "codecs/int_codecs.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "zip/gzipx.h"
#include "zip/range_coder.h"

namespace rlz {
namespace {

constexpr uint8_t kMagic = 0xC8;
constexpr int kHashBits = 17;
constexpr uint32_t kHashMul = 2654435761U;
constexpr int kNumStates = 3;  // 0 = after literal, 1 = after match, 2 = rep
constexpr int kNumLitContexts = 8;  // previous byte >> 5
constexpr int kNumSlots = 64;

// LZMA-style length coder: choice bits select one of three bit trees:
// low (len-2 in [0,8)), mid ([8,16)), high ([16,272)).
struct LenCoder {
  BitProb choice = kProbInit;
  BitProb choice2 = kProbInit;
  std::array<BitProb, 8> low;
  std::array<BitProb, 8> mid;
  std::array<BitProb, 256> high;

  LenCoder() {
    low.fill(kProbInit);
    mid.fill(kProbInit);
    high.fill(kProbInit);
  }

  void Encode(RangeEncoder* rc, uint32_t len) {
    RLZ_DCHECK(len >= LzmaxCompressor::kMinMatch &&
               len <= LzmaxCompressor::kMaxMatch);
    uint32_t v = len - LzmaxCompressor::kMinMatch;
    if (v < 8) {
      rc->EncodeBit(&choice, 0);
      EncodeBitTree(rc, low.data(), 3, v);
    } else if (v < 16) {
      rc->EncodeBit(&choice, 1);
      rc->EncodeBit(&choice2, 0);
      EncodeBitTree(rc, mid.data(), 3, v - 8);
    } else {
      rc->EncodeBit(&choice, 1);
      rc->EncodeBit(&choice2, 1);
      EncodeBitTree(rc, high.data(), 8, v - 16);
    }
  }

  uint32_t Decode(RangeDecoder* rc) {
    if (rc->DecodeBit(&choice) == 0) {
      return LzmaxCompressor::kMinMatch + DecodeBitTree(rc, low.data(), 3);
    }
    if (rc->DecodeBit(&choice2) == 0) {
      return LzmaxCompressor::kMinMatch + 8 + DecodeBitTree(rc, mid.data(), 3);
    }
    return LzmaxCompressor::kMinMatch + 16 + DecodeBitTree(rc, high.data(), 8);
  }
};

// Position-slot distance coder over dval = dist - 1 (LZMA scheme, with
// direct bits instead of the align tree for slots >= 4).
struct DistCoder {
  std::array<BitProb, kNumSlots> slot_probs;

  DistCoder() { slot_probs.fill(kProbInit); }

  static int SlotFor(uint32_t dval) {
    if (dval < 4) return static_cast<int>(dval);
    int bits = 31 - __builtin_clz(dval);  // index of highest set bit
    return 2 * bits + static_cast<int>((dval >> (bits - 1)) & 1);
  }

  void Encode(RangeEncoder* rc, uint32_t dist) {
    const uint32_t dval = dist - 1;
    const int slot = SlotFor(dval);
    EncodeBitTree(rc, slot_probs.data(), 6, static_cast<uint32_t>(slot));
    if (slot >= 4) {
      const int direct = (slot >> 1) - 1;
      rc->EncodeDirect(dval & ((1U << direct) - 1), direct);
    }
  }

  uint32_t Decode(RangeDecoder* rc) {
    const uint32_t slot = DecodeBitTree(rc, slot_probs.data(), 6);
    if (slot < 4) return slot + 1;
    const int direct = static_cast<int>(slot >> 1) - 1;
    const uint32_t base = (2 | (slot & 1)) << direct;
    return base + rc->DecodeDirect(direct) + 1;
  }
};

struct Model {
  std::array<BitProb, kNumStates> is_match;
  std::array<BitProb, kNumStates> is_rep;
  std::array<std::array<BitProb, 256>, kNumLitContexts> lit;
  LenCoder match_len;
  LenCoder rep_len;
  DistCoder dist;

  Model() {
    is_match.fill(kProbInit);
    is_rep.fill(kProbInit);
    for (auto& ctx : lit) ctx.fill(kProbInit);
  }
};

uint32_t Hash4(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16) |
                     (static_cast<uint32_t>(p[3]) << 24);
  return (v * kHashMul) >> (32 - kHashBits);
}

}  // namespace

LzmaxCompressor::LzmaxCompressor(LzmaxOptions options) : options_(options) {}

void LzmaxCompressor::Compress(std::string_view in, std::string* out) const {
  out->push_back(static_cast<char>(kMagic));
  VByteCodec::Put(static_cast<uint32_t>(in.size()), out);

  Model model;
  RangeEncoder rc(out);

  const uint8_t* data = reinterpret_cast<const uint8_t*>(in.data());
  const size_t n = in.size();

  std::vector<int32_t> head(1 << kHashBits, -1);
  std::vector<int32_t> prev(n, -1);

  auto insert = [&](size_t pos) {
    if (pos + 4 > n) return;
    const uint32_t h = Hash4(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<int32_t>(pos);
  };

  auto find_match = [&](size_t pos) -> std::pair<int, uint32_t> {
    if (pos + 4 > n) return {0, 0};
    const size_t max_len = std::min<size_t>(kMaxMatch, n - pos);
    int32_t cand = head[Hash4(data + pos)];
    int best_len = 0;
    uint32_t best_dist = 0;
    int chain = options_.max_chain;
    while (cand >= 0 && chain-- > 0) {
      const size_t dist = pos - static_cast<size_t>(cand);
      if (dist > options_.dict_size) break;
      if (best_len == 0 || data[cand + best_len] == data[pos + best_len]) {
        size_t l = 0;
        while (l < max_len && data[cand + l] == data[pos + l]) ++l;
        if (static_cast<int>(l) > best_len) {
          best_len = static_cast<int>(l);
          best_dist = static_cast<uint32_t>(dist);
          if (best_len >= options_.nice_length || l == max_len) break;
        }
      }
      cand = prev[cand];
    }
    return {best_len, best_dist};
  };

  int state = 0;
  uint32_t rep0 = 1;
  size_t pos = 0;
  while (pos < n) {
    // Repeat-distance match at rep0.
    int rep_len = 0;
    if (rep0 <= pos) {
      const size_t max_len = std::min<size_t>(kMaxMatch, n - pos);
      const uint8_t* src = data + pos - rep0;
      size_t l = 0;
      while (l < max_len && src[l] == data[pos + l]) ++l;
      rep_len = static_cast<int>(l);
    }

    auto [new_len, new_dist] = find_match(pos);
    if (new_len < kMinNewMatch) new_len = 0;

    // Prefer the rep match unless the fresh match is clearly longer
    // (a new distance costs far more bits than a rep flag).
    const bool use_rep = rep_len >= kMinMatch && rep_len + 2 >= new_len;
    const bool use_new = !use_rep && new_len >= kMinNewMatch;

    if (use_rep || use_new) {
      const int len = use_rep ? rep_len : new_len;
      rc.EncodeBit(&model.is_match[state], 1);
      if (use_rep) {
        rc.EncodeBit(&model.is_rep[state], 1);
        model.rep_len.Encode(&rc, static_cast<uint32_t>(len));
        state = 2;
      } else {
        rc.EncodeBit(&model.is_rep[state], 0);
        model.match_len.Encode(&rc, static_cast<uint32_t>(len));
        model.dist.Encode(&rc, new_dist);
        rep0 = new_dist;
        state = 1;
      }
      for (size_t k = 0; k < static_cast<size_t>(len); ++k) insert(pos + k);
      pos += len;
    } else {
      rc.EncodeBit(&model.is_match[state], 0);
      const int ctx = pos > 0 ? data[pos - 1] >> 5 : 0;
      EncodeBitTree(&rc, model.lit[ctx].data(), 8, data[pos]);
      state = 0;
      insert(pos);
      ++pos;
    }
  }
  rc.Flush();

  const uint32_t crc = Crc32(in);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
}

Status LzmaxCompressor::Decompress(std::string_view in,
                                   std::string* out) const {
  size_t pos = 0;
  if (in.empty() || static_cast<uint8_t>(in[0]) != kMagic) {
    return Status::Corruption("lzmax: bad magic");
  }
  ++pos;
  uint32_t total = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &total));
  if (in.size() < pos + 4) return Status::Corruption("lzmax: truncated");
  // Bound memory against corrupt headers (see gzipx).
  if (static_cast<uint64_t>(total) >
      in.size() * 4096ull + (1ull << 16)) {
    return Status::Corruption("lzmax: implausible uncompressed size");
  }

  const std::string_view payload = in.substr(pos, in.size() - pos - 4);
  Model model;
  RangeDecoder rc(payload);

  const size_t out_base = out->size();
  out->reserve(out_base + total);

  int state = 0;
  uint32_t rep0 = 1;
  // The range decoder may legitimately read a byte or two past the flushed
  // payload near the end of the stream; real truncation is caught by the
  // trailing CRC (or the bounds checks below), so overflow is not an error.
  while (out->size() - out_base < total) {
    if (rc.DecodeBit(&model.is_match[state]) == 0) {
      const size_t cur = out->size();
      const int ctx =
          cur > out_base ? static_cast<uint8_t>((*out)[cur - 1]) >> 5 : 0;
      out->push_back(static_cast<char>(
          DecodeBitTree(&rc, model.lit[ctx].data(), 8)));
      state = 0;
      continue;
    }
    uint32_t len;
    if (rc.DecodeBit(&model.is_rep[state]) == 1) {
      len = model.rep_len.Decode(&rc);
      state = 2;
    } else {
      len = model.match_len.Decode(&rc);
      rep0 = model.dist.Decode(&rc);
      state = 1;
    }
    if (rep0 == 0 || rep0 > out->size() - out_base) {
      return Status::Corruption("lzmax: distance out of range");
    }
    if (out->size() - out_base + len > total) {
      return Status::Corruption("lzmax: output overrun");
    }
    size_t src = out->size() - rep0;
    for (uint32_t k = 0; k < len; ++k) {
      out->push_back((*out)[src + k]);
    }
  }

  uint32_t want = 0;
  const size_t crc_off = in.size() - 4;
  for (int i = 0; i < 4; ++i) {
    want |=
        static_cast<uint32_t>(static_cast<uint8_t>(in[crc_off + i])) << (8 * i);
  }
  const uint32_t got = Crc32(out->data() + out_base, out->size() - out_base);
  if (want != got) return Status::Corruption("lzmax: crc mismatch");
  return Status::OK();
}

const Compressor* GetCompressor(CompressorId id) {
  static const GzipxCompressor* gzipx = new GzipxCompressor();
  static const LzmaxCompressor* lzmax = new LzmaxCompressor();
  switch (id) {
    case CompressorId::kGzipx:
      return gzipx;
    case CompressorId::kLzmax:
      return lzmax;
  }
  RLZ_CHECK(false) << "invalid compressor id";
  return nullptr;
}

}  // namespace rlz
