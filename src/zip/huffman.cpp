#include "zip/huffman.h"

#include <algorithm>
#include <queue>

namespace rlz {
namespace {

uint32_t ReverseBits(uint32_t v, int nbits) {
  uint32_t r = 0;
  for (int i = 0; i < nbits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace

std::vector<uint8_t> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                             int max_bits) {
  const size_t n = freqs.size();
  std::vector<uint8_t> lengths(n, 0);

  std::vector<size_t> used;
  for (size_t s = 0; s < n; ++s) {
    if (freqs[s] > 0) used.push_back(s);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }

  // Standard Huffman tree construction over the used symbols.
  struct Node {
    uint64_t freq;
    int32_t left;   // node index or -1
    int32_t right;  // node index, or symbol index when left == -1
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * used.size());
  using QEntry = std::pair<uint64_t, int32_t>;  // (freq, node index)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  for (size_t i = 0; i < used.size(); ++i) {
    nodes.push_back({freqs[used[i]], -1, static_cast<int32_t>(i)});
    pq.emplace(nodes.back().freq, static_cast<int32_t>(nodes.size() - 1));
  }
  while (pq.size() > 1) {
    const auto [fa, a] = pq.top();
    pq.pop();
    const auto [fb, b] = pq.top();
    pq.pop();
    nodes.push_back({fa + fb, a, b});
    pq.emplace(fa + fb, static_cast<int32_t>(nodes.size() - 1));
  }

  // Depth-first traversal to collect raw depths per used symbol.
  std::vector<int> depth(used.size(), 0);
  {
    std::vector<std::pair<int32_t, int>> stack;  // (node, depth)
    stack.emplace_back(static_cast<int32_t>(nodes.size() - 1), 0);
    while (!stack.empty()) {
      const auto [idx, d] = stack.back();
      stack.pop_back();
      const Node& nd = nodes[idx];
      if (nd.left == -1) {
        depth[nd.right] = std::max(d, 1);
      } else {
        stack.emplace_back(nd.left, d + 1);
        stack.emplace_back(nd.right, d + 1);
      }
    }
  }

  // Histogram of code lengths, clamped to max_bits.
  std::vector<int> num_codes(max_bits + 1, 0);
  for (int d : depth) ++num_codes[std::min(d, max_bits)];

  // Kraft repair (the miniz "enforce max code size" pass): while the
  // scaled Kraft sum exceeds 2^max_bits, demote one max-length code by
  // splitting a shorter one.
  uint64_t total = 0;
  for (int i = 1; i <= max_bits; ++i) {
    total += static_cast<uint64_t>(num_codes[i]) << (max_bits - i);
  }
  while (total > (1ULL << max_bits)) {
    RLZ_CHECK(num_codes[max_bits] > 0);
    --num_codes[max_bits];
    for (int i = max_bits - 1; i >= 1; --i) {
      if (num_codes[i] > 0) {
        --num_codes[i];
        num_codes[i + 1] += 2;
        break;
      }
    }
    --total;
  }

  // Assign lengths: most frequent symbol gets the shortest length.
  std::vector<size_t> order(used.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return freqs[used[a]] > freqs[used[b]];
  });
  size_t k = 0;
  for (int len = 1; len <= max_bits; ++len) {
    for (int c = 0; c < num_codes[len]; ++c) {
      RLZ_CHECK_LT(k, order.size());
      lengths[used[order[k++]]] = static_cast<uint8_t>(len);
    }
  }
  RLZ_CHECK_EQ(k, order.size());
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t>& lengths)
    : lengths_(lengths) {
  const size_t n = lengths.size();
  codes_.assign(n, 0);
  // Canonical code assignment: codes of equal length are consecutive,
  // ordered by symbol.
  std::vector<int> count(kMaxHuffmanBits + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) ++count[l];
  }
  std::vector<uint32_t> next(kMaxHuffmanBits + 2, 0);
  uint32_t code = 0;
  for (int l = 1; l <= kMaxHuffmanBits; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (size_t s = 0; s < n; ++s) {
    if (lengths[s] == 0) continue;
    codes_[s] =
        static_cast<uint16_t>(ReverseBits(next[lengths[s]]++, lengths[s]));
  }
}

Status HuffmanDecoder::Init(const std::vector<uint8_t>& lengths) {
  max_len_ = 0;
  for (uint8_t l : lengths) max_len_ = std::max<int>(max_len_, l);
  if (max_len_ == 0) {
    return Status::Corruption("huffman: no symbols");
  }
  if (max_len_ > kMaxHuffmanBits) {
    return Status::Corruption("huffman: code length too large");
  }
  // Validate the Kraft inequality before filling the table.
  uint64_t kraft = 0;
  for (uint8_t l : lengths) {
    if (l > 0) kraft += 1ULL << (max_len_ - l);
  }
  if (kraft > (1ULL << max_len_)) {
    return Status::Corruption("huffman: over-subscribed code");
  }

  // The root table covers codes up to root_bits_; longer codes resolve
  // through the canonical walk (DecodeSlow). Capping the table keeps Init
  // O(2^kRootBits + symbols) instead of O(2^max_len) — the difference
  // between 4 KB and 128 KB of table fill per decoded stream.
  root_bits_ = std::min(max_len_, kRootBits);
  table_.assign(1ULL << root_bits_, kInvalidEntry);

  uint32_t count[kMaxHuffmanBits + 1] = {};
  for (uint8_t l : lengths) {
    if (l > 0) ++count[l];
  }
  uint32_t next[kMaxHuffmanBits + 2] = {};
  uint32_t code = 0;
  for (int l = 1; l <= kMaxHuffmanBits; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
    first_code_[l] = code;
    code_count_[l] = count[l];
  }

  // Symbols with codes longer than the root table, in canonical order.
  uint32_t slow_symbols = 0;
  for (int l = root_bits_ + 1; l <= max_len_; ++l) {
    perm_offset_[l] = slow_symbols;
    slow_symbols += count[l];
  }
  perm_.assign(slow_symbols, 0);

  for (size_t s = 0; s < lengths.size(); ++s) {
    const int l = lengths[s];
    if (l == 0) continue;
    const uint32_t canon = next[l]++;
    if (l <= root_bits_) {
      const uint32_t rc = ReverseBits(canon, l);
      const uint32_t entry =
          (static_cast<uint32_t>(s) << 4) | static_cast<uint32_t>(l - 1);
      for (uint64_t fill = rc; fill < table_.size(); fill += 1ULL << l) {
        table_[fill] = entry;
      }
    } else {
      perm_[perm_offset_[l] + (canon - first_code_[l])] =
          static_cast<uint16_t>(s);
    }
  }
  return Status::OK();
}

int32_t HuffmanDecoder::DecodeSlow(BitReader* br, uint32_t window) const {
  if (max_len_ <= root_bits_) return -1;  // no longer codes exist
  // The stream is LSB-first with bit-reversed codes, so the first bit
  // read is the canonical code's most significant bit: the canonical
  // prefix is the bit-reverse of the peeked window.
  uint32_t code = 0;
  uint32_t w = window;
  for (int i = 0; i < root_bits_; ++i) {
    code = (code << 1) | (w & 1);
    w >>= 1;
  }
  br->SkipBits(root_bits_);
  for (int l = root_bits_ + 1; l <= max_len_; ++l) {
    code = (code << 1) | static_cast<uint32_t>(br->ReadBits(1));
    if (code >= first_code_[l] && code - first_code_[l] < code_count_[l]) {
      return perm_[perm_offset_[l] + (code - first_code_[l])];
    }
  }
  return -1;
}

}  // namespace rlz
