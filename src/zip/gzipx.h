#ifndef RLZ_ZIP_GZIPX_H_
#define RLZ_ZIP_GZIPX_H_

#include <cstdint>
#include <vector>

#include "zip/compressor.h"
#include "zip/huffman.h"

namespace rlz {

/// Reusable gzipx decode state: the per-block code-length buffers and
/// Huffman decoders (whose root tables hold their capacity across
/// streams). One per caller, like DecodeScratch — the serving hot path
/// keeps one per worker so per-document stream inflation allocates
/// nothing in steady state (DESIGN.md §9).
struct GzipxDecodeScratch {
  /// Literal/length code lengths of the block being decoded.
  std::vector<uint8_t> lit_lens;
  /// Distance code lengths of the block being decoded.
  std::vector<uint8_t> dist_lens;
  /// Literal/length decoder (table capacity reused across blocks).
  HuffmanDecoder lit;
  /// Distance decoder (table capacity reused across blocks).
  HuffmanDecoder dist;
};

/// Options for the gzipx compressor.
struct GzipxOptions {
  /// Maximum hash-chain probes per position. Higher = better matches,
  /// slower compression (zlib's "level" knob).
  int max_chain = 128;
  /// Matches at least this long stop the search early.
  int nice_length = 128;
  /// Enables one-step lazy matching (defer a match if the next position
  /// has a longer one), as zlib does at higher levels.
  bool lazy = true;
};

/// From-scratch DEFLATE-style compressor: LZ77 over a 32 KB sliding window
/// with a hash-chain match finder, followed by per-block semi-static
/// canonical Huffman coding of literal/length and distance symbols (the
/// deflate slot tables). Own container format, not RFC 1951 compatible.
///
/// This is the repository's stand-in for zlib (see DESIGN.md §4): same
/// algorithmic family and window size, so blocked-baseline behaviour
/// (compression vs block size, decode speed) matches zlib's shape.
class GzipxCompressor final : public Compressor {
 public:
  explicit GzipxCompressor(GzipxOptions options = {});

  std::string name() const override { return "gzipx"; }
  void Compress(std::string_view in, std::string* out) const override;
  Status Decompress(std::string_view in, std::string* out) const override {
    return Decompress(in, out, nullptr);
  }
  /// Decompress with reusable decode state: a non-null `scratch` lends
  /// the code-length buffers and decoder tables, removing every per-call
  /// allocation except the output itself. Output bytes are identical with
  /// or without scratch.
  Status Decompress(std::string_view in, std::string* out,
                    GzipxDecodeScratch* scratch) const;
  StatusOr<CompressorId> persistent_id() const override {
    return CompressorId::kGzipx;
  }

  static constexpr int kWindowBits = 15;
  static constexpr int kWindowSize = 1 << kWindowBits;  // 32 KB, as zlib
  static constexpr int kMinMatch = 3;
  static constexpr int kMaxMatch = 258;

 private:
  GzipxOptions options_;
};

}  // namespace rlz

#endif  // RLZ_ZIP_GZIPX_H_
