#ifndef RLZ_ZIP_LZMAX_H_
#define RLZ_ZIP_LZMAX_H_

#include <cstdint>

#include "zip/compressor.h"

namespace rlz {

/// Options for the lzmax compressor.
struct LzmaxOptions {
  /// Maximum match distance. Unlike gzipx's fixed 32 KB window, lzmax can
  /// reference the entire buffer seen so far (the property that makes
  /// lzma-with-big-blocks so strong in the paper's Tables 6/7/9).
  uint32_t dict_size = 1u << 26;  // 64 MB
  int max_chain = 256;
  int nice_length = 128;
};

/// From-scratch LZMA-family compressor: large-window LZ parsing (hash-chain
/// match finder plus repeat-distance matches) entropy-coded with an adaptive
/// binary range coder. Context modelling follows LZMA in miniature:
/// state-conditioned match/literal switch, previous-byte literal contexts,
/// low/mid/high length trees, and position-slot distance coding.
///
/// Stand-in for lzma in the paper's baselines (DESIGN.md §4): same family,
/// so it compresses markedly better than gzipx and decodes markedly slower,
/// preserving the shape of the paper's baseline comparison.
class LzmaxCompressor final : public Compressor {
 public:
  explicit LzmaxCompressor(LzmaxOptions options = {});

  std::string name() const override { return "lzmax"; }
  void Compress(std::string_view in, std::string* out) const override;
  Status Decompress(std::string_view in, std::string* out) const override;
  StatusOr<CompressorId> persistent_id() const override {
    return CompressorId::kLzmax;
  }

  static constexpr int kMinMatch = 2;       // rep matches may be this short
  static constexpr int kMinNewMatch = 4;    // hash-found matches
  static constexpr int kMaxMatch = 273;     // LZMA's length-coder ceiling

 private:
  LzmaxOptions options_;
};

}  // namespace rlz

#endif  // RLZ_ZIP_LZMAX_H_
