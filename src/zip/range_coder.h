#ifndef RLZ_ZIP_RANGE_CODER_H_
#define RLZ_ZIP_RANGE_CODER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/logging.h"

namespace rlz {

/// Probability of a zero bit, in 1/2048 units (the LZMA convention).
using BitProb = uint16_t;
inline constexpr BitProb kProbInit = 1024;
inline constexpr int kProbBits = 11;
inline constexpr int kProbMoveBits = 5;

/// Binary adaptive range encoder (LZMA-style carry-propagating
/// implementation). Bits are coded against adaptive probabilities that the
/// coder updates in place.
class RangeEncoder {
 public:
  explicit RangeEncoder(std::string* out) : out_(out) {}

  void EncodeBit(BitProb* prob, int bit) {
    const uint32_t bound = (range_ >> kProbBits) * *prob;
    if (bit == 0) {
      range_ = bound;
      *prob += (static_cast<BitProb>(1 << kProbBits) - *prob) >> kProbMoveBits;
    } else {
      low_ += bound;
      range_ -= bound;
      *prob -= *prob >> kProbMoveBits;
    }
    while (range_ < (1U << 24)) {
      range_ <<= 8;
      ShiftLow();
    }
  }

  /// Encodes `nbits` bits of `value` (MSB first) at probability 1/2.
  void EncodeDirect(uint32_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      range_ >>= 1;
      if ((value >> i) & 1) low_ += range_;
      while (range_ < (1U << 24)) {
        range_ <<= 8;
        ShiftLow();
      }
    }
  }

  /// Must be called exactly once; emits the final 5 bytes.
  void Flush() {
    for (int i = 0; i < 5; ++i) ShiftLow();
  }

 private:
  void ShiftLow() {
    if (static_cast<uint32_t>(low_) < 0xFF000000U || (low_ >> 32) != 0) {
      const uint8_t carry = static_cast<uint8_t>(low_ >> 32);
      uint8_t byte = cache_;
      do {
        out_->push_back(static_cast<char>(byte + carry));
        byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFULL) << 8;
  }

  std::string* out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFU;
  uint8_t cache_ = 0;
  int64_t cache_size_ = 1;
};

/// Matching decoder. Reading past the end yields zero bytes and sets
/// overflowed(); callers detect corruption via stream-size bookkeeping and
/// checksums.
class RangeDecoder {
 public:
  explicit RangeDecoder(std::string_view in) : in_(in) {
    // The first output byte of the encoder is always 0 (initial cache).
    ReadByte();
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | ReadByte();
  }

  int DecodeBit(BitProb* prob) {
    const uint32_t bound = (range_ >> kProbBits) * *prob;
    int bit;
    if (code_ < bound) {
      range_ = bound;
      *prob += (static_cast<BitProb>(1 << kProbBits) - *prob) >> kProbMoveBits;
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      *prob -= *prob >> kProbMoveBits;
      bit = 1;
    }
    while (range_ < (1U << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | ReadByte();
    }
    return bit;
  }

  uint32_t DecodeDirect(int nbits) {
    uint32_t v = 0;
    for (int i = 0; i < nbits; ++i) {
      range_ >>= 1;
      int bit = 0;
      if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
      }
      v = (v << 1) | bit;
      while (range_ < (1U << 24)) {
        range_ <<= 8;
        code_ = (code_ << 8) | ReadByte();
      }
    }
    return v;
  }

  bool overflowed() const { return overflowed_; }
  size_t bytes_consumed() const { return pos_; }

 private:
  uint8_t ReadByte() {
    if (pos_ < in_.size()) return static_cast<uint8_t>(in_[pos_++]);
    overflowed_ = true;
    return 0;
  }

  std::string_view in_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFFFFFFU;
  uint32_t code_ = 0;
  bool overflowed_ = false;
};

/// Bit-tree coder over 2^nbits symbols, MSB first (LZMA convention).
/// `probs` must hold 1 << nbits entries.
inline void EncodeBitTree(RangeEncoder* rc, BitProb* probs, int nbits,
                          uint32_t symbol) {
  uint32_t m = 1;
  for (int i = nbits - 1; i >= 0; --i) {
    const int b = (symbol >> i) & 1;
    rc->EncodeBit(&probs[m], b);
    m = (m << 1) | b;
  }
}

inline uint32_t DecodeBitTree(RangeDecoder* rc, BitProb* probs, int nbits) {
  uint32_t m = 1;
  for (int i = 0; i < nbits; ++i) {
    m = (m << 1) | rc->DecodeBit(&probs[m]);
  }
  return m - (1U << nbits);
}

}  // namespace rlz

#endif  // RLZ_ZIP_RANGE_CODER_H_
