#include "zip/bentley_mcilroy.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "codecs/int_codecs.h"
#include "util/logging.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

// Hash of `n` bytes at `p` (n <= 64): mix four unaligned 64-bit windows.
uint64_t HashBlock(const uint8_t* p, int n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  int i = 0;
  while (i + 8 <= n) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * 0x100000001B3ULL;
    h ^= h >> 29;
    i += 8;
  }
  while (i < n) {
    h = (h ^ p[i]) * 0x100000001B3ULL;
    ++i;
  }
  return h ^ (h >> 32);
}

// Token framing: repeat { vbyte lit_len, literals, vbyte copy_len,
// vbyte copy_dist-if-len>0 } until input is consumed; a group may have
// lit_len == 0 or copy_len == 0.
void EmitGroup(std::string_view literals, uint32_t copy_len,
               uint32_t copy_dist, std::string* out) {
  VByteCodec::Put(static_cast<uint32_t>(literals.size()), out);
  out->append(literals);
  VByteCodec::Put(copy_len, out);
  if (copy_len > 0) VByteCodec::Put(copy_dist, out);
}

}  // namespace

BmPreprocessor::BmPreprocessor(int block_size) : block_size_(block_size) {
  RLZ_CHECK(block_size >= 8 && block_size <= 64);
}

void BmPreprocessor::Encode(std::string_view in, std::string* out) const {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(in.data());
  const size_t n = in.size();
  const int b = block_size_;
  VByteCodec::Put(static_cast<uint32_t>(n), out);
  if (n == 0) return;

  // Fingerprints of aligned blocks seen so far: hash -> start position.
  std::unordered_map<uint64_t, uint32_t> table;
  table.reserve(n / b + 1);

  size_t lit_start = 0;
  size_t pos = 0;
  size_t next_aligned = 0;  // next aligned block to fingerprint

  auto insert_up_to = [&](size_t limit) {
    while (next_aligned + b <= limit) {
      table[HashBlock(data + next_aligned, b)] =
          static_cast<uint32_t>(next_aligned);
      next_aligned += b;
    }
  };

  while (pos + b <= n) {
    insert_up_to(pos);
    const uint64_t h = HashBlock(data + pos, b);
    auto it = table.find(h);
    bool matched = false;
    if (it != table.end()) {
      const size_t cand = it->second;
      if (cand + b <= pos && std::memcmp(data + cand, data + pos, b) == 0) {
        // Verified long-range repeat: extend forward as far as possible.
        size_t len = b;
        while (pos + len < n && cand + len < pos &&
               data[cand + len] == data[pos + len]) {
          ++len;
        }
        EmitGroup(in.substr(lit_start, pos - lit_start),
                  static_cast<uint32_t>(len),
                  static_cast<uint32_t>(pos - cand), out);
        pos += len;
        lit_start = pos;
        matched = true;
      }
    }
    if (!matched) ++pos;
  }
  if (lit_start < n) {
    EmitGroup(in.substr(lit_start), 0, 0, out);
  }
}

Status BmPreprocessor::Decode(std::string_view in, std::string* out) const {
  size_t pos = 0;
  uint32_t total = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &total));
  // Bound memory against corrupt headers (see GzipxCompressor).
  if (static_cast<uint64_t>(total) >
      in.size() * 4096ull + (1ull << 16)) {
    return Status::Corruption("bmdiff: implausible uncompressed size");
  }
  const size_t out_base = out->size();
  out->reserve(out_base + total);
  while (out->size() - out_base < total) {
    uint32_t lit_len = 0;
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &lit_len));
    if (pos + lit_len > in.size()) {
      return Status::Corruption("bmdiff: truncated literals");
    }
    if (out->size() - out_base + lit_len > total) {
      return Status::Corruption("bmdiff: literal overrun");
    }
    out->append(in.substr(pos, lit_len));
    pos += lit_len;
    uint32_t copy_len = 0;
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &copy_len));
    if (copy_len == 0) continue;
    uint32_t dist = 0;
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &dist));
    if (dist == 0 || dist > out->size() - out_base) {
      return Status::Corruption("bmdiff: bad copy distance");
    }
    if (out->size() - out_base + copy_len > total) {
      return Status::Corruption("bmdiff: copy overrun");
    }
    // Copies never overlap their source (cand + len <= pos at encode
    // time), but decode defensively byte by byte anyway.
    const size_t src = out->size() - dist;
    for (uint32_t k = 0; k < copy_len; ++k) {
      out->push_back((*out)[src + k]);
    }
  }
  if (out->size() - out_base != total) {
    return Status::Corruption("bmdiff: size mismatch");
  }
  return Status::OK();
}

BigtableCompressor::BigtableCompressor(int block_size) : pre_(block_size) {}

void BigtableCompressor::Compress(std::string_view in, std::string* out) const {
  std::string tokens;
  pre_.Encode(in, &tokens);
  GzipxCompressor gz;
  gz.Compress(tokens, out);
}

Status BigtableCompressor::Decompress(std::string_view in,
                                      std::string* out) const {
  std::string tokens;
  GzipxCompressor gz;
  RLZ_RETURN_IF_ERROR(gz.Decompress(in, &tokens));
  return pre_.Decode(tokens, out);
}

}  // namespace rlz
