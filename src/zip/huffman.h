#ifndef RLZ_ZIP_HUFFMAN_H_
#define RLZ_ZIP_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "util/bitio.h"
#include "util/status.h"

namespace rlz {

/// Maximum Huffman code length supported by the encoder/decoder tables.
inline constexpr int kMaxHuffmanBits = 15;

/// Computes length-limited Huffman code lengths for `freqs` (0 for unused
/// symbols). Uses a standard tree build followed by the zlib/miniz
/// Kraft-repair pass to enforce `max_bits`. Symbols with nonzero frequency
/// always receive a length in [1, max_bits]. If only one symbol is used it
/// gets length 1.
std::vector<uint8_t> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                             int max_bits = kMaxHuffmanBits);

/// Canonical Huffman encoder: assigns canonical codes from lengths and
/// writes bit-reversed codes through a BitWriter (LSB-first stream, the
/// deflate convention).
class HuffmanEncoder {
 public:
  /// `lengths[s]` is the code length of symbol s (0 = unused).
  explicit HuffmanEncoder(const std::vector<uint8_t>& lengths);

  void Write(BitWriter* bw, uint32_t symbol) const {
    RLZ_DCHECK_LT(symbol, codes_.size());
    RLZ_DCHECK(lengths_[symbol] > 0);
    bw->WriteBits(codes_[symbol], lengths_[symbol]);
  }

  uint8_t length(uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<uint16_t> codes_;  // bit-reversed canonical codes
  std::vector<uint8_t> lengths_;
};

/// Table-driven canonical Huffman decoder (single-level table of
/// 2^max_len entries).
class HuffmanDecoder {
 public:
  /// Builds the decode table. Returns Corruption if the lengths do not
  /// describe a prefix-complete (or under-full) code.
  Status Init(const std::vector<uint8_t>& lengths);

  /// Decodes one symbol. Returns a negative value on malformed input.
  int32_t Decode(BitReader* br) const {
    const uint32_t window =
        static_cast<uint32_t>(br->PeekBits(max_len_));
    const uint32_t entry = table_[window];
    const int len = static_cast<int>(entry & 0xF) + 1;
    if (entry == kInvalidEntry) return -1;
    br->SkipBits(len);
    return static_cast<int32_t>(entry >> 4);
  }

 private:
  static constexpr uint32_t kInvalidEntry = 0xFFFFFFFFU;
  std::vector<uint32_t> table_;  // (symbol << 4) | (len - 1)
  int max_len_ = 0;
};

}  // namespace rlz

#endif  // RLZ_ZIP_HUFFMAN_H_
