#ifndef RLZ_ZIP_HUFFMAN_H_
#define RLZ_ZIP_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "util/bitio.h"
#include "util/status.h"

namespace rlz {

/// Maximum Huffman code length supported by the encoder/decoder tables.
inline constexpr int kMaxHuffmanBits = 15;

/// Computes length-limited Huffman code lengths for `freqs` (0 for unused
/// symbols). Uses a standard tree build followed by the zlib/miniz
/// Kraft-repair pass to enforce `max_bits`. Symbols with nonzero frequency
/// always receive a length in [1, max_bits]. If only one symbol is used it
/// gets length 1.
std::vector<uint8_t> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                             int max_bits = kMaxHuffmanBits);

/// Canonical Huffman encoder: assigns canonical codes from lengths and
/// writes bit-reversed codes through a BitWriter (LSB-first stream, the
/// deflate convention).
class HuffmanEncoder {
 public:
  /// `lengths[s]` is the code length of symbol s (0 = unused).
  explicit HuffmanEncoder(const std::vector<uint8_t>& lengths);

  void Write(BitWriter* bw, uint32_t symbol) const {
    RLZ_DCHECK_LT(symbol, codes_.size());
    RLZ_DCHECK(lengths_[symbol] > 0);
    bw->WriteBits(codes_[symbol], lengths_[symbol]);
  }

  uint8_t length(uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<uint16_t> codes_;  // bit-reversed canonical codes
  std::vector<uint8_t> lengths_;
};

/// Table-driven canonical Huffman decoder. Codes of up to kRootBits bits
/// resolve through a single root-table lookup; longer (rare) codes fall
/// back to a canonical first-code walk. Capping the table at 2^kRootBits
/// entries keeps Init cheap — the serving hot path builds fresh tables
/// for every per-document factor stream, where a full 2^15-entry table
/// fill would dwarf the decode itself (DESIGN.md §9).
///
/// Init is re-callable: a reused decoder (GzipxDecodeScratch) keeps its
/// table capacity across streams, so steady-state decoding allocates
/// nothing.
class HuffmanDecoder {
 public:
  /// Root-table width in bits: codes at most this long decode with one
  /// table lookup (the overwhelming majority by construction — canonical
  /// codes this long cover symbols of probability down to ~2^-10).
  static constexpr int kRootBits = 10;

  /// Builds the decode table. Returns Corruption if the lengths do not
  /// describe a prefix-complete (or under-full) code.
  Status Init(const std::vector<uint8_t>& lengths);

  /// Decodes one symbol. Returns a negative value on malformed input.
  int32_t Decode(BitReader* br) const {
    const uint32_t window =
        static_cast<uint32_t>(br->PeekBits(root_bits_));
    const uint32_t entry = table_[window];
    if (entry != kInvalidEntry) {
      br->SkipBits(static_cast<int>(entry & 0xF) + 1);
      return static_cast<int32_t>(entry >> 4);
    }
    return DecodeSlow(br, window);
  }

  /// Decode for callers that already guaranteed kRootBits buffered bits
  /// via BitReader::EnsureBits — the refill branch is hoisted out of the
  /// symbol. (The rare long-code fallback may still refill.)
  int32_t DecodeNoRefill(BitReader* br) const {
    const uint32_t window =
        static_cast<uint32_t>(br->PeekBitsNoRefill(root_bits_));
    const uint32_t entry = table_[window];
    if (entry != kInvalidEntry) {
      br->SkipBits(static_cast<int>(entry & 0xF) + 1);
      return static_cast<int32_t>(entry >> 4);
    }
    return DecodeSlow(br, window);
  }

 private:
  static constexpr uint32_t kInvalidEntry = 0xFFFFFFFFU;

  // Resolves a code longer than root_bits_ (or reports corruption) by
  // walking the canonical first-code boundaries one bit at a time.
  int32_t DecodeSlow(BitReader* br, uint32_t window) const;

  std::vector<uint32_t> table_;  // (symbol << 4) | (len - 1)
  int root_bits_ = 0;            // min(max_len_, kRootBits)
  int max_len_ = 0;
  // Canonical walk state for codes longer than root_bits_: per length,
  // the first canonical code, the number of codes, and the offset of the
  // first symbol in perm_ (symbols in canonical order).
  uint32_t first_code_[kMaxHuffmanBits + 1] = {};
  uint32_t code_count_[kMaxHuffmanBits + 1] = {};
  uint32_t perm_offset_[kMaxHuffmanBits + 1] = {};
  std::vector<uint16_t> perm_;
};

}  // namespace rlz

#endif  // RLZ_ZIP_HUFFMAN_H_
