#ifndef RLZ_CODECS_INT_CODECS_H_
#define RLZ_CODECS_INT_CODECS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlz {

/// Identifier for an integer-stream codec. kVByte and kU32 are the paper's
/// "V" and "U" codes (§3.4); kSimple9 and kPForDelta are the codecs the
/// paper names as future work (§6, refs [1] and [36]).
enum class IntCodecId : uint8_t {
  kU32 = 0,
  kVByte = 1,
  kSimple9 = 2,
  kPForDelta = 3,
};

/// Returns the short name used in tables ("U", "V", "S9", "PFD").
const char* IntCodecName(IntCodecId id);

/// Parses a short name; returns InvalidArgument on unknown names.
StatusOr<IntCodecId> IntCodecFromName(std::string_view name);

/// Stateless codec for a stream of uint32 values. Implementations append
/// to `out` on encode and append decoded values to `values` on decode.
/// Decode must be given the exact value count written by Encode (callers
/// store counts in their own headers), and returns Corruption if the buffer
/// is truncated or malformed.
class IntCodec {
 public:
  virtual ~IntCodec() = default;

  virtual IntCodecId id() const = 0;

  /// Appends an encoding of `values` to `out`.
  virtual void Encode(const std::vector<uint32_t>& values,
                      std::string* out) const = 0;

  /// Decodes exactly `count` values from `in`, appending them to `values`.
  /// On success sets `*consumed` to the number of bytes read from `in`.
  virtual Status Decode(std::string_view in, size_t count,
                        std::vector<uint32_t>* values,
                        size_t* consumed) const = 0;
};

/// Returns the singleton codec instance for `id`. Never null.
const IntCodec* GetIntCodec(IntCodecId id);

/// Little-endian fixed-width 4-bytes-per-value code — the paper's "U".
class U32Codec final : public IntCodec {
 public:
  IntCodecId id() const override { return IntCodecId::kU32; }
  void Encode(const std::vector<uint32_t>& values,
              std::string* out) const override;
  Status Decode(std::string_view in, size_t count,
                std::vector<uint32_t>* values,
                size_t* consumed) const override;
};

/// Variable-byte code (7 data bits per byte, high bit = continuation) —
/// the paper's "V". Values below 128 take one byte, which §3.4 observes
/// covers the bulk of factor lengths.
class VByteCodec final : public IntCodec {
 public:
  IntCodecId id() const override { return IntCodecId::kVByte; }
  void Encode(const std::vector<uint32_t>& values,
              std::string* out) const override;
  Status Decode(std::string_view in, size_t count,
                std::vector<uint32_t>* values,
                size_t* consumed) const override;

  /// Appends one value (shared with other modules that vbyte small headers).
  static void Put(uint32_t v, std::string* out);

  /// Reads one value from in[*pos..); advances *pos. Returns Corruption on
  /// truncated input.
  static Status Get(std::string_view in, size_t* pos, uint32_t* v);
};

/// Simple-9: packs as many values as possible into each 32-bit word using
/// 9 selector configurations (Anh & Moffat, 2005). Values must fit in 28
/// bits; larger values fall back to an escape word.
class Simple9Codec final : public IntCodec {
 public:
  IntCodecId id() const override { return IntCodecId::kSimple9; }
  void Encode(const std::vector<uint32_t>& values,
              std::string* out) const override;
  Status Decode(std::string_view in, size_t count,
                std::vector<uint32_t>* values,
                size_t* consumed) const override;
};

/// PForDelta (Zukowski et al., 2006): blocks of 128 values bit-packed at a
/// width `b` chosen so ~90% of values fit; the rest are patched exceptions
/// stored verbatim after the block.
class PForDeltaCodec final : public IntCodec {
 public:
  IntCodecId id() const override { return IntCodecId::kPForDelta; }
  void Encode(const std::vector<uint32_t>& values,
              std::string* out) const override;
  Status Decode(std::string_view in, size_t count,
                std::vector<uint32_t>* values,
                size_t* consumed) const override;

  static constexpr size_t kBlockSize = 128;
};

}  // namespace rlz

#endif  // RLZ_CODECS_INT_CODECS_H_
