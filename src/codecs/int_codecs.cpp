#include "codecs/int_codecs.h"

#include <algorithm>
#include <array>

#include "util/bitio.h"

namespace rlz {

const char* IntCodecName(IntCodecId id) {
  switch (id) {
    case IntCodecId::kU32:
      return "U";
    case IntCodecId::kVByte:
      return "V";
    case IntCodecId::kSimple9:
      return "S9";
    case IntCodecId::kPForDelta:
      return "PFD";
  }
  return "?";
}

StatusOr<IntCodecId> IntCodecFromName(std::string_view name) {
  if (name == "U") return IntCodecId::kU32;
  if (name == "V") return IntCodecId::kVByte;
  if (name == "S9") return IntCodecId::kSimple9;
  if (name == "PFD") return IntCodecId::kPForDelta;
  return Status::InvalidArgument("unknown int codec: " + std::string(name));
}

const IntCodec* GetIntCodec(IntCodecId id) {
  static const U32Codec* u32 = new U32Codec();
  static const VByteCodec* vbyte = new VByteCodec();
  static const Simple9Codec* s9 = new Simple9Codec();
  static const PForDeltaCodec* pfd = new PForDeltaCodec();
  switch (id) {
    case IntCodecId::kU32:
      return u32;
    case IntCodecId::kVByte:
      return vbyte;
    case IntCodecId::kSimple9:
      return s9;
    case IntCodecId::kPForDelta:
      return pfd;
  }
  RLZ_CHECK(false) << "invalid codec id " << static_cast<int>(id);
  return nullptr;
}

// ---------------------------------------------------------------------------
// U32
// ---------------------------------------------------------------------------

void U32Codec::Encode(const std::vector<uint32_t>& values,
                      std::string* out) const {
  out->reserve(out->size() + values.size() * 4);
  for (uint32_t v : values) {
    out->push_back(static_cast<char>(v & 0xFF));
    out->push_back(static_cast<char>((v >> 8) & 0xFF));
    out->push_back(static_cast<char>((v >> 16) & 0xFF));
    out->push_back(static_cast<char>((v >> 24) & 0xFF));
  }
}

Status U32Codec::Decode(std::string_view in, size_t count,
                        std::vector<uint32_t>* values,
                        size_t* consumed) const {
  if (in.size() < count * 4) {
    return Status::Corruption("u32 stream truncated");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data());
  values->reserve(values->size() + count);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t v = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
    values->push_back(v);
    p += 4;
  }
  *consumed = count * 4;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VByte
// ---------------------------------------------------------------------------

void VByteCodec::Put(uint32_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status VByteCodec::Get(std::string_view in, size_t* pos, uint32_t* v) {
  uint32_t result = 0;
  int shift = 0;
  while (true) {
    if (*pos >= in.size()) return Status::Corruption("vbyte truncated");
    if (shift > 28) return Status::Corruption("vbyte overlong");
    const uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = result;
  return Status::OK();
}

void VByteCodec::Encode(const std::vector<uint32_t>& values,
                        std::string* out) const {
  for (uint32_t v : values) Put(v, out);
}

Status VByteCodec::Decode(std::string_view in, size_t count,
                          std::vector<uint32_t>* values,
                          size_t* consumed) const {
  size_t pos = 0;
  // The count comes from an untrusted header; every value occupies at
  // least one byte, so clamping the reserve to the buffer size keeps a
  // crafted count from forcing a huge allocation (the parse loop below
  // fails on truncation long before the vector would grow that far).
  values->reserve(values->size() + std::min(count, in.size()));
  for (size_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    RLZ_RETURN_IF_ERROR(Get(in, &pos, &v));
    values->push_back(v);
  }
  *consumed = pos;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Simple9
// ---------------------------------------------------------------------------

namespace {

// (count, bits) per selector; count*bits <= 28.
constexpr std::array<std::pair<int, int>, 9> kS9Configs = {{
    {28, 1},
    {14, 2},
    {9, 3},
    {7, 4},
    {5, 5},
    {4, 7},
    {3, 9},
    {2, 14},
    {1, 28},
}};

constexpr uint32_t kS9Escape = 9;  // selector for one full 32-bit value

void PutWordLE(uint32_t w, std::string* out) {
  out->push_back(static_cast<char>(w & 0xFF));
  out->push_back(static_cast<char>((w >> 8) & 0xFF));
  out->push_back(static_cast<char>((w >> 16) & 0xFF));
  out->push_back(static_cast<char>((w >> 24) & 0xFF));
}

Status GetWordLE(std::string_view in, size_t* pos, uint32_t* w) {
  if (*pos + 4 > in.size()) return Status::Corruption("simple9 truncated");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data()) + *pos;
  *w = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return Status::OK();
}

}  // namespace

void Simple9Codec::Encode(const std::vector<uint32_t>& values,
                          std::string* out) const {
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    if (values[i] >= (1U << 28)) {
      // Escape: selector 9, then a full word.
      PutWordLE(kS9Escape << 28, out);
      PutWordLE(values[i], out);
      ++i;
      continue;
    }
    // Pick the densest selector whose values all fit.
    for (uint32_t sel = 0; sel < kS9Configs.size(); ++sel) {
      const auto [count, bits] = kS9Configs[sel];
      const size_t take = std::min(static_cast<size_t>(count), n - i);
      bool fits = take == static_cast<size_t>(count) ||
                  sel + 1 == kS9Configs.size();
      // A partially filled word is only allowed with the last-resort
      // selector that still fits all remaining values; otherwise try to
      // fill the word completely.
      const uint32_t limit = (bits >= 32) ? ~0U : ((1U << bits) - 1);
      for (size_t k = 0; k < take && fits; ++k) {
        if (values[i + k] > limit) fits = false;
      }
      if (!fits) continue;
      // Check full count fits when available; if fewer values remain, pad
      // with zeros (decoder knows the true count).
      uint32_t word = sel << 28;
      for (size_t k = 0; k < take; ++k) {
        word |= values[i + k] << (k * bits);
      }
      PutWordLE(word, out);
      i += take;
      break;
    }
  }
}

Status Simple9Codec::Decode(std::string_view in, size_t count,
                            std::vector<uint32_t>* values,
                            size_t* consumed) const {
  size_t pos = 0;
  size_t produced = 0;
  // Untrusted count: at most 28 values per 4-byte word, so clamp the
  // reserve to what the buffer could actually hold.
  values->reserve(values->size() +
                  std::min(count, (in.size() / 4 + 1) * 28));
  while (produced < count) {
    uint32_t word = 0;
    RLZ_RETURN_IF_ERROR(GetWordLE(in, &pos, &word));
    const uint32_t sel = word >> 28;
    if (sel == kS9Escape) {
      uint32_t v = 0;
      RLZ_RETURN_IF_ERROR(GetWordLE(in, &pos, &v));
      values->push_back(v);
      ++produced;
      continue;
    }
    if (sel >= kS9Configs.size()) {
      return Status::Corruption("simple9 bad selector");
    }
    const auto [cnt, bits] = kS9Configs[sel];
    const uint32_t mask = (bits >= 32) ? ~0U : ((1U << bits) - 1);
    const size_t take =
        std::min(static_cast<size_t>(cnt), count - produced);
    for (size_t k = 0; k < take; ++k) {
      values->push_back((word >> (k * bits)) & mask);
    }
    produced += take;
  }
  *consumed = pos;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PForDelta
// ---------------------------------------------------------------------------

namespace {

int BitsFor(uint32_t v) {
  int b = 0;
  while (v) {
    ++b;
    v >>= 1;
  }
  return b;
}

}  // namespace

void PForDeltaCodec::Encode(const std::vector<uint32_t>& values,
                            std::string* out) const {
  const size_t n = values.size();
  for (size_t start = 0; start < n || (n == 0 && start == 0);
       start += kBlockSize) {
    if (n == 0) break;
    const size_t len = std::min(kBlockSize, n - start);
    // Choose width b covering ~90% of values in this block.
    std::array<uint32_t, kBlockSize> tmp{};
    for (size_t i = 0; i < len; ++i) tmp[i] = values[start + i];
    std::array<uint32_t, kBlockSize> sorted = tmp;
    std::sort(sorted.begin(), sorted.begin() + len);
    const size_t idx90 = (len * 9) / 10 == 0 ? len - 1 : (len * 9) / 10 - 1;
    int b = BitsFor(sorted[idx90]);
    if (b == 0) b = 1;
    if (b > 32) b = 32;

    // Exceptions: values that don't fit in b bits; store their slot index
    // and full value after the packed block.
    std::vector<uint8_t> exc_idx;
    std::vector<uint32_t> exc_val;
    const uint32_t limit = (b >= 32) ? ~0U : ((1U << b) - 1);
    for (size_t i = 0; i < len; ++i) {
      if (tmp[i] > limit) {
        exc_idx.push_back(static_cast<uint8_t>(i));
        exc_val.push_back(tmp[i]);
      }
    }

    // Block header: width (1 byte), exception count (1 byte).
    out->push_back(static_cast<char>(b));
    out->push_back(static_cast<char>(exc_idx.size()));

    BitWriter bw(out);
    for (size_t i = 0; i < len; ++i) {
      bw.WriteBits(tmp[i] & limit, b);
    }
    bw.Finish();

    for (size_t e = 0; e < exc_idx.size(); ++e) {
      out->push_back(static_cast<char>(exc_idx[e]));
      VByteCodec::Put(exc_val[e], out);
    }
  }
}

Status PForDeltaCodec::Decode(std::string_view in, size_t count,
                              std::vector<uint32_t>* values,
                              size_t* consumed) const {
  size_t pos = 0;
  size_t produced = 0;
  // Untrusted count: a 128-value block occupies at least 2 header bytes
  // plus 16 packed bytes, so clamp the reserve to the buffer's capacity.
  values->reserve(values->size() +
                  std::min(count, (in.size() / 18 + 1) * kBlockSize));
  while (produced < count) {
    if (pos + 2 > in.size()) return Status::Corruption("pfd truncated header");
    const int b = static_cast<uint8_t>(in[pos]);
    const size_t num_exc = static_cast<uint8_t>(in[pos + 1]);
    pos += 2;
    if (b < 1 || b > 32) return Status::Corruption("pfd bad width");
    const size_t len = std::min(kBlockSize, count - produced);
    const size_t packed_bytes = (len * b + 7) / 8;
    if (pos + packed_bytes > in.size()) {
      return Status::Corruption("pfd truncated block");
    }
    BitReader br(reinterpret_cast<const uint8_t*>(in.data()) + pos,
                 packed_bytes);
    const size_t base = values->size();
    for (size_t i = 0; i < len; ++i) {
      values->push_back(static_cast<uint32_t>(br.ReadBits(b)));
    }
    pos += packed_bytes;
    for (size_t e = 0; e < num_exc; ++e) {
      if (pos >= in.size()) return Status::Corruption("pfd truncated exc");
      const size_t idx = static_cast<uint8_t>(in[pos++]);
      if (idx >= len) return Status::Corruption("pfd bad exception index");
      uint32_t v = 0;
      RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &v));
      (*values)[base + idx] = v;
    }
    produced += len;
  }
  *consumed = pos;
  return Status::OK();
}

}  // namespace rlz
