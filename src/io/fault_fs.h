#ifndef RLZ_IO_FAULT_FS_H_
#define RLZ_IO_FAULT_FS_H_

/// \file
/// An in-memory FileSystem with crash injection at fsync boundaries —
/// the engine of the durability test suite (DESIGN.md §12,
/// tests/recovery_test.cpp).
///
/// FaultFs models the durability rules a journaling POSIX file system
/// actually provides, conservatively:
///
///   - WritableFile::Sync makes the file's *contents up to that point*
///     durable; bytes appended after the last Sync are lost on crash.
///   - Namespace operations (Create, Rename, Remove) take effect
///     immediately for the running process but survive a crash only
///     after SyncDir on the parent directory.
///
/// A test arms a crash at the K-th durability barrier (any Sync or
/// SyncDir, counted together). The `before` variant drops the barrier —
/// it fails without syncing, as if the process died entering fsync; the
/// `after` variant completes the barrier and then kills everything that
/// follows. Every subsequent operation returns IOError("injected
/// crash"). DurableClone() then reconstructs exactly what a fresh
/// process would find on disk: durable directory entries only, each file
/// truncated to its last-synced length. Running recovery against the
/// clone at every K in [1, sync_count()] is the "kill at every fsync
/// boundary" sweep.

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "io/file_system.h"

namespace rlz {

/// See the file comment. All operations are thread-safe behind one
/// mutex; the crash counter spans every file and directory.
class FaultFs final : public FileSystem {
 public:
  FaultFs();
  ~FaultFs() override;

  // --- FileSystem -------------------------------------------------------
  StatusOr<std::string> Read(const std::string& path) const override;
  StatusOr<std::unique_ptr<WritableFile>> Create(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  StatusOr<std::vector<std::string>> List(
      const std::string& dir) const override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) const override;

  // --- Fault injection --------------------------------------------------

  /// Arms a crash at the `at_sync`-th durability barrier from now
  /// (1-based, counting WritableFile::Sync and SyncDir together). With
  /// `before` the barrier itself fails and syncs nothing; without it the
  /// barrier completes and the crash hits immediately after. Re-arming
  /// resets the counter.
  void ArmCrash(int at_sync, bool before);

  /// True once an armed crash has triggered (every later call fails).
  bool crashed() const;

  /// Durability barriers performed since construction (or the last
  /// ArmCrash). Run the workload once unarmed to learn the sweep bound.
  int sync_count() const;

  /// The file system a fresh process would see after the crash: durable
  /// namespace entries only, contents truncated to their last-synced
  /// prefix. The clone starts unarmed and uncrashed — recovery runs
  /// against it like a normal reopen. Also valid before any crash (the
  /// durable view of the current state).
  std::shared_ptr<FaultFs> DurableClone() const;

  /// Last-synced contents of `path` in the durable view (what
  /// DurableClone would expose). IOError if not durably present.
  StatusOr<std::string> DurableRead(const std::string& path) const;

 private:
  friend class FaultWritableFile;

  // One file's storage. `content` is what the running process sees;
  // `synced_bytes` is the durable prefix.
  struct Node {
    std::string content;
    size_t synced_bytes = 0;
  };

  // A namespace change not yet covered by SyncDir on its parent.
  struct PendingOp {
    enum class Kind { kCreate, kRename, kRemove } kind;
    std::string from;  // created/removed path, or rename source
    std::string to;    // rename target (kRename only)
    std::shared_ptr<Node> node;
  };

  // Both return the injected-crash error if a crash has triggered.
  Status CheckAliveLocked() const;
  // Counts one durability barrier; returns false (and the error) if an
  // armed crash fires *before* the barrier may take effect.
  Status BarrierLocked();

  Status SyncNodeLocked(const std::shared_ptr<Node>& node);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Node>> live_;     // process view
  std::map<std::string, std::shared_ptr<Node>> durable_;  // post-crash view
  std::set<std::string> dirs_;  // directories (durable immediately)
  std::vector<PendingOp> pending_;
  int sync_count_ = 0;
  int crash_at_ = 0;  // 0 = unarmed
  bool crash_before_ = false;
  bool crashed_ = false;
};

}  // namespace rlz

#endif  // RLZ_IO_FAULT_FS_H_
