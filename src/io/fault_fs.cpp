#include "io/fault_fs.h"

#include <utility>

namespace rlz {
namespace {

// Parent directory of `path` ("" for a bare name), matching SplitPath
// conventions elsewhere: everything before the last '/'.
std::string ParentOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string BaseOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status InjectedCrash() {
  return Status::IOError("injected crash: file system is dead");
}

}  // namespace

// The handle keeps the FaultFs alive; every operation re-checks the
// crash flag so a handle opened before the crash dies with it.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::shared_ptr<FaultFs> fs,
                    std::shared_ptr<FaultFs::Node> node)
      : fs_(std::move(fs)), node_(std::move(node)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    RLZ_RETURN_IF_ERROR(fs_->CheckAliveLocked());
    if (closed_) return Status::IOError("fault fs: append on closed file");
    node_->content.append(data);
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    RLZ_RETURN_IF_ERROR(fs_->CheckAliveLocked());
    if (closed_) return Status::IOError("fault fs: sync on closed file");
    return fs_->SyncNodeLocked(node_);
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  std::shared_ptr<FaultFs> fs_;
  std::shared_ptr<FaultFs::Node> node_;
  bool closed_ = false;
};

FaultFs::FaultFs() { dirs_.insert(""); }

FaultFs::~FaultFs() = default;

Status FaultFs::CheckAliveLocked() const {
  if (crashed_) return InjectedCrash();
  return Status::OK();
}

Status FaultFs::BarrierLocked() {
  ++sync_count_;
  if (crash_at_ > 0 && sync_count_ == crash_at_) {
    crashed_ = true;
    // The `before` variant dies entering the barrier: nothing syncs and
    // the caller sees the failure. The `after` variant completes this
    // one barrier (the caller applies its effects and returns OK) and
    // everything later finds the fs dead.
    if (crash_before_) return InjectedCrash();
  }
  return Status::OK();
}

Status FaultFs::SyncNodeLocked(const std::shared_ptr<Node>& node) {
  RLZ_RETURN_IF_ERROR(BarrierLocked());
  node->synced_bytes = node->content.size();
  return Status::OK();
}

StatusOr<std::string> FaultFs::Read(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::IOError("fault fs: cannot open " + path);
  }
  return it->second->content;
}

StatusOr<std::unique_ptr<WritableFile>> FaultFs::Create(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  if (dirs_.count(ParentOf(path)) == 0) {
    return Status::IOError("fault fs: no such directory for " + path);
  }
  auto node = std::make_shared<Node>();
  live_[path] = node;
  pending_.push_back({PendingOp::Kind::kCreate, path, "", node});
  // shared_from_this is not worth the base-class gymnastics here: the
  // handle only needs the fs to outlive it, which the aliasing
  // constructor against `this`'s members cannot express — tests hold the
  // FaultFs in a shared_ptr, so hand the handle a non-owning alias.
  return std::unique_ptr<WritableFile>(new FaultWritableFile(
      std::shared_ptr<FaultFs>(std::shared_ptr<FaultFs>(), this), node));
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  auto it = live_.find(from);
  if (it == live_.end()) {
    return Status::IOError("fault fs: cannot rename missing " + from);
  }
  std::shared_ptr<Node> node = it->second;
  live_.erase(it);
  live_[to] = node;
  pending_.push_back({PendingOp::Kind::kRename, from, to, node});
  return Status::OK();
}

Status FaultFs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  if (live_.erase(path) == 0) {
    return Status::IOError("fault fs: cannot remove missing " + path);
  }
  pending_.push_back({PendingOp::Kind::kRemove, path, "", nullptr});
  return Status::OK();
}

StatusOr<std::vector<std::string>> FaultFs::List(
    const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  if (dirs_.count(dir) == 0) {
    return Status::IOError("fault fs: cannot list " + dir);
  }
  std::vector<std::string> names;
  for (const auto& [path, node] : live_) {
    if (ParentOf(path) == dir) names.push_back(BaseOf(path));
  }
  return names;
}

Status FaultFs::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  // Directory creation is modeled as immediately durable: the protocols
  // under test create their directory once, before any barrier matters.
  dirs_.insert(dir);
  return Status::OK();
}

Status FaultFs::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  RLZ_RETURN_IF_ERROR(CheckAliveLocked());
  RLZ_RETURN_IF_ERROR(BarrierLocked());
  // Apply, in order, every pending namespace op whose parent is `dir`.
  std::vector<PendingOp> keep;
  keep.reserve(pending_.size());
  for (PendingOp& op : pending_) {
    const std::string& anchor =
        op.kind == PendingOp::Kind::kRename ? op.to : op.from;
    if (ParentOf(anchor) != dir) {
      keep.push_back(std::move(op));
      continue;
    }
    switch (op.kind) {
      case PendingOp::Kind::kCreate:
        durable_[op.from] = op.node;
        break;
      case PendingOp::Kind::kRename:
        durable_.erase(op.from);
        durable_[op.to] = op.node;
        break;
      case PendingOp::Kind::kRemove:
        durable_.erase(op.from);
        break;
    }
  }
  pending_ = std::move(keep);
  return Status::OK();
}

bool FaultFs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return false;
  return live_.count(path) > 0 || dirs_.count(path) > 0;
}

void FaultFs::ArmCrash(int at_sync, bool before) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = at_sync;
  crash_before_ = before;
  sync_count_ = 0;
  crashed_ = false;
}

bool FaultFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int FaultFs::sync_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_count_;
}

std::shared_ptr<FaultFs> FaultFs::DurableClone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto clone = std::make_shared<FaultFs>();
  clone->dirs_ = dirs_;
  for (const auto& [path, node] : durable_) {
    auto copy = std::make_shared<Node>();
    copy->content = node->content.substr(0, node->synced_bytes);
    copy->synced_bytes = copy->content.size();
    clone->live_[path] = copy;
    clone->durable_[path] = copy;
  }
  return clone;
}

StatusOr<std::string> FaultFs::DurableRead(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = durable_.find(path);
  if (it == durable_.end()) {
    return Status::IOError("fault fs: " + path + " is not durable");
  }
  return it->second->content.substr(0, it->second->synced_bytes);
}

}  // namespace rlz
