#ifndef RLZ_IO_SIM_DISK_H_
#define RLZ_IO_SIM_DISK_H_

#include <cstdint>

namespace rlz {

/// Parameters of the disk model, defaulted to the paper's hardware: a
/// 7200 RPM SATA drive (Seagate, 32 MB cache) — ~8 ms average access
/// (seek + rotational latency) and ~100 MB/s sequential transfer.
struct SimDiskOptions {
  double seek_ms = 8.0;
  double bandwidth_mb_per_s = 100.0;
  /// A read starting within this many bytes after the previous read's end
  /// is treated as sequential (readahead / same track) and pays no seek.
  uint64_t sequential_gap = 256 * 1024;
};

/// Accounting-only disk model. The paper's retrieval experiments drop the
/// OS page cache and are dominated by seek latency on query-log access
/// patterns; on a modern machine with the collection in page cache those
/// costs vanish, so the benchmark harness charges every archive read to
/// this model and reports docs/sec in simulated wall time (CPU time for
/// decoding is added by the harness). See DESIGN.md §4.
class SimDisk {
 public:
  explicit SimDisk(SimDiskOptions options = {}) : options_(options) {}

  /// Records a read of `size` bytes at byte `offset`; returns the simulated
  /// seconds this read costs.
  double Read(uint64_t offset, uint64_t size) {
    double seconds = 0.0;
    const bool sequential =
        has_position_ && offset >= pos_ && offset - pos_ <= options_.sequential_gap;
    if (!sequential) {
      seconds += options_.seek_ms * 1e-3;
      ++seeks_;
    }
    seconds += static_cast<double>(size) /
               (options_.bandwidth_mb_per_s * 1024.0 * 1024.0);
    pos_ = offset + size;
    has_position_ = true;
    total_seconds_ += seconds;
    total_bytes_ += size;
    return seconds;
  }

  void Reset() {
    total_seconds_ = 0.0;
    total_bytes_ = 0;
    seeks_ = 0;
    has_position_ = false;
    pos_ = 0;
  }

  double total_seconds() const { return total_seconds_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t seeks() const { return seeks_; }
  const SimDiskOptions& options() const { return options_; }

 private:
  SimDiskOptions options_;
  double total_seconds_ = 0.0;
  uint64_t total_bytes_ = 0;
  uint64_t seeks_ = 0;
  bool has_position_ = false;
  uint64_t pos_ = 0;
};

}  // namespace rlz

#endif  // RLZ_IO_SIM_DISK_H_
