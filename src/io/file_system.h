#ifndef RLZ_IO_FILE_SYSTEM_H_
#define RLZ_IO_FILE_SYSTEM_H_

/// \file
/// The file-system abstraction behind the durability layer (DESIGN.md
/// §12).
///
/// Everything the WAL and checkpoint protocol writes goes through a
/// FileSystem, never through bare fopen/fwrite, for two reasons. First,
/// durability is explicit: WritableFile::Sync is the fsync barrier an
/// acknowledged write must cross, and SyncDir is the directory barrier
/// that makes creates/renames/removes survive a crash — the distinction
/// POSIX actually draws, and the one the checkpoint rename protocol
/// depends on. Second, fault injection: FaultFs (io/fault_fs.h)
/// implements this interface in memory and can kill the writer at any
/// fsync boundary, which is what makes the crash-recovery suite
/// (tests/recovery_test.cpp) deterministic instead of a fork-and-kill
/// lottery.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlz {

/// A sequential append-only file handle. Append buffers through the OS;
/// nothing is durable until Sync returns OK. Close without Sync is a
/// valid way to write data whose loss is acceptable (the caller decides
/// where the durability barriers go).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of file.
  virtual Status Append(std::string_view data) = 0;
  /// Durability barrier: everything appended so far survives a crash
  /// once this returns OK (fdatasync semantics — file *contents*; the
  /// file's directory entry needs FileSystem::SyncDir).
  virtual Status Sync() = 0;
  /// Closes the handle. Idempotent; called by the destructor if needed.
  virtual Status Close() = 0;
};

/// File operations the durability layer needs, in the smallest interface
/// that still expresses real crash semantics. Paths are plain strings;
/// directories are created with CreateDir and listed non-recursively.
///
/// Thread-safety: implementations must allow concurrent calls on
/// distinct files; callers serialize access to any single WritableFile.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Reads an entire file.
  virtual StatusOr<std::string> Read(const std::string& path) const = 0;
  /// Creates (or truncates) `path` for appending. The new directory
  /// entry is durable only after SyncDir on the parent.
  virtual StatusOr<std::unique_ptr<WritableFile>> Create(
      const std::string& path) = 0;
  /// Atomically replaces `to` with `from`. Durable after SyncDir on the
  /// parent directory — the checkpoint CURRENT-swap barrier.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Removes a file. Durable after SyncDir on the parent.
  virtual Status Remove(const std::string& path) = 0;
  /// Names (not paths) of the entries in `dir`, unordered.
  virtual StatusOr<std::vector<std::string>> List(
      const std::string& dir) const = 0;
  /// Creates `dir` (parents must exist). OK if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;
  /// Directory durability barrier: entries created, renamed, or removed
  /// in `dir` survive a crash once this returns OK.
  virtual Status SyncDir(const std::string& dir) = 0;
  /// True if `path` names an existing file or directory.
  virtual bool Exists(const std::string& path) const = 0;

  /// Create + Append + Sync + Close in one call — the idiom for writing
  /// a complete file behind one durability barrier (checkpoint shards,
  /// manifests). The directory entry still needs SyncDir.
  Status WriteFileSynced(const std::string& path, std::string_view data);
};

/// The process-wide POSIX file system (open/write/fsync/rename). The
/// returned pointer is a shared singleton; passing nullptr as a
/// FileSystem argument anywhere in the durability layer means this.
std::shared_ptr<FileSystem> DefaultFileSystem();

}  // namespace rlz

#endif  // RLZ_IO_FILE_SYSTEM_H_
