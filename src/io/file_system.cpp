#include "io/file_system.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rlz {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { (void)Close(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError(path_ + ": append on closed file");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(Errno("cannot write", path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError(path_ + ": sync on closed file");
    if (::fsync(fd_) != 0) {
      return Status::IOError(Errno("cannot fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IOError(Errno("cannot close", path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem final : public FileSystem {
 public:
  StatusOr<std::string> Read(const std::string& path) const override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::IOError(Errno("cannot open", path));
    std::string data;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = Status::IOError(Errno("cannot read", path));
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      data.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return data;
  }

  StatusOr<std::unique_ptr<WritableFile>> Create(
      const std::string& path) override {
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return Status::IOError(Errno("cannot create", path));
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(Errno("cannot rename", from + " -> " + to));
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(Errno("cannot remove", path));
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> List(
      const std::string& dir) const override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Status::IOError(Errno("cannot list", dir));
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(Errno("cannot create directory", dir));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::IOError(Errno("cannot open directory", dir));
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::IOError(Errno("cannot fsync directory", dir));
    return Status::OK();
  }

  bool Exists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

Status FileSystem::WriteFileSynced(const std::string& path,
                                   std::string_view data) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file, Create(path));
  RLZ_RETURN_IF_ERROR(file->Append(data));
  RLZ_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

std::shared_ptr<FileSystem> DefaultFileSystem() {
  static std::shared_ptr<FileSystem>* fs =
      new std::shared_ptr<FileSystem>(new PosixFileSystem());
  return *fs;
}

}  // namespace rlz
