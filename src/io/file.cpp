#include "io/file.h"

#include <cstdio>

namespace rlz {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) return Status::IOError("short read on " + path);
  return data;
}

Status WriteFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IOError("short write on " + path);
  }
  return Status::OK();
}

}  // namespace rlz
