#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rlz {

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError("cannot stat " + path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the inode
  if (data == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " +
                           std::strerror(errno));
  }
  return MmapFile(data, size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::Advise(Access access) const {
  if (data_ == nullptr) return;
  int advice = MADV_NORMAL;
  switch (access) {
    case Access::kNormal:
      advice = MADV_NORMAL;
      break;
    case Access::kSequential:
      advice = MADV_SEQUENTIAL;
      break;
    case Access::kRandom:
      advice = MADV_RANDOM;
      break;
    case Access::kWillNeed:
      advice = MADV_WILLNEED;
      break;
  }
  (void)::madvise(data_, size_, advice);
}

}  // namespace rlz
