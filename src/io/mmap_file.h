#ifndef RLZ_IO_MMAP_FILE_H_
#define RLZ_IO_MMAP_FILE_H_

/// \file
/// Read-only memory-mapped files for zero-copy archive opens.
///
/// PR 4 made every archive loader borrow its bytes from a shared backing
/// buffer instead of copying; until now that buffer was always a heap
/// std::string filled by read(2). MmapFile extends the same zero-copy
/// story to the page cache: the kernel maps the file, the archive's
/// string_views point straight into the mapping, and cold-start cost
/// becomes page faults on the regions actually touched instead of an
/// up-front read of everything (EXPERIMENTS.md, "Durability cost" —
/// cold-start mmap vs read-all). Advise() forwards access-pattern hints
/// to madvise so validation scans read ahead and point lookups don't.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rlz {

/// A read-only mapping of an entire file. Move-only RAII: the mapping
/// lives until destruction, and archives keep it alive by holding the
/// MmapFile (wrapped in a shared_ptr) as their backing token. The file
/// descriptor is closed as soon as the mapping exists — the mapping
/// itself keeps the inode alive.
class MmapFile {
 public:
  /// Access-pattern hints forwarded to madvise(2). Best-effort: a kernel
  /// that rejects the hint does not fail the call.
  enum class Access { kNormal, kSequential, kRandom, kWillNeed };

  /// Maps `path` read-only. Empty files map successfully to an empty
  /// view (no mmap call is made; mmap of length 0 is invalid).
  static StatusOr<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped bytes. Valid until the MmapFile is destroyed.
  std::string_view view() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }

  /// Applies an access-pattern hint to the whole mapping. Best-effort.
  void Advise(Access access) const;

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;  // nullptr for empty files; size_ is 0 then
  size_t size_ = 0;
};

}  // namespace rlz

#endif  // RLZ_IO_MMAP_FILE_H_
