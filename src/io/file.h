#ifndef RLZ_IO_FILE_H_
#define RLZ_IO_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace rlz {

/// Reads an entire file into a string.
StatusOr<std::string> ReadFile(const std::string& path);

/// Writes `data` to `path`, truncating any existing file.
Status WriteFile(const std::string& path, std::string_view data);

}  // namespace rlz

#endif  // RLZ_IO_FILE_H_
