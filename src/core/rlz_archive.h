#ifndef RLZ_CORE_RLZ_ARCHIVE_H_
#define RLZ_CORE_RLZ_ARCHIVE_H_

/// \file
/// The RLZ document store: build options, the archive, and its v1 file format.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/dictionary.h"
#include "core/factor_coder.h"
#include "core/factorizer.h"
#include "corpus/collection.h"
#include "store/archive.h"
#include "store/doc_map.h"
#include "store/open_archive.h"
#include "util/bitmap.h"
#include "util/logging.h"

namespace rlz {

/// Build-time knobs for RlzArchive::Build.
struct RlzBuildOptions {
  /// Position/length coding pair for the factor streams (§3.4).
  PairCoding coding = kZV;
  /// Track per-byte dictionary usage while encoding (needed for the
  /// Unused % statistic and for dictionary pruning; small CPU overhead).
  bool track_coverage = false;
  /// Worker threads for factorization+encoding. Documents are partitioned
  /// into contiguous chunks fed through the build pipeline (DESIGN.md §7);
  /// output is byte-identical for any thread count or chunk size (the
  /// dictionary is immutable, factorization is per-document, and chunks
  /// merge in document order).
  int num_threads = 1;
  /// Documents per pipeline chunk; 0 picks a balanced default. Affects
  /// load balancing and merge overhead only, never the output bytes.
  size_t chunk_docs = 0;
};

/// Build-time results that the evaluation tables report.
struct RlzBuildInfo {
  /// Factor statistics summed over all documents (Tables 2/3).
  FactorStats stats;
  /// Fraction of dictionary bytes no factor used; valid if track_coverage.
  double unused_dictionary_fraction = 0.0;
  /// Per-dictionary-byte usage bitmap (BuildPruned's input); valid if
  /// track_coverage. Identical for any thread count.
  Bitmap coverage;
  /// Thread-CPU seconds summed over the build's workers — the work a
  /// serial build performs.
  double build_cpu_seconds = 0.0;
  /// The busiest worker's thread-CPU seconds: the modeled parallel build
  /// makespan under the one-core-per-worker doctrine (DESIGN.md §7).
  double build_critical_path_seconds = 0.0;
  /// Pipeline chunks the build was partitioned into.
  size_t build_chunks = 0;
};

/// The rlz document store (§3.1): an in-memory dictionary plus one encoded
/// factor stream per document and a document map. Random access decodes
/// only the requested document against the memory-resident dictionary.
class RlzArchive final : public Archive {
 public:
  /// Factorizes every document of `collection` against `dict` and encodes
  /// the factor streams with `options.coding`. `dict` is shared (it may be
  /// reused across archives with different codings). If `info` is non-null
  /// it receives the build statistics. Runs on the parallel build pipeline
  /// when options.num_threads > 1 (implemented in src/build/, DESIGN.md
  /// §7); the output is byte-identical to the serial build.
  static std::unique_ptr<RlzArchive> Build(const Collection& collection,
                                           std::shared_ptr<const Dictionary> dict,
                                           const RlzBuildOptions& options = {},
                                           RlzBuildInfo* info = nullptr);

  /// Encodes precomputed per-document factor lists (one vector per
  /// document, as produced by Factorizer). Lets callers factorize once and
  /// encode under several codings — how the evaluation builds its
  /// ZZ/ZV/UZ/UV rows from a single parsing pass.
  static std::unique_ptr<RlzArchive> BuildFromFactors(
      std::shared_ptr<const Dictionary> dict,
      const std::vector<std::vector<Factor>>& docs, PairCoding coding);

  /// The scratch-less convenience overloads stay visible alongside the
  /// scratch-aware overrides below.
  using Archive::Get;
  using Archive::GetRange;

  /// "rlz-" plus the coding name (e.g. "rlz-ZV").
  std::string name() const override { return "rlz-" + coder_.coding().name(); }
  /// Number of stored documents.
  size_t num_docs() const override { return map_.num_docs(); }
  /// Decodes document `id` against the memory-resident dictionary,
  /// reading (and charging to `disk`) only that document's factor stream.
  /// With `scratch` the decode reuses the caller's buffers and performs no
  /// heap allocation beyond the output itself (DESIGN.md §9).
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const override;

  /// Decodes only bytes [offset, offset+length) of document `id` — the
  /// snippet-generation fast path (§1): factor streams are skipped, not
  /// expanded, outside the range. Clamps to the document end.
  Status GetRange(size_t id, size_t offset, size_t length, std::string* text,
                  SimDisk* disk, DecodeScratch* scratch) const override;

  /// Encoded payload + document map + dictionary text (the dictionary is
  /// part of the stored output, as in the paper's Enc. % figures).
  uint64_t stored_bytes() const override {
    return payload().size() + map_.serialized_bytes() + dict_->size();
  }

  /// The shared dictionary the archive decodes against.
  const Dictionary& dictionary() const { return *dict_; }
  /// The position/length factor coder.
  const FactorCoder& coder() const { return coder_; }
  /// Total encoded factor-stream bytes (excluding map and dictionary).
  uint64_t payload_bytes() const { return payload().size(); }
  /// Payload extents per document — lets a router (ShardedStore) charge
  /// simulated I/O for a shard-local read without decoding twice.
  const DocMap& doc_map() const { return map_; }

  /// On-disk format id inside the container envelope ("rlz").
  static constexpr char kFormatId[] = "rlz";
  /// Current format version. Version 1 is the legacy pre-envelope layout,
  /// which Load and OpenArchive still read (see LoadLegacyV1).
  static constexpr uint32_t kFormatVersion = 2;

  /// The legacy v1 file format stores the dictionary size, document count,
  /// and per-document payload sizes as 32-bit vbytes. The v2 envelope
  /// format is 64-bit clean and has no such ceiling.
  static constexpr uint64_t kMaxFormatValue = 0xFFFFFFFFull;

  /// Rejects archives the legacy v1 format cannot represent: a dictionary,
  /// document count, or single encoded document of more than
  /// kMaxFormatValue bytes would otherwise be truncated to 32 bits on
  /// SaveLegacyV1 and round-trip corrupt under a valid CRC. Exposed so
  /// tests can exercise the guard without allocating 4 GiB.
  static Status CheckFormatLimits(uint64_t dict_bytes, uint64_t num_docs,
                                  uint64_t max_doc_bytes);

  /// Serializes the archive (coding, dictionary text, document map,
  /// payload) as a format-v2 container envelope (store/format.h). The
  /// suffix array is derived data and rebuilt on load.
  Status Save(const std::string& path) const override;

  /// The complete container bytes Save would write — for callers that
  /// need to route the write through their own FileSystem (the durable
  /// store's checkpoint path writes shards behind explicit fsync
  /// barriers; DESIGN.md §12).
  std::string Serialize() const;

  /// Writes the pre-envelope v1 layout. Retained so read-compat with
  /// files written by older builds stays testable; new code uses Save.
  /// Returns InvalidArgument if the archive exceeds the v1 format limits
  /// (see CheckFormatLimits).
  Status SaveLegacyV1(const std::string& path) const;

  /// Opens an archive written by Save (either the v2 envelope or the
  /// legacy v1 layout). Returns Corruption on format or checksum errors.
  /// A serving-only caller passes OpenOptions::build_suffix_array = false
  /// to skip the dictionary suffix-array rebuild (Get/GetRange never use
  /// it; only factorizing new documents does).
  static StatusOr<std::unique_ptr<RlzArchive>> Load(
      const std::string& path, const OpenOptions& options = {});

  /// Materializes an archive from a parsed v2 envelope — the OpenArchive
  /// registry hook. Fails with InvalidArgument if the envelope is not a
  /// readable "rlz" container.
  static StatusOr<std::unique_ptr<RlzArchive>> FromEnvelope(
      const ParsedEnvelope& envelope, const OpenOptions& options);

  /// Parses the pre-envelope v1 layout from `raw` (the whole file's
  /// bytes; `path` is used in error messages only).
  static StatusOr<std::unique_ptr<RlzArchive>> LoadLegacyV1(
      std::string raw, const std::string& path, const OpenOptions& options);

 private:
  /// The streaming builder (src/build/) appends encoded documents and
  /// merged pipeline chunks through the private hooks below.
  friend class RlzArchiveBuilder;

  RlzArchive(std::shared_ptr<const Dictionary> dict, PairCoding coding)
      : dict_(std::move(dict)), coder_(coding) {}

  /// For RlzArchiveBuilder: an archive with no documents yet.
  static std::unique_ptr<RlzArchive> NewEmpty(
      std::shared_ptr<const Dictionary> dict, PairCoding coding) {
    return std::unique_ptr<RlzArchive>(
        new RlzArchive(std::move(dict), coding));
  }

  /// For RlzArchiveBuilder: encodes `factors` as the next document. The
  /// build path aborts on a document beyond the z-stream format limits
  /// (no way to propagate out of the pipeline); callers that need the
  /// Status use FactorCoder::EncodeDoc directly.
  void AppendEncodedDoc(const std::vector<Factor>& factors) {
    const size_t before = owned_payload_.size();
    const Status status = coder_.EncodeDoc(factors, &owned_payload_);
    RLZ_CHECK(status.ok()) << status.ToString();
    map_.Add(owned_payload_.size() - before);
  }

  /// For RlzArchiveBuilder's pipeline merge: appends a chunk of
  /// already-encoded documents (their concatenated factor streams plus
  /// per-document sizes summing to payload.size()).
  void AppendEncodedChunk(std::string_view payload,
                          const std::vector<uint64_t>& doc_sizes) {
    owned_payload_.append(payload);
    for (uint64_t size : doc_sizes) map_.Add(size);
  }

  /// The encoded factor streams: the build path appends into
  /// owned_payload_; the open path aliases the loaded file bytes
  /// (backing_) without copying them (DESIGN.md §9).
  std::string_view payload() const {
    return backing_ != nullptr ? payload_view_
                               : std::string_view(owned_payload_);
  }

  std::shared_ptr<const Dictionary> dict_;
  FactorCoder coder_;
  std::string owned_payload_;           // build path
  std::shared_ptr<const void> backing_;  // open path: keeps file bytes alive
  std::string_view payload_view_;        // into the backed bytes
  DocMap map_;
};

}  // namespace rlz

#endif  // RLZ_CORE_RLZ_ARCHIVE_H_
