#ifndef RLZ_CORE_DICTIONARY_H_
#define RLZ_CORE_DICTIONARY_H_

/// \file
/// The RLZ dictionary (sampled text + suffix matcher) and the §3.3/§3.6 construction strategies.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "suffix/matcher.h"
#include "util/bitmap.h"
#include "util/status.h"

namespace rlz {

/// An RLZ dictionary: the sampled text plus its suffix array wrapped in a
/// SuffixMatcher. Immutable once built; memory-resident by design (this is
/// the property that makes RLZ random access fast, §3.1).
class Dictionary {
 public:
  /// Wraps `text` (copied). When `build_suffix_array` is true (the
  /// default) the suffix array and jump table are built here — required
  /// for factorizing documents. Serving-only callers (decode existing
  /// archives, which never consult the suffix array) pass false and skip
  /// that work entirely; see OpenOptions::build_suffix_array.
  explicit Dictionary(std::string text, bool build_suffix_array = true);

  /// Zero-copy variant: aliases `text` without copying it, keeping
  /// `owner` (the buffer `text` points into — typically a ParsedEnvelope
  /// backing()) alive for the dictionary's lifetime. This is the open
  /// path's way to avoid duplicating the dictionary bytes already held by
  /// the loaded file (DESIGN.md §9).
  Dictionary(std::string_view text, std::shared_ptr<const void> owner,
             bool build_suffix_array = true);

  /// Not copyable or movable: the matcher (and, for the zero-copy
  /// constructor, the text view) points into this instance's storage.
  Dictionary(const Dictionary&) = delete;
  /// Not assignable, for the same reason.
  Dictionary& operator=(const Dictionary&) = delete;

  /// The dictionary text.
  std::string_view text() const { return view_; }
  /// Dictionary size in bytes.
  size_t size() const { return view_.size(); }
  /// True if the suffix-array matcher was built (see the constructor).
  bool has_matcher() const { return matcher_ != nullptr; }
  /// The suffix-array matcher over the dictionary text. Aborts if the
  /// dictionary was built without one (has_matcher() == false):
  /// factorization against a serving-only dictionary is a programming
  /// error, not a runtime condition.
  const SuffixMatcher& matcher() const {
    RLZ_CHECK(matcher_ != nullptr)
        << "dictionary has no suffix array (serving-only open; see "
           "OpenOptions::build_suffix_array)";
    return *matcher_;
  }

  /// On-disk format id inside the container envelope ("dict").
  static constexpr char kFormatId[] = "dict";
  /// Current format version. Version 1 is the legacy bare-text file
  /// (no envelope), which Load still reads.
  static constexpr uint32_t kFormatVersion = 2;

  /// Serializes the dictionary text in a container envelope
  /// (store/format.h). The suffix array is derived data and is rebuilt
  /// on load.
  Status Save(const std::string& path) const;
  /// Loads a dictionary written by Save — or a legacy bare-text file —
  /// and rebuilds its suffix array unless `build_suffix_array` is false.
  static StatusOr<std::unique_ptr<Dictionary>> Load(
      const std::string& path, bool build_suffix_array = true);

 private:
  std::string text_;        // owned storage (empty when aliasing)
  std::string_view view_;   // the text: into text_ or the aliased owner
  std::shared_ptr<const void> owner_;  // keeps aliased bytes alive
  std::unique_ptr<SuffixMatcher> matcher_;
};

/// Dictionary construction strategies from §3.3 and §3.6 of the paper.
class DictionaryBuilder {
 public:
  /// §3.3: concatenates m/s samples of `sample_bytes` each, taken at evenly
  /// spaced positions across `collection`, for a total of ~`dict_bytes`.
  /// If the collection is smaller than `dict_bytes` the whole collection
  /// becomes the dictionary.
  static std::unique_ptr<Dictionary> BuildSampled(std::string_view collection,
                                                  size_t dict_bytes,
                                                  size_t sample_bytes);

  /// Table 10: samples only the first `prefix_fraction` of the collection
  /// (simulating a dictionary built before later documents arrived).
  static std::unique_ptr<Dictionary> BuildFromPrefix(
      std::string_view collection, double prefix_fraction, size_t dict_bytes,
      size_t sample_bytes);

  /// §3.6 ("if there is no constraint on memory"): extends `base` with
  /// evenly spaced samples of `new_data`, keeping the original text (and
  /// thus every already-encoded factor offset) intact, and rebuilds the
  /// suffix array. Old encodings stay valid; new documents factorize
  /// against the grown dictionary.
  static std::unique_ptr<Dictionary> AppendSamples(const Dictionary& base,
                                                   std::string_view new_data,
                                                   size_t add_bytes,
                                                   size_t sample_bytes);

  /// §6 (future work): removes dictionary intervals that `used` marks as
  /// never referenced by any factor, then refills the freed space with
  /// fresh samples taken at offset `refill_phase` (pass a different phase
  /// per pass for multi-pass pruning). `used` has one bit per dictionary
  /// byte — the exact coverage a tracked build produces (Factorizer's
  /// bitmap, or the merged RlzBuildInfo::coverage of a parallel build).
  /// Returns a dictionary of at most the original size.
  static std::unique_ptr<Dictionary> BuildPruned(
      std::string_view collection, const Dictionary& dict, const Bitmap& used,
      size_t sample_bytes, size_t refill_phase = 1);
};

}  // namespace rlz

#endif  // RLZ_CORE_DICTIONARY_H_
