#ifndef RLZ_CORE_DICTIONARY_H_
#define RLZ_CORE_DICTIONARY_H_

/// \file
/// The RLZ dictionary (sampled text + suffix matcher) and the §3.3/§3.6 construction strategies.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "suffix/matcher.h"
#include "util/bitmap.h"
#include "util/status.h"

namespace rlz {

/// An RLZ dictionary: the sampled text plus its suffix array wrapped in a
/// SuffixMatcher. Immutable once built; memory-resident by design (this is
/// the property that makes RLZ random access fast, §3.1).
class Dictionary {
 public:
  /// Builds the suffix array for `text`. `text` is copied.
  explicit Dictionary(std::string text);

  /// The dictionary text.
  std::string_view text() const { return text_; }
  /// Dictionary size in bytes.
  size_t size() const { return text_.size(); }
  /// The suffix-array matcher over the dictionary text.
  const SuffixMatcher& matcher() const { return *matcher_; }

  /// Serialized form: the raw text (the suffix array is rebuilt on load;
  /// it is derived data).
  Status Save(const std::string& path) const;
  /// Loads a dictionary written by Save and rebuilds its suffix array.
  static StatusOr<std::unique_ptr<Dictionary>> Load(const std::string& path);

 private:
  std::string text_;
  std::unique_ptr<SuffixMatcher> matcher_;
};

/// Dictionary construction strategies from §3.3 and §3.6 of the paper.
class DictionaryBuilder {
 public:
  /// §3.3: concatenates m/s samples of `sample_bytes` each, taken at evenly
  /// spaced positions across `collection`, for a total of ~`dict_bytes`.
  /// If the collection is smaller than `dict_bytes` the whole collection
  /// becomes the dictionary.
  static std::unique_ptr<Dictionary> BuildSampled(std::string_view collection,
                                                  size_t dict_bytes,
                                                  size_t sample_bytes);

  /// Table 10: samples only the first `prefix_fraction` of the collection
  /// (simulating a dictionary built before later documents arrived).
  static std::unique_ptr<Dictionary> BuildFromPrefix(
      std::string_view collection, double prefix_fraction, size_t dict_bytes,
      size_t sample_bytes);

  /// §3.6 ("if there is no constraint on memory"): extends `base` with
  /// evenly spaced samples of `new_data`, keeping the original text (and
  /// thus every already-encoded factor offset) intact, and rebuilds the
  /// suffix array. Old encodings stay valid; new documents factorize
  /// against the grown dictionary.
  static std::unique_ptr<Dictionary> AppendSamples(const Dictionary& base,
                                                   std::string_view new_data,
                                                   size_t add_bytes,
                                                   size_t sample_bytes);

  /// §6 (future work): removes dictionary intervals that `used` marks as
  /// never referenced by any factor, then refills the freed space with
  /// fresh samples taken at offset `refill_phase` (pass a different phase
  /// per pass for multi-pass pruning). `used` has one bit per dictionary
  /// byte — the exact coverage a tracked build produces (Factorizer's
  /// bitmap, or the merged RlzBuildInfo::coverage of a parallel build).
  /// Returns a dictionary of at most the original size.
  static std::unique_ptr<Dictionary> BuildPruned(
      std::string_view collection, const Dictionary& dict, const Bitmap& used,
      size_t sample_bytes, size_t refill_phase = 1);
};

}  // namespace rlz

#endif  // RLZ_CORE_DICTIONARY_H_
