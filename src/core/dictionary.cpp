#include "core/dictionary.h"

#include <algorithm>
#include <vector>

#include "io/file.h"
#include "store/format.h"
#include "util/logging.h"

namespace rlz {

Dictionary::Dictionary(std::string text, bool build_suffix_array)
    : text_(std::move(text)), view_(text_) {
  if (build_suffix_array) {
    matcher_ = std::make_unique<SuffixMatcher>(view_);
  }
}

Dictionary::Dictionary(std::string_view text,
                       std::shared_ptr<const void> owner,
                       bool build_suffix_array)
    : view_(text), owner_(std::move(owner)) {
  if (build_suffix_array) {
    matcher_ = std::make_unique<SuffixMatcher>(view_);
  }
}

Status Dictionary::Save(const std::string& path) const {
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutBytes(view_);
  return std::move(writer).WriteTo(path);
}

StatusOr<std::unique_ptr<Dictionary>> Dictionary::Load(
    const std::string& path, bool build_suffix_array) {
  RLZ_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  // Envelope files carry the container magic; anything else is a legacy
  // bare-text dictionary (the pre-envelope Save wrote the raw text).
  if (!LooksLikeEnvelope(raw)) {
    return std::make_unique<Dictionary>(std::move(raw), build_suffix_array);
  }
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope,
                       ParsedEnvelope::FromBytes(std::move(raw), path));
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  // Zero-copy: the dictionary text aliases the loaded file bytes, which
  // the envelope's shared backing keeps alive (DESIGN.md §9).
  return std::make_unique<Dictionary>(envelope.body(), envelope.backing(),
                                      build_suffix_array);
}

std::unique_ptr<Dictionary> DictionaryBuilder::BuildSampled(
    std::string_view collection, size_t dict_bytes, size_t sample_bytes) {
  RLZ_CHECK(sample_bytes > 0);
  if (collection.size() <= dict_bytes) {
    return std::make_unique<Dictionary>(std::string(collection));
  }
  const size_t num_samples = std::max<size_t>(1, dict_bytes / sample_bytes);
  std::string dict;
  dict.reserve(num_samples * sample_bytes);
  // Sample positions 0, n/k, 2n/k, ... — "evenly spaced intervals across
  // the collection" (§3.3). Double arithmetic avoids overflow on large n.
  const double stride =
      static_cast<double>(collection.size()) / static_cast<double>(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    const size_t pos = static_cast<size_t>(stride * static_cast<double>(i));
    const size_t take = std::min(sample_bytes, collection.size() - pos);
    dict.append(collection.substr(pos, take));
  }
  return std::make_unique<Dictionary>(std::move(dict));
}

std::unique_ptr<Dictionary> DictionaryBuilder::BuildFromPrefix(
    std::string_view collection, double prefix_fraction, size_t dict_bytes,
    size_t sample_bytes) {
  RLZ_CHECK(prefix_fraction > 0.0 && prefix_fraction <= 1.0);
  const size_t prefix_len = std::max<size_t>(
      1, static_cast<size_t>(prefix_fraction *
                             static_cast<double>(collection.size())));
  return BuildSampled(collection.substr(0, prefix_len), dict_bytes,
                      sample_bytes);
}

std::unique_ptr<Dictionary> DictionaryBuilder::AppendSamples(
    const Dictionary& base, std::string_view new_data, size_t add_bytes,
    size_t sample_bytes) {
  std::unique_ptr<Dictionary> samples =
      BuildSampled(new_data, add_bytes, sample_bytes);
  std::string grown;
  grown.reserve(base.size() + samples->size());
  grown.append(base.text());
  grown.append(samples->text());
  return std::make_unique<Dictionary>(std::move(grown));
}

std::unique_ptr<Dictionary> DictionaryBuilder::BuildPruned(
    std::string_view collection, const Dictionary& dict, const Bitmap& used,
    size_t sample_bytes, size_t refill_phase) {
  RLZ_CHECK_EQ(used.size(), dict.size());
  // Keep only used runs of at least kMinKeepRun bytes; shorter used runs
  // are not worth their factor-position entropy.
  constexpr size_t kMinKeepRun = 16;
  std::string pruned;
  pruned.reserve(dict.size());
  size_t i = 0;
  const std::string_view text = dict.text();
  while (i < used.size()) {
    if (!used.Test(i)) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < used.size() && used.Test(j)) ++j;
    if (j - i >= kMinKeepRun) pruned.append(text.substr(i, j - i));
    i = j;
  }
  const size_t freed = dict.size() - pruned.size();
  if (freed > sample_bytes && collection.size() > dict.size()) {
    // Refill with fresh samples taken at positions offset by refill_phase
    // half-strides, so successive passes see different parts of the
    // collection.
    const size_t num_samples = freed / sample_bytes;
    if (num_samples > 0) {
      const double stride = static_cast<double>(collection.size()) /
                            static_cast<double>(num_samples);
      for (size_t s = 0; s < num_samples; ++s) {
        const double phase =
            stride * (static_cast<double>(refill_phase) / 2.0);
        const size_t pos = static_cast<size_t>(
                               stride * static_cast<double>(s) + phase) %
                           collection.size();
        const size_t take = std::min(sample_bytes, collection.size() - pos);
        pruned.append(collection.substr(pos, take));
      }
    }
  }
  return std::make_unique<Dictionary>(std::move(pruned));
}

}  // namespace rlz
