#include "core/rlz.h"

namespace rlz {

std::unique_ptr<RlzArchive> CompressCollection(const Collection& collection,
                                               const RlzOptions& options,
                                               RlzBuildInfo* info) {
  std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
      collection.data(), options.dict_bytes, options.sample_bytes);
  RlzBuildOptions build;
  build.coding = options.coding;
  build.track_coverage = options.track_coverage;
  build.num_threads = options.num_threads;
  return RlzArchive::Build(collection, std::move(dict), build, info);
}

}  // namespace rlz
