#ifndef RLZ_CORE_FACTOR_H_
#define RLZ_CORE_FACTOR_H_

/// \file
/// The RLZ factor (position, length) of §3.

#include <cstdint>

namespace rlz {

/// One RLZ factor (pj, lj) as defined in §3 of the paper: if `len > 0` the
/// factor is the dictionary substring d[pos .. pos+len-1]; if `len == 0`
/// the factor is the single literal character `pos` (a byte that does not
/// occur in the dictionary).
struct Factor {
  /// Dictionary offset, or the literal byte value when len == 0.
  uint32_t pos = 0;
  /// Match length; 0 marks a literal factor.
  uint32_t len = 0;

  /// True if this factor is a single literal character.
  bool is_literal() const { return len == 0; }
  /// Number of text characters this factor produces.
  uint32_t text_length() const { return len == 0 ? 1 : len; }

  /// Field-wise equality.
  bool operator==(const Factor& other) const {
    return pos == other.pos && len == other.len;
  }
};

}  // namespace rlz

#endif  // RLZ_CORE_FACTOR_H_
