#ifndef RLZ_CORE_FACTORIZER_H_
#define RLZ_CORE_FACTORIZER_H_

/// \file
/// The greedy RLZ parser (Fig. 1) and its mergeable build statistics.

#include <string>
#include <string_view>
#include <vector>

#include "core/dictionary.h"
#include "core/factor.h"
#include "util/bitmap.h"

namespace rlz {

/// Statistics accumulated across factorized documents (Tables 2 and 3).
/// Mergeable: per-worker instances from a parallel build combine with
/// Merge() into exactly the totals a serial pass would have produced
/// (every field is a sum, and addition is order-independent).
struct FactorStats {
  /// Total factors emitted (literals included).
  uint64_t num_factors = 0;
  /// Factors that are single-character literals (len == 0).
  uint64_t num_literals = 0;
  /// Total uncompressed text bytes factorized.
  uint64_t text_bytes = 0;

  /// Average characters produced per factor ("Avg.Fact." in Tables 2/3).
  double avg_factor_length() const {
    return num_factors == 0
               ? 0.0
               : static_cast<double>(text_bytes) /
                     static_cast<double>(num_factors);
  }

  /// Fractional decay of this instance's average factor length against a
  /// `baseline` build: 0.0 when factors are as long as (or longer than)
  /// the baseline's, approaching 1.0 as they collapse toward literals.
  /// The live store's staleness trigger (DESIGN.md §11): a shard sealed
  /// against a drifted dictionary emits shorter factors than the
  /// build-time corpus did (§3.6), and the decay measures how much.
  /// Returns 0.0 when either side has no factors.
  double avg_factor_decay(const FactorStats& baseline) const {
    const double base = baseline.avg_factor_length();
    const double own = avg_factor_length();
    if (base <= 0.0 || own <= 0.0) return 0.0;
    return own >= base ? 0.0 : 1.0 - own / base;
  }

  /// Adds `other`'s counters into this instance (the parallel build's
  /// per-worker merge, DESIGN.md §7).
  void Merge(const FactorStats& other) {
    num_factors += other.num_factors;
    num_literals += other.num_literals;
    text_bytes += other.text_bytes;
  }
};

/// Greedy RLZ parser: Fig. 1 of the paper. Each call to Factorize parses
/// one document into the fewest greedy factors relative to the dictionary.
/// Thread-compatible: the dictionary is read-only shared state; stats and
/// coverage are per-instance, so a parallel build runs one Factorizer per
/// worker and merges afterwards (FactorStats::Merge, Bitmap::OrWith).
class Factorizer {
 public:
  /// If `track_coverage` is true, a per-dictionary-byte usage bitmap is
  /// maintained (the "Unused %" column of Tables 2/3 and the input to
  /// DictionaryBuilder::BuildPruned).
  explicit Factorizer(const Dictionary* dict, bool track_coverage = false);

  /// Parses `doc` and appends factors to `out`. Updates stats/coverage.
  void Factorize(std::string_view doc, std::vector<Factor>* out);

  /// Expands `factors` back into text, appending to `out`. This is the
  /// paper's Fig. 2 decoding algorithm. Returns Corruption if a factor
  /// lies outside the dictionary.
  static Status Decode(const std::vector<Factor>& factors,
                       const Dictionary& dict, std::string* out);

  /// Statistics over everything this instance has factorized.
  const FactorStats& stats() const { return stats_; }
  /// Zeroes the accumulated statistics (coverage is kept).
  void ResetStats() { stats_ = FactorStats(); }

  /// Word-packed coverage bitmap, one bit per dictionary byte (empty if
  /// tracking is disabled). Mergeable across workers via Bitmap::OrWith.
  const Bitmap& coverage() const { return coverage_; }

  /// Fraction of dictionary bytes never used by any factor so far.
  double UnusedFraction() const;

 private:
  const Dictionary* dict_;
  FactorStats stats_;
  Bitmap coverage_;
  bool track_coverage_;
};

}  // namespace rlz

#endif  // RLZ_CORE_FACTORIZER_H_
