#ifndef RLZ_CORE_FACTORIZER_H_
#define RLZ_CORE_FACTORIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/dictionary.h"
#include "core/factor.h"

namespace rlz {

/// Statistics accumulated across factorized documents (Tables 2 and 3).
struct FactorStats {
  uint64_t num_factors = 0;
  uint64_t num_literals = 0;
  uint64_t text_bytes = 0;

  /// Average characters produced per factor ("Avg.Fact." in Tables 2/3).
  double avg_factor_length() const {
    return num_factors == 0
               ? 0.0
               : static_cast<double>(text_bytes) /
                     static_cast<double>(num_factors);
  }
};

/// Greedy RLZ parser: Fig. 1 of the paper. Each call to Factorize parses
/// one document into the fewest greedy factors relative to the dictionary.
/// Thread-compatible: const, no mutable state; coverage tracking is
/// per-instance and optional.
class Factorizer {
 public:
  /// If `track_coverage` is true, a per-dictionary-byte usage bitmap is
  /// maintained (the "Unused %" column of Tables 2/3 and the input to
  /// DictionaryBuilder::BuildPruned).
  explicit Factorizer(const Dictionary* dict, bool track_coverage = false);

  /// Parses `doc` and appends factors to `out`. Updates stats/coverage.
  void Factorize(std::string_view doc, std::vector<Factor>* out);

  /// Expands `factors` back into text, appending to `out`. This is the
  /// paper's Fig. 2 decoding algorithm. Returns Corruption if a factor
  /// lies outside the dictionary.
  static Status Decode(const std::vector<Factor>& factors,
                       const Dictionary& dict, std::string* out);

  const FactorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FactorStats(); }

  /// Coverage bitmap (empty if tracking is disabled).
  const std::vector<bool>& coverage() const { return coverage_; }

  /// Fraction of dictionary bytes never used by any factor so far.
  double UnusedFraction() const;

 private:
  const Dictionary* dict_;
  FactorStats stats_;
  std::vector<bool> coverage_;
  bool track_coverage_;
};

}  // namespace rlz

#endif  // RLZ_CORE_FACTORIZER_H_
