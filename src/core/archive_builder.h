#ifndef RLZ_CORE_ARCHIVE_BUILDER_H_
#define RLZ_CORE_ARCHIVE_BUILDER_H_

#include <memory>
#include <string_view>

#include "core/rlz_archive.h"

namespace rlz {

/// Incremental archive construction for the §3.6 dynamic setting:
/// documents are appended one at a time (factorized and encoded
/// immediately), without materializing a Collection. Compression is
/// identical to RlzArchive::Build over the same documents.
///
///   RlzArchiveBuilder builder(dict, kZV);
///   while (crawler.HasNext()) builder.Add(crawler.Next());
///   auto archive = std::move(builder).Finish();
class RlzArchiveBuilder {
 public:
  RlzArchiveBuilder(std::shared_ptr<const Dictionary> dict, PairCoding coding,
                    bool track_coverage = false);

  /// Factorizes and encodes one document at the next document id.
  void Add(std::string_view doc);

  size_t num_docs() const { return archive_->num_docs(); }
  const FactorStats& stats() const { return factorizer_.stats(); }
  double UnusedDictionaryFraction() const {
    return factorizer_.UnusedFraction();
  }

  /// Finalizes and returns the archive. The builder is consumed.
  std::unique_ptr<RlzArchive> Finish() &&;

 private:
  std::unique_ptr<RlzArchive> archive_;
  Factorizer factorizer_;
  std::vector<Factor> scratch_;
};

}  // namespace rlz

#endif  // RLZ_CORE_ARCHIVE_BUILDER_H_
