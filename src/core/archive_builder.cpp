#include "core/archive_builder.h"

#include "util/logging.h"

namespace rlz {

RlzArchiveBuilder::RlzArchiveBuilder(std::shared_ptr<const Dictionary> dict,
                                     PairCoding coding, bool track_coverage)
    : archive_(RlzArchive::NewEmpty(std::move(dict), coding)),
      factorizer_(&archive_->dictionary(), track_coverage) {}

void RlzArchiveBuilder::Add(std::string_view doc) {
  scratch_.clear();
  factorizer_.Factorize(doc, &scratch_);
  archive_->AppendEncodedDoc(scratch_);
}

std::unique_ptr<RlzArchive> RlzArchiveBuilder::Finish() && {
  RLZ_CHECK(archive_ != nullptr) << "Finish() called twice";
  return std::move(archive_);
}

}  // namespace rlz
