#include "core/factor_coder.h"

#include <algorithm>

#include "codecs/int_codecs.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

// The "Z best compression" coder the paper applies to per-document factor
// streams.
const GzipxCompressor& StreamCompressor() {
  static const GzipxCompressor* gz = new GzipxCompressor(
      GzipxOptions{.max_chain = 512, .nice_length = 258, .lazy = true});
  return *gz;
}

void AppendZStream(const std::string& raw, std::string* out) {
  std::string z;
  StreamCompressor().Compress(raw, &z);
  VByteCodec::Put(static_cast<uint32_t>(z.size()), out);
  out->append(z);
}

Status ReadZStream(std::string_view in, size_t* pos, std::string* raw) {
  uint32_t zsize = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, pos, &zsize));
  if (*pos + zsize > in.size()) {
    return Status::Corruption("factor coder: truncated z-stream");
  }
  RLZ_RETURN_IF_ERROR(
      StreamCompressor().Decompress(in.substr(*pos, zsize), raw));
  *pos += zsize;
  return Status::OK();
}

}  // namespace

std::string PairCoding::name() const {
  std::string n;
  switch (pos) {
    case PosCoding::kU32:
      n += "U";
      break;
    case PosCoding::kZlib:
      n += "Z";
      break;
    case PosCoding::kPFD:
      n += "P";
      break;
  }
  switch (len) {
    case LenCoding::kVByte:
      n += "V";
      break;
    case LenCoding::kZlib:
      n += "Z";
      break;
    case LenCoding::kS9:
      n += "S";
      break;
    case LenCoding::kPFD:
      n += "P";
      break;
  }
  return n;
}

StatusOr<PairCoding> PairCoding::FromName(std::string_view name) {
  if (name.size() != 2) {
    return Status::InvalidArgument("pair coding name must be 2 chars");
  }
  PairCoding c;
  switch (name[0]) {
    case 'U':
      c.pos = PosCoding::kU32;
      break;
    case 'Z':
      c.pos = PosCoding::kZlib;
      break;
    case 'P':
      c.pos = PosCoding::kPFD;
      break;
    default:
      return Status::InvalidArgument("bad position code");
  }
  switch (name[1]) {
    case 'V':
      c.len = LenCoding::kVByte;
      break;
    case 'Z':
      c.len = LenCoding::kZlib;
      break;
    case 'S':
      c.len = LenCoding::kS9;
      break;
    case 'P':
      c.len = LenCoding::kPFD;
      break;
    default:
      return Status::InvalidArgument("bad length code");
  }
  return c;
}

void FactorCoder::EncodeDoc(const std::vector<Factor>& factors,
                            std::string* out) const {
  VByteCodec::Put(static_cast<uint32_t>(factors.size()), out);

  std::vector<uint32_t> positions;
  std::vector<uint32_t> lengths;
  positions.reserve(factors.size());
  lengths.reserve(factors.size());
  for (const Factor& f : factors) {
    positions.push_back(f.pos);
    lengths.push_back(f.len);
  }

  switch (coding_.pos) {
    case PosCoding::kU32:
      GetIntCodec(IntCodecId::kU32)->Encode(positions, out);
      break;
    case PosCoding::kZlib: {
      std::string raw;
      GetIntCodec(IntCodecId::kU32)->Encode(positions, &raw);
      AppendZStream(raw, out);
      break;
    }
    case PosCoding::kPFD:
      GetIntCodec(IntCodecId::kPForDelta)->Encode(positions, out);
      break;
  }

  switch (coding_.len) {
    case LenCoding::kVByte:
      GetIntCodec(IntCodecId::kVByte)->Encode(lengths, out);
      break;
    case LenCoding::kZlib: {
      std::string raw;
      GetIntCodec(IntCodecId::kVByte)->Encode(lengths, &raw);
      AppendZStream(raw, out);
      break;
    }
    case LenCoding::kS9:
      GetIntCodec(IntCodecId::kSimple9)->Encode(lengths, out);
      break;
    case LenCoding::kPFD:
      GetIntCodec(IntCodecId::kPForDelta)->Encode(lengths, out);
      break;
  }
}

Status FactorCoder::DecodeStreams(std::string_view in,
                                  std::vector<uint32_t>* positions,
                                  std::vector<uint32_t>* lengths,
                                  size_t* consumed) const {
  size_t pos = 0;
  uint32_t count = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &count));
  // Plausibility bound against corrupt headers: even z-coded streams of
  // degenerate factor lists stay far above 1 byte per 4096 factors.
  if (static_cast<uint64_t>(count) > in.size() * 4096ull + 64) {
    return Status::Corruption("factor coder: implausible factor count");
  }

  size_t used = 0;
  switch (coding_.pos) {
    case PosCoding::kU32:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kU32)
                              ->Decode(in.substr(pos), count, positions,
                                       &used));
      pos += used;
      break;
    case PosCoding::kZlib: {
      std::string raw;
      RLZ_RETURN_IF_ERROR(ReadZStream(in, &pos, &raw));
      RLZ_RETURN_IF_ERROR(
          GetIntCodec(IntCodecId::kU32)->Decode(raw, count, positions, &used));
      break;
    }
    case PosCoding::kPFD:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kPForDelta)
                              ->Decode(in.substr(pos), count, positions,
                                       &used));
      pos += used;
      break;
  }

  switch (coding_.len) {
    case LenCoding::kVByte:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kVByte)
                              ->Decode(in.substr(pos), count, lengths, &used));
      pos += used;
      break;
    case LenCoding::kZlib: {
      std::string raw;
      RLZ_RETURN_IF_ERROR(ReadZStream(in, &pos, &raw));
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kVByte)
                              ->Decode(raw, count, lengths, &used));
      break;
    }
    case LenCoding::kS9:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kSimple9)
                              ->Decode(in.substr(pos), count, lengths, &used));
      pos += used;
      break;
    case LenCoding::kPFD:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kPForDelta)
                              ->Decode(in.substr(pos), count, lengths, &used));
      pos += used;
      break;
  }

  if (consumed != nullptr) *consumed = pos;
  return Status::OK();
}

Status FactorCoder::DecodeFactors(std::string_view in,
                                  std::vector<Factor>* factors,
                                  size_t* consumed) const {
  std::vector<uint32_t> positions;
  std::vector<uint32_t> lengths;
  RLZ_RETURN_IF_ERROR(DecodeStreams(in, &positions, &lengths, consumed));
  factors->reserve(factors->size() + positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    factors->push_back(Factor{positions[i], lengths[i]});
  }
  return Status::OK();
}

Status FactorCoder::DecodeRange(std::string_view in, const Dictionary& dict,
                                size_t offset, size_t length,
                                std::string* text) const {
  std::vector<uint32_t> positions;
  std::vector<uint32_t> lengths;
  RLZ_RETURN_IF_ERROR(DecodeStreams(in, &positions, &lengths, nullptr));
  const std::string_view d = dict.text();
  size_t produced = 0;  // text cursor over the virtual decoded document
  const size_t end = offset + length;
  for (size_t i = 0; i < positions.size() && produced < end; ++i) {
    const size_t flen = lengths[i] == 0 ? 1 : lengths[i];
    const size_t fstart = produced;
    produced += flen;
    if (produced <= offset) continue;  // factor entirely before the range
    if (lengths[i] == 0) {
      if (positions[i] > 0xFF) {
        return Status::Corruption("factor coder: literal out of range");
      }
      text->push_back(static_cast<char>(positions[i]));
      continue;
    }
    if (static_cast<size_t>(positions[i]) + lengths[i] > d.size()) {
      return Status::Corruption("factor coder: factor outside dictionary");
    }
    // Clip the factor to the requested range.
    const size_t from = offset > fstart ? offset - fstart : 0;
    const size_t to = std::min<size_t>(flen, end - fstart);
    text->append(d.substr(positions[i] + from, to - from));
  }
  return Status::OK();
}

Status FactorCoder::DecodeDoc(std::string_view in, const Dictionary& dict,
                              std::string* text) const {
  std::vector<uint32_t> positions;
  std::vector<uint32_t> lengths;
  RLZ_RETURN_IF_ERROR(DecodeStreams(in, &positions, &lengths, nullptr));
  const std::string_view d = dict.text();
  for (size_t i = 0; i < positions.size(); ++i) {
    if (lengths[i] == 0) {
      if (positions[i] > 0xFF) {
        return Status::Corruption("factor coder: literal out of range");
      }
      text->push_back(static_cast<char>(positions[i]));
    } else {
      if (static_cast<size_t>(positions[i]) + lengths[i] > d.size()) {
        return Status::Corruption("factor coder: factor outside dictionary");
      }
      text->append(d.substr(positions[i], lengths[i]));
    }
  }
  return Status::OK();
}

}  // namespace rlz
