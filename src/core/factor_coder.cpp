#include "core/factor_coder.h"

#include <algorithm>
#include <cstring>

#include "codecs/int_codecs.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

// The "Z best compression" coder the paper applies to per-document factor
// streams.
const GzipxCompressor& StreamCompressor() {
  static const GzipxCompressor* gz = new GzipxCompressor(
      GzipxOptions{.max_chain = 512, .nice_length = 258, .lazy = true});
  return *gz;
}

Status AppendZStream(const std::string& raw, std::string* out) {
  std::string z;
  StreamCompressor().Compress(raw, &z);
  RLZ_RETURN_IF_ERROR(FactorCoder::CheckZStreamLimits(raw.size(), z.size()));
  VByteCodec::Put(static_cast<uint32_t>(z.size()), out);
  out->append(z);
  return Status::OK();
}

// Decompresses a length-prefixed z-stream into `*buffer` (cleared first).
// `buffer` and `gz` are scratch-lent by the caller so their capacity
// survives calls; `gz` may be null (fresh decoder state per call).
Status ReadZStream(std::string_view in, size_t* pos, std::string* buffer,
                   GzipxDecodeScratch* gz) {
  buffer->clear();
  uint32_t zsize = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, pos, &zsize));
  if (*pos + zsize > in.size()) {
    return Status::Corruption("factor coder: truncated z-stream");
  }
  RLZ_RETURN_IF_ERROR(
      StreamCompressor().Decompress(in.substr(*pos, zsize), buffer, gz));
  *pos += zsize;
  return Status::OK();
}

}  // namespace

std::string PairCoding::name() const {
  std::string n;
  switch (pos) {
    case PosCoding::kU32:
      n += "U";
      break;
    case PosCoding::kZlib:
      n += "Z";
      break;
    case PosCoding::kPFD:
      n += "P";
      break;
  }
  switch (len) {
    case LenCoding::kVByte:
      n += "V";
      break;
    case LenCoding::kZlib:
      n += "Z";
      break;
    case LenCoding::kS9:
      n += "S";
      break;
    case LenCoding::kPFD:
      n += "P";
      break;
  }
  return n;
}

StatusOr<PairCoding> PairCoding::FromName(std::string_view name) {
  if (name.size() != 2) {
    return Status::InvalidArgument("pair coding name must be 2 chars");
  }
  PairCoding c;
  switch (name[0]) {
    case 'U':
      c.pos = PosCoding::kU32;
      break;
    case 'Z':
      c.pos = PosCoding::kZlib;
      break;
    case 'P':
      c.pos = PosCoding::kPFD;
      break;
    default:
      return Status::InvalidArgument("bad position code");
  }
  switch (name[1]) {
    case 'V':
      c.len = LenCoding::kVByte;
      break;
    case 'Z':
      c.len = LenCoding::kZlib;
      break;
    case 'S':
      c.len = LenCoding::kS9;
      break;
    case 'P':
      c.len = LenCoding::kPFD;
      break;
    default:
      return Status::InvalidArgument("bad length code");
  }
  return c;
}

Status FactorCoder::CheckZStreamLimits(uint64_t raw_bytes, uint64_t z_bytes) {
  if (raw_bytes >= kMaxZStreamBytes) {
    return Status::InvalidArgument(
        "factor coder: document's raw factor stream exceeds the 32-bit "
        "z-stream framing");
  }
  if (z_bytes >= kMaxZStreamBytes) {
    return Status::InvalidArgument(
        "factor coder: document's compressed factor stream exceeds the "
        "32-bit z-stream framing");
  }
  return Status::OK();
}

Status FactorCoder::EncodeDoc(const std::vector<Factor>& factors,
                              std::string* out) const {
  const size_t out_base = out->size();
  VByteCodec::Put(static_cast<uint32_t>(factors.size()), out);

  std::vector<uint32_t> positions;
  std::vector<uint32_t> lengths;
  positions.reserve(factors.size());
  lengths.reserve(factors.size());
  for (const Factor& f : factors) {
    positions.push_back(f.pos);
    lengths.push_back(f.len);
  }

  // On any stream-limit error the partial encoding is rolled back so the
  // caller's payload is left exactly as it was.
  Status status = Status::OK();
  switch (coding_.pos) {
    case PosCoding::kU32:
      GetIntCodec(IntCodecId::kU32)->Encode(positions, out);
      break;
    case PosCoding::kZlib: {
      std::string raw;
      GetIntCodec(IntCodecId::kU32)->Encode(positions, &raw);
      status = AppendZStream(raw, out);
      break;
    }
    case PosCoding::kPFD:
      GetIntCodec(IntCodecId::kPForDelta)->Encode(positions, out);
      break;
  }
  if (!status.ok()) {
    out->resize(out_base);
    return status;
  }

  switch (coding_.len) {
    case LenCoding::kVByte:
      GetIntCodec(IntCodecId::kVByte)->Encode(lengths, out);
      break;
    case LenCoding::kZlib: {
      std::string raw;
      GetIntCodec(IntCodecId::kVByte)->Encode(lengths, &raw);
      status = AppendZStream(raw, out);
      break;
    }
    case LenCoding::kS9:
      GetIntCodec(IntCodecId::kSimple9)->Encode(lengths, out);
      break;
    case LenCoding::kPFD:
      GetIntCodec(IntCodecId::kPForDelta)->Encode(lengths, out);
      break;
  }
  if (!status.ok()) {
    out->resize(out_base);
    return status;
  }
  return Status::OK();
}

Status FactorCoder::DecodeStreams(std::string_view in,
                                  std::vector<uint32_t>* positions,
                                  std::vector<uint32_t>* lengths,
                                  size_t* consumed,
                                  DecodeScratch* scratch) const {
  positions->clear();
  lengths->clear();
  // Scratch lends the z-stream inflate buffer; otherwise one is allocated
  // here per call (the fresh-allocation fallback path).
  std::string local_inflate;
  std::string* inflate = scratch != nullptr ? &scratch->inflate
                                            : &local_inflate;

  size_t pos = 0;
  uint32_t count = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &count));
  // Plausibility bound against corrupt headers: even z-coded streams of
  // degenerate factor lists stay far above 1 byte per 4096 factors.
  if (static_cast<uint64_t>(count) > in.size() * 4096ull + 64) {
    return Status::Corruption("factor coder: implausible factor count");
  }
  // Pre-size the vectors, clamped to the stream size: the count is still
  // untrusted at this point (z-coded streams can legitimately pack many
  // values per byte, so the plausibility bound above is loose), and a
  // reserve is only an optimization — the codecs validate the count
  // against the actual bytes before materializing anything beyond this.
  const size_t plausible =
      static_cast<size_t>(std::min<uint64_t>(count, in.size()));
  positions->reserve(plausible);
  lengths->reserve(plausible);

  size_t used = 0;
  switch (coding_.pos) {
    case PosCoding::kU32:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kU32)
                              ->Decode(in.substr(pos), count, positions,
                                       &used));
      pos += used;
      break;
    case PosCoding::kZlib: {
      RLZ_RETURN_IF_ERROR(ReadZStream(
          in, &pos, inflate, scratch != nullptr ? &scratch->gzipx : nullptr));
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kU32)
                              ->Decode(*inflate, count, positions, &used));
      break;
    }
    case PosCoding::kPFD:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kPForDelta)
                              ->Decode(in.substr(pos), count, positions,
                                       &used));
      pos += used;
      break;
  }

  switch (coding_.len) {
    case LenCoding::kVByte:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kVByte)
                              ->Decode(in.substr(pos), count, lengths, &used));
      pos += used;
      break;
    case LenCoding::kZlib: {
      // The position stream is fully decoded, so the inflate buffer is
      // safely reusable for the length stream.
      RLZ_RETURN_IF_ERROR(ReadZStream(
          in, &pos, inflate, scratch != nullptr ? &scratch->gzipx : nullptr));
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kVByte)
                              ->Decode(*inflate, count, lengths, &used));
      break;
    }
    case LenCoding::kS9:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kSimple9)
                              ->Decode(in.substr(pos), count, lengths, &used));
      pos += used;
      break;
    case LenCoding::kPFD:
      RLZ_RETURN_IF_ERROR(GetIntCodec(IntCodecId::kPForDelta)
                              ->Decode(in.substr(pos), count, lengths, &used));
      pos += used;
      break;
  }

  if (consumed != nullptr) *consumed = pos;
  return Status::OK();
}

Status FactorCoder::DecodeFactors(std::string_view in,
                                  std::vector<Factor>* factors,
                                  size_t* consumed) const {
  std::vector<uint32_t> positions;
  std::vector<uint32_t> lengths;
  RLZ_RETURN_IF_ERROR(
      DecodeStreams(in, &positions, &lengths, consumed, nullptr));
  factors->reserve(factors->size() + positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    factors->push_back(Factor{positions[i], lengths[i]});
  }
  return Status::OK();
}

Status FactorCoder::DecodeRange(std::string_view in, const Dictionary& dict,
                                size_t offset, size_t length,
                                std::string* text,
                                DecodeScratch* scratch) const {
  std::vector<uint32_t> local_positions;
  std::vector<uint32_t> local_lengths;
  std::vector<uint32_t>* positions =
      scratch != nullptr ? &scratch->positions : &local_positions;
  std::vector<uint32_t>* lengths =
      scratch != nullptr ? &scratch->lengths : &local_lengths;
  RLZ_RETURN_IF_ERROR(DecodeStreams(in, positions, lengths, nullptr, scratch));

  const std::string_view d = dict.text();
  const size_t end = offset + length;
  const size_t n = positions->size();
  const uint32_t* ps = positions->data();
  const uint32_t* ls = lengths->data();

  // Pass 1: walk the factor list validating every factor that intersects
  // the range and summing the clipped output size, so pass 2 can write
  // into an exactly-sized buffer with unchecked copies.
  uint64_t produced = 0;  // text cursor over the virtual decoded document
  uint64_t total = 0;     // bytes the clipped range will emit
  size_t last = 0;        // one past the last factor that intersects
  for (size_t i = 0; i < n && produced < end; ++i) {
    const size_t flen = ls[i] == 0 ? 1 : ls[i];
    const uint64_t fstart = produced;
    produced += flen;
    if (produced <= offset) continue;  // factor entirely before the range
    if (ls[i] == 0) {
      if (ps[i] > 0xFF) {
        return Status::Corruption("factor coder: literal out of range");
      }
    } else if (static_cast<size_t>(ps[i]) + ls[i] > d.size()) {
      return Status::Corruption("factor coder: factor outside dictionary");
    }
    const uint64_t from = offset > fstart ? offset - fstart : 0;
    const uint64_t to = std::min<uint64_t>(flen, end - fstart);
    total += to - from;
    last = i + 1;
  }
  if (total > kMaxDecodedDocBytes) {
    return Status::Corruption("factor coder: decoded range exceeds limit");
  }

  // Pass 2: single resize, tight copy loop (everything already validated).
  const size_t out_base = text->size();
  text->resize(out_base + total);
  char* dst = text->data() + out_base;
  produced = 0;
  for (size_t i = 0; i < last; ++i) {
    const size_t flen = ls[i] == 0 ? 1 : ls[i];
    const uint64_t fstart = produced;
    produced += flen;
    if (produced <= offset) continue;
    if (ls[i] == 0) {
      *dst++ = static_cast<char>(ps[i]);
      continue;
    }
    const uint64_t from = offset > fstart ? offset - fstart : 0;
    const uint64_t to = std::min<uint64_t>(flen, end - fstart);
    std::memcpy(dst, d.data() + ps[i] + from, to - from);
    dst += to - from;
  }
  return Status::OK();
}

Status FactorCoder::DecodeDocFused(std::string_view in,
                                   const Dictionary& dict, std::string* text,
                                   DecodeScratch* scratch) const {
  size_t pos = 0;
  uint32_t count = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(in, &pos, &count));
  // Same plausibility bound as DecodeStreams.
  if (static_cast<uint64_t>(count) > in.size() * 4096ull + 64) {
    return Status::Corruption("factor coder: implausible factor count");
  }

  std::string local_inflate;
  std::string local_inflate2;
  GzipxDecodeScratch* gz = scratch != nullptr ? &scratch->gzipx : nullptr;

  // Position bytes: count little-endian 32-bit words, raw in the stream
  // (U) or inflated from a z-stream (Z).
  std::string_view pbytes;
  if (coding_.pos == PosCoding::kU32) {
    const uint64_t need = 4ull * count;
    if (need > in.size() - pos) {
      return Status::Corruption("u32 stream truncated");
    }
    pbytes = in.substr(pos, need);
    pos += need;
  } else {
    std::string* buf = scratch != nullptr ? &scratch->inflate : &local_inflate;
    RLZ_RETURN_IF_ERROR(ReadZStream(in, &pos, buf, gz));
    if (buf->size() < 4ull * count) {
      return Status::Corruption("u32 stream truncated");
    }
    pbytes = std::string_view(*buf).substr(0, 4ull * count);
  }

  // Length bytes: a vbyte stream, raw (V) or inflated (Z). Trailing bytes
  // beyond the count-th value are ignored, as in the general path.
  std::string_view lbytes;
  if (coding_.len == LenCoding::kVByte) {
    lbytes = in.substr(pos);
  } else {
    std::string* buf =
        scratch != nullptr ? &scratch->inflate2 : &local_inflate2;
    RLZ_RETURN_IF_ERROR(ReadZStream(in, &pos, buf, gz));
    lbytes = *buf;
  }

  // Pass 1: walk the vbyte length stream once, validating it and summing
  // the decoded document size (a zero length is a one-byte literal).
  const uint8_t* lp = reinterpret_cast<const uint8_t*>(lbytes.data());
  const uint8_t* const lend = lp + lbytes.size();
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (lp >= lend) return Status::Corruption("vbyte truncated");
    uint32_t v = *lp++;
    if (v >= 0x80) {
      v &= 0x7F;
      int shift = 7;
      for (;;) {
        if (lp >= lend) return Status::Corruption("vbyte truncated");
        if (shift > 28) return Status::Corruption("vbyte overlong");
        const uint32_t byte = *lp++;
        v |= (byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
    }
    total += v == 0 ? 1 : v;
  }
  if (total > kMaxDecodedDocBytes) {
    return Status::Corruption("factor coder: decoded document exceeds limit");
  }

  // Pass 2: re-walk both streams and expand straight into the output —
  // the paper's memcpy decode with no intermediate vectors at all. The
  // output carries 16 bytes of slack so factors up to 16 bytes (the
  // common case) can use one unconditional 16-byte copy; the slack is
  // trimmed before returning. On a validation failure the output is
  // rolled back to its input length.
  const std::string_view d = dict.text();
  const size_t out_base = text->size();
  text->resize(out_base + total + 16);
  char* dst = text->data() + out_base;
  const uint8_t* pp = reinterpret_cast<const uint8_t*>(pbytes.data());
  lp = reinterpret_cast<const uint8_t*>(lbytes.data());
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = *lp++;
    if (len >= 0x80) {  // same parse as pass 1, already validated
      len &= 0x7F;
      int shift = 7;
      for (;;) {
        const uint32_t byte = *lp++;
        len |= (byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
    }
    const uint32_t p = static_cast<uint32_t>(pp[0]) |
                       (static_cast<uint32_t>(pp[1]) << 8) |
                       (static_cast<uint32_t>(pp[2]) << 16) |
                       (static_cast<uint32_t>(pp[3]) << 24);
    pp += 4;
    if (len == 0) {
      if (p > 0xFF) {
        text->resize(out_base);
        return Status::Corruption("factor coder: literal out of range");
      }
      *dst++ = static_cast<char>(p);
    } else {
      if (static_cast<size_t>(p) + len > d.size()) {
        text->resize(out_base);
        return Status::Corruption("factor coder: factor outside dictionary");
      }
      if (len <= 16 && static_cast<size_t>(p) + 16 <= d.size()) {
        std::memcpy(dst, d.data() + p, 16);  // slack absorbs the overrun
      } else {
        std::memcpy(dst, d.data() + p, len);
      }
      dst += len;
    }
  }
  text->resize(out_base + total);
  return Status::OK();
}

Status FactorCoder::DecodeDoc(std::string_view in, const Dictionary& dict,
                              std::string* text,
                              DecodeScratch* scratch) const {
  // The paper's four pairs all decode through the fused no-vector path;
  // the extension codecs (PFD/S9) go through the general stream decode.
  if ((coding_.pos == PosCoding::kU32 || coding_.pos == PosCoding::kZlib) &&
      (coding_.len == LenCoding::kVByte || coding_.len == LenCoding::kZlib)) {
    return DecodeDocFused(in, dict, text, scratch);
  }
  std::vector<uint32_t> local_positions;
  std::vector<uint32_t> local_lengths;
  std::vector<uint32_t>* positions =
      scratch != nullptr ? &scratch->positions : &local_positions;
  std::vector<uint32_t>* lengths =
      scratch != nullptr ? &scratch->lengths : &local_lengths;
  RLZ_RETURN_IF_ERROR(DecodeStreams(in, positions, lengths, nullptr, scratch));

  const std::string_view d = dict.text();
  const size_t n = positions->size();
  const uint32_t* ps = positions->data();
  const uint32_t* ls = lengths->data();

  // Pass 1: validate every factor and sum the decoded size, so the output
  // is sized exactly once (even on the fresh-allocation fallback path) and
  // a crafted stream cannot claim a multi-GiB document.
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ls[i] == 0) {
      if (ps[i] > 0xFF) {
        return Status::Corruption("factor coder: literal out of range");
      }
      total += 1;
    } else {
      if (static_cast<size_t>(ps[i]) + ls[i] > d.size()) {
        return Status::Corruption("factor coder: factor outside dictionary");
      }
      total += ls[i];
    }
  }
  if (total > kMaxDecodedDocBytes) {
    return Status::Corruption("factor coder: decoded document exceeds limit");
  }

  // Pass 2: the paper's memcpy decode — one copy per factor into an
  // exactly-sized buffer, no per-factor growth or bounds checks.
  const size_t out_base = text->size();
  text->resize(out_base + total);
  char* dst = text->data() + out_base;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t len = ls[i];
    if (len == 0) {
      *dst++ = static_cast<char>(ps[i]);
    } else {
      std::memcpy(dst, d.data() + ps[i], len);
      dst += len;
    }
  }
  return Status::OK();
}

}  // namespace rlz
