#include "core/rlz_archive.h"

#include <algorithm>

#include "codecs/int_codecs.h"
#include "io/file.h"
#include "io/mmap_file.h"
#include "store/format.h"
#include "util/crc32.h"
#include "util/logging.h"

// RlzArchive::Build lives in src/build/archive_builder.cpp: it drives the
// parallel build pipeline (DESIGN.md §7) through RlzArchiveBuilder.

namespace rlz {
namespace {
constexpr char kArchiveMagic[4] = {'R', 'L', 'Z', 'A'};
constexpr uint8_t kLegacyArchiveVersion = 1;

// Validates a (pos, len) coding byte pair through the name round-trip,
// rejecting invalid enum bytes from crafted files.
Status ValidateCoding(uint8_t pos_byte, uint8_t len_byte, PairCoding* coding) {
  coding->pos = static_cast<PosCoding>(pos_byte);
  coding->len = static_cast<LenCoding>(len_byte);
  const std::string name = coding->name();
  auto parsed = PairCoding::FromName(name);
  if (!parsed.ok() || parsed->pos != coding->pos ||
      parsed->len != coding->len) {
    return Status::Corruption("rlz archive: invalid coding bytes");
  }
  return Status::OK();
}
}  // namespace

std::unique_ptr<RlzArchive> RlzArchive::BuildFromFactors(
    std::shared_ptr<const Dictionary> dict,
    const std::vector<std::vector<Factor>>& docs, PairCoding coding) {
  RLZ_CHECK(dict != nullptr);
  std::unique_ptr<RlzArchive> archive(
      new RlzArchive(std::move(dict), coding));
  for (const std::vector<Factor>& factors : docs) {
    archive->AppendEncodedDoc(factors);
  }
  return archive;
}

Status RlzArchive::CheckFormatLimits(uint64_t dict_bytes, uint64_t num_docs,
                                     uint64_t max_doc_bytes) {
  if (dict_bytes > kMaxFormatValue) {
    return Status::InvalidArgument(
        "rlz archive: dictionary exceeds the v1 format's 32-bit size field");
  }
  if (num_docs > kMaxFormatValue) {
    return Status::InvalidArgument(
        "rlz archive: document count exceeds the v1 format's 32-bit field");
  }
  if (max_doc_bytes > kMaxFormatValue) {
    return Status::InvalidArgument(
        "rlz archive: an encoded document exceeds the v1 format's 32-bit "
        "size field");
  }
  return Status::OK();
}

std::string RlzArchive::Serialize() const {
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutByte(static_cast<uint8_t>(coder_.coding().pos));
  writer.PutByte(static_cast<uint8_t>(coder_.coding().len));
  writer.PutLengthPrefixed(dict_->text());
  writer.PutVarint64(num_docs());
  for (size_t i = 0; i < num_docs(); ++i) {
    writer.PutVarint64(map_.size(i));
  }
  writer.PutBytes(payload());
  return std::move(writer).Seal();
}

Status RlzArchive::Save(const std::string& path) const {
  return WriteFile(path, Serialize());
}

StatusOr<std::unique_ptr<RlzArchive>> RlzArchive::FromEnvelope(
    const ParsedEnvelope& envelope, const OpenOptions& options) {
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();
  uint8_t pos_byte = 0;
  uint8_t len_byte = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadByte(&pos_byte));
  RLZ_RETURN_IF_ERROR(reader.ReadByte(&len_byte));
  PairCoding coding;
  RLZ_RETURN_IF_ERROR(ValidateCoding(pos_byte, len_byte, &coding));

  // Zero-copy open (DESIGN.md §9): the dictionary text and the payload
  // alias the loaded file bytes, which the envelope's shared backing
  // keeps alive — nothing is re-copied on open.
  std::string_view dict_text;
  RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&dict_text));
  auto dict = std::make_shared<const Dictionary>(
      dict_text, envelope.backing(), options.build_suffix_array);

  std::unique_ptr<RlzArchive> archive(
      new RlzArchive(std::move(dict), coding));
  std::vector<uint64_t> sizes;
  RLZ_RETURN_IF_ERROR(reader.ReadSizeTable(&sizes));
  for (uint64_t size : sizes) archive->map_.Add(size);
  archive->backing_ = envelope.backing();
  archive->payload_view_ = reader.ReadRest();
  return archive;
}

StatusOr<std::unique_ptr<RlzArchive>> RlzArchive::Load(
    const std::string& path, const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(RawContainerFile raw, ReadContainerFile(path, options));
  if (IsLegacyRlzV1(raw.view)) {
    return LoadLegacyV1(std::string(raw.view), path, options);
  }
  RLZ_ASSIGN_OR_RETURN(
      ParsedEnvelope envelope,
      ParsedEnvelope::FromView(raw.view, raw.owner, path));
  if (raw.map != nullptr) raw.map->Advise(MmapFile::Access::kRandom);
  return FromEnvelope(envelope, options);
}

Status RlzArchive::SaveLegacyV1(const std::string& path) const {
  uint64_t max_doc_bytes = 0;
  for (size_t i = 0; i < num_docs(); ++i) {
    max_doc_bytes = std::max<uint64_t>(max_doc_bytes, map_.size(i));
  }
  RLZ_RETURN_IF_ERROR(
      CheckFormatLimits(dict_->size(), num_docs(), max_doc_bytes));

  std::string out;
  out.append(kArchiveMagic, 4);
  out.push_back(static_cast<char>(kLegacyArchiveVersion));
  out.push_back(static_cast<char>(coder_.coding().pos));
  out.push_back(static_cast<char>(coder_.coding().len));
  VByteCodec::Put(static_cast<uint32_t>(dict_->size()), &out);
  out.append(dict_->text());
  VByteCodec::Put(static_cast<uint32_t>(num_docs()), &out);
  for (size_t i = 0; i < num_docs(); ++i) {
    VByteCodec::Put(static_cast<uint32_t>(map_.size(i)), &out);
  }
  out.append(payload());
  const uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return WriteFile(path, out);
}

StatusOr<std::unique_ptr<RlzArchive>> RlzArchive::LoadLegacyV1(
    std::string raw_bytes, const std::string& path,
    const OpenOptions& options) {
  // The file bytes move into a shared backing so the dictionary and the
  // payload can alias them zero-copy, exactly as the envelope path does.
  auto backing = std::make_shared<const std::string>(std::move(raw_bytes));
  const std::string& raw = *backing;
  if (raw.size() < 11 ||
      std::string_view(raw.data(), 4) != std::string_view(kArchiveMagic, 4)) {
    return Status::Corruption("rlz archive: bad magic in " + path);
  }
  uint32_t want_crc = 0;
  for (int i = 0; i < 4; ++i) {
    want_crc |= static_cast<uint32_t>(
                    static_cast<uint8_t>(raw[raw.size() - 4 + i]))
                << (8 * i);
  }
  if (Crc32(raw.data(), raw.size() - 4) != want_crc) {
    return Status::Corruption("rlz archive: checksum mismatch in " + path);
  }
  size_t pos = 4;
  const uint8_t version = static_cast<uint8_t>(raw[pos++]);
  if (version != kLegacyArchiveVersion) {
    return Status::Corruption("rlz archive: unsupported version");
  }
  PairCoding coding;
  RLZ_RETURN_IF_ERROR(ValidateCoding(static_cast<uint8_t>(raw[pos]),
                                     static_cast<uint8_t>(raw[pos + 1]),
                                     &coding));
  pos += 2;

  // Everything before the 4-byte CRC trailer is header + payload; the
  // size-11 check above guarantees payload_end >= pos here. All subsequent
  // reads must stay below payload_end — vbyte reads are bounds-checked
  // against the full buffer, so without these explicit checks a truncated
  // size table would silently consume the CRC trailer.
  const size_t payload_end = raw.size() - 4;

  uint32_t dict_size = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &dict_size));
  if (pos > payload_end || dict_size > payload_end - pos) {
    return Status::Corruption("rlz archive: truncated dictionary");
  }
  auto dict = std::make_shared<const Dictionary>(
      std::string_view(raw).substr(pos, dict_size), backing,
      options.build_suffix_array);
  pos += dict_size;

  uint32_t ndocs = 0;
  RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &ndocs));
  // Each size-table entry occupies at least one byte, so ndocs can never
  // exceed the bytes left before the trailer; checking before the
  // allocation below keeps a crafted count from forcing a huge allocation.
  if (pos > payload_end || ndocs > payload_end - pos) {
    return Status::Corruption("rlz archive: document count exceeds file");
  }
  std::unique_ptr<RlzArchive> archive(
      new RlzArchive(std::move(dict), coding));
  uint64_t payload_size = 0;
  std::vector<uint32_t> sizes(ndocs);
  for (uint32_t i = 0; i < ndocs; ++i) {
    RLZ_RETURN_IF_ERROR(VByteCodec::Get(raw, &pos, &sizes[i]));
    payload_size += sizes[i];
  }
  if (pos > payload_end) {
    return Status::Corruption("rlz archive: truncated size table");
  }
  if (payload_end - pos != payload_size) {
    return Status::Corruption("rlz archive: payload size mismatch");
  }
  for (uint32_t i = 0; i < ndocs; ++i) archive->map_.Add(sizes[i]);
  archive->backing_ = backing;
  archive->payload_view_ = std::string_view(raw).substr(pos, payload_size);
  return archive;
}

Status RlzArchive::Get(size_t id, std::string* doc, SimDisk* disk,
                       DecodeScratch* scratch) const {
  if (id >= num_docs()) return Status::OutOfRange("rlz archive: bad doc id");
  doc->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  // Only this document's factor stream is read from disk; the dictionary
  // is memory-resident and free (§3.1).
  if (disk != nullptr) disk->Read(off, size);
  return coder_.DecodeDoc(payload().substr(off, size), *dict_, doc, scratch);
}

Status RlzArchive::GetRange(size_t id, size_t offset, size_t length,
                            std::string* text, SimDisk* disk,
                            DecodeScratch* scratch) const {
  if (id >= num_docs()) return Status::OutOfRange("rlz archive: bad doc id");
  text->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  if (disk != nullptr) disk->Read(off, size);
  return coder_.DecodeRange(payload().substr(off, size), *dict_, offset,
                            length, text, scratch);
}

}  // namespace rlz
