#ifndef RLZ_CORE_FACTOR_CODER_H_
#define RLZ_CORE_FACTOR_CODER_H_

/// \file
/// Position/length stream codings (§3.4) and the per-document factor coder.

#include <string>
#include <string_view>
#include <vector>

#include "core/dictionary.h"
#include "core/factor.h"
#include "store/decode_scratch.h"
#include "util/status.h"

namespace rlz {

/// Position-stream codes (§3.4). "Z" applies the general-purpose gzipx
/// compressor to the U32-encoded positions of one document, exploiting the
/// within-document skew the paper observed; "U" stores raw 32-bit words.
/// kPFD is an extension codec from the paper's future-work list.
enum class PosCoding : uint8_t {
  kU32 = 0,   ///< "U": raw 32-bit words.
  kZlib = 1,  ///< "Z": gzipx over the U32 stream.
  kPFD = 2,   ///< "PFD": PForDelta-style extension codec.
};

/// Length-stream codes. "V" is vbyte (the paper's default, Fig. 3
/// motivates it); "Z" compresses the vbyte stream with gzipx; kS9/kPFD are
/// the future-work codecs (§6).
enum class LenCoding : uint8_t {
  kVByte = 0,  ///< "V": vbyte.
  kZlib = 1,   ///< "Z": gzipx over the vbyte stream.
  kS9 = 2,     ///< "S9": Simple-9 extension codec.
  kPFD = 3,    ///< "PFD": PForDelta-style extension codec.
};

/// A position–length coding pair, named as in the paper's tables: first
/// letter = positions, second = lengths (e.g. "ZV" = zlib positions, vbyte
/// lengths).
struct PairCoding {
  /// Position-stream code.
  PosCoding pos = PosCoding::kZlib;
  /// Length-stream code.
  LenCoding len = LenCoding::kVByte;

  /// The paper's two-letter name (e.g. "ZV").
  std::string name() const;
  /// Parses a two-letter name back to a coding pair; InvalidArgument on
  /// unknown names.
  static StatusOr<PairCoding> FromName(std::string_view name);
};

/// "ZZ": gzipx positions, gzipx lengths (Tables 4/5/8).
inline constexpr PairCoding kZZ{PosCoding::kZlib, LenCoding::kZlib};
/// "ZV": gzipx positions, vbyte lengths — the paper's recommended pair.
inline constexpr PairCoding kZV{PosCoding::kZlib, LenCoding::kVByte};
/// "UZ": raw positions, gzipx lengths.
inline constexpr PairCoding kUZ{PosCoding::kU32, LenCoding::kZlib};
/// "UV": raw positions, vbyte lengths — the fastest-decode pair.
inline constexpr PairCoding kUV{PosCoding::kU32, LenCoding::kVByte};

/// Encodes one document's factor list into a byte string and back. The
/// per-document layout is
///   vbyte(num_factors) | positions stream | lengths stream
/// with gzipx streams length-prefixed. Positions and lengths are grouped
/// per document and coded separately, as §3.4 prescribes.
class FactorCoder {
 public:
  /// A coder for the given position/length coding pair.
  explicit FactorCoder(PairCoding coding) : coding_(coding) {}

  /// The coding pair this coder implements.
  PairCoding coding() const { return coding_; }

  /// Largest decoded document a factor stream may claim (1 GiB). The sum
  /// of factor lengths is checked against this before the output buffer is
  /// sized, so a crafted stream of maximal lengths cannot force a
  /// multi-GiB allocation out of a few hundred input bytes.
  static constexpr uint64_t kMaxDecodedDocBytes = 1ull << 30;

  /// Rejects per-document z-streams the vbyte32 framing cannot represent:
  /// a raw or compressed stream of kMaxZStreamBytes or more would be
  /// silently truncated to 32 bits in the stream headers and round-trip
  /// corrupt. Exposed so tests can exercise the guard without allocating
  /// 4 GiB (the same pattern as RlzArchive::CheckFormatLimits).
  static Status CheckZStreamLimits(uint64_t raw_bytes, uint64_t z_bytes);

  /// Upper bound (exclusive) for CheckZStreamLimits: 4 GiB.
  static constexpr uint64_t kMaxZStreamBytes = 1ull << 32;

  /// Appends the encoded form of `factors` to `out`. Returns
  /// InvalidArgument (with `out` restored to its input length) if a
  /// z-coded stream exceeds the per-document format limits — see
  /// CheckZStreamLimits.
  Status EncodeDoc(const std::vector<Factor>& factors, std::string* out) const;

  /// Decodes an encoded document back to factors. `in` must begin at the
  /// encoding; trailing bytes are ignored. Sets `*consumed` if non-null.
  Status DecodeFactors(std::string_view in, std::vector<Factor>* factors,
                       size_t* consumed = nullptr) const;

  /// Decodes an encoded document straight to text via `dict` (Fig. 2),
  /// appending to `*text`. Expansion is two-pass: factor lengths are
  /// summed and bounds-checked first, the output is resized once, then
  /// factors are expanded with a tight memcpy loop — the paper's
  /// memcpy-decode, with no per-factor growth checks. A non-null `scratch`
  /// lends reusable position/length/inflate buffers so the decode performs
  /// no heap allocations beyond the output itself (DESIGN.md §9); output
  /// bytes are identical with or without scratch.
  Status DecodeDoc(std::string_view in, const Dictionary& dict,
                   std::string* text, DecodeScratch* scratch = nullptr) const;

  /// Decodes only text[offset, offset+length) of the document, skipping
  /// factors before the range and stopping after it — snippet extraction
  /// without materializing the whole document. If the range extends past
  /// the end of the document the available suffix is returned. `scratch`
  /// as in DecodeDoc.
  Status DecodeRange(std::string_view in, const Dictionary& dict,
                     size_t offset, size_t length, std::string* text,
                     DecodeScratch* scratch = nullptr) const;

 private:
  Status DecodeStreams(std::string_view in, std::vector<uint32_t>* positions,
                       std::vector<uint32_t>* lengths, size_t* consumed,
                       DecodeScratch* scratch) const;

  /// The fused fast path behind DecodeDoc for the paper's four pairs
  /// (U32/Zlib positions × VByte/Zlib lengths): factors are expanded
  /// straight off the raw byte streams with no intermediate
  /// position/length vectors. Byte-identical output to the general path.
  Status DecodeDocFused(std::string_view in, const Dictionary& dict,
                        std::string* text, DecodeScratch* scratch) const;

  PairCoding coding_;
};

}  // namespace rlz

#endif  // RLZ_CORE_FACTOR_CODER_H_
