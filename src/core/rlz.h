#ifndef RLZ_CORE_RLZ_H_
#define RLZ_CORE_RLZ_H_

/// \file
/// Umbrella header for the rlz library's public API.
///
/// Typical usage (see examples/quickstart.cpp):
///
///   rlz::Collection collection = ...;                 // your documents
///   auto archive = rlz::CompressCollection(
///       collection, {.dict_bytes = 1 << 20, .sample_bytes = 1024,
///                    .coding = rlz::kZV});
///   std::string doc;
///   RLZ_CHECK(archive->Get(42, &doc).ok());           // random access

#include <memory>

#include "core/dictionary.h"
#include "core/factor.h"
#include "core/factor_coder.h"
#include "core/factorizer.h"
#include "core/rlz_archive.h"
#include "corpus/collection.h"

/// Everything in this library lives in namespace rlz: the RLZ document
/// store (core), its substrates (suffix, codecs, zip), the baselines
/// (store, semistatic), the parallel build pipeline (build), and the
/// serving layer (serve). See DESIGN.md §2 for the module map.
namespace rlz {

/// One-call compression options.
struct RlzOptions {
  /// Total dictionary size (§3.1: "dictated by the user and/or the
  /// available memory").
  size_t dict_bytes = 1 << 20;
  /// Sample size for dictionary generation (the paper's default is 1 KB).
  size_t sample_bytes = 1024;
  /// Position/length coding pair for the factor streams (§3.4).
  PairCoding coding = kZV;
  /// Track per-byte dictionary usage (the Unused % statistic).
  bool track_coverage = false;
  /// Worker threads for the encode (DESIGN.md §7); output bytes are
  /// identical for any value.
  int num_threads = 1;
};

/// Builds a sampled dictionary over `collection` and encodes every document
/// against it — steps 1–3 of §3.1 in one call.
std::unique_ptr<RlzArchive> CompressCollection(const Collection& collection,
                                               const RlzOptions& options = {},
                                               RlzBuildInfo* info = nullptr);

}  // namespace rlz

#endif  // RLZ_CORE_RLZ_H_
