#include "core/factorizer.h"

#include <cstring>

#include "core/factor_coder.h"
#include "util/logging.h"

namespace rlz {

Factorizer::Factorizer(const Dictionary* dict, bool track_coverage)
    : dict_(dict), track_coverage_(track_coverage) {
  RLZ_CHECK(dict != nullptr);
  if (track_coverage_) coverage_.Assign(dict_->size());
}

void Factorizer::Factorize(std::string_view doc, std::vector<Factor>* out) {
  const SuffixMatcher& matcher = dict_->matcher();
  size_t i = 0;
  while (i < doc.size()) {
    const Match m = matcher.LongestMatch(doc.substr(i));
    Factor f;
    if (m.len == 0) {
      // Character absent from the dictionary: emit a literal.
      f.pos = static_cast<uint8_t>(doc[i]);
      f.len = 0;
      i += 1;
    } else {
      f.pos = static_cast<uint32_t>(m.pos);
      f.len = static_cast<uint32_t>(m.len);
      i += m.len;
      if (track_coverage_) coverage_.SetRange(m.pos, m.len);
    }
    out->push_back(f);
    ++stats_.num_factors;
    if (f.len == 0) ++stats_.num_literals;
  }
  stats_.text_bytes += doc.size();
}

Status Factorizer::Decode(const std::vector<Factor>& factors,
                          const Dictionary& dict, std::string* out) {
  const std::string_view d = dict.text();
  // Pass 1: validate every factor and sum the exact output size, so the
  // buffer is sized once and a crafted factor list cannot claim a
  // multi-GiB document (FactorCoder::kMaxDecodedDocBytes).
  uint64_t total = 0;
  for (const Factor& f : factors) {
    if (f.len == 0) {
      if (f.pos > 0xFF) return Status::Corruption("literal out of range");
      total += 1;
    } else {
      if (static_cast<size_t>(f.pos) + f.len > d.size()) {
        return Status::Corruption("factor outside dictionary");
      }
      total += f.len;
    }
  }
  if (total > FactorCoder::kMaxDecodedDocBytes) {
    return Status::Corruption("decoded document exceeds limit");
  }
  // Pass 2: the paper's Fig. 2 expansion as a tight memcpy loop.
  const size_t out_base = out->size();
  out->resize(out_base + total);
  char* dst = out->data() + out_base;
  for (const Factor& f : factors) {
    if (f.len == 0) {
      *dst++ = static_cast<char>(f.pos);
    } else {
      std::memcpy(dst, d.data() + f.pos, f.len);
      dst += f.len;
    }
  }
  return Status::OK();
}

double Factorizer::UnusedFraction() const {
  if (coverage_.empty()) return 0.0;
  return 1.0 -
         static_cast<double>(coverage_.CountSet()) / coverage_.size();
}

}  // namespace rlz
