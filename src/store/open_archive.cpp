#include "store/open_archive.h"

#include <map>
#include <mutex>
#include <utility>

#include "core/rlz_archive.h"
#include "io/file.h"
#include "semistatic/semistatic_archive.h"
#include "serve/sharded_store.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"

namespace rlz {
namespace {

// Adapters narrow each format's typed loader to the common signature.
// They are plain functions (the registry stores function pointers), and
// the built-in table below references them directly, so the registrations
// cannot be dropped by static-library dead stripping.

StatusOr<std::unique_ptr<Archive>> LoadRlz(const std::string& /*path*/,
                                           const ParsedEnvelope& envelope,
                                           const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<RlzArchive> archive,
                       RlzArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadAscii(const std::string& /*path*/,
                                             const ParsedEnvelope& envelope,
                                             const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<AsciiArchive> archive,
                       AsciiArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadBlocked(const std::string& /*path*/,
                                               const ParsedEnvelope& envelope,
                                               const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<BlockedArchive> archive,
                       BlockedArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadSemiStatic(
    const std::string& /*path*/, const ParsedEnvelope& envelope,
    const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<SemiStaticArchive> archive,
                       SemiStaticArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadSharded(const std::string& path,
                                               const ParsedEnvelope& envelope,
                                               const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<ShardedStore> store,
                       ShardedStore::FromEnvelope(envelope, path, options));
  return std::unique_ptr<Archive>(std::move(store));
}

std::mutex& RegistryMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::map<std::string, ArchiveLoader>& Registry() {
  static std::map<std::string, ArchiveLoader>* registry =
      new std::map<std::string, ArchiveLoader>{
          {RlzArchive::kFormatId, &LoadRlz},
          {AsciiArchive::kFormatId, &LoadAscii},
          {BlockedArchive::kFormatId, &LoadBlocked},
          {SemiStaticArchive::kFormatId, &LoadSemiStatic},
          {ShardedStore::kFormatId, &LoadSharded},
      };
  return *registry;
}

StatusOr<ArchiveLoader> FindLoader(const std::string& format_id,
                                   const std::string& path) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(format_id);
  if (it == Registry().end()) {
    return Status::InvalidArgument(path + ": no loader registered for format '" +
                                   format_id + "'");
  }
  return it->second;
}

}  // namespace

void RegisterArchiveFormat(const std::string& format_id,
                           ArchiveLoader loader) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry()[format_id] = loader;
}

StatusOr<ArchiveFormatInfo> SniffArchiveFile(const std::string& path) {
  RLZ_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  ArchiveFormatInfo info;
  if (IsLegacyRlzV1(raw)) {
    info.format_id = RlzArchive::kFormatId;
    info.version = 1;
    return info;
  }
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope,
                       ParsedEnvelope::FromBytes(std::move(raw), path));
  info.format_id = envelope.format_id();
  info.version = envelope.version();
  return info;
}

StatusOr<std::unique_ptr<Archive>> OpenArchive(const std::string& path,
                                               const OpenOptions& options,
                                               ArchiveFormatInfo* sniffed) {
  RLZ_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  if (IsLegacyRlzV1(raw)) {
    if (sniffed != nullptr) {
      sniffed->format_id = RlzArchive::kFormatId;
      sniffed->version = 1;
    }
    RLZ_ASSIGN_OR_RETURN(
        std::unique_ptr<RlzArchive> archive,
        RlzArchive::LoadLegacyV1(std::move(raw), path, options));
    return std::unique_ptr<Archive>(std::move(archive));
  }
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope,
                       ParsedEnvelope::FromBytes(std::move(raw), path));
  if (sniffed != nullptr) {
    sniffed->format_id = envelope.format_id();
    sniffed->version = envelope.version();
  }
  RLZ_ASSIGN_OR_RETURN(ArchiveLoader loader,
                       FindLoader(envelope.format_id(), path));
  return loader(path, envelope, options);
}

}  // namespace rlz
