#include "store/open_archive.h"

#include <map>
#include <mutex>
#include <utility>

#include "core/rlz_archive.h"
#include "io/file.h"
#include "io/file_system.h"
#include "io/mmap_file.h"
#include "semistatic/semistatic_archive.h"
#include "serve/sharded_store.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"

namespace rlz {
namespace {

// Adapters narrow each format's typed loader to the common signature.
// They are plain functions (the registry stores function pointers), and
// the built-in table below references them directly, so the registrations
// cannot be dropped by static-library dead stripping.

StatusOr<std::unique_ptr<Archive>> LoadRlz(const std::string& /*path*/,
                                           const ParsedEnvelope& envelope,
                                           const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<RlzArchive> archive,
                       RlzArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadAscii(const std::string& /*path*/,
                                             const ParsedEnvelope& envelope,
                                             const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<AsciiArchive> archive,
                       AsciiArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadBlocked(const std::string& /*path*/,
                                               const ParsedEnvelope& envelope,
                                               const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<BlockedArchive> archive,
                       BlockedArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadSemiStatic(
    const std::string& /*path*/, const ParsedEnvelope& envelope,
    const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<SemiStaticArchive> archive,
                       SemiStaticArchive::FromEnvelope(envelope, options));
  return std::unique_ptr<Archive>(std::move(archive));
}

StatusOr<std::unique_ptr<Archive>> LoadSharded(const std::string& path,
                                               const ParsedEnvelope& envelope,
                                               const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<ShardedStore> store,
                       ShardedStore::FromEnvelope(envelope, path, options));
  return std::unique_ptr<Archive>(std::move(store));
}

std::mutex& RegistryMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::map<std::string, ArchiveLoader>& Registry() {
  static std::map<std::string, ArchiveLoader>* registry =
      new std::map<std::string, ArchiveLoader>{
          {RlzArchive::kFormatId, &LoadRlz},
          {AsciiArchive::kFormatId, &LoadAscii},
          {BlockedArchive::kFormatId, &LoadBlocked},
          {SemiStaticArchive::kFormatId, &LoadSemiStatic},
          {ShardedStore::kFormatId, &LoadSharded},
      };
  return *registry;
}

StatusOr<ArchiveLoader> FindLoader(const std::string& format_id,
                                   const std::string& path) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(format_id);
  if (it == Registry().end()) {
    return Status::InvalidArgument(path + ": no loader registered for format '" +
                                   format_id + "'");
  }
  return it->second;
}

}  // namespace

StatusOr<RawContainerFile> ReadContainerFile(const std::string& path,
                                             const OpenOptions& options) {
  RawContainerFile raw;
  if (options.fs != nullptr) {
    RLZ_ASSIGN_OR_RETURN(std::string bytes, options.fs->Read(path));
    auto owned = std::make_shared<const std::string>(std::move(bytes));
    raw.view = std::string_view(*owned);
    raw.owner = std::move(owned);
    return raw;
  }
  if (options.use_mmap) {
    RLZ_ASSIGN_OR_RETURN(MmapFile map, MmapFile::Open(path));
    auto shared = std::make_shared<const MmapFile>(std::move(map));
    // Every open starts with a front-to-back CRC validation scan.
    shared->Advise(MmapFile::Access::kSequential);
    raw.view = shared->view();
    raw.map = shared.get();
    raw.owner = std::move(shared);
    return raw;
  }
  RLZ_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  auto owned = std::make_shared<const std::string>(std::move(bytes));
  raw.view = std::string_view(*owned);
  raw.owner = std::move(owned);
  return raw;
}

void RegisterArchiveFormat(const std::string& format_id,
                           ArchiveLoader loader) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry()[format_id] = loader;
}

StatusOr<ArchiveFormatInfo> SniffArchiveFile(const std::string& path) {
  RLZ_ASSIGN_OR_RETURN(RawContainerFile raw, ReadContainerFile(path, {}));
  ArchiveFormatInfo info;
  if (IsLegacyRlzV1(raw.view)) {
    info.format_id = RlzArchive::kFormatId;
    info.version = 1;
    return info;
  }
  RLZ_ASSIGN_OR_RETURN(
      ParsedEnvelope envelope,
      ParsedEnvelope::FromView(raw.view, std::move(raw.owner), path));
  info.format_id = envelope.format_id();
  info.version = envelope.version();
  return info;
}

StatusOr<std::unique_ptr<Archive>> OpenArchive(const std::string& path,
                                               const OpenOptions& options,
                                               ArchiveFormatInfo* sniffed) {
  RLZ_ASSIGN_OR_RETURN(RawContainerFile raw, ReadContainerFile(path, options));
  if (IsLegacyRlzV1(raw.view)) {
    if (sniffed != nullptr) {
      sniffed->format_id = RlzArchive::kFormatId;
      sniffed->version = 1;
    }
    // The legacy loader owns its bytes; a copy off the mapping is fine
    // for a format that exists only for compatibility.
    RLZ_ASSIGN_OR_RETURN(
        std::unique_ptr<RlzArchive> archive,
        RlzArchive::LoadLegacyV1(std::string(raw.view), path, options));
    return std::unique_ptr<Archive>(std::move(archive));
  }
  RLZ_ASSIGN_OR_RETURN(
      ParsedEnvelope envelope,
      ParsedEnvelope::FromView(raw.view, raw.owner, path));
  if (sniffed != nullptr) {
    sniffed->format_id = envelope.format_id();
    sniffed->version = envelope.version();
  }
  // Validation scanned sequentially; serving reads point-access.
  if (raw.map != nullptr) raw.map->Advise(MmapFile::Access::kRandom);
  RLZ_ASSIGN_OR_RETURN(ArchiveLoader loader,
                       FindLoader(envelope.format_id(), path));
  return loader(path, envelope, options);
}

}  // namespace rlz
