#ifndef RLZ_STORE_BLOCKED_ARCHIVE_H_
#define RLZ_STORE_BLOCKED_ARCHIVE_H_

/// \file
/// The blocked general-purpose-compressor baseline (§2.2).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/collection.h"
#include "store/archive.h"
#include "store/open_archive.h"
#include "util/lru_cache.h"
#include "zip/compressor.h"

namespace rlz {

class GzipxCompressor;

/// The Lucene/Indri-style baseline (§2.2): documents are grouped into
/// fixed-size blocks and each block is compressed independently with a
/// general-purpose compressor. Retrieving a document reads and decompresses
/// its whole containing block — the compression/retrieval-speed trade-off
/// RLZ is designed to escape.
///
/// A small decode cache of recent blocks is kept (as any real blocked
/// store does): consecutive requests into the same block decompress it
/// once. This is what makes sequential scans of large-block archives
/// viable (the paper's sequential column) while random query-log access
/// still pays a full block decompression per request. The cache is the
/// serving layer's thread-safe LRU, so Get honours the Archive concurrency
/// contract: the historical single-block version corrupted results when
/// two threads hit different blocks.
class BlockedArchive final : public Archive {
 public:
  /// `block_bytes == 0` places one document per block (the paper's
  /// "0.0MB" rows). Otherwise documents are appended to a block until it
  /// reaches `block_bytes` of uncompressed text. `compressor` must outlive
  /// the archive. `cache_bytes == 0` sizes the decode cache to two of the
  /// archive's largest uncompressed blocks — the thread-safe equivalent of
  /// the classic one-block cache, deliberately too small to absorb
  /// query-log randomness (the paper's trade-off must stay visible).
  /// `num_threads > 1` compresses blocks concurrently on the build
  /// pipeline (blocks are independent units, so the payload is
  /// byte-identical to the serial build; DESIGN.md §7).
  BlockedArchive(const Collection& collection, const Compressor* compressor,
                 uint64_t block_bytes, uint64_t cache_bytes = 0,
                 int num_threads = 1);

  /// The scratch-less convenience overloads stay visible alongside the
  /// scratch-aware override below.
  using Archive::Get;
  using Archive::GetRange;

  /// Compressor name plus the block size (e.g. "gzipx-64K", "lzmax-1doc").
  std::string name() const override;
  /// Number of stored documents.
  size_t num_docs() const override { return docs_.size(); }
  /// Decompresses the containing block (or hits the decode cache) and
  /// copies the document out of it. A decoded block becomes a shared
  /// cache entry, so it is always freshly allocated; a gzipx-backed
  /// archive still lends `scratch`'s decoder tables to the block
  /// decompression.
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const override;
  /// Compressed payload plus a vbyte-style block/document directory.
  uint64_t stored_bytes() const override;

  /// Number of compressed blocks.
  size_t num_blocks() const { return blocks_.size(); }
  /// The target uncompressed block size (0 = one document per block).
  uint64_t block_bytes() const { return block_bytes_; }
  /// The shared decoded-block cache (hit/miss/eviction stats).
  const LruCache& block_cache() const { return *block_cache_; }

  /// On-disk format id inside the container envelope ("blocked").
  static constexpr char kFormatId[] = "blocked";
  /// Current format version.
  static constexpr uint32_t kFormatVersion = 1;

  /// Serializes the compressor id, block size, block/document directory,
  /// and compressed payload as a container envelope. Returns
  /// InvalidArgument if the backing compressor has no persistent id (see
  /// Compressor::persistent_id).
  Status Save(const std::string& path) const override;
  /// Opens an archive written by Save; the compressor is resolved from
  /// its recorded id via GetCompressor. Corruption on format errors.
  static StatusOr<std::unique_ptr<BlockedArchive>> Load(
      const std::string& path, const OpenOptions& options = {});
  /// Materializes an archive from a parsed envelope — the OpenArchive
  /// registry hook.
  static StatusOr<std::unique_ptr<BlockedArchive>> FromEnvelope(
      const ParsedEnvelope& envelope, const OpenOptions& options);

 private:
  BlockedArchive(const Compressor* compressor, uint64_t block_bytes);

  struct BlockInfo {
    uint64_t payload_offset;  // start of compressed block in payload_
    uint64_t payload_size;    // compressed size
  };
  struct DocInfo {
    uint32_t block;         // containing block
    uint32_t offset;        // uncompressed offset within the block
    uint32_t size;          // uncompressed size
  };

  // The compressed payload: the build path appends into owned_payload_;
  // the open path aliases the loaded file bytes (backing_) without
  // copying them (DESIGN.md §9).
  std::string_view payload() const {
    return backing_ != nullptr ? payload_view_
                               : std::string_view(owned_payload_);
  }

  const Compressor* compressor_;
  // Downcast computed once at construction: non-null iff the compressor
  // is gzipx, whose scratch-aware Decompress reuses decoder tables
  // across cache misses (keeps RTTI off the per-Get hot path).
  const GzipxCompressor* gzipx_ = nullptr;
  uint64_t block_bytes_;
  std::string owned_payload_;            // build path
  std::shared_ptr<const void> backing_;  // open path: keeps file bytes alive
  std::string_view payload_view_;        // into the backed bytes
  std::vector<BlockInfo> blocks_;
  std::vector<DocInfo> docs_;
  // Decoded-block cache, keyed by block index (see class comment).
  mutable std::unique_ptr<LruCache> block_cache_;
};

}  // namespace rlz

#endif  // RLZ_STORE_BLOCKED_ARCHIVE_H_
