#include "store/ascii_archive.h"

namespace rlz {

AsciiArchive::AsciiArchive(const Collection& collection) {
  payload_.reserve(collection.size_bytes());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    payload_.append(collection.doc(i));
    map_.Add(collection.doc_size(i));
  }
}

Status AsciiArchive::Get(size_t id, std::string* doc, SimDisk* disk) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("ascii archive: bad doc id");
  }
  doc->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  if (disk != nullptr) disk->Read(off, size);
  doc->append(payload_, off, size);
  return Status::OK();
}

}  // namespace rlz
