#include "store/ascii_archive.h"

#include <vector>

#include "store/format.h"

namespace rlz {

AsciiArchive::AsciiArchive(const Collection& collection) {
  payload_.reserve(collection.size_bytes());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    payload_.append(collection.doc(i));
    map_.Add(collection.doc_size(i));
  }
}

Status AsciiArchive::Get(size_t id, std::string* doc, SimDisk* disk,
                         DecodeScratch* /*scratch*/) const {
  if (id >= num_docs()) {
    return Status::OutOfRange("ascii archive: bad doc id");
  }
  doc->clear();
  const uint64_t off = map_.offset(id);
  const uint64_t size = map_.size(id);
  if (disk != nullptr) disk->Read(off, size);
  doc->append(payload_, off, size);
  return Status::OK();
}

Status AsciiArchive::Save(const std::string& path) const {
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutVarint64(num_docs());
  for (size_t i = 0; i < num_docs(); ++i) {
    writer.PutVarint64(map_.size(i));
  }
  writer.PutBytes(payload_);
  return std::move(writer).WriteTo(path);
}

StatusOr<std::unique_ptr<AsciiArchive>> AsciiArchive::FromEnvelope(
    const ParsedEnvelope& envelope, const OpenOptions& /*options*/) {
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();
  std::unique_ptr<AsciiArchive> archive(new AsciiArchive());
  std::vector<uint64_t> sizes;
  RLZ_RETURN_IF_ERROR(reader.ReadSizeTable(&sizes));
  for (uint64_t size : sizes) archive->map_.Add(size);
  archive->payload_ = std::string(reader.ReadRest());
  return archive;
}

StatusOr<std::unique_ptr<AsciiArchive>> AsciiArchive::Load(
    const std::string& path, const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope, ReadEnvelopeFile(path));
  return FromEnvelope(envelope, options);
}

}  // namespace rlz
