#ifndef RLZ_STORE_ASCII_ARCHIVE_H_
#define RLZ_STORE_ASCII_ARCHIVE_H_

#include <string>

#include "corpus/collection.h"
#include "store/archive.h"
#include "store/doc_map.h"

namespace rlz {

/// The paper's first baseline: "a raw concatenation of uncompressed
/// documents with a map specifying offsets to each document location".
class AsciiArchive final : public Archive {
 public:
  explicit AsciiArchive(const Collection& collection);

  std::string name() const override { return "ascii"; }
  size_t num_docs() const override { return map_.num_docs(); }
  Status Get(size_t id, std::string* doc,
             SimDisk* disk = nullptr) const override;
  uint64_t stored_bytes() const override {
    return payload_.size() + map_.serialized_bytes();
  }

 private:
  std::string payload_;
  DocMap map_;
};

}  // namespace rlz

#endif  // RLZ_STORE_ASCII_ARCHIVE_H_
