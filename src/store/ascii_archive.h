#ifndef RLZ_STORE_ASCII_ARCHIVE_H_
#define RLZ_STORE_ASCII_ARCHIVE_H_

/// \file
/// The uncompressed baseline archive (raw concatenation + document map).

#include <memory>
#include <string>

#include "corpus/collection.h"
#include "store/archive.h"
#include "store/doc_map.h"
#include "store/open_archive.h"

namespace rlz {

/// The paper's first baseline: "a raw concatenation of uncompressed
/// documents with a map specifying offsets to each document location".
class AsciiArchive final : public Archive {
 public:
  /// Concatenates every document of `collection` (copied).
  explicit AsciiArchive(const Collection& collection);

  /// The scratch-less convenience overloads stay visible alongside the
  /// scratch-aware override below.
  using Archive::Get;
  using Archive::GetRange;

  /// Always "ascii".
  std::string name() const override { return "ascii"; }
  /// Number of stored documents.
  size_t num_docs() const override { return map_.num_docs(); }
  /// Copies document `id` out of the concatenated payload. The copy is
  /// the entire decode, so `scratch` is unused.
  Status Get(size_t id, std::string* doc, SimDisk* disk,
             DecodeScratch* scratch) const override;
  /// Payload plus the serialized document map.
  uint64_t stored_bytes() const override {
    return payload_.size() + map_.serialized_bytes();
  }

  /// On-disk format id inside the container envelope ("ascii").
  static constexpr char kFormatId[] = "ascii";
  /// Current format version.
  static constexpr uint32_t kFormatVersion = 1;

  /// Serializes the document map and payload as a container envelope.
  Status Save(const std::string& path) const override;
  /// Opens an archive written by Save; Corruption on format errors.
  static StatusOr<std::unique_ptr<AsciiArchive>> Load(
      const std::string& path, const OpenOptions& options = {});
  /// Materializes an archive from a parsed envelope — the OpenArchive
  /// registry hook.
  static StatusOr<std::unique_ptr<AsciiArchive>> FromEnvelope(
      const ParsedEnvelope& envelope, const OpenOptions& options);

 private:
  AsciiArchive() = default;

  std::string payload_;
  DocMap map_;
};

}  // namespace rlz

#endif  // RLZ_STORE_ASCII_ARCHIVE_H_
