#ifndef RLZ_STORE_OPEN_ARCHIVE_H_
#define RLZ_STORE_OPEN_ARCHIVE_H_

/// \file
/// Format-agnostic archive opening: sniff a container's format id and
/// dispatch to the registered loader (DESIGN.md §8).

#include <memory>
#include <string>

#include "store/archive.h"
#include "store/format.h"
#include "util/status.h"

namespace rlz {

class FileSystem;
class MmapFile;

/// Knobs for opening a saved archive.
struct OpenOptions {
  /// Rebuild dictionary suffix arrays on open. Serving (Get/GetRange)
  /// never consults the suffix array — only factorizing *new* documents
  /// does — so a serving-only reopen should pass false and skip the
  /// dominant part of the open cost (see bench/serve_throughput's
  /// restart-cost table).
  bool build_suffix_array = true;
  /// Worker threads for multi-file opens (ShardedStore loads its shards
  /// in parallel). 0 means auto: one thread per shard, capped at the
  /// hardware parallelism (the shard count comes from an untrusted
  /// manifest, so it cannot dictate the fan-out on its own).
  int open_threads = 0;
  /// Decode-cache budget in bytes for formats that serve through a block
  /// cache (BlockedArchive). 0 means auto-size to two maximum blocks —
  /// the same default the build constructor uses.
  uint64_t cache_bytes = 0;
  /// Open container files through mmap instead of reading them onto the
  /// heap. The archive's zero-copy views then point straight into the
  /// page cache: cold-start cost becomes demand paging plus one CRC
  /// validation scan, and warm restarts skip the copy entirely
  /// (EXPERIMENTS.md, "Durability cost"). Ignored when `fs` is set.
  bool use_mmap = false;
  /// File system to read through (null means direct POSIX I/O). The
  /// durable store's recovery path injects its FileSystem here so
  /// checkpoint shards written through a FaultFs can be reopened from
  /// the same (possibly simulated) disk.
  std::shared_ptr<FileSystem> fs;
};

/// A container file's raw bytes plus whatever keeps them alive.
struct RawContainerFile {
  std::string_view view;
  std::shared_ptr<const void> owner;
  /// Non-null on the mmap path: lets callers re-advise the access
  /// pattern after the sequential validation scan.
  const MmapFile* map = nullptr;
};

/// Reads `path` honoring `options.fs` (reads route through the injected
/// file system) and `options.use_mmap` (page-cache mapping, advised
/// sequential for the validation scan). The single read entry point for
/// every archive open — pair with ParsedEnvelope::FromView.
StatusOr<RawContainerFile> ReadContainerFile(const std::string& path,
                                             const OpenOptions& options);

/// What SniffArchiveFile learned from a container header.
struct ArchiveFormatInfo {
  /// The envelope's format id ("rlz", "ascii", "blocked", "semistatic",
  /// "sharded"); legacy pre-envelope rlz archives report "rlz".
  std::string format_id;
  /// The format version (legacy pre-envelope rlz archives report 1).
  uint32_t version = 0;
};

/// Reads `path` and reports its container format id and version without
/// materializing the archive. The whole file is read and its envelope
/// (including the CRC trailer) validated, so a Corruption result means
/// the file is damaged, not merely unrecognized. To both sniff and open
/// in one read, pass OpenArchive's `sniffed` out-parameter instead.
StatusOr<ArchiveFormatInfo> SniffArchiveFile(const std::string& path);

/// A format loader: materializes an archive from its parsed envelope.
/// `path` is the container's own path (formats whose payload spans several
/// files — the sharded manifest — resolve siblings relative to it).
using ArchiveLoader = StatusOr<std::unique_ptr<Archive>> (*)(
    const std::string& path, const ParsedEnvelope& envelope,
    const OpenOptions& options);

/// Registers `loader` for `format_id`, replacing any previous registration.
/// The built-in formats are pre-registered; this hook lets downstream code
/// plug new Archive implementations into OpenArchive. Thread-safe.
void RegisterArchiveFormat(const std::string& format_id, ArchiveLoader loader);

/// Opens any saved archive: sniffs the container's format id and
/// dispatches to the registered loader. Legacy pre-envelope rlz v1 files
/// open through RlzArchive's compat loader. Returns InvalidArgument for an
/// unregistered format id or a future format version, Corruption for
/// structural damage, IOError if the file cannot be read. If `sniffed` is
/// non-null it receives the container's format id and version (the same
/// data SniffArchiveFile reports, without reading the file twice); it is
/// filled whenever the header parses, even if the loader then fails.
StatusOr<std::unique_ptr<Archive>> OpenArchive(const std::string& path,
                                               const OpenOptions& options = {},
                                               ArchiveFormatInfo* sniffed = nullptr);

}  // namespace rlz

#endif  // RLZ_STORE_OPEN_ARCHIVE_H_
