#include "store/format.h"

#include "io/file.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace rlz {
namespace {

// Format ids are short tags ("rlz", "blocked", ...); anything longer is a
// sign the header is garbage, so the reader rejects it before allocating.
constexpr uint32_t kMaxFormatIdLength = 64;

void PutVarintImpl(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(0x80 | (value & 0x7F)));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

}  // namespace

bool IsLegacyRlzV1(std::string_view raw) {
  return raw.size() >= 5 &&
         raw.substr(0, 4) == std::string_view(kEnvelopeMagic, 4) &&
         static_cast<uint8_t>(raw[4]) == 1;
}

bool LooksLikeEnvelope(std::string_view raw) {
  return raw.size() >= 5 &&
         raw.substr(0, 4) == std::string_view(kEnvelopeMagic, 4) &&
         static_cast<uint8_t>(raw[4]) != 1;
}

EnvelopeWriter::EnvelopeWriter(std::string_view format_id, uint32_t version)
    : format_id_(format_id), version_(version) {
  RLZ_CHECK(!format_id_.empty() && format_id_.size() <= kMaxFormatIdLength)
      << "bad envelope format id: " << format_id_;
}

void EnvelopeWriter::PutVarint32(uint32_t value) {
  PutVarintImpl(value, &body_);
}

void EnvelopeWriter::PutVarint64(uint64_t value) {
  PutVarintImpl(value, &body_);
}

void EnvelopeWriter::PutLengthPrefixed(std::string_view bytes) {
  PutVarintImpl(bytes.size(), &body_);
  body_.append(bytes);
}

std::string EnvelopeWriter::Seal() && {
  std::string out;
  out.reserve(body_.size() + format_id_.size() + 32);
  out.append(kEnvelopeMagic, 4);
  out.push_back(static_cast<char>(kContainerLayoutVersion));
  PutVarintImpl(format_id_.size(), &out);
  out.append(format_id_);
  PutVarintImpl(version_, &out);
  PutVarintImpl(body_.size(), &out);
  out.append(body_);
  const uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return out;
}

Status EnvelopeWriter::WriteTo(const std::string& path) && {
  return WriteFile(path, std::move(*this).Seal());
}

Status EnvelopeReader::Truncated(const char* what) const {
  return Status::Corruption(context_ + ": truncated " + what);
}

Status EnvelopeReader::ReadByte(uint8_t* value) {
  if (remaining() < 1) return Truncated("byte field");
  *value = static_cast<uint8_t>(body_[pos_++]);
  return Status::OK();
}

Status EnvelopeReader::ReadVarint64(uint64_t* value) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= body_.size()) return Truncated("varint");
    const uint8_t byte = static_cast<uint8_t>(body_[pos_++]);
    // The 10th byte can only contribute bit 63: payload bits that would
    // shift past 63 mean the encoding claims a value above 2^64-1, which
    // must be rejected rather than silently truncated to a small number.
    if (shift == 63 && (byte & 0x7E) != 0) {
      return Status::Corruption(context_ + ": varint overlong");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      return Status::OK();
    }
  }
  return Status::Corruption(context_ + ": varint overlong");
}

Status EnvelopeReader::ReadVarint32(uint32_t* value) {
  uint64_t v = 0;
  RLZ_RETURN_IF_ERROR(ReadVarint64(&v));
  if (v > 0xFFFFFFFFull) {
    return Status::Corruption(context_ + ": varint32 out of range");
  }
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status EnvelopeReader::ReadBytes(uint64_t n, std::string_view* bytes) {
  if (remaining() < n) return Truncated("byte section");
  *bytes = body_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status EnvelopeReader::ReadLengthPrefixed(std::string_view* bytes) {
  uint64_t len = 0;
  RLZ_RETURN_IF_ERROR(ReadVarint64(&len));
  return ReadBytes(len, bytes);
}

Status EnvelopeReader::ReadSizeTable(std::vector<uint64_t>* sizes) {
  uint64_t count = 0;
  RLZ_RETURN_IF_ERROR(ReadVarint64(&count));
  // Each entry occupies at least one body byte, so a count beyond the
  // bytes left is structural damage — checked before the allocation.
  if (count > remaining()) {
    return Status::Corruption(context_ + ": document count exceeds file");
  }
  sizes->assign(count, 0);
  uint64_t total = 0;
  for (uint64_t i = 0; i < count; ++i) {
    RLZ_RETURN_IF_ERROR(ReadVarint64(&(*sizes)[i]));
    // A crafted file could overflow the sum to fake a match against the
    // payload bytes actually present; cap the running total at what
    // remains (both operands are bounded before the subtraction).
    if ((*sizes)[i] > remaining() || total > remaining() - (*sizes)[i]) {
      return Status::Corruption(context_ + ": payload size mismatch");
    }
    total += (*sizes)[i];
  }
  if (remaining() != total) {
    return Status::Corruption(context_ + ": payload size mismatch");
  }
  return Status::OK();
}

std::string_view EnvelopeReader::ReadRest() {
  std::string_view rest = body_.substr(pos_);
  pos_ = body_.size();
  return rest;
}

Status EnvelopeReader::ExpectConsumed() const {
  if (pos_ != body_.size()) {
    return Status::Corruption(context_ + ": trailing bytes after body");
  }
  return Status::OK();
}

StatusOr<ParsedEnvelope> ParsedEnvelope::FromBytes(std::string raw,
                                                   std::string context) {
  auto owned = std::make_shared<const std::string>(std::move(raw));
  return FromView(std::string_view(*owned), owned, std::move(context));
}

StatusOr<ParsedEnvelope> ParsedEnvelope::FromView(
    std::string_view raw, std::shared_ptr<const void> owner,
    std::string context) {
  if (raw.size() < 4 ||
      std::string_view(raw.data(), 4) != std::string_view(kEnvelopeMagic, 4)) {
    return Status::Corruption(context + ": bad magic");
  }
  if (raw.size() < 5) {
    return Status::Corruption(context + ": truncated container header");
  }
  const uint8_t layout = static_cast<uint8_t>(raw[4]);
  if (layout == 1) {
    // The pre-envelope RlzArchive layout; callers that support it check
    // IsLegacyRlzV1 before parsing the envelope.
    return Status::Corruption(context +
                              ": pre-envelope legacy layout (rlz v1)");
  }
  if (layout > kContainerLayoutVersion) {
    return Status::InvalidArgument(
        context + ": container layout " + std::to_string(layout) +
        " was written by a future version of this library");
  }
  if (layout != kContainerLayoutVersion) {
    return Status::Corruption(context + ": unknown container layout byte");
  }

  // Header fields are parsed with the same bounds-checked reader as
  // bodies. A truncated file either fails a read here or yields the
  // original body size, which the exact-length check below catches.
  EnvelopeReader header(raw.substr(5), context);
  uint32_t id_length = 0;
  RLZ_RETURN_IF_ERROR(header.ReadVarint32(&id_length));
  if (id_length == 0 || id_length > kMaxFormatIdLength) {
    return Status::Corruption(context + ": bad format-id length");
  }
  std::string_view id;
  RLZ_RETURN_IF_ERROR(header.ReadBytes(id_length, &id));
  ParsedEnvelope envelope;
  envelope.format_id_ = std::string(id);
  RLZ_RETURN_IF_ERROR(header.ReadVarint32(&envelope.version_));
  uint64_t body_size = 0;
  RLZ_RETURN_IF_ERROR(header.ReadVarint64(&body_size));
  const size_t header_size = raw.size() - header.remaining();

  // Exact-length check: header + body + 4-byte CRC trailer must equal the
  // file, so truncation at any prefix (and trailing junk) is a structural
  // error independent of the CRC.
  if (body_size > raw.size() - header_size ||
      raw.size() - header_size - body_size != 4) {
    return Status::Corruption(context + ": container length mismatch");
  }

  uint32_t want_crc = 0;
  for (int i = 0; i < 4; ++i) {
    want_crc |= static_cast<uint32_t>(
                    static_cast<uint8_t>(raw[raw.size() - 4 + i]))
                << (8 * i);
  }
  if (Crc32(raw.data(), raw.size() - 4) != want_crc) {
    return Status::Corruption(context + ": checksum mismatch");
  }

  envelope.body_offset_ = header_size;
  envelope.body_size_ = body_size;
  envelope.context_ = std::move(context);
  envelope.raw_ = raw;
  envelope.owner_ = std::move(owner);
  return envelope;
}

StatusOr<ParsedEnvelope> ReadEnvelopeFile(const std::string& path) {
  RLZ_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  return ParsedEnvelope::FromBytes(std::move(raw), path);
}

Status CheckEnvelopeFormat(const ParsedEnvelope& envelope,
                           std::string_view format_id, uint32_t max_version) {
  if (envelope.format_id() != format_id) {
    return Status::InvalidArgument(
        envelope.context() + ": this file is a '" + envelope.format_id() +
        "' container, expected '" + std::string(format_id) + "'");
  }
  if (envelope.version() > max_version) {
    return Status::InvalidArgument(
        envelope.context() + ": '" + envelope.format_id() + "' version " +
        std::to_string(envelope.version()) +
        " was written by a future version of this library (this build reads "
        "up to version " +
        std::to_string(max_version) + ")");
  }
  return Status::OK();
}

}  // namespace rlz
