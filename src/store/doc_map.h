#ifndef RLZ_STORE_DOC_MAP_H_
#define RLZ_STORE_DOC_MAP_H_

/// \file
/// The document map: doc id -> byte extent in an encoded payload (§3.1).

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace rlz {

/// Maps document ids to byte extents in an encoded payload — the
/// "document map which provides the position on disk of each encoded file"
/// (§3.1 step 3). Held in memory; its serialized size (delta-vbyte) is
/// charged to the archive's stored_bytes.
class DocMap {
 public:
  DocMap() { offsets_.push_back(0); }

  /// Appends a document of `encoded_size` bytes at the current end.
  void Add(uint64_t encoded_size) {
    offsets_.push_back(offsets_.back() + encoded_size);
    // Keep the serialized size incremental: stored_bytes() is queried per
    // request by the benches, and recomputing the vbyte sum would be
    // O(num_docs) each time.
    uint64_t delta = encoded_size;
    do {
      ++serialized_bytes_;
      delta >>= 7;
    } while (delta != 0);
  }

  /// Number of mapped documents.
  size_t num_docs() const { return offsets_.size() - 1; }

  /// Byte offset of document `id` in the payload (id < num_docs()).
  uint64_t offset(size_t id) const {
    RLZ_DCHECK_LT(id, num_docs());
    return offsets_[id];
  }
  /// Encoded size of document `id` in bytes.
  uint64_t size(size_t id) const { return offsets_[id + 1] - offsets_[id]; }
  /// Total payload bytes across all documents.
  uint64_t total_bytes() const { return offsets_.back(); }

  /// Size of the delta-vbyte serialization (what a disk-resident system
  /// would store); counted into every archive's stored_bytes. O(1): the
  /// total is maintained by Add.
  uint64_t serialized_bytes() const { return serialized_bytes_; }

 private:
  std::vector<uint64_t> offsets_;  // num_docs()+1, offsets_[0] == 0
  uint64_t serialized_bytes_ = 0;  // vbyte length sum of per-doc sizes
};

}  // namespace rlz

#endif  // RLZ_STORE_DOC_MAP_H_
