#ifndef RLZ_STORE_DECODE_SCRATCH_H_
#define RLZ_STORE_DECODE_SCRATCH_H_

/// \file
/// Reusable per-caller decode buffers for the serving hot path
/// (DESIGN.md §9).

#include <cstdint>
#include <string>
#include <vector>

#include "zip/gzipx.h"

namespace rlz {

/// Reusable scratch buffers for decode-heavy call paths. A request that
/// decodes a document needs a position vector, a length vector, and (for
/// z-coded factor streams) an inflate buffer; without scratch each Get
/// heap-allocates all three and frees them on return. A caller that serves
/// many requests keeps one DecodeScratch per worker thread and passes it
/// down through Archive::Get/GetRange — after the first few requests the
/// buffers reach their steady-state capacity and the decode kernel
/// performs no heap allocations at all (DESIGN.md §9).
///
/// Not thread-safe: a DecodeScratch belongs to exactly one caller at a
/// time (DocService keeps one per worker, guarded by the worker's mutex).
/// Contents are undefined between calls — every consumer clears before
/// use and must not read results out of a scratch it did not just fill.
struct DecodeScratch {
  /// Factor position stream of the document being decoded.
  std::vector<uint32_t> positions;
  /// Factor length stream of the document being decoded.
  std::vector<uint32_t> lengths;
  /// Inflate buffer for the z-coded position stream (gzipx output).
  std::string inflate;
  /// Second inflate buffer: the fused decode of "ZZ" documents needs both
  /// raw streams alive at once.
  std::string inflate2;
  /// Whole-document buffer for paths that decode a full document in order
  /// to serve a slice of it (the default Archive::GetRange).
  std::string doc;
  /// Reusable gzipx decode state (code-length buffers, decoder tables).
  GzipxDecodeScratch gzipx;

  /// Releases all held capacity (buffers stay usable). Useful when a
  /// long-lived worker has served an outsized document and should return
  /// the memory.
  void ShrinkToFit() {
    positions.clear();
    positions.shrink_to_fit();
    lengths.clear();
    lengths.shrink_to_fit();
    inflate.clear();
    inflate.shrink_to_fit();
    inflate2.clear();
    inflate2.shrink_to_fit();
    doc.clear();
    doc.shrink_to_fit();
    gzipx = GzipxDecodeScratch();
  }
};

}  // namespace rlz

#endif  // RLZ_STORE_DECODE_SCRATCH_H_
