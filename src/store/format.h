#ifndef RLZ_STORE_FORMAT_H_
#define RLZ_STORE_FORMAT_H_

/// \file
/// The versioned on-disk container format shared by every persistent
/// artifact (DESIGN.md §8).
///
/// Every file this library writes is a *format envelope*:
///
///   offset 0   magic "RLZA" (4 bytes)
///   offset 4   container-layout byte (kContainerLayoutVersion; legacy
///              pre-envelope rlz archives carry 0x01 here)
///   then       vbyte(format-id length) + format-id bytes
///              vbyte(format version)
///              vbyte64(body size)
///              body (format-specific sections)
///   trailer    CRC-32 (4 bytes little-endian) over everything before it
///
/// The envelope makes files self-describing: a reader can open any
/// artifact without out-of-band type knowledge (OpenArchive sniffs the
/// format id and dispatches), reject artifacts written by a future
/// library version, and detect truncation at every prefix — the header
/// records the exact body size, so a shortened or padded file is a
/// structural error even when the CRC happens to collide.
///
/// EnvelopeWriter/EnvelopeReader centralize the bounds-checked section
/// encoding that each format's Save/Load previously hand-rolled; every
/// malformed read surfaces as Status::Corruption, never a crash.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlz {

/// 4-byte magic that opens every container file.
inline constexpr char kEnvelopeMagic[4] = {'R', 'L', 'Z', 'A'};

/// Current container-layout version, stored at offset 4. Layout 1 is the
/// legacy pre-envelope RlzArchive file (magic + version byte 0x01); the
/// envelope began at 2. Bytes above the current layout are rejected as
/// InvalidArgument ("written by a future version").
inline constexpr uint8_t kContainerLayoutVersion = 2;

/// True if `raw` opens with the pre-envelope v1 RlzArchive layout (magic
/// "RLZA" followed by the version byte 0x01). Such files predate the
/// envelope and are still readable through RlzArchive's legacy loader.
bool IsLegacyRlzV1(std::string_view raw);

/// True if `raw` opens with the envelope magic and a container-layout
/// byte (anything but the legacy 0x01). Loaders with a pre-envelope
/// fallback (Dictionary's bare text, Collection's RCO1) use this to
/// decide which parser applies — so a *damaged* envelope is reported as
/// Corruption instead of being misread as legacy bytes.
bool LooksLikeEnvelope(std::string_view raw);

/// Serializes one envelope: construct with the format id and version,
/// append body sections with the Put methods, then Seal or WriteTo.
///
///   EnvelopeWriter w(RlzArchive::kFormatId, RlzArchive::kFormatVersion);
///   w.PutByte(...); w.PutLengthPrefixed(dict_text); w.PutBytes(payload);
///   RLZ_RETURN_IF_ERROR(std::move(w).WriteTo(path));
class EnvelopeWriter {
 public:
  /// Starts an envelope for format `format_id` at `version`. The id must
  /// be non-empty and at most kMaxFormatIdLength bytes (checked).
  EnvelopeWriter(std::string_view format_id, uint32_t version);

  /// Appends one raw byte to the body.
  void PutByte(uint8_t value) { body_.push_back(static_cast<char>(value)); }
  /// Appends a 32-bit varint to the body.
  void PutVarint32(uint32_t value);
  /// Appends a 64-bit varint to the body.
  void PutVarint64(uint64_t value);
  /// Appends raw bytes to the body.
  void PutBytes(std::string_view bytes) { body_.append(bytes); }
  /// Appends vbyte64(bytes.size()) followed by the bytes — the standard
  /// encoding for a variable-length section.
  void PutLengthPrefixed(std::string_view bytes);

  /// Body bytes appended so far.
  uint64_t body_size() const { return body_.size(); }

  /// Assembles the complete container (header, body, CRC trailer) and
  /// returns its bytes. Consumes the writer.
  std::string Seal() &&;

  /// Seal() plus WriteFile(path). Consumes the writer.
  Status WriteTo(const std::string& path) &&;

 private:
  std::string format_id_;
  uint32_t version_;
  std::string body_;
};

/// Bounds-checked cursor over an envelope body (or any byte section).
/// Every read past the end returns Corruption mentioning `context`, so
/// format loaders never index out of range on crafted input. Reads never
/// copy payload bytes: ReadBytes returns views into the underlying
/// buffer, which must outlive the reader (ParsedEnvelope owns it).
class EnvelopeReader {
 public:
  /// A cursor over `body`. `context` names the artifact for error
  /// messages (e.g. "rlz archive <path>").
  EnvelopeReader(std::string_view body, std::string context)
      : body_(body), context_(std::move(context)) {}

  /// Reads one byte.
  Status ReadByte(uint8_t* value);
  /// Reads a 32-bit varint (Corruption if truncated or out of range).
  Status ReadVarint32(uint32_t* value);
  /// Reads a 64-bit varint (Corruption if truncated or malformed).
  Status ReadVarint64(uint64_t* value);
  /// Reads exactly `n` bytes as a view into the underlying buffer.
  Status ReadBytes(uint64_t n, std::string_view* bytes);
  /// Reads vbyte64(length) + that many bytes (see PutLengthPrefixed).
  Status ReadLengthPrefixed(std::string_view* bytes);

  /// Reads the standard trailing-payload size table: vbyte64(count), then
  /// one vbyte64 per entry. The count and the running sum are checked
  /// against the bytes remaining — a crafted count cannot force a huge
  /// allocation and an overflowed sum cannot fake a match — and the sum
  /// must equal exactly the bytes left after the table, i.e. the payload
  /// a following ReadRest() returns. The one implementation of these
  /// checks shared by every per-document format (DESIGN.md §8).
  Status ReadSizeTable(std::vector<uint64_t>* sizes);

  /// Bytes left before the end of the section.
  uint64_t remaining() const { return body_.size() - pos_; }
  /// Consumes and returns every remaining byte — the idiom for a
  /// trailing payload section whose size is implied by the envelope.
  std::string_view ReadRest();
  /// OK if the cursor consumed the whole section; Corruption (trailing
  /// bytes) otherwise — catches bodies longer than the format expects.
  Status ExpectConsumed() const;

 private:
  Status Truncated(const char* what) const;

  std::string_view body_;
  size_t pos_ = 0;
  std::string context_;
};

/// A validated envelope: magic, layout byte, format id/version, body
/// size, and CRC all checked. The file bytes are held through a shared
/// handle (see backing()), so body() views stay valid for the lifetime of
/// the ParsedEnvelope *or* of any backing() copy a loader retains — this
/// is what lets archives alias their payload sections zero-copy instead
/// of re-copying the file on open (DESIGN.md §9).
class ParsedEnvelope {
 public:
  /// Parses and validates `raw` (an entire container file). `context`
  /// names the source for error messages. Returns Corruption for
  /// structural damage (bad magic, truncation, CRC mismatch, legacy v1
  /// layout) and InvalidArgument for a future container layout.
  static StatusOr<ParsedEnvelope> FromBytes(std::string raw,
                                            std::string context);

  /// FromBytes over bytes the caller already owns: `raw` must stay valid
  /// for as long as `owner` is alive (the mmap open path passes the view
  /// of an MmapFile and a shared handle to it; see DESIGN.md §9/§12).
  static StatusOr<ParsedEnvelope> FromView(std::string_view raw,
                                           std::shared_ptr<const void> owner,
                                           std::string context);

  /// The format-id string stored in the header (e.g. "rlz", "blocked").
  const std::string& format_id() const { return format_id_; }
  /// The format version stored in the header.
  uint32_t version() const { return version_; }
  /// The body section (a view into the shared file bytes).
  std::string_view body() const {
    return raw_.substr(body_offset_, body_size_);
  }
  /// A bounds-checked cursor over body(). The envelope must outlive it.
  EnvelopeReader reader() const { return EnvelopeReader(body(), context_); }
  /// The context string the envelope was parsed with.
  const std::string& context() const { return context_; }

  /// Shared ownership of whatever keeps the raw file bytes alive — a
  /// heap buffer on the read path, an MmapFile on the mmap path. A
  /// format loader that wants to alias body sections instead of copying
  /// them keeps a copy of this opaque handle alive alongside its views
  /// (RlzArchive and BlockedArchive do; see DESIGN.md §9).
  std::shared_ptr<const void> backing() const { return owner_; }

 private:
  ParsedEnvelope() = default;

  std::string_view raw_;  // valid while owner_ is alive
  std::shared_ptr<const void> owner_;
  std::string format_id_;
  uint32_t version_ = 0;
  size_t body_offset_ = 0;
  size_t body_size_ = 0;
  std::string context_;
};

/// Reads `path` and parses it as an envelope (see ParsedEnvelope::FromBytes).
StatusOr<ParsedEnvelope> ReadEnvelopeFile(const std::string& path);

/// Checks that `envelope` carries `format_id` at a version this build can
/// read. Returns InvalidArgument naming both ids on a mismatch ("this file
/// is a 'blocked' container, expected 'rlz'") and InvalidArgument for
/// versions above `max_version` (written by a future library version).
Status CheckEnvelopeFormat(const ParsedEnvelope& envelope,
                           std::string_view format_id, uint32_t max_version);

}  // namespace rlz

#endif  // RLZ_STORE_FORMAT_H_
