#include "store/wal/wal_writer.h"

#include <utility>

namespace rlz {
namespace wal {

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    std::shared_ptr<FileSystem> fs, std::string dir, uint64_t generation,
    uint64_t seq, uint64_t start_lsn, const WalWriterOptions& options) {
  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(fs), std::move(dir), options));
  writer->next_lsn_ = start_lsn;
  RLZ_RETURN_IF_ERROR(writer->OpenSegmentLocked(generation, seq));
  return writer;
}

Status WalWriter::OpenSegmentLocked(uint64_t generation, uint64_t seq) {
  const std::string path = dir_ + "/" + SegmentFileName(seq);
  RLZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       fs_->Create(path));
  SegmentHeader header;
  header.generation = generation;
  header.start_lsn = next_lsn_;
  RLZ_RETURN_IF_ERROR(file->Append(EncodeSegmentHeader(header)));
  // The header and the directory entry must be durable before any record
  // in this segment is acked — see the roll protocol in the file comment.
  RLZ_RETURN_IF_ERROR(file->Sync());
  RLZ_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  file_ = std::move(file);
  generation_ = generation;
  seq_ = seq;
  segment_bytes_ = kSegmentHeaderSize;
  unsynced_records_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

StatusOr<uint64_t> WalWriter::Append(RecordType type,
                                     std::string_view payload) {
  if (file_ == nullptr) {
    return Status::Internal("wal writer: append after close");
  }
  if (segment_bytes_ > kSegmentHeaderSize &&
      segment_bytes_ + kFrameOverhead + payload.size() >
          options_.segment_bytes) {
    RLZ_RETURN_IF_ERROR(Roll(generation_));
  }
  const std::string frame = EncodeRecord(type, payload);
  RLZ_RETURN_IF_ERROR(file_->Append(frame));
  segment_bytes_ += frame.size();
  const uint64_t lsn = next_lsn_++;
  ++unsynced_records_;
  RLZ_RETURN_IF_ERROR(MaybeSyncLocked());
  return lsn;
}

Status WalWriter::MaybeSyncLocked() {
  if (unsynced_records_ == 0) return Status::OK();
  bool due = options_.fsync_every_n > 0 &&
             unsynced_records_ >= options_.fsync_every_n;
  if (!due && options_.fsync_interval_ms > 0) {
    const auto elapsed = std::chrono::steady_clock::now() - last_sync_;
    due = elapsed >= std::chrono::milliseconds(options_.fsync_interval_ms);
  }
  if (!due) return Status::OK();
  return Sync();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) {
    return Status::Internal("wal writer: sync after close");
  }
  RLZ_RETURN_IF_ERROR(file_->Sync());
  unsynced_records_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  RLZ_RETURN_IF_ERROR(file_->Sync());
  const Status status = file_->Close();
  file_ = nullptr;
  return status;
}

Status WalWriter::Roll(uint64_t generation) {
  if (file_ == nullptr) {
    return Status::Internal("wal writer: roll after close");
  }
  // Seal the old segment durably first so recovery's invariant holds:
  // once a newer segment exists, every older one is complete.
  RLZ_RETURN_IF_ERROR(file_->Sync());
  RLZ_RETURN_IF_ERROR(file_->Close());
  file_ = nullptr;
  return OpenSegmentLocked(generation, seq_ + 1);
}

}  // namespace wal
}  // namespace rlz
