#ifndef RLZ_STORE_WAL_WAL_WRITER_H_
#define RLZ_STORE_WAL_WAL_WRITER_H_

/// \file
/// Appending side of the write-ahead log (DESIGN.md §12).
///
/// One WalWriter owns the live tail segment. Appends are framed
/// (wal_format.h), rolled into a new segment when the current one
/// reaches its size budget, and made durable under a group-commit
/// policy: `fsync_every_n` appends per fsync (1 = every append is
/// durable before it returns — the default and the crash-test setting),
/// or an `fsync_interval_ms` deadline for throughput-oriented callers
/// who accept a bounded loss window. Callers needing a hard barrier at
/// an arbitrary point (checkpoint) use Sync().
///
/// Segment-roll protocol: the old segment is synced and closed, the new
/// one is created, its header written and synced, and the directory
/// synced — all before any record lands in it. This keeps the invariant
/// recovery depends on: only the *final* segment may end torn; every
/// earlier segment is durably complete.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "io/file_system.h"
#include "store/wal/wal_format.h"
#include "util/status.h"

namespace rlz {
namespace wal {

/// Durability policy knobs. The defaults ack nothing that could be lost.
struct WalWriterOptions {
  /// Roll to a new segment once the current one exceeds this.
  uint64_t segment_bytes = 4ull << 20;
  /// Fsync after every n-th appended record. 1 = sync every append
  /// (strict durability); larger values batch appends behind one
  /// barrier and lose at most n-1 acked records on crash.
  int fsync_every_n = 1;
  /// If > 0, also fsync whenever this many milliseconds have passed
  /// since the last barrier — bounds the loss *window* when
  /// fsync_every_n is large and traffic is slow.
  int fsync_interval_ms = 0;
};

/// See the file comment.
class WalWriter {
 public:
  /// Starts a fresh segment `seq` whose first record will carry
  /// `start_lsn`, stamped with `generation`. The segment (header
  /// included) and its directory entry are durable when this returns —
  /// recovery never has to guess whether the newest segment exists.
  static StatusOr<std::unique_ptr<WalWriter>> Create(
      std::shared_ptr<FileSystem> fs, std::string dir, uint64_t generation,
      uint64_t seq, uint64_t start_lsn, const WalWriterOptions& options);

  /// Appends one record and applies the group-commit policy; returns the
  /// record's LSN. When this returns OK under fsync_every_n == 1 the
  /// record is durable.
  StatusOr<uint64_t> Append(RecordType type, std::string_view payload);

  /// Explicit durability barrier over everything appended so far.
  Status Sync();

  /// Closes the current segment (with a final Sync). The writer is
  /// unusable afterwards.
  Status Close();

  /// Rolls to a fresh segment stamped `generation`, regardless of size.
  /// The checkpoint protocol calls this at the covered LSN so checkpoint
  /// coverage always lands on a segment boundary.
  Status Roll(uint64_t generation);

  /// LSN the next appended record will receive.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Sequence number of the segment currently being written.
  uint64_t segment_seq() const { return seq_; }

 private:
  WalWriter(std::shared_ptr<FileSystem> fs, std::string dir,
            const WalWriterOptions& options)
      : fs_(std::move(fs)), dir_(std::move(dir)), options_(options) {}

  Status OpenSegmentLocked(uint64_t generation, uint64_t seq);
  Status MaybeSyncLocked();

  std::shared_ptr<FileSystem> fs_;
  std::string dir_;
  WalWriterOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t generation_ = 0;
  uint64_t seq_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t segment_bytes_ = 0;  // bytes written to the current segment
  int unsynced_records_ = 0;
  std::chrono::steady_clock::time_point last_sync_ =
      std::chrono::steady_clock::now();
};

}  // namespace wal
}  // namespace rlz

#endif  // RLZ_STORE_WAL_WAL_WRITER_H_
