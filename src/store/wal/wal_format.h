#ifndef RLZ_STORE_WAL_WAL_FORMAT_H_
#define RLZ_STORE_WAL_WAL_FORMAT_H_

/// \file
/// On-disk layout of the write-ahead log (DESIGN.md §12).
///
/// The log is a sequence of append-only segment files, `wal-<seq>.log`,
/// numbered consecutively. Each segment opens with a fixed header:
///
///   offset 0   magic "RLZW" (4 bytes)
///   offset 4   wal format version (1 byte)
///   offset 5   store generation (8 bytes little-endian) — which
///              checkpoint lineage this segment extends
///   offset 13  start LSN (8 bytes little-endian) — the sequence number
///              of the segment's first record
///   offset 21  CRC-32 of bytes [0, 21) (4 bytes little-endian)
///
/// followed by CRC-framed records:
///
///   [1B type][4B payload length LE][payload][4B CRC-32 LE]
///
/// where the CRC covers type + length + payload. Records carry no
/// explicit LSN: a record's LSN is the segment's start LSN plus its
/// index, which recovery reconstructs by counting. A torn write —
/// truncated frame or bad CRC — in the *final* segment marks the end of
/// the durable log; the same damage in an earlier segment is Corruption
/// (an fsync'd frame cannot legitimately disappear).

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rlz {
namespace wal {

inline constexpr char kWalMagic[4] = {'R', 'L', 'Z', 'W'};
inline constexpr uint8_t kWalVersion = 1;
/// Fixed byte size of a segment header.
inline constexpr size_t kSegmentHeaderSize = 4 + 1 + 8 + 8 + 4;
/// Fixed framing overhead per record (type + length + CRC).
inline constexpr size_t kFrameOverhead = 1 + 4 + 4;
/// Refuse frames whose length field exceeds this (a corrupt length would
/// otherwise demand a giant allocation before the CRC can refute it).
inline constexpr uint32_t kMaxRecordPayload = 1u << 30;

/// Record types. Values are on-disk; never renumber.
enum class RecordType : uint8_t {
  /// Payload is the document's bytes, verbatim.
  kAppend = 1,
  /// Payload is the deleted doc id as 8 bytes little-endian.
  kDelete = 2,
  /// Empty payload: the tail was sealed into a compressed shard at this
  /// point. Replay re-seals at exactly this boundary (no auto-seal
  /// heuristics run during recovery).
  kSeal = 3,
};

/// True for a byte that names a known record type.
bool IsValidRecordType(uint8_t type);

/// A segment's parsed header.
struct SegmentHeader {
  uint64_t generation = 0;
  uint64_t start_lsn = 0;
};

/// Serializes a segment header.
std::string EncodeSegmentHeader(const SegmentHeader& header);

/// Parses and validates the header at the front of `segment`. Corruption
/// on bad magic/CRC/truncation; InvalidArgument for a future version.
StatusOr<SegmentHeader> DecodeSegmentHeader(std::string_view segment,
                                            const std::string& context);

/// Serializes one record frame.
std::string EncodeRecord(RecordType type, std::string_view payload);

/// One parsed record plus the bytes it consumed.
struct ParsedRecord {
  RecordType type = RecordType::kAppend;
  std::string_view payload;  // into the segment bytes
  size_t frame_size = 0;     // bytes consumed from the segment
};

/// Outcome of parsing the frame at the front of `data`.
enum class FrameStatus {
  kOk,        // a complete valid frame; `record` is filled
  kEnd,       // `data` is empty — clean end of segment
  kTorn,      // truncated or CRC-damaged frame: valid end of a final
              // segment, Corruption anywhere else (the caller decides)
};

/// Parses the frame at the front of `data`. Never fails hard: damage
/// reports kTorn and the caller applies the final-segment rule.
FrameStatus ParseRecord(std::string_view data, ParsedRecord* record);

/// Name of segment file `seq` ("wal-0000000000000042.log") — fixed-width
/// so lexicographic directory order is numeric order.
std::string SegmentFileName(uint64_t seq);

/// Parses a segment file name; false if `name` is not one.
bool ParseSegmentFileName(std::string_view name, uint64_t* seq);

/// Little-endian helpers shared by the wal module.
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
uint32_t GetFixed32(const char* p);
uint64_t GetFixed64(const char* p);

}  // namespace wal
}  // namespace rlz

#endif  // RLZ_STORE_WAL_WAL_FORMAT_H_
