#include "store/wal/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "store/format.h"
#include "store/wal/wal_format.h"

namespace rlz {
namespace wal {
namespace {

constexpr char kCurrentFormatId[] = "walcur";
constexpr uint32_t kCurrentFormatVersion = 1;
constexpr char kCheckpointFormatId[] = "walckpt";
constexpr uint32_t kCheckpointFormatVersion = 1;

std::string CheckpointFilePrefix(uint64_t generation) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%016" PRIu64, generation);
  return buf;
}

// True if `name` is a checkpoint file ("ckpt-<gen16>.<suffix>");
// extracts the generation.
bool ParseCheckpointFileName(std::string_view name, uint64_t* generation) {
  constexpr std::string_view kPrefix = "ckpt-";
  if (name.size() < kPrefix.size() + 16 + 1) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 16; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (name[kPrefix.size() + 16] != '.') return false;
  *generation = value;
  return true;
}

}  // namespace

std::string CheckpointMetaFileName(uint64_t generation) {
  return CheckpointFilePrefix(generation) + ".meta";
}

std::string CheckpointManifestFileName(uint64_t generation) {
  return CheckpointFilePrefix(generation) + ".manifest";
}

Status WriteCheckpointMeta(FileSystem& fs, const std::string& dir,
                           const CheckpointInfo& info) {
  EnvelopeWriter writer(kCheckpointFormatId, kCheckpointFormatVersion);
  writer.PutVarint64(info.generation);
  writer.PutVarint64(info.covered_lsn);
  writer.PutLengthPrefixed(info.manifest);
  return fs.WriteFileSynced(dir + "/" + CheckpointMetaFileName(info.generation),
                            std::move(writer).Seal());
}

StatusOr<CheckpointInfo> ReadCheckpointMeta(FileSystem& fs,
                                            const std::string& dir,
                                            uint64_t generation) {
  const std::string path = dir + "/" + CheckpointMetaFileName(generation);
  RLZ_ASSIGN_OR_RETURN(std::string raw, fs.Read(path));
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope,
                       ParsedEnvelope::FromBytes(std::move(raw), path));
  RLZ_RETURN_IF_ERROR(CheckEnvelopeFormat(envelope, kCheckpointFormatId,
                                          kCheckpointFormatVersion));
  EnvelopeReader reader = envelope.reader();
  CheckpointInfo info;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&info.generation));
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&info.covered_lsn));
  std::string_view manifest;
  RLZ_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&manifest));
  info.manifest = std::string(manifest);
  RLZ_RETURN_IF_ERROR(reader.ExpectConsumed());
  if (info.generation != generation) {
    return Status::Corruption(path + ": checkpoint meta names generation " +
                              std::to_string(info.generation));
  }
  return info;
}

Status WriteCurrent(FileSystem& fs, const std::string& dir,
                    uint64_t generation) {
  EnvelopeWriter writer(kCurrentFormatId, kCurrentFormatVersion);
  writer.PutVarint64(generation);
  const std::string current = dir + "/" + kCurrentFileName;
  const std::string tmp = current + ".tmp";
  RLZ_RETURN_IF_ERROR(fs.WriteFileSynced(tmp, std::move(writer).Seal()));
  RLZ_RETURN_IF_ERROR(fs.Rename(tmp, current));
  return fs.SyncDir(dir);
}

StatusOr<uint64_t> ReadCurrent(FileSystem& fs, const std::string& dir) {
  const std::string path = dir + "/" + kCurrentFileName;
  if (!fs.Exists(path)) {
    return Status::NotFound(path + ": no CURRENT file");
  }
  RLZ_ASSIGN_OR_RETURN(std::string raw, fs.Read(path));
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope,
                       ParsedEnvelope::FromBytes(std::move(raw), path));
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kCurrentFormatId, kCurrentFormatVersion));
  EnvelopeReader reader = envelope.reader();
  uint64_t generation = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&generation));
  RLZ_RETURN_IF_ERROR(reader.ExpectConsumed());
  return generation;
}

StatusOr<std::vector<CheckpointInfo>> ListCheckpoints(FileSystem& fs,
                                                      const std::string& dir) {
  RLZ_ASSIGN_OR_RETURN(std::vector<std::string> names, fs.List(dir));
  std::vector<uint64_t> generations;
  for (const std::string& name : names) {
    uint64_t generation = 0;
    if (ParseCheckpointFileName(name, &generation) &&
        name == CheckpointMetaFileName(generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.rbegin(), generations.rend());
  std::vector<CheckpointInfo> checkpoints;
  for (uint64_t generation : generations) {
    StatusOr<CheckpointInfo> info = ReadCheckpointMeta(fs, dir, generation);
    // A damaged meta is a checkpoint that never completed (or was
    // half-deleted by GC) — skip it; the caller wants usable candidates.
    if (info.ok()) checkpoints.push_back(*std::move(info));
  }
  return checkpoints;
}

Status GarbageCollect(FileSystem& fs, const std::string& dir,
                      const CheckpointInfo& keep) {
  RLZ_ASSIGN_OR_RETURN(std::vector<std::string> names, fs.List(dir));
  std::sort(names.begin(), names.end());

  // Segment seq -> start LSN, for the covered-segment rule.
  std::vector<std::pair<uint64_t, uint64_t>> segments;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (!ParseSegmentFileName(name, &seq)) continue;
    RLZ_ASSIGN_OR_RETURN(std::string raw, fs.Read(dir + "/" + name));
    StatusOr<SegmentHeader> header = DecodeSegmentHeader(raw, name);
    if (!header.ok()) continue;  // recovery's problem, not GC's
    segments.emplace_back(seq, header->start_lsn);
  }
  std::sort(segments.begin(), segments.end());

  bool removed_any = false;
  for (const std::string& name : names) {
    bool remove = false;
    uint64_t generation = 0;
    uint64_t seq = 0;
    if (ParseCheckpointFileName(name, &generation)) {
      remove = generation != keep.generation;
    } else if (ParseSegmentFileName(name, &seq)) {
      for (size_t i = 0; i + 1 < segments.size(); ++i) {
        if (segments[i].first == seq) {
          remove = segments[i + 1].second <= keep.covered_lsn;
          break;
        }
      }
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      remove = true;  // leftover from an interrupted write-new step
    }
    if (remove) {
      RLZ_RETURN_IF_ERROR(fs.Remove(dir + "/" + name));
      removed_any = true;
    }
  }
  if (removed_any) RLZ_RETURN_IF_ERROR(fs.SyncDir(dir));
  return Status::OK();
}

}  // namespace wal
}  // namespace rlz
