#include "store/wal/wal_format.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace rlz {
namespace wal {

void PutFixed32(std::string* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint32_t GetFixed32(const char* p) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return value;
}

uint64_t GetFixed64(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return value;
}

bool IsValidRecordType(uint8_t type) {
  return type == static_cast<uint8_t>(RecordType::kAppend) ||
         type == static_cast<uint8_t>(RecordType::kDelete) ||
         type == static_cast<uint8_t>(RecordType::kSeal);
}

std::string EncodeSegmentHeader(const SegmentHeader& header) {
  std::string out;
  out.reserve(kSegmentHeaderSize);
  out.append(kWalMagic, sizeof(kWalMagic));
  out.push_back(static_cast<char>(kWalVersion));
  PutFixed64(&out, header.generation);
  PutFixed64(&out, header.start_lsn);
  PutFixed32(&out, Crc32(out.data(), out.size()));
  return out;
}

StatusOr<SegmentHeader> DecodeSegmentHeader(std::string_view segment,
                                            const std::string& context) {
  if (segment.size() < kSegmentHeaderSize) {
    return Status::Corruption(context + ": truncated wal segment header");
  }
  if (std::memcmp(segment.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption(context + ": bad wal magic");
  }
  const uint8_t version = static_cast<uint8_t>(segment[4]);
  if (version > kWalVersion) {
    return Status::InvalidArgument(
        context + ": wal version " + std::to_string(version) +
        " was written by a future version of this library");
  }
  const uint32_t want_crc = GetFixed32(segment.data() + kSegmentHeaderSize - 4);
  if (Crc32(segment.data(), kSegmentHeaderSize - 4) != want_crc) {
    return Status::Corruption(context + ": wal segment header checksum "
                                        "mismatch");
  }
  SegmentHeader header;
  header.generation = GetFixed64(segment.data() + 5);
  header.start_lsn = GetFixed64(segment.data() + 13);
  return header;
}

std::string EncodeRecord(RecordType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameOverhead + payload.size());
  out.push_back(static_cast<char>(type));
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  PutFixed32(&out, Crc32(out.data(), out.size()));
  return out;
}

FrameStatus ParseRecord(std::string_view data, ParsedRecord* record) {
  if (data.empty()) return FrameStatus::kEnd;
  if (data.size() < 1 + 4) return FrameStatus::kTorn;
  const uint8_t type = static_cast<uint8_t>(data[0]);
  const uint32_t length = GetFixed32(data.data() + 1);
  // An invalid type or absurd length is damage even if a CRC somewhere
  // downstream would collide — check before trusting `length`.
  if (!IsValidRecordType(type) || length > kMaxRecordPayload) {
    return FrameStatus::kTorn;
  }
  const size_t frame_size = kFrameOverhead + length;
  if (data.size() < frame_size) return FrameStatus::kTorn;
  const uint32_t want_crc = GetFixed32(data.data() + 1 + 4 + length);
  if (Crc32(data.data(), static_cast<size_t>(1 + 4 + length)) != want_crc) {
    return FrameStatus::kTorn;
  }
  record->type = static_cast<RecordType>(type);
  record->payload = data.substr(1 + 4, length);
  record->frame_size = frame_size;
  return FrameStatus::kOk;
}

std::string SegmentFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIu64 ".log", seq);
  return buf;
}

bool ParseSegmentFileName(std::string_view name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 16; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

}  // namespace wal
}  // namespace rlz
