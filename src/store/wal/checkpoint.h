#ifndef RLZ_STORE_WAL_CHECKPOINT_H_
#define RLZ_STORE_WAL_CHECKPOINT_H_

/// \file
/// The checkpoint side of the durability protocol (DESIGN.md §12).
///
/// A durable store directory holds, besides the WAL segments:
///
///   CURRENT                the generation pointer — a tiny envelope
///                          ("walcur") naming the live checkpoint
///   ckpt-<gen>.meta        per-checkpoint metadata ("walckpt"):
///                          generation, covered LSN, manifest file name
///   ckpt-<gen>.manifest    the ShardedStore manifest for that
///   ckpt-<gen>.shardNNNN   checkpoint, plus its shard files
///
/// Publishing a checkpoint is write-new -> fsync -> rename: every new
/// file (shards, manifest, meta) is written and fsync'd under the *next*
/// generation number — never touching the live checkpoint — the
/// directory is synced, and only then is CURRENT atomically replaced
/// (CURRENT.tmp -> fsync -> rename -> syncdir). A crash anywhere before
/// the rename leaves CURRENT pointing at the old, complete checkpoint; a
/// crash after it leaves the new one live. Old-generation files and
/// fully-covered WAL segments are deleted only after the swap.
///
/// Recovery reads CURRENT; if it is missing or damaged, ListCheckpoints
/// scans ckpt-*.meta as a fallback and the store tries candidates newest
/// first.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/file_system.h"
#include "util/status.h"

namespace rlz {
namespace wal {

/// Name of the generation-pointer file.
inline constexpr char kCurrentFileName[] = "CURRENT";

/// One checkpoint's identity.
struct CheckpointInfo {
  uint64_t generation = 0;
  /// Every record with lsn < covered_lsn is baked into the manifest;
  /// recovery replays the WAL from this point.
  uint64_t covered_lsn = 0;
  /// Manifest file name, relative to the store directory.
  std::string manifest;
};

/// "ckpt-<gen>.meta" / "ckpt-<gen>.manifest" (relative names).
std::string CheckpointMetaFileName(uint64_t generation);
std::string CheckpointManifestFileName(uint64_t generation);

/// Durably writes `info` as ckpt-<gen>.meta. The caller is responsible
/// for SyncDir before the CURRENT swap.
Status WriteCheckpointMeta(FileSystem& fs, const std::string& dir,
                           const CheckpointInfo& info);

/// Reads and validates ckpt-<gen>.meta.
StatusOr<CheckpointInfo> ReadCheckpointMeta(FileSystem& fs,
                                            const std::string& dir,
                                            uint64_t generation);

/// Atomically points CURRENT at `generation` (tmp -> fsync -> rename ->
/// syncdir). This is the commit point of a checkpoint.
Status WriteCurrent(FileSystem& fs, const std::string& dir,
                    uint64_t generation);

/// Reads the generation CURRENT points at. NotFound if the file does not
/// exist, Corruption if it is damaged.
StatusOr<uint64_t> ReadCurrent(FileSystem& fs, const std::string& dir);

/// Every readable checkpoint meta in `dir`, newest generation first —
/// the fallback when CURRENT is missing or damaged.
StatusOr<std::vector<CheckpointInfo>> ListCheckpoints(FileSystem& fs,
                                                      const std::string& dir);

/// Deletes files superseded by checkpoint `keep`: ckpt files of other
/// generations and WAL segments every record of which is covered (a
/// segment is removable when its successor starts at or below
/// keep.covered_lsn). Best-effort by design — a crash mid-GC leaves
/// stale files that the next GC removes; correctness never depends on
/// deletion.
Status GarbageCollect(FileSystem& fs, const std::string& dir,
                      const CheckpointInfo& keep);

}  // namespace wal
}  // namespace rlz

#endif  // RLZ_STORE_WAL_CHECKPOINT_H_
