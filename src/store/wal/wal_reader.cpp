#include "store/wal/wal_reader.h"

#include <algorithm>
#include <vector>

namespace rlz {
namespace wal {
namespace {

// Durably replaces `path` with `content` (write-new -> fsync -> rename),
// the same protocol checkpoints use; for truncating a torn segment.
Status RewriteFile(FileSystem& fs, const std::string& dir,
                   const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  RLZ_RETURN_IF_ERROR(fs.WriteFileSynced(tmp, content));
  RLZ_RETURN_IF_ERROR(fs.Rename(tmp, path));
  return fs.SyncDir(dir);
}

}  // namespace

StatusOr<ReplayResult> ReplayWal(const std::shared_ptr<FileSystem>& fs,
                                 const std::string& dir,
                                 uint64_t covered_lsn, const ReplayFn& apply) {
  RLZ_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->List(dir));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSegmentFileName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  ReplayResult result;
  result.next_lsn = covered_lsn;
  if (seqs.empty()) return result;
  for (size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] != seqs[i - 1] + 1) {
      return Status::Corruption(dir + ": missing wal segment " +
                                std::to_string(seqs[i - 1] + 1));
    }
  }

  uint64_t lsn = 0;
  bool have_lsn = false;
  for (size_t i = 0; i < seqs.size(); ++i) {
    const bool final_segment = (i + 1 == seqs.size());
    const std::string path = dir + "/" + SegmentFileName(seqs[i]);
    RLZ_ASSIGN_OR_RETURN(std::string raw, fs->Read(path));

    StatusOr<SegmentHeader> header = DecodeSegmentHeader(raw, path);
    if (!header.ok()) {
      if (final_segment && header.status().code() == StatusCode::kCorruption) {
        // Crash mid-roll: the segment never became appendable, so nothing
        // in it was acked. Delete it and reuse its sequence number.
        RLZ_RETURN_IF_ERROR(fs->Remove(path));
        RLZ_RETURN_IF_ERROR(fs->SyncDir(dir));
        result.next_seq = seqs[i];
        result.next_lsn = have_lsn ? lsn : covered_lsn;
        return result;
      }
      return header.status();
    }

    if (!have_lsn) {
      // The oldest surviving segment must reach back to (or before) the
      // checkpoint's coverage; anything else means acked records between
      // the checkpoint and this segment are gone.
      if (header->start_lsn > covered_lsn) {
        return Status::Corruption(
            path + ": wal starts at lsn " +
            std::to_string(header->start_lsn) + " but the checkpoint covers "
            "only up to " + std::to_string(covered_lsn));
      }
      lsn = header->start_lsn;
      have_lsn = true;
    } else if (header->start_lsn != lsn) {
      return Status::Corruption(path + ": wal segment starts at lsn " +
                                std::to_string(header->start_lsn) +
                                " but its predecessor ended at " +
                                std::to_string(lsn));
    }

    std::string_view rest =
        std::string_view(raw).substr(kSegmentHeaderSize);
    for (;;) {
      ParsedRecord record;
      const FrameStatus frame = ParseRecord(rest, &record);
      if (frame == FrameStatus::kEnd) break;
      if (frame == FrameStatus::kTorn) {
        if (!final_segment) {
          return Status::Corruption(path +
                                    ": torn wal frame in a sealed segment");
        }
        // The expected crash signature: drop the torn suffix so this
        // segment is complete if it ever becomes non-final.
        const size_t valid = raw.size() - rest.size();
        RLZ_RETURN_IF_ERROR(
            RewriteFile(*fs, dir, path, std::string_view(raw).substr(0, valid)));
        result.torn = true;
        break;
      }
      if (lsn >= covered_lsn && apply != nullptr) {
        RLZ_RETURN_IF_ERROR(apply(lsn, record.type, record.payload));
        ++result.replayed;
      }
      ++lsn;
      rest.remove_prefix(record.frame_size);
    }
    result.next_seq = seqs[i] + 1;
  }
  result.next_lsn = lsn;
  return result;
}

}  // namespace wal
}  // namespace rlz
