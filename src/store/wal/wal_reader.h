#ifndef RLZ_STORE_WAL_WAL_READER_H_
#define RLZ_STORE_WAL_WAL_READER_H_

/// \file
/// Replay side of the write-ahead log (DESIGN.md §12).
///
/// ReplayWal walks the segment files of a log directory in sequence
/// order and invokes a callback for every record at or past the
/// checkpoint's covered LSN. Damage handling is positional:
///
///   - A torn or CRC-bad frame in the FINAL segment is the expected
///     signature of a crash mid-append: replay stops there, reports
///     `torn`, and truncates the file to its valid prefix so the segment
///     is complete if a later crash makes it non-final.
///   - The same damage in any EARLIER segment is Corruption — the roll
///     protocol synced that segment before creating its successor, so a
///     synced frame cannot legitimately vanish.
///   - An unreadable header on the final segment means the crash hit
///     mid-roll, before any record in it could have been acked: the
///     segment is deleted and replay succeeds. On a non-final segment it
///     is Corruption.
///   - A gap in the segment sequence numbers, or a segment whose start
///     LSN does not continue its predecessor, is Corruption.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "io/file_system.h"
#include "store/wal/wal_format.h"
#include "util/status.h"

namespace rlz {
namespace wal {

/// What ReplayWal found.
struct ReplayResult {
  /// LSN after the last durable record — where the next writer starts.
  uint64_t next_lsn = 0;
  /// Sequence number the next segment should use.
  uint64_t next_seq = 0;
  /// Number of records delivered to the callback.
  uint64_t replayed = 0;
  /// True if the final segment ended in a torn frame (now truncated).
  bool torn = false;
};

/// Record callback: (lsn, type, payload). A non-OK return aborts replay
/// with that status. `payload` is only valid during the call.
using ReplayFn =
    std::function<Status(uint64_t, RecordType, std::string_view)>;

/// Replays every record with lsn >= `covered_lsn` from the segments in
/// `dir`, repairing a torn final segment in place (see file comment).
/// `apply` may be null to merely validate the log and locate its end.
StatusOr<ReplayResult> ReplayWal(const std::shared_ptr<FileSystem>& fs,
                                 const std::string& dir,
                                 uint64_t covered_lsn, const ReplayFn& apply);

}  // namespace wal
}  // namespace rlz

#endif  // RLZ_STORE_WAL_WAL_READER_H_
