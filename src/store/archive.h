#ifndef RLZ_STORE_ARCHIVE_H_
#define RLZ_STORE_ARCHIVE_H_

/// \file
/// The Archive interface: random-access document retrieval plus the
/// polymorphic Save every compressed store implements.

#include <cstdint>
#include <string>

#include "io/sim_disk.h"
#include "store/decode_scratch.h"
#include "util/status.h"

namespace rlz {

/// A compressed document store supporting random access by document id —
/// the interface every system in the paper's evaluation implements
/// (raw ASCII, blocked zlib/lzma, and RLZ).
///
/// Archives keep their encoded payload in memory but charge every payload
/// read to the optional SimDisk, which models the disk-resident deployment
/// the paper measures (compressed collections larger than RAM, caches
/// dropped; see DESIGN.md §4). Memory-resident structures — the document
/// map and, for RLZ, the dictionary — are never charged, matching the
/// paper's setup.
///
/// Thread-safety contract (DESIGN.md §6): archives are immutable once
/// built, and every implementation must support concurrent Get/GetRange
/// calls. SimDisk itself is unsynchronized accounting, so each concurrent
/// caller must pass its own SimDisk (or nullptr) — the serving layer gives
/// every worker thread a private one.
class Archive {
 public:
  virtual ~Archive() = default;

  /// Identifier used in benchmark tables (e.g. "rlz-ZV", "gzipx-64K").
  virtual std::string name() const = 0;

  /// Number of stored documents.
  virtual size_t num_docs() const = 0;

  /// Retrieves document `id` into `*doc` (cleared first). Charges simulated
  /// I/O to `disk` if non-null. Convenience overload of the scratch-aware
  /// virtual below, for one-off callers with no scratch to reuse.
  Status Get(size_t id, std::string* doc, SimDisk* disk = nullptr) const {
    return Get(id, doc, disk, nullptr);
  }

  /// The implementation point every archive overrides: as above, but a
  /// non-null `scratch` lends the decode reusable buffers so steady-state
  /// serving allocates nothing per request (DESIGN.md §9). Backends whose
  /// decode needs no scratch simply ignore it. `scratch` is borrowed for
  /// the duration of the call only and must not be shared by concurrent
  /// callers (one per worker, like SimDisk).
  virtual Status Get(size_t id, std::string* doc, SimDisk* disk,
                     DecodeScratch* scratch) const = 0;

  /// Retrieves bytes [offset, offset+length) of document `id` into `*text`
  /// (cleared first), clamped to the document end — the snippet path (§1).
  /// Convenience overload of the scratch-aware virtual below.
  Status GetRange(size_t id, size_t offset, size_t length, std::string* text,
                  SimDisk* disk = nullptr) const {
    return GetRange(id, offset, length, text, disk, nullptr);
  }

  /// As above with optional scratch buffers. The default decodes the whole
  /// document (into scratch->doc when lent) and slices it; backends with a
  /// cheaper partial decode (RLZ factor-stream skipping) override this.
  virtual Status GetRange(size_t id, size_t offset, size_t length,
                          std::string* text, SimDisk* disk,
                          DecodeScratch* scratch) const {
    std::string local;
    std::string* doc = scratch != nullptr ? &scratch->doc : &local;
    RLZ_RETURN_IF_ERROR(Get(id, doc, disk, scratch));
    text->clear();
    if (offset < doc->size()) {
      text->assign(*doc, offset,
                   length < doc->size() - offset ? length
                                                 : doc->size() - offset);
    }
    return Status::OK();
  }

  /// Total encoded size in bytes, including the document map and any
  /// dictionary — the numerator of the paper's "Enc. %" columns.
  virtual uint64_t stored_bytes() const = 0;

  /// Serializes the archive to `path` inside the versioned container
  /// format (store/format.h): every implementation writes a
  /// self-describing, CRC-protected envelope that OpenArchive() can
  /// reopen without knowing the concrete type. Multi-file formats (the
  /// sharded store) write `path` as a manifest plus sibling files derived
  /// from it. Returns InvalidArgument if the archive holds state the
  /// format cannot represent (e.g. an unregistered compressor).
  virtual Status Save(const std::string& path) const = 0;
};

}  // namespace rlz

#endif  // RLZ_STORE_ARCHIVE_H_
