#include "store/blocked_archive.h"

#include <algorithm>

#include "util/logging.h"

namespace rlz {

BlockedArchive::BlockedArchive(const Collection& collection,
                               const Compressor* compressor,
                               uint64_t block_bytes, uint64_t cache_bytes)
    : compressor_(compressor), block_bytes_(block_bytes) {
  RLZ_CHECK(compressor != nullptr);
  docs_.reserve(collection.num_docs());

  uint64_t max_block_text = 0;
  std::string block_text;
  std::vector<size_t> block_doc_sizes;
  auto flush = [&]() {
    if (block_text.empty()) return;
    const uint64_t start = payload_.size();
    compressor_->Compress(block_text, &payload_);
    blocks_.push_back({start, payload_.size() - start});
    max_block_text = std::max<uint64_t>(max_block_text, block_text.size());
    block_text.clear();
    block_doc_sizes.clear();
  };

  for (size_t i = 0; i < collection.num_docs(); ++i) {
    const std::string_view doc = collection.doc(i);
    docs_.push_back({static_cast<uint32_t>(blocks_.size()),
                     static_cast<uint32_t>(block_text.size()),
                     static_cast<uint32_t>(doc.size())});
    block_text.append(doc);
    // One doc per block when block_bytes_ == 0; otherwise close the block
    // once it reaches the target uncompressed size.
    if (block_bytes_ == 0 || block_text.size() >= block_bytes_) flush();
  }
  flush();

  // Auto-sized cache: two maximal blocks across two stripes (each stripe
  // must also cover the cache's per-entry charge), so each stripe can hold
  // one block and a sequential scan always hits (see header comment on
  // paper fidelity).
  if (cache_bytes == 0) {
    cache_bytes = 2 * (std::max<uint64_t>(max_block_text, 1) +
                       LruCache::kEntryOverheadBytes);
  }
  block_cache_ = std::make_unique<LruCache>(cache_bytes, /*num_shards=*/2);
}

std::string BlockedArchive::name() const {
  std::string n = compressor_->name();
  n += "-";
  if (block_bytes_ == 0) {
    n += "1doc";
  } else if (block_bytes_ % (1024 * 1024) == 0) {
    n += std::to_string(block_bytes_ / (1024 * 1024)) + "M";
  } else {
    n += std::to_string(block_bytes_ / 1024) + "K";
  }
  return n;
}

Status BlockedArchive::Get(size_t id, std::string* doc, SimDisk* disk) const {
  if (id >= docs_.size()) {
    return Status::OutOfRange("blocked archive: bad doc id");
  }
  const DocInfo& d = docs_[id];
  // Empty documents never reach the block store: a trailing empty doc is
  // recorded against a block that flush() (rightly) never emitted, so its
  // block index must not be dereferenced.
  if (d.size == 0) {
    doc->clear();
    return Status::OK();
  }
  const BlockInfo& b = blocks_[d.block];
  std::shared_ptr<const std::string> text = block_cache_->Get(d.block);
  if (text == nullptr) {
    // The whole compressed block must be read and decompressed to reach
    // the document (adaptive dictionaries decode from the block start,
    // §2.2).
    if (disk != nullptr) disk->Read(b.payload_offset, b.payload_size);
    std::string decoded;
    RLZ_RETURN_IF_ERROR(compressor_->Decompress(
        std::string_view(payload_).substr(b.payload_offset, b.payload_size),
        &decoded));
    text = block_cache_->Insert(d.block, std::move(decoded));
  }
  if (static_cast<uint64_t>(d.offset) + d.size > text->size()) {
    return Status::Corruption("blocked archive: doc extent outside block");
  }
  doc->assign(*text, d.offset, d.size);
  return Status::OK();
}

uint64_t BlockedArchive::stored_bytes() const {
  // Payload plus a vbyte-style directory: per block (offset delta) and per
  // doc (block id delta, offset, size).
  uint64_t meta = 0;
  auto vbyte_len = [](uint64_t v) {
    uint64_t n = 0;
    do {
      ++n;
      v >>= 7;
    } while (v != 0);
    return n;
  };
  for (const BlockInfo& b : blocks_) meta += vbyte_len(b.payload_size);
  for (const DocInfo& d : docs_) meta += 1 + vbyte_len(d.offset) + vbyte_len(d.size);
  return payload_.size() + meta;
}

}  // namespace rlz
