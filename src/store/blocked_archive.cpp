#include "store/blocked_archive.h"

#include <algorithm>

#include "build/build_pipeline.h"
#include "store/format.h"
#include "util/logging.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

// Shared by the build and load paths: the auto-sized decode cache holds
// two maximal uncompressed blocks across two stripes (see the class
// comment on paper fidelity).
std::unique_ptr<LruCache> MakeBlockCache(uint64_t cache_bytes,
                                         uint64_t max_block_text) {
  if (cache_bytes == 0) {
    cache_bytes = 2 * (std::max<uint64_t>(max_block_text, 1) +
                       LruCache::kEntryOverheadBytes);
  }
  return std::make_unique<LruCache>(cache_bytes, /*num_shards=*/2);
}

}  // namespace

BlockedArchive::BlockedArchive(const Compressor* compressor,
                               uint64_t block_bytes)
    : compressor_(compressor),
      gzipx_(dynamic_cast<const GzipxCompressor*>(compressor)),
      block_bytes_(block_bytes) {}

BlockedArchive::BlockedArchive(const Collection& collection,
                               const Compressor* compressor,
                               uint64_t block_bytes, uint64_t cache_bytes,
                               int num_threads)
    : BlockedArchive(compressor, block_bytes) {
  RLZ_CHECK(compressor != nullptr);
  docs_.reserve(collection.num_docs());

  // Pass 1 (serial, integer bookkeeping only): assign documents to blocks.
  // Blocks hold consecutive documents, and documents are contiguous in the
  // collection, so each block's uncompressed text is a view into the
  // collection — never materialized.
  struct BlockText {
    uint64_t offset;  // into collection.data()
    uint64_t size;    // uncompressed bytes
  };
  std::vector<BlockText> block_texts;  // closed blocks, in order
  uint64_t max_block_text = 0;
  uint64_t open_offset = 0;  // where the open block's text starts
  uint64_t open_size = 0;    // uncompressed bytes in the open block
  auto flush = [&]() {
    if (open_size == 0) return;
    block_texts.push_back({open_offset, open_size});
    max_block_text = std::max(max_block_text, open_size);
    open_size = 0;
  };
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    const uint64_t doc_size = collection.doc_size(i);
    if (open_size == 0) open_offset = collection.doc_offset(i);
    docs_.push_back({static_cast<uint32_t>(block_texts.size()),
                     static_cast<uint32_t>(open_size),
                     static_cast<uint32_t>(doc_size)});
    open_size += doc_size;
    // One doc per block when block_bytes_ == 0; otherwise close the block
    // once it reaches the target uncompressed size.
    if (block_bytes_ == 0 || open_size >= block_bytes_) flush();
  }
  flush();

  // Pass 2: blocks are independently decodable units, so they compress
  // concurrently on the build pipeline and merge in block order — the
  // payload is byte-identical to the serial loop (DESIGN.md §7).
  const size_t num_blocks = block_texts.size();
  blocks_.resize(num_blocks);
  BuildPipelineOptions pipeline_options;
  pipeline_options.num_threads = std::max(1, num_threads);
  BuildPipeline pipeline(pipeline_options);
  const size_t chunk_blocks = std::max<size_t>(
      1, num_blocks / (4 * static_cast<size_t>(pipeline_options.num_threads)));
  pipeline.SubmitChunkedEncode(
      num_blocks, chunk_blocks,
      [this, &collection, &block_texts](
          DocRange range, BuildPipeline::EncodedChunk* chunk, int) {
        chunk->item_sizes.reserve(range.size());
        for (size_t b = range.begin; b < range.end; ++b) {
          const size_t before = chunk->payload.size();
          compressor_->Compress(
              collection.data().substr(block_texts[b].offset,
                                       block_texts[b].size),
              &chunk->payload);
          chunk->item_sizes.push_back(chunk->payload.size() - before);
        }
      },
      [this](DocRange range, const BuildPipeline::EncodedChunk& chunk) {
        uint64_t offset = owned_payload_.size();
        for (size_t b = range.begin; b < range.end; ++b) {
          const uint64_t size = chunk.item_sizes[b - range.begin];
          blocks_[b] = {offset, size};
          offset += size;
        }
        owned_payload_.append(chunk.payload);
      });
  pipeline.Finish();

  block_cache_ = MakeBlockCache(cache_bytes, max_block_text);
}

std::string BlockedArchive::name() const {
  std::string n = compressor_->name();
  n += "-";
  if (block_bytes_ == 0) {
    n += "1doc";
  } else if (block_bytes_ % (1024 * 1024) == 0) {
    n += std::to_string(block_bytes_ / (1024 * 1024)) + "M";
  } else {
    n += std::to_string(block_bytes_ / 1024) + "K";
  }
  return n;
}

Status BlockedArchive::Get(size_t id, std::string* doc, SimDisk* disk,
                           DecodeScratch* scratch) const {
  if (id >= docs_.size()) {
    return Status::OutOfRange("blocked archive: bad doc id");
  }
  const DocInfo& d = docs_[id];
  // Empty documents never reach the block store: a trailing empty doc is
  // recorded against a block that flush() (rightly) never emitted, so its
  // block index must not be dereferenced.
  if (d.size == 0) {
    doc->clear();
    return Status::OK();
  }
  const BlockInfo& b = blocks_[d.block];
  std::shared_ptr<const std::string> text = block_cache_->Get(d.block);
  if (text == nullptr) {
    // The whole compressed block must be read and decompressed to reach
    // the document (adaptive dictionaries decode from the block start,
    // §2.2).
    if (disk != nullptr) disk->Read(b.payload_offset, b.payload_size);
    std::string decoded;
    // A gzipx-backed archive lends the caller's scratch to the block
    // decompression so its decoder tables are reused across misses (the
    // decoded block itself must stay fresh — it becomes a shared cache
    // entry). Other compressors take the plain path.
    const std::string_view block =
        payload().substr(b.payload_offset, b.payload_size);
    RLZ_RETURN_IF_ERROR(gzipx_ != nullptr && scratch != nullptr
                            ? gzipx_->Decompress(block, &decoded,
                                                 &scratch->gzipx)
                            : compressor_->Decompress(block, &decoded));
    text = block_cache_->Insert(d.block, std::move(decoded));
  }
  if (static_cast<uint64_t>(d.offset) + d.size > text->size()) {
    return Status::Corruption("blocked archive: doc extent outside block");
  }
  doc->assign(*text, d.offset, d.size);
  return Status::OK();
}

Status BlockedArchive::Save(const std::string& path) const {
  RLZ_ASSIGN_OR_RETURN(CompressorId id, compressor_->persistent_id());
  EnvelopeWriter writer(kFormatId, kFormatVersion);
  writer.PutByte(static_cast<uint8_t>(id));
  writer.PutVarint64(block_bytes_);
  writer.PutVarint64(blocks_.size());
  // Block offsets are cumulative, so only sizes are stored.
  for (const BlockInfo& b : blocks_) writer.PutVarint64(b.payload_size);
  writer.PutVarint64(docs_.size());
  for (const DocInfo& d : docs_) {
    writer.PutVarint32(d.block);
    writer.PutVarint32(d.offset);
    writer.PutVarint32(d.size);
  }
  writer.PutBytes(payload());
  return std::move(writer).WriteTo(path);
}

StatusOr<std::unique_ptr<BlockedArchive>> BlockedArchive::FromEnvelope(
    const ParsedEnvelope& envelope, const OpenOptions& options) {
  RLZ_RETURN_IF_ERROR(
      CheckEnvelopeFormat(envelope, kFormatId, kFormatVersion));
  EnvelopeReader reader = envelope.reader();

  uint8_t compressor_byte = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadByte(&compressor_byte));
  if (compressor_byte > static_cast<uint8_t>(CompressorId::kLzmax)) {
    return Status::Corruption(envelope.context() +
                              ": unknown compressor id");
  }
  const Compressor* compressor =
      GetCompressor(static_cast<CompressorId>(compressor_byte));

  uint64_t block_bytes = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&block_bytes));
  std::unique_ptr<BlockedArchive> archive(
      new BlockedArchive(compressor, block_bytes));

  uint64_t num_blocks = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&num_blocks));
  if (num_blocks > reader.remaining()) {
    return Status::Corruption(envelope.context() +
                              ": block count exceeds file");
  }
  archive->blocks_.resize(num_blocks);
  uint64_t payload_size = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    uint64_t size = 0;
    RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&size));
    if (size > reader.remaining() ||
        payload_size > reader.remaining() - size) {
      return Status::Corruption(envelope.context() +
                                ": payload size mismatch");
    }
    archive->blocks_[b] = {payload_size, size};
    payload_size += size;
  }

  uint64_t num_docs = 0;
  RLZ_RETURN_IF_ERROR(reader.ReadVarint64(&num_docs));
  if (num_docs > reader.remaining()) {
    return Status::Corruption(envelope.context() +
                              ": document count exceeds file");
  }
  archive->docs_.resize(num_docs);
  // Per-block uncompressed extents, rebuilt from the document table to
  // auto-size the decode cache exactly as the build path does.
  uint64_t max_block_text = 0;
  for (uint64_t i = 0; i < num_docs; ++i) {
    DocInfo& d = archive->docs_[i];
    RLZ_RETURN_IF_ERROR(reader.ReadVarint32(&d.block));
    RLZ_RETURN_IF_ERROR(reader.ReadVarint32(&d.offset));
    RLZ_RETURN_IF_ERROR(reader.ReadVarint32(&d.size));
    // Empty trailing documents may reference one block past the end (see
    // Get); any other out-of-range block index is structural damage.
    if (d.size > 0 ? d.block >= num_blocks : d.block > num_blocks) {
      return Status::Corruption(envelope.context() +
                                ": document references missing block");
    }
    max_block_text = std::max<uint64_t>(
        max_block_text, static_cast<uint64_t>(d.offset) + d.size);
  }

  if (reader.remaining() != payload_size) {
    return Status::Corruption(envelope.context() + ": payload size mismatch");
  }
  // Zero-copy open: the payload aliases the loaded file bytes, which the
  // envelope's shared backing keeps alive (DESIGN.md §9).
  archive->backing_ = envelope.backing();
  archive->payload_view_ = reader.ReadRest();
  archive->block_cache_ = MakeBlockCache(options.cache_bytes, max_block_text);
  return archive;
}

StatusOr<std::unique_ptr<BlockedArchive>> BlockedArchive::Load(
    const std::string& path, const OpenOptions& options) {
  RLZ_ASSIGN_OR_RETURN(ParsedEnvelope envelope, ReadEnvelopeFile(path));
  return FromEnvelope(envelope, options);
}

uint64_t BlockedArchive::stored_bytes() const {
  // Payload plus a vbyte-style directory: per block (offset delta) and per
  // doc (block id delta, offset, size).
  uint64_t meta = 0;
  auto vbyte_len = [](uint64_t v) {
    uint64_t n = 0;
    do {
      ++n;
      v >>= 7;
    } while (v != 0);
    return n;
  };
  for (const BlockInfo& b : blocks_) meta += vbyte_len(b.payload_size);
  for (const DocInfo& d : docs_) meta += 1 + vbyte_len(d.offset) + vbyte_len(d.size);
  return payload().size() + meta;
}

}  // namespace rlz
