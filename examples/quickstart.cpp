// Quickstart: build a small collection, compress it with RLZ, and retrieve
// documents by id.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/rlz.h"

int main() {
  // 1. Assemble a collection (normally you would load your own documents).
  rlz::Collection collection;
  collection.Append("<html><body>The quick brown fox.</body></html>");
  collection.Append("<html><body>The quick brown fox jumps.</body></html>");
  collection.Append("<html><body>A completely different page about dogs."
                    "</body></html>");
  for (int i = 0; i < 200; ++i) {
    collection.Append("<html><body>Boilerplate page number " +
                      std::to_string(i) +
                      " with the usual shared template text repeated on "
                      "every page of the site.</body></html>");
  }

  // 2. Compress: sample a dictionary across the collection, factorize every
  //    document against it (§3.1 of the paper).
  rlz::RlzOptions options;
  options.dict_bytes = 4 << 10;  // 4 KB dictionary
  options.sample_bytes = 256;
  options.coding = rlz::kZV;  // zlib-coded positions, vbyte lengths
  rlz::RlzBuildInfo info;
  auto archive = rlz::CompressCollection(collection, options, &info);

  std::printf("collection: %zu docs, %zu bytes\n", collection.num_docs(),
              collection.size_bytes());
  std::printf("compressed: %llu bytes (%.2f%%), avg factor length %.1f\n",
              static_cast<unsigned long long>(archive->stored_bytes()),
              100.0 * archive->stored_bytes() / collection.size_bytes(),
              info.stats.avg_factor_length());

  // 3. Random access: decode single documents against the in-memory
  //    dictionary.
  std::string doc;
  const rlz::Status s = archive->Get(1, &doc);
  if (!s.ok()) {
    std::fprintf(stderr, "Get failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("doc 1: %s\n", doc.c_str());
  return 0;
}
