# Drives the rlz_tool CLI end-to-end: generate a corpus, build an archive,
# inspect it, fetch a document, and verify every document round-trips.
# Invoked by ctest (see examples/CMakeLists.txt) as:
#   cmake -DRLZ_TOOL=<path> -DWORK_DIR=<dir> -P rlz_tool_smoke.cmake

if(NOT RLZ_TOOL OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRLZ_TOOL=<rlz_tool> -DWORK_DIR=<dir> -P rlz_tool_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(corpus "${WORK_DIR}/corpus.bin")
set(archive "${WORK_DIR}/archive.rlza")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (exit ${rc}): ${ARGV}")
  endif()
endfunction()

run_step("${RLZ_TOOL}" gen "${corpus}" 2097152)
run_step("${RLZ_TOOL}" build "${corpus}" "${archive}" 65536 ZV)
run_step("${RLZ_TOOL}" info "${archive}")
run_step("${RLZ_TOOL}" get "${archive}" 0)
run_step("${RLZ_TOOL}" verify "${corpus}" "${archive}")

# Bad usage must fail loudly, not exit 0.
execute_process(COMMAND "${RLZ_TOOL}" RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "rlz_tool with no arguments should exit nonzero")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
