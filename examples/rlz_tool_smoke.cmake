# Drives the rlz_tool CLI end-to-end: generate a corpus, build an archive
# in every container format, inspect each with stat, fetch documents with
# cat, and verify every document round-trips through OpenArchive.
# Invoked by ctest (see examples/CMakeLists.txt) as:
#   cmake -DRLZ_TOOL=<path> -DWORK_DIR=<dir> -P rlz_tool_smoke.cmake

if(NOT RLZ_TOOL OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRLZ_TOOL=<rlz_tool> -DWORK_DIR=<dir> -P rlz_tool_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(corpus "${WORK_DIR}/corpus.rcol")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (exit ${rc}): ${ARGV}")
  endif()
endfunction()

run_step("${RLZ_TOOL}" gen "${corpus}" 2097152)

# The historical numeric spelling (`build <in> <out> <dict_bytes> <coding>`)
# must keep working alongside the format-named spellings.
run_step("${RLZ_TOOL}" build "${corpus}" "${WORK_DIR}/legacy.rlza" 65536 ZV)
run_step("${RLZ_TOOL}" verify "${corpus}" "${WORK_DIR}/legacy.rlza")

# One archive per container format; each must stat, cat, and verify
# through the format-agnostic OpenArchive path.
set(formats
  "rlz:65536:ZV"
  "ascii"
  "blocked:gzipx:65536"
  "semistatic:etdc"
  "sharded:4:65536"
)
foreach(format_spec IN LISTS formats)
  string(REPLACE ":" ";" format_args "${format_spec}")
  list(GET format_args 0 format)
  set(archive "${WORK_DIR}/archive.${format}")
  run_step("${RLZ_TOOL}" build "${corpus}" "${archive}" ${format_args})
  run_step("${RLZ_TOOL}" stat "${archive}")
  run_step("${RLZ_TOOL}" cat "${archive}" 0)
  run_step("${RLZ_TOOL}" cat "${archive}" 1 10 40)
  run_step("${RLZ_TOOL}" verify "${corpus}" "${archive}")
endforeach()

# Bad usage must fail loudly, not exit 0.
execute_process(COMMAND "${RLZ_TOOL}" RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "rlz_tool with no arguments should exit nonzero")
endif()
execute_process(COMMAND "${RLZ_TOOL}" stat "${corpus}.does-not-exist"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "rlz_tool stat on a missing file should exit nonzero")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
