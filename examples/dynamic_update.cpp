// Dynamic-update scenario (§3.6), live: a ShardedStore built on an
// initial crawl keeps serving through DocService while fresh — and
// *drifted* — content streams in via Append, stale documents are
// Delete()d, and the background compaction re-samples a drifted shard's
// dictionary. Prints per-epoch compression ratios so the §3.6 staleness
// narrative is visible as it happens: tail seals encoded against the
// build-time append dictionary degrade Enc.% (Table 10's story), and the
// stale-dictionary compaction recovers it.
//
//   ./build/examples/dynamic_update

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"

namespace {

rlz::Collection MakeCollection(size_t target_bytes, uint64_t seed) {
  rlz::CorpusOptions options;
  options.target_bytes = target_bytes;
  options.seed = seed;
  return rlz::GenerateCorpus(options).collection;
}

// One epoch snapshot line: sequence, corpus shape, and the live Enc.%
// (stored bytes over the raw bytes of the *live* documents).
void PrintEpoch(const char* label, const rlz::ShardedStore& store,
                uint64_t raw_bytes) {
  const auto epoch = store.epoch();
  std::printf(
      "epoch %3llu  %-26s  shards=%d  docs=%zu (live %zu)  tail=%zu  "
      "Enc=%6.2f%%\n",
      static_cast<unsigned long long>(epoch->sequence()), label,
      epoch->num_shards(), epoch->num_docs(), epoch->live_docs(),
      epoch->tail_docs(),
      100.0 * static_cast<double>(epoch->stored_bytes()) /
          static_cast<double>(raw_bytes));
}

}  // namespace

int main() {
  // The initial crawl: 8 MB, 4 shards, auto-seal at 256 KB of tail.
  const rlz::Collection initial = MakeCollection(8 << 20, 36);
  rlz::ShardedStoreOptions options;
  options.num_shards = 4;
  options.dict_bytes = initial.size_bytes() / 100;
  options.live.tail_seal_bytes = 256 << 10;
  // Arm only the staleness trigger, and make it sensitive enough to catch
  // the drifted shard below.
  options.live.compact_tombstone_fraction = 0.30;
  options.live.compact_stale_decay = 0.35;
  options.live.compact_stale_unused_fraction = 2.0;  // decay decides
  auto store = rlz::ShardedStore::Build(initial, options);

  uint64_t raw_bytes = initial.size_bytes();
  std::printf("build: %zu docs, %.1f MB, append dictionary sampled from "
              "the initial crawl\n",
              initial.num_docs(), initial.size_bytes() / 1048576.0);
  PrintEpoch("initial build", *store, raw_bytes);

  // Serve throughout: the service routes from per-epoch router snapshots
  // and its decode cache is invalidated by deletes automatically.
  rlz::DocServiceOptions service_options;
  service_options.num_threads = 2;
  rlz::DocService service(store.get(), service_options);

  // --- Phase 1: similar content streams in (same distribution) ----------
  const rlz::Collection similar = MakeCollection(1 << 20, 37);
  for (size_t i = 0; i < similar.num_docs(); ++i) {
    if (!store->Append(similar.doc(i)).ok()) return 1;
  }
  raw_bytes += similar.size_bytes();
  if (!store->SealTail().ok()) return 1;
  PrintEpoch("+1 MB similar content", *store, raw_bytes);

  // --- Phase 2: the crawl drifts (new hosts, new vocabulary) ------------
  const rlz::Collection drifted = MakeCollection(1 << 20, 4242);
  for (size_t i = 0; i < drifted.num_docs(); ++i) {
    if (!store->Append(drifted.doc(i)).ok()) return 1;
  }
  raw_bytes += drifted.size_bytes();
  if (!store->SealTail().ok()) return 1;
  PrintEpoch("+1 MB drifted content", *store, raw_bytes);

  const int drifted_shard = store->num_shards() - 1;
  const rlz::ShardHealth health = store->shard_health(drifted_shard);
  std::printf(
      "  drifted shard %d: avg factor %.1f vs baseline %.1f "
      "(decay %.0f%%) — the §3.6 stale-dictionary effect\n",
      drifted_shard, health.stats.avg_factor_length(),
      store->baseline_stats().avg_factor_length(),
      100.0 * health.stats.avg_factor_decay(store->baseline_stats()));

  // --- Phase 3: deletes tombstone old documents -------------------------
  // Warm the decode cache on a doc about to be deleted: the store's
  // eviction hook must erase the stale entry when the tombstone publishes.
  if (!service.Get(0).get().ok()) return 1;
  for (size_t id = 0; id < initial.num_docs(); id += 9) {
    if (!store->Delete(id).ok()) return 1;
  }
  PrintEpoch("deleted 1/9 of the crawl", *store, raw_bytes);

  // --- Phase 4: compaction re-samples the drifted shard -----------------
  auto report = store->CompactOnce();
  if (!report.ok()) return 1;
  if (report.value().compacted) {
    std::printf(
        "  compaction: shard %d gen %llu (%s) %llu -> %llu bytes, "
        "%zu live / %zu dead docs\n",
        report.value().shard,
        static_cast<unsigned long long>(report.value().generation),
        report.value().reason ==
                rlz::CompactionReport::Reason::kStaleDictionary
            ? "stale dictionary"
            : "tombstones",
        static_cast<unsigned long long>(report.value().bytes_before),
        static_cast<unsigned long long>(report.value().bytes_after),
        report.value().live_docs, report.value().dead_docs);
  }
  PrintEpoch("after compaction", *store, raw_bytes);

  // The service kept serving across every epoch above; spot-check it on a
  // surviving old document, an appended one, and a deleted one.
  const size_t survivor = 1;  // not a multiple of 9
  rlz::GetResult old_doc = service.Get(survivor).get();
  rlz::GetResult new_doc =
      service.Get(initial.num_docs() + similar.num_docs() / 2).get();
  rlz::GetResult dead_doc = service.Get(0).get();
  if (!old_doc.ok() || !new_doc.ok() || dead_doc.ok()) return 1;
  if (*old_doc.text != initial.doc(survivor)) return 1;
  std::printf(
      "service: old doc %zu (%zu B) and appended doc both served; "
      "deleted doc 0 -> %s\n",
      survivor, old_doc.text->size(),
      rlz::StatusCodeToString(dead_doc.status.code()));
  const rlz::ServiceStats stats = service.Stats();
  std::printf(
      "service: %llu requests, cache erased %llu entries on delete\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.cache.erased));
  return 0;
}
