// Dynamic-update scenario (§3.6): a collection grows over time, but the
// dictionary was sampled before the new documents arrived. Demonstrates
// that compression degrades gracefully (Table 10) and that appending fresh
// samples to the dictionary recovers it without re-encoding old documents
// (the "no constraint on memory" strategy of §3.6 — previous factor codes
// stay valid because the old dictionary text keeps its offsets).
//
//   ./build/examples/dynamic_update

#include <cstdio>
#include <memory>
#include <string>

#include "core/rlz.h"
#include "corpus/generator.h"

namespace {

double EncPct(const rlz::RlzArchive& archive,
              const rlz::Collection& collection) {
  return 100.0 * static_cast<double>(archive.stored_bytes()) /
         static_cast<double>(collection.size_bytes());
}

}  // namespace

int main() {
  rlz::CorpusOptions options;
  options.target_bytes = 8 << 20;
  options.seed = 36;
  const rlz::Corpus corpus = rlz::GenerateCorpus(options);
  const rlz::Collection& collection = corpus.collection;
  const size_t dict_bytes = collection.size_bytes() / 100;

  // Dictionary sampled from only the first 20% of the collection —
  // "before" the remaining 80% of documents arrived.
  std::shared_ptr<const rlz::Dictionary> stale =
      rlz::DictionaryBuilder::BuildFromPrefix(collection.data(), 0.20,
                                              dict_bytes, 1024);
  // Dictionary sampled from everything (the ideal).
  std::shared_ptr<const rlz::Dictionary> fresh =
      rlz::DictionaryBuilder::BuildSampled(collection.data(), dict_bytes,
                                           1024);

  rlz::RlzBuildOptions build;
  build.coding = rlz::kZV;
  auto stale_archive = rlz::RlzArchive::Build(collection, stale, build);
  auto fresh_archive = rlz::RlzArchive::Build(collection, fresh, build);

  std::printf("dictionary from 20%% prefix : %6.2f%%\n",
              EncPct(*stale_archive, collection));
  std::printf("dictionary from full data  : %6.2f%%\n",
              EncPct(*fresh_archive, collection));

  // Recovery: append samples of the NEW data to the stale dictionary
  // (old offsets unchanged -> old encodings stay valid), rebuild the
  // suffix array, re-encode only if desired. Here we re-encode everything
  // to show the compression recovered.
  const std::string_view tail = std::string_view(collection.data())
                                    .substr(collection.size_bytes() / 5);
  std::shared_ptr<const rlz::Dictionary> grown =
      rlz::DictionaryBuilder::AppendSamples(*stale, tail, dict_bytes / 2,
                                            1024);
  auto grown_archive = rlz::RlzArchive::Build(collection, grown, build);
  std::printf("stale + appended samples   : %6.2f%%\n",
              EncPct(*grown_archive, collection));

  // Sanity: all three stores decode identically.
  std::string a;
  std::string b;
  for (size_t i = 0; i < collection.num_docs(); i += 37) {
    if (!stale_archive->Get(i, &a).ok() || !grown_archive->Get(i, &b).ok() ||
        a != b || a != collection.doc(i)) {
      std::fprintf(stderr, "mismatch at doc %zu\n", i);
      return 1;
    }
  }
  std::printf("verified: all stores decode identically\n");
  return 0;
}
