// Snippet-server scenario: the motivating application of the paper's
// introduction — a search engine that must fetch result documents from a
// compressed store to build query-biased snippets. Builds an inverted
// index and an RLZ archive over a synthetic crawl, runs keyword queries,
// retrieves the top documents from the archive, and prints snippets around
// the first query-term hit.
//
//   ./build/examples/snippet_server [query terms...]

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "search/inverted_index.h"
#include "search/query_log.h"
#include "search/tokenizer.h"

namespace {

// Strips tags and squeezes whitespace for display.
std::string Plain(std::string_view html) {
  std::string out;
  bool in_tag = false;
  bool last_space = true;
  for (char c : html) {
    if (c == '<') in_tag = true;
    if (!in_tag) {
      const bool space = std::isspace(static_cast<unsigned char>(c));
      if (!space) {
        out.push_back(c);
        last_space = false;
      } else if (!last_space) {
        out.push_back(' ');
        last_space = true;
      }
    }
    if (c == '>') in_tag = false;
  }
  return out;
}

// Query-biased snippet: locate the term with a cheap range probe, then
// decode only a window around the hit via RlzArchive::GetRange — the
// random-access pattern the paper's introduction motivates.
std::string MakeSnippet(const rlz::RlzArchive& archive, uint32_t doc_id,
                        std::string_view doc, const std::string& term) {
  std::string lower(doc);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const size_t pos = lower.find(term);
  std::string window;
  if (pos == std::string::npos) {
    if (!archive.GetRange(doc_id, 0, 400, &window).ok()) return "";
  } else {
    const size_t start = pos < 150 ? 0 : pos - 150;
    if (!archive.GetRange(doc_id, start, 400, &window).ok()) return "";
  }
  return "..." + Plain(window).substr(0, 120) + "...";
}

}  // namespace

int main(int argc, char** argv) {
  rlz::CorpusOptions corpus_options;
  corpus_options.target_bytes = 8 << 20;
  corpus_options.seed = 99;
  const rlz::Corpus corpus = rlz::GenerateCorpus(corpus_options);
  const rlz::Collection& collection = corpus.collection;

  std::printf("indexing %zu docs...\n", collection.num_docs());
  const rlz::InvertedIndex index = rlz::InvertedIndex::Build(collection);

  std::printf("compressing with rlz...\n");
  rlz::RlzOptions options;
  options.dict_bytes = collection.size_bytes() / 100;
  auto archive = rlz::CompressCollection(collection, options);
  std::printf("store: %.2f%% of %zu bytes\n",
              100.0 * archive->stored_bytes() / collection.size_bytes(),
              collection.size_bytes());

  // Queries: from argv, or sample a few from the collection vocabulary.
  std::vector<std::vector<std::string>> queries;
  if (argc > 1) {
    std::vector<std::string> q;
    for (int i = 1; i < argc; ++i) q.push_back(argv[i]);
    queries.push_back(q);
  } else {
    rlz::QueryLogOptions qopts;
    qopts.num_queries = 3;
    qopts.seed = 5;
    queries = rlz::GenerateQueries(index, qopts);
  }

  std::string doc;
  for (const auto& query : queries) {
    std::string qstr;
    for (const auto& t : query) qstr += t + " ";
    std::printf("\nquery: %s\n", qstr.c_str());
    const auto hits = index.Query(query, 3);
    for (const auto& hit : hits) {
      const rlz::Status s = archive->Get(hit.doc, &doc);
      if (!s.ok()) {
        std::fprintf(stderr, "retrieval failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("  [%u] %s (score %.2f)\n      %s\n", hit.doc,
                  corpus.urls[hit.doc].c_str(), hit.score,
                  MakeSnippet(*archive, hit.doc, doc, query[0]).c_str());
    }
  }
  return 0;
}
