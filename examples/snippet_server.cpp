// Snippet-server scenario: the motivating application of the paper's
// introduction — a search engine that must fetch result documents from a
// compressed store to build query-biased snippets. This version runs the
// full serving stack (DESIGN.md §6) against a *reopened* store, the
// paper's disk-resident deployment: the collection is partitioned into a
// ShardedStore of independent RLZ shards, saved to disk as a manifest
// plus shard containers (DESIGN.md §8), and reopened serving-only
// (OpenOptions::build_suffix_array = false — decoding never touches the
// suffix arrays, so a restart skips rebuilding them). Requests then flow
// through a DocService thread pool with an LRU decode cache — MultiGet
// fetches the result page's documents concurrently, and the snippet
// windows use the GetRange fast path. A service stats report prints at
// the end.
//
//   ./build/examples/snippet_server [query terms...]

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "search/inverted_index.h"
#include "search/query_log.h"
#include "search/tokenizer.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "util/timer.h"

namespace {

// Strips tags and squeezes whitespace for display.
std::string Plain(std::string_view html) {
  std::string out;
  bool in_tag = false;
  bool last_space = true;
  for (char c : html) {
    if (c == '<') in_tag = true;
    if (!in_tag) {
      const bool space = std::isspace(static_cast<unsigned char>(c));
      if (!space) {
        out.push_back(c);
        last_space = false;
      } else if (!last_space) {
        out.push_back(' ');
        last_space = true;
      }
    }
    if (c == '>') in_tag = false;
  }
  return out;
}

// Query-biased snippet: locate the term in the already-fetched document,
// then pull only a window around the hit through the service's GetRange
// path (a cache hit slices the resident copy; a miss decodes just the
// window's factors).
std::string MakeSnippet(rlz::DocService& service, uint32_t doc_id,
                        std::string_view doc, const std::string& term) {
  std::string lower(doc);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const size_t pos = lower.find(term);
  const size_t start = (pos == std::string::npos || pos < 150) ? 0 : pos - 150;
  rlz::GetResult window = service.GetRange(doc_id, start, 400).get();
  if (!window.ok()) return "";
  return "..." + Plain(*window.text).substr(0, 120) + "...";
}

}  // namespace

int main(int argc, char** argv) {
  rlz::CorpusOptions corpus_options;
  corpus_options.target_bytes = 8 << 20;
  corpus_options.seed = 99;
  const rlz::Corpus corpus = rlz::GenerateCorpus(corpus_options);
  const rlz::Collection& collection = corpus.collection;

  std::printf("indexing %zu docs...\n", collection.num_docs());
  const rlz::InvertedIndex index = rlz::InvertedIndex::Build(collection);

  rlz::ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  std::printf("compressing into %d rlz shards...\n", store_options.num_shards);
  const auto built = rlz::ShardedStore::Build(collection, store_options);
  std::printf("store %s: %.2f%% of %zu bytes\n", built->name().c_str(),
              100.0 * built->stored_bytes() / collection.size_bytes(),
              collection.size_bytes());

  // Persist and reopen: the restart path a production front-end takes.
  // The reopen is serving-only, so no shard rebuilds its suffix array.
  // Per-process directory (release and sanitizer smoke runs may execute
  // concurrently), removed on every exit path below.
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      ("rlz_snippet_server." + std::to_string(::getpid()));
  std::filesystem::create_directories(store_dir);
  struct ScopedRemove {
    const std::filesystem::path& dir;
    ~ScopedRemove() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{store_dir};
  const std::string manifest = (store_dir / "store.sharded").string();
  if (const rlz::Status s = built->Save(manifest); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  rlz::OpenOptions open_options;
  open_options.build_suffix_array = false;
  rlz::Timer open_timer;
  auto reopened = rlz::ShardedStore::Open(manifest, open_options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  const auto store = std::move(reopened).value();
  std::printf("reopened %s from %s in %.1f ms (serving-only, no suffix "
              "arrays)\n",
              store->name().c_str(), manifest.c_str(),
              1e3 * open_timer.ElapsedSeconds());

  rlz::DocServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.cache_bytes = 16 << 20;
  rlz::DocService service(store.get(), service_options);

  // Queries: from argv, or sample a few from the collection vocabulary.
  std::vector<std::vector<std::string>> queries;
  if (argc > 1) {
    std::vector<std::string> q;
    for (int i = 1; i < argc; ++i) q.push_back(argv[i]);
    queries.push_back(q);
  } else {
    rlz::QueryLogOptions qopts;
    qopts.num_queries = 3;
    qopts.seed = 5;
    queries = rlz::GenerateQueries(index, qopts);
  }

  // One ServeBatch reused across queries: each result page is routed to
  // the shard-affine worker queues in one batched submission, and the
  // steady-state fetch loop allocates nothing for completion plumbing
  // (DESIGN.md §10).
  rlz::ServeBatch page;
  std::vector<size_t> ids;
  for (const auto& query : queries) {
    std::string qstr;
    for (const auto& t : query) qstr += t + " ";
    std::printf("\nquery: %s\n", qstr.c_str());
    const auto hits = index.Query(query, 3);
    // The whole result page is fetched as one concurrent batch.
    ids.clear();
    for (const auto& hit : hits) ids.push_back(hit.doc);
    service.SubmitBatch(ids, &page);
    const std::vector<rlz::GetResult>& docs = page.Wait();
    for (size_t i = 0; i < hits.size(); ++i) {
      if (!docs[i].ok()) {
        std::fprintf(stderr, "retrieval failed: %s\n",
                     docs[i].status.ToString().c_str());
        return 1;
      }
      std::printf("  [%u] %s (score %.2f)\n      %s\n", hits[i].doc,
                  corpus.urls[hits[i].doc].c_str(), hits[i].score,
                  MakeSnippet(service, hits[i].doc, *docs[i].text,
                              query[0]).c_str());
    }
  }

  // Graceful stop: drains accepted requests and joins the workers, after
  // which Stats() is exact — the front-end's shutdown report.
  service.Shutdown();
  const rlz::ServiceStats stats = service.Stats();
  std::printf(
      "\nservice: %llu requests (%llu failed), cache %.1f%% hits "
      "(%llu entries, %.1f MB), disk %.1f ms simulated / %llu seeks\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.failures),
      100.0 * stats.cache.hit_rate(),
      static_cast<unsigned long long>(stats.cache.entries),
      stats.cache.bytes / (1024.0 * 1024.0),
      1e3 * stats.disk_seconds,
      static_cast<unsigned long long>(stats.disk_seeks));
  std::printf(
      "latency: p50 %.1f us, p99 %.1f us over %d workers (%llu steals)\n",
      stats.latency_p50_us, stats.latency_p99_us, stats.num_threads,
      static_cast<unsigned long long>(stats.steals));
  return 0;
}
