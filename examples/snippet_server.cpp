// Snippet-server scenario: the motivating application of the paper's
// introduction — a search engine that must fetch result documents from a
// compressed store to build query-biased snippets. This version runs the
// full serving stack (DESIGN.md §6) against a *reopened* store, the
// paper's disk-resident deployment, and — new in this revision — serves
// it over a real socket: the collection is partitioned into a
// ShardedStore of independent RLZ shards, saved to disk as a manifest
// plus shard containers (DESIGN.md §8), reopened serving-only
// (OpenOptions::build_suffix_array = false), wrapped in a DocService
// thread pool with an LRU decode cache, and exposed through the epoll
// DocServer front end (DESIGN.md §13). Result pages travel the
// length-prefixed wire protocol as MultiGets; snippet windows use the
// GetRange fast path; the closing stats report arrives via the Stat
// command.
//
//   ./build/examples/snippet_server [query terms...]
//       Self-terminating demo: build, serve on an ephemeral loopback
//       port, answer a few queries through a NetClient, print stats.
//   ./build/examples/snippet_server --serve [PORT]
//       Real server: build the store, listen on PORT (default:
//       ephemeral, printed), serve until stdin reaches EOF.
//   ./build/examples/snippet_server --client PORT [N [DEPTH]]
//       Load client for a --serve instance: N pipelined MultiGet
//       result-page fetches (pipelining depth DEPTH), then p50/p99.

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "net/doc_server.h"
#include "net/net_client.h"
#include "search/inverted_index.h"
#include "search/query_log.h"
#include "search/tokenizer.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "util/timer.h"

namespace {

// Strips tags and squeezes whitespace for display.
std::string Plain(std::string_view html) {
  std::string out;
  bool in_tag = false;
  bool last_space = true;
  for (char c : html) {
    if (c == '<') in_tag = true;
    if (!in_tag) {
      const bool space = std::isspace(static_cast<unsigned char>(c));
      if (!space) {
        out.push_back(c);
        last_space = false;
      } else if (!last_space) {
        out.push_back(' ');
        last_space = true;
      }
    }
    if (c == '>') in_tag = false;
  }
  return out;
}

// Query-biased snippet: locate the term in the already-fetched document,
// then pull only a window around the hit over the wire through the
// service's GetRange path (a cache hit slices the resident copy; a miss
// decodes just the window's factors).
std::string MakeSnippet(rlz::net::NetClient& client, uint64_t doc_id,
                        std::string_view doc, const std::string& term) {
  std::string lower(doc);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const size_t pos = lower.find(term);
  const size_t start = (pos == std::string::npos || pos < 150) ? 0 : pos - 150;
  rlz::StatusOr<std::string> window = client.GetRange(doc_id, start, 400);
  if (!window.ok()) return "";
  return "..." + Plain(*window).substr(0, 120) + "...";
}

// --client mode: closed-loop pipelined MultiGet load against a --serve
// instance on `port`. Result-page size is fixed at 3 docs (a search
// result page); latencies are client-observed round trips, so at depth
// > 1 they include pipeline queueing.
int RunClient(uint16_t port, size_t num_requests, size_t depth) {
  constexpr size_t kPageDocs = 3;
  auto client_or = rlz::net::NetClient::Connect(port);
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect to 127.0.0.1:%u failed: %s\n", port,
                 client_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<rlz::net::NetClient> client = std::move(client_or).value();
  const auto stat = client->Stat();
  if (!stat.ok()) {
    std::fprintf(stderr, "stat failed: %s\n", stat.status().ToString().c_str());
    return 1;
  }
  const uint64_t num_docs = stat->archive_docs;
  if (num_docs == 0) {
    std::fprintf(stderr, "server reports an empty archive\n");
    return 1;
  }
  std::printf("server holds %llu docs; issuing %zu MultiGets of %zu docs "
              "at pipeline depth %zu\n",
              static_cast<unsigned long long>(num_docs), num_requests,
              kPageDocs, depth);

  std::mt19937_64 rng(12345);
  std::vector<uint64_t> ids(kPageDocs);
  std::deque<double> sent_at;
  std::vector<double> latencies;
  latencies.reserve(num_requests);
  rlz::Timer timer;
  size_t issued = 0;
  uint64_t payload_bytes = 0;
  const auto send_one = [&] {
    for (auto& id : ids) id = rng() % num_docs;
    client->SendMultiGet(ids);
    sent_at.push_back(timer.ElapsedSeconds());
    ++issued;
  };
  while (issued < depth && issued < num_requests) send_one();
  while (latencies.size() < num_requests) {
    auto response = client->Receive();  // flushes queued sends first
    if (!response.ok()) {
      std::fprintf(stderr, "receive failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (!response->ok()) {
      std::fprintf(stderr, "server error: %s\n", response->payload.c_str());
      return 1;
    }
    for (const auto& elem : response->elements) {
      payload_bytes += elem.bytes.size();
    }
    latencies.push_back(timer.ElapsedSeconds() - sent_at.front());
    sent_at.pop_front();
    if (issued < num_requests) send_one();
  }
  const double elapsed = timer.ElapsedSeconds();
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    return 1e6 * latencies[std::min(latencies.size() - 1,
                                    static_cast<size_t>(p * latencies.size()))];
  };
  std::printf("%zu pages (%zu docs, %.1f MB) in %.3f s: %.0f pages/s\n",
              num_requests, num_requests * kPageDocs,
              payload_bytes / (1024.0 * 1024.0), elapsed,
              num_requests / elapsed);
  std::printf("latency: p50 %.1f us, p99 %.1f us\n", pct(0.50), pct(0.99));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Mode dispatch: --client needs no corpus of its own.
  bool serve_mode = false;
  uint16_t requested_port = 0;
  std::vector<std::string> query_terms;
  if (argc > 1 && std::string(argv[1]) == "--client") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --client PORT [N [DEPTH]]\n", argv[0]);
      return 1;
    }
    const uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
    const size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;
    const size_t depth = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 16;
    return RunClient(port, std::max<size_t>(n, 1), std::max<size_t>(depth, 1));
  }
  if (argc > 1 && std::string(argv[1]) == "--serve") {
    serve_mode = true;
    if (argc > 2) requested_port = static_cast<uint16_t>(std::atoi(argv[2]));
  } else {
    for (int i = 1; i < argc; ++i) query_terms.push_back(argv[i]);
  }

  rlz::CorpusOptions corpus_options;
  corpus_options.target_bytes = 8 << 20;
  corpus_options.seed = 99;
  const rlz::Corpus corpus = rlz::GenerateCorpus(corpus_options);
  const rlz::Collection& collection = corpus.collection;

  std::printf("indexing %zu docs...\n", collection.num_docs());
  const rlz::InvertedIndex index = rlz::InvertedIndex::Build(collection);

  rlz::ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  std::printf("compressing into %d rlz shards...\n", store_options.num_shards);
  const auto built = rlz::ShardedStore::Build(collection, store_options);
  std::printf("store %s: %.2f%% of %zu bytes\n", built->name().c_str(),
              100.0 * built->stored_bytes() / collection.size_bytes(),
              collection.size_bytes());

  // Persist and reopen: the restart path a production front-end takes.
  // The reopen is serving-only, so no shard rebuilds its suffix array.
  // Per-process directory (release and sanitizer smoke runs may execute
  // concurrently), removed on every exit path below.
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      ("rlz_snippet_server." + std::to_string(::getpid()));
  std::filesystem::create_directories(store_dir);
  struct ScopedRemove {
    const std::filesystem::path& dir;
    ~ScopedRemove() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{store_dir};
  const std::string manifest = (store_dir / "store.sharded").string();
  if (const rlz::Status s = built->Save(manifest); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  rlz::OpenOptions open_options;
  open_options.build_suffix_array = false;
  rlz::Timer open_timer;
  auto reopened = rlz::ShardedStore::Open(manifest, open_options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  const auto store = std::move(reopened).value();
  std::printf("reopened %s from %s in %.1f ms (serving-only, no suffix "
              "arrays)\n",
              store->name().c_str(), manifest.c_str(),
              1e3 * open_timer.ElapsedSeconds());

  rlz::DocServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.cache_bytes = 16 << 20;
  rlz::DocService service(store.get(), service_options);

  // The network front end: an epoll loop on a loopback socket feeding
  // the service through the coalescing batcher (DESIGN.md §13).
  rlz::net::DocServerOptions server_options;
  server_options.port = requested_port;
  rlz::net::DocServer server(&service, server_options);
  if (const rlz::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  if (serve_mode) {
    std::printf("blocking until stdin EOF (pipe or Ctrl-D stops the "
                "server)...\n");
    std::fflush(stdout);
    while (std::fgetc(stdin) != EOF) {
    }
    server.Shutdown();
    service.Shutdown();
    const rlz::net::NetServerStats net = server.stats();
    std::printf("served %llu frames over %llu connections (%llu batches, "
                "%llu coalesced requests)\n",
                static_cast<unsigned long long>(net.frames_sent),
                static_cast<unsigned long long>(net.connections_accepted),
                static_cast<unsigned long long>(net.batches),
                static_cast<unsigned long long>(net.coalesced_requests));
    return 0;
  }

  // Demo mode: queries from argv, or sample a few from the collection
  // vocabulary, answered through a real client connection so every page
  // fetch crosses the wire.
  std::vector<std::vector<std::string>> queries;
  if (!query_terms.empty()) {
    queries.push_back(query_terms);
  } else {
    rlz::QueryLogOptions qopts;
    qopts.num_queries = 3;
    qopts.seed = 5;
    queries = rlz::GenerateQueries(index, qopts);
  }

  auto client_or = rlz::net::NetClient::Connect(server.port());
  if (!client_or.ok()) {
    std::fprintf(stderr, "loopback connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<rlz::net::NetClient> client = std::move(client_or).value();

  std::vector<uint64_t> ids;
  for (const auto& query : queries) {
    std::string qstr;
    for (const auto& t : query) qstr += t + " ";
    std::printf("\nquery: %s\n", qstr.c_str());
    const auto hits = index.Query(query, 3);
    // The whole result page crosses the wire as one MultiGet frame; the
    // batcher coalesces it (with anything else in flight) into a single
    // ServeBatch submission.
    ids.clear();
    for (const auto& hit : hits) ids.push_back(hit.doc);
    auto page = client->MultiGet(ids);
    if (!page.ok()) {
      std::fprintf(stderr, "page fetch failed: %s\n",
                   page.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < hits.size(); ++i) {
      if ((*page)[i].code != rlz::net::WireCode::kOk) {
        std::fprintf(stderr, "retrieval failed: %s\n",
                     (*page)[i].bytes.c_str());
        return 1;
      }
      std::printf("  [%u] %s (score %.2f)\n      %s\n", hits[i].doc,
                  corpus.urls[hits[i].doc].c_str(), hits[i].score,
                  MakeSnippet(*client, hits[i].doc, (*page)[i].bytes,
                              query[0]).c_str());
    }
  }

  // The shutdown report arrives the way an operator's would: a Stat
  // frame over the connection, carrying service and network counters.
  const auto wire = client->Stat();
  if (!wire.ok()) {
    std::fprintf(stderr, "stat failed: %s\n", wire.status().ToString().c_str());
    return 1;
  }
  server.Shutdown();
  service.Shutdown();
  std::printf(
      "\nservice: %llu requests (%llu failed), cache %llu hits / %llu "
      "misses (%llu entries, %.1f MB), disk %.1f ms simulated / %llu "
      "seeks\n",
      static_cast<unsigned long long>(wire->requests),
      static_cast<unsigned long long>(wire->failures),
      static_cast<unsigned long long>(wire->cache_hits),
      static_cast<unsigned long long>(wire->cache_misses),
      static_cast<unsigned long long>(wire->cache_entries),
      wire->cache_bytes / (1024.0 * 1024.0), 1e3 * wire->disk_seconds,
      static_cast<unsigned long long>(wire->disk_seeks));
  std::printf(
      "latency: p50 %.1f us, p99 %.1f us over %u workers (%llu steals)\n",
      wire->latency_p50_us, wire->latency_p99_us, wire->num_threads,
      static_cast<unsigned long long>(wire->steals));
  std::printf(
      "network: %llu frames in / %llu out over %llu connections, %llu "
      "batches coalescing %llu requests\n",
      static_cast<unsigned long long>(wire->net_frames_received),
      static_cast<unsigned long long>(wire->net_frames_sent),
      static_cast<unsigned long long>(wire->net_connections_accepted),
      static_cast<unsigned long long>(wire->net_batches),
      static_cast<unsigned long long>(wire->net_coalesced_requests));
  return 0;
}
