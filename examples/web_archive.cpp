// Web-archive scenario: compress a synthetic web crawl with RLZ and with
// the blocked baselines, then compare storage footprint and random-access
// retrieval under the simulated-disk model — a miniature of the paper's
// evaluation.
//
//   ./build/examples/web_archive [target_mb]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "io/sim_disk.h"
#include "semistatic/semistatic_archive.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

void Report(const rlz::Archive& archive, const rlz::Collection& collection,
            rlz::Rng& rng) {
  rlz::SimDisk disk;
  rlz::Timer timer;
  std::string doc;
  constexpr int kRequests = 500;
  for (int i = 0; i < kRequests; ++i) {
    const size_t id = rng.Uniform(collection.num_docs());
    const rlz::Status s = archive.Get(id, &doc, &disk);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", archive.name().c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
  }
  const double seconds = timer.ElapsedSeconds() + disk.total_seconds();
  std::printf("%-12s %8.2f%% %10.0f docs/s (random access, simulated disk)\n",
              archive.name().c_str(),
              100.0 * archive.stored_bytes() / collection.size_bytes(),
              kRequests / seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t target_mb = argc > 1 ? std::atoi(argv[1]) : 8;
  rlz::CorpusOptions corpus_options;
  corpus_options.target_bytes = target_mb << 20;
  corpus_options.seed = 2011;
  const rlz::Corpus corpus = rlz::GenerateCorpus(corpus_options);
  const rlz::Collection& collection = corpus.collection;
  std::printf("synthetic crawl: %.1f MB, %zu docs\n",
              collection.size_bytes() / 1048576.0, collection.num_docs());

  rlz::Rng rng(7);

  rlz::RlzOptions rlz_options;
  rlz_options.dict_bytes = collection.size_bytes() / 100;  // 1%
  auto rlz_archive = rlz::CompressCollection(collection, rlz_options);
  Report(*rlz_archive, collection, rng);

  const rlz::AsciiArchive ascii(collection);
  Report(ascii, collection, rng);

  for (const uint64_t block : {uint64_t{0}, uint64_t{64} << 10}) {
    const rlz::BlockedArchive gz(
        collection, rlz::GetCompressor(rlz::CompressorId::kGzipx), block);
    Report(gz, collection, rng);
    const rlz::BlockedArchive lz(
        collection, rlz::GetCompressor(rlz::CompressorId::kLzmax), block);
    Report(lz, collection, rng);
  }

  auto etdc =
      rlz::SemiStaticArchive::Build(collection, rlz::SemiStaticScheme::kEtdc);
  Report(*etdc, collection, rng);
  return 0;
}
