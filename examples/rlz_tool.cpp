// Command-line front end for the rlz library — builds archives on disk,
// retrieves documents, and verifies archives against their source
// collections.
//
//   rlz_tool gen <collection.rcol> [bytes] [web|wiki] [seed]
//   rlz_tool build <collection.rcol> <archive.rlza> [dict_bytes] [coding]
//   rlz_tool info <archive.rlza>
//   rlz_tool get <archive.rlza> <doc_id>
//   rlz_tool verify <collection.rcol> <archive.rlza>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/rlz.h"
#include "corpus/generator.h"

namespace {

using namespace rlz;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rlz_tool gen <collection.rcol> [bytes] [web|wiki] [seed]\n"
      "  rlz_tool build <collection.rcol> <archive.rlza> [dict_bytes] "
      "[coding]\n"
      "  rlz_tool info <archive.rlza>\n"
      "  rlz_tool get <archive.rlza> <doc_id>\n"
      "  rlz_tool verify <collection.rcol> <archive.rlza>\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int CmdGen(int argc, char** argv) {
  if (argc < 1) return Usage();
  CorpusOptions options;
  options.target_bytes = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 8ull << 20;
  if (argc > 2 && std::strcmp(argv[2], "wiki") == 0) {
    options.style = CorpusStyle::kWiki;
  }
  if (argc > 3) options.seed = std::strtoull(argv[3], nullptr, 10);
  const Corpus corpus = GenerateCorpus(options);
  const Status s = corpus.collection.Save(argv[0]);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %zu docs, %zu bytes\n", argv[0],
              corpus.collection.num_docs(), corpus.collection.size_bytes());
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto collection = Collection::Load(argv[0]);
  if (!collection.ok()) return Fail(collection.status());

  RlzOptions options;
  options.dict_bytes = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                : collection->size_bytes() / 100;
  if (argc > 3) {
    auto coding = PairCoding::FromName(argv[3]);
    if (!coding.ok()) return Fail(coding.status());
    options.coding = *coding;
  }
  RlzBuildInfo info;
  auto archive = CompressCollection(*collection, options, &info);
  const Status s = archive->Save(argv[1]);
  if (!s.ok()) return Fail(s);
  std::printf(
      "wrote %s: %zu docs, coding %s, dict %zu bytes, %.2f%% of input, "
      "avg factor %.1f\n",
      argv[1], archive->num_docs(), options.coding.name().c_str(),
      archive->dictionary().size(),
      100.0 * archive->stored_bytes() / collection->size_bytes(),
      info.stats.avg_factor_length());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto archive = RlzArchive::Load(argv[0]);
  if (!archive.ok()) return Fail(archive.status());
  std::printf("archive:   %s\n", argv[0]);
  std::printf("docs:      %zu\n", (*archive)->num_docs());
  std::printf("coding:    %s\n", (*archive)->coder().coding().name().c_str());
  std::printf("dict:      %zu bytes\n", (*archive)->dictionary().size());
  std::printf("payload:   %llu bytes\n",
              static_cast<unsigned long long>((*archive)->payload_bytes()));
  std::printf("stored:    %llu bytes\n",
              static_cast<unsigned long long>((*archive)->stored_bytes()));
  return 0;
}

int CmdGet(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto archive = RlzArchive::Load(argv[0]);
  if (!archive.ok()) return Fail(archive.status());
  std::string doc;
  const Status s =
      (*archive)->Get(std::strtoull(argv[1], nullptr, 10), &doc);
  if (!s.ok()) return Fail(s);
  std::fwrite(doc.data(), 1, doc.size(), stdout);
  return 0;
}

int CmdVerify(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto collection = Collection::Load(argv[0]);
  if (!collection.ok()) return Fail(collection.status());
  auto archive = RlzArchive::Load(argv[1]);
  if (!archive.ok()) return Fail(archive.status());
  if ((*archive)->num_docs() != collection->num_docs()) {
    std::fprintf(stderr, "doc count mismatch: %zu vs %zu\n",
                 (*archive)->num_docs(), collection->num_docs());
    return 1;
  }
  std::string doc;
  for (size_t i = 0; i < collection->num_docs(); ++i) {
    const Status s = (*archive)->Get(i, &doc);
    if (!s.ok()) return Fail(s);
    if (doc != collection->doc(i)) {
      std::fprintf(stderr, "doc %zu differs\n", i);
      return 1;
    }
  }
  std::printf("ok: %zu docs verified\n", collection->num_docs());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
  if (cmd == "build") return CmdBuild(argc - 2, argv + 2);
  if (cmd == "info") return CmdInfo(argc - 2, argv + 2);
  if (cmd == "get") return CmdGet(argc - 2, argv + 2);
  if (cmd == "verify") return CmdVerify(argc - 2, argv + 2);
  return Usage();
}
