// Command-line front end for the rlz library — a format-agnostic archive
// tool over the container envelope (DESIGN.md §8): builds any archive
// format on disk, inspects containers, retrieves documents, and verifies
// archives against their source collections.
//
//   rlz_tool gen <collection.rcol> [bytes] [web|wiki] [seed]
//   rlz_tool build <collection.rcol> <archive> [format] [args...]
//     formats:
//       rlz [dict_bytes] [coding]      (default; e.g. `build c.rcol a 65536 ZV`)
//       ascii
//       blocked [gzipx|lzmax] [block_bytes]
//       semistatic [etdc|ph]
//       sharded [num_shards] [dict_bytes] [coding]
//   rlz_tool stat <archive>
//   rlz_tool cat <archive> <doc_id> [offset length]
//   rlz_tool verify <collection.rcol> <archive>
//
// stat/cat/verify work on every format: they sniff the container's format
// id and dispatch through OpenArchive. stat and cat open serving-only
// (OpenOptions::build_suffix_array = false), so they skip the dictionary
// suffix-array rebuild entirely.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "semistatic/semistatic_archive.h"
#include "serve/sharded_store.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "store/open_archive.h"

namespace {

using namespace rlz;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rlz_tool gen <collection.rcol> [bytes] [web|wiki] [seed]\n"
      "  rlz_tool build <collection.rcol> <archive> [format] [args...]\n"
      "      rlz [dict_bytes] [coding] | ascii | blocked [gzipx|lzmax] "
      "[block_bytes]\n"
      "      | semistatic [etdc|ph] | sharded [num_shards] [dict_bytes] "
      "[coding]\n"
      "  rlz_tool stat <archive>\n"
      "  rlz_tool cat <archive> <doc_id> [offset length]\n"
      "  rlz_tool verify <collection.rcol> <archive>\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

bool IsNumber(const char* s) {
  if (*s == '\0') return false;
  for (; *s != '\0'; ++s) {
    if (!std::isdigit(static_cast<unsigned char>(*s))) return false;
  }
  return true;
}

int CmdGen(int argc, char** argv) {
  if (argc < 1) return Usage();
  CorpusOptions options;
  options.target_bytes = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 8ull << 20;
  if (argc > 2 && std::strcmp(argv[2], "wiki") == 0) {
    options.style = CorpusStyle::kWiki;
  }
  if (argc > 3) options.seed = std::strtoull(argv[3], nullptr, 10);
  const Corpus corpus = GenerateCorpus(options);
  const Status s = corpus.collection.Save(argv[0]);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %zu docs, %zu bytes\n", argv[0],
              corpus.collection.num_docs(), corpus.collection.size_bytes());
  return 0;
}

int BuildRlz(const Collection& collection, const std::string& path, int argc,
             char** argv) {
  RlzOptions options;
  options.dict_bytes = argc > 0 ? std::strtoull(argv[0], nullptr, 10)
                                : collection.size_bytes() / 100;
  if (argc > 1) {
    auto coding = PairCoding::FromName(argv[1]);
    if (!coding.ok()) return Fail(coding.status());
    options.coding = *coding;
  }
  RlzBuildInfo info;
  auto archive = CompressCollection(collection, options, &info);
  const Status s = archive->Save(path);
  if (!s.ok()) return Fail(s);
  std::printf(
      "wrote %s: %zu docs, coding %s, dict %zu bytes, %.2f%% of input, "
      "avg factor %.1f\n",
      path.c_str(), archive->num_docs(), options.coding.name().c_str(),
      archive->dictionary().size(),
      100.0 * archive->stored_bytes() / collection.size_bytes(),
      info.stats.avg_factor_length());
  return 0;
}

int ReportAndSave(const Collection& collection, const Archive& archive,
                  const std::string& path) {
  const Status s = archive.Save(path);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %s, %zu docs, %.2f%% of input\n", path.c_str(),
              archive.name().c_str(), archive.num_docs(),
              100.0 * archive.stored_bytes() / collection.size_bytes());
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto collection = Collection::Load(argv[0]);
  if (!collection.ok()) return Fail(collection.status());
  const std::string path = argv[1];
  // Back-compat: a numeric third argument is the historical
  // `build <in> <out> [dict_bytes] [coding]` rlz spelling.
  if (argc == 2 || IsNumber(argv[2])) {
    return BuildRlz(*collection, path, argc - 2, argv + 2);
  }
  const std::string format = argv[2];
  if (format == "rlz") {
    return BuildRlz(*collection, path, argc - 3, argv + 3);
  }
  if (format == "ascii") {
    return ReportAndSave(*collection, AsciiArchive(*collection), path);
  }
  if (format == "blocked") {
    CompressorId compressor_id = CompressorId::kGzipx;
    if (argc > 3) {
      if (std::strcmp(argv[3], "lzmax") == 0) {
        compressor_id = CompressorId::kLzmax;
      } else if (std::strcmp(argv[3], "gzipx") != 0) {
        std::fprintf(stderr, "error: unknown compressor '%s'\n", argv[3]);
        return Usage();
      }
    }
    const Compressor* compressor = GetCompressor(compressor_id);
    const uint64_t block_bytes =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 64 << 10;
    return ReportAndSave(
        *collection, BlockedArchive(*collection, compressor, block_bytes),
        path);
  }
  if (format == "semistatic") {
    SemiStaticScheme scheme = SemiStaticScheme::kEtdc;
    if (argc > 3) {
      if (std::strcmp(argv[3], "ph") == 0) {
        scheme = SemiStaticScheme::kPlainHuffman;
      } else if (std::strcmp(argv[3], "etdc") != 0) {
        std::fprintf(stderr, "error: unknown scheme '%s'\n", argv[3]);
        return Usage();
      }
    }
    return ReportAndSave(*collection,
                         *SemiStaticArchive::Build(*collection, scheme), path);
  }
  if (format == "sharded") {
    ShardedStoreOptions options;
    if (argc > 3) options.num_shards = std::atoi(argv[3]);
    options.dict_bytes = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                  : collection->size_bytes() / 100;
    if (argc > 5) {
      auto coding = PairCoding::FromName(argv[5]);
      if (!coding.ok()) return Fail(coding.status());
      options.coding = *coding;
    }
    return ReportAndSave(*collection,
                         *ShardedStore::Build(*collection, options), path);
  }
  std::fprintf(stderr, "error: unknown format '%s'\n", format.c_str());
  return Usage();
}

int CmdStat(int argc, char** argv) {
  if (argc < 1) return Usage();
  OpenOptions options;
  options.build_suffix_array = false;  // stat never factorizes
  ArchiveFormatInfo info;
  auto archive = OpenArchive(argv[0], options, &info);
  if (!archive.ok()) return Fail(archive.status());
  std::printf("archive:   %s\n", argv[0]);
  std::printf("format:    %s v%u\n", info.format_id.c_str(), info.version);
  std::printf("name:      %s\n", (*archive)->name().c_str());
  std::printf("docs:      %zu\n", (*archive)->num_docs());
  std::printf("stored:    %llu bytes\n",
              static_cast<unsigned long long>((*archive)->stored_bytes()));
  return 0;
}

int CmdCat(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (argc == 3) return Usage();  // offset given without length
  OpenOptions options;
  options.build_suffix_array = false;  // serving-only open
  auto archive = OpenArchive(argv[0], options);
  if (!archive.ok()) return Fail(archive.status());
  const size_t id = std::strtoull(argv[1], nullptr, 10);
  std::string doc;
  Status s = argc > 3
                 ? (*archive)->GetRange(id, std::strtoull(argv[2], nullptr, 10),
                                        std::strtoull(argv[3], nullptr, 10),
                                        &doc)
                 : (*archive)->Get(id, &doc);
  if (!s.ok()) return Fail(s);
  std::fwrite(doc.data(), 1, doc.size(), stdout);
  return 0;
}

int CmdVerify(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto collection = Collection::Load(argv[0]);
  if (!collection.ok()) return Fail(collection.status());
  OpenOptions options;
  options.build_suffix_array = false;  // decode-only
  auto archive = OpenArchive(argv[1], options);
  if (!archive.ok()) return Fail(archive.status());
  if ((*archive)->num_docs() != collection->num_docs()) {
    std::fprintf(stderr, "doc count mismatch: %zu vs %zu\n",
                 (*archive)->num_docs(), collection->num_docs());
    return 1;
  }
  std::string doc;
  for (size_t i = 0; i < collection->num_docs(); ++i) {
    const Status s = (*archive)->Get(i, &doc);
    if (!s.ok()) return Fail(s);
    if (doc != collection->doc(i)) {
      std::fprintf(stderr, "doc %zu differs\n", i);
      return 1;
    }
  }
  std::printf("ok: %zu docs verified (%s)\n", collection->num_docs(),
              (*archive)->name().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
  if (cmd == "build") return CmdBuild(argc - 2, argv + 2);
  if (cmd == "stat" || cmd == "info") return CmdStat(argc - 2, argv + 2);
  if (cmd == "cat" || cmd == "get") return CmdCat(argc - 2, argv + 2);
  if (cmd == "verify") return CmdVerify(argc - 2, argv + 2);
  return Usage();
}
