// Serving-layer tests (DESIGN.md §6): the sharded LRU decode cache, the
// ShardedStore router, the DocService executor, and — critically — the
// concurrency regression suite. Every *Concurrent* test here is also run
// under ThreadSanitizer by the `tsan` CI job (ctest label: concurrency);
// the BlockedArchive stress reproduces the historical data race where two
// threads hitting different blocks corrupted the single-block cache.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "io/sim_disk.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "store/blocked_archive.h"
#include "store/decode_scratch.h"
#include "util/lru_cache.h"
#include "util/random.h"
#include "zip/compressor.h"

namespace rlz {
namespace {

Collection TestCollection(size_t target_bytes, uint64_t seed) {
  CorpusOptions options;
  options.target_bytes = target_bytes;
  options.seed = seed;
  return GenerateCorpus(options).collection;
}

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(1 << 20, 4);
  EXPECT_EQ(cache.Get(7), nullptr);
  auto resident = cache.Insert(7, "payload");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(*resident, "payload");
  auto hit = cache.Get(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), resident.get());  // same resident copy
  const LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 7u + LruCache::kEntryOverheadBytes);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic. Each 4-byte
  // value charges 4 + kEntryOverheadBytes; the capacity fits two entries
  // but not three.
  const uint64_t entry = 4 + LruCache::kEntryOverheadBytes;
  LruCache cache(2 * entry + entry / 2, 1);
  cache.Insert(1, "aaaa");
  cache.Insert(2, "bbbb");
  ASSERT_NE(cache.Get(1), nullptr);  // touch 1: 2 is now least recent
  cache.Insert(3, "cccc");           // over capacity: evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, EmptyValuesStayBoundedAndEvictable) {
  // Zero-byte values still pay the per-entry charge, so a flood of them
  // cannot grow the index past the byte budget.
  LruCache cache(4 * LruCache::kEntryOverheadBytes, 1);
  for (uint64_t key = 0; key < 100; ++key) cache.Insert(key, "");
  const LruCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GE(stats.evictions, 96u);
}

TEST(LruCacheTest, ZeroCapacityDisablesStorage) {
  LruCache cache(0, 4);
  auto value = cache.Insert(1, "text");
  ASSERT_NE(value, nullptr);  // caller still gets the wrapped value
  EXPECT_EQ(*value, "text");
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCacheTest, OversizedValueIsReturnedButNotCached) {
  LruCache cache(LruCache::kEntryOverheadBytes + 8, 1);
  auto value = cache.Insert(1, std::string(100, 'x'));
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->size(), 100u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruCacheTest, InsertOnExistingKeyKeepsResidentValue) {
  // Immutable-archive semantics: racing decoders converge on one copy.
  LruCache cache(1 << 10, 1);
  auto first = cache.Insert(5, "first");
  auto second = cache.Insert(5, "second");
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(*cache.Get(5), "first");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(LruCacheTest, EraseInvalidatesAndCountsSeparately) {
  // The live-corpus invalidation hook (DESIGN.md §11): Delete retires a
  // key outright, distinct from capacity eviction.
  LruCache cache(1 << 10, 1);
  auto resident = cache.Insert(9, "doomed");
  EXPECT_TRUE(cache.Erase(9));
  EXPECT_EQ(cache.Get(9), nullptr);
  EXPECT_FALSE(cache.Erase(9));  // already gone
  const LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.erased, 1u);
  EXPECT_EQ(stats.evictions, 0u);  // not a capacity eviction
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);  // the charge was released
  // A reader that grabbed the value before the erase keeps its bytes.
  EXPECT_EQ(*resident, "doomed");
  // The key is insertable again (a *new* document would get a new id in
  // the live store, but the cache itself does not care).
  cache.Insert(9, "fresh");
  EXPECT_EQ(*cache.Get(9), "fresh");
}

TEST(LruCacheTest, ClearDropsEntriesKeepsCounters) {
  LruCache cache(1 << 10, 2);
  cache.Insert(1, "a");
  cache.Get(1);
  cache.Clear();
  EXPECT_EQ(cache.Get(1), nullptr);
  const LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(LruCacheTest, ConcurrentMixedGetInsertKeepsValuesIntact) {
  // 8 threads hammer a small cache with constant churn; whatever a Get or
  // Insert returns must be the canonical value for that key.
  LruCache cache(4 << 10, 4);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr uint64_t kKeys = 64;
  auto canonical = [](uint64_t key) {
    return std::string(16 + key % 48, static_cast<char>('a' + key % 26));
  };
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        const uint64_t key = rng.Next() % kKeys;
        std::shared_ptr<const std::string> value = cache.Get(key);
        if (value == nullptr) value = cache.Insert(key, canonical(key));
        if (*value != canonical(key)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  const LruCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// ShardedStore

TEST(ShardedStoreTest, RoundTripAcrossShardCounts) {
  const Collection collection = TestCollection(1 << 20, 71);
  for (int shards : {1, 3, 8}) {
    ShardedStoreOptions options;
    options.num_shards = shards;
    options.dict_bytes = collection.size_bytes() / 50;
    auto store = ShardedStore::Build(collection, options);
    ASSERT_EQ(store->num_shards(), shards);
    ASSERT_EQ(store->num_docs(), collection.num_docs());
    std::string doc;
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      ASSERT_TRUE(store->Get(i, &doc).ok()) << "doc " << i;
      ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
    }
  }
}

TEST(ShardedStoreTest, RouterBoundariesAndNonEmptyShards) {
  const Collection collection = TestCollection(1 << 20, 72);
  ShardedStoreOptions options;
  options.num_shards = 5;
  auto store = ShardedStore::Build(collection, options);
  ASSERT_EQ(store->num_shards(), 5);
  EXPECT_EQ(store->starts(0), 0u);
  EXPECT_EQ(store->starts(5), collection.num_docs());
  for (int s = 0; s < 5; ++s) {
    ASSERT_LT(store->starts(s), store->starts(s + 1)) << "empty shard " << s;
    EXPECT_EQ(store->shard_of(store->starts(s)), static_cast<size_t>(s));
    EXPECT_EQ(store->shard_of(store->starts(s + 1) - 1),
              static_cast<size_t>(s));
    EXPECT_EQ(store->shard(s).num_docs(),
              store->starts(s + 1) - store->starts(s));
  }
}

TEST(ShardedStoreTest, ShardCountClampedToDocs) {
  Collection tiny;
  tiny.Append("only one document");
  ShardedStoreOptions options;
  options.num_shards = 16;
  auto store = ShardedStore::Build(tiny, options);
  EXPECT_EQ(store->num_shards(), 1);
  std::string doc;
  ASSERT_TRUE(store->Get(0, &doc).ok());
  EXPECT_EQ(doc, "only one document");
}

TEST(ShardedStoreTest, GetRangeMatchesSubstring) {
  const Collection collection = TestCollection(1 << 19, 73);
  ShardedStoreOptions options;
  options.num_shards = 4;
  auto store = ShardedStore::Build(collection, options);
  Rng rng(99);
  std::string slice;
  for (int i = 0; i < 50; ++i) {
    const size_t id = rng.Next() % collection.num_docs();
    const std::string_view doc = collection.doc(id);
    const size_t offset = rng.Next() % (doc.size() + 1);
    const size_t length = rng.Next() % 300;
    ASSERT_TRUE(store->GetRange(id, offset, length, &slice).ok());
    const std::string_view expect =
        offset < doc.size() ? doc.substr(offset, length) : std::string_view();
    ASSERT_EQ(slice, expect);
  }
}

TEST(ShardedStoreTest, OutOfRangeAndName) {
  const Collection collection = TestCollection(1 << 18, 74);
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = collection.size_bytes() / 50;
  auto store = ShardedStore::Build(collection, options);
  std::string doc;
  EXPECT_FALSE(store->Get(collection.num_docs(), &doc).ok());
  EXPECT_EQ(store->name(), "sharded-rlz-ZV/2");
  EXPECT_GT(store->stored_bytes(), 0u);
  EXPECT_LT(store->stored_bytes(), collection.size_bytes());
}

TEST(ShardedStoreTest, ParallelBuildIsDeterministic) {
  const Collection collection = TestCollection(1 << 19, 75);
  ShardedStoreOptions serial;
  serial.num_shards = 4;
  serial.build_threads = 1;
  ShardedStoreOptions parallel = serial;
  parallel.build_threads = 8;
  auto a = ShardedStore::Build(collection, serial);
  auto b = ShardedStore::Build(collection, parallel);
  ASSERT_EQ(a->num_docs(), b->num_docs());
  EXPECT_EQ(a->stored_bytes(), b->stored_bytes());
  std::string doc_a, doc_b;
  for (size_t i = 0; i < a->num_docs(); i += 7) {
    ASSERT_TRUE(a->Get(i, &doc_a).ok());
    ASSERT_TRUE(b->Get(i, &doc_b).ok());
    ASSERT_EQ(doc_a, doc_b);
  }
}

// ---------------------------------------------------------------------------
// DocService

TEST(DocServiceTest, GetReturnsEveryDocument) {
  const Collection collection = TestCollection(1 << 19, 81);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 4;
  options.cache_bytes = 8 << 20;
  DocService service(store.get(), options);
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    GetResult result = service.Get(i).get();
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    ASSERT_EQ(*result.text, collection.doc(i));
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, collection.num_docs());
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.disk_bytes, 0u);  // misses were charged to worker disks
}

TEST(DocServiceTest, RepeatTrafficHitsTheCache) {
  const Collection collection = TestCollection(1 << 18, 82);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 2;
  options.cache_bytes = 32 << 20;  // everything fits
  DocService service(store.get(), options);
  std::vector<size_t> ids(collection.num_docs());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  service.MultiGet(ids);
  const uint64_t misses_after_first = service.Stats().cache.misses;
  service.MultiGet(ids);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache.misses, misses_after_first);  // second pass all hits
  EXPECT_GE(stats.cache.hits, ids.size());
  EXPECT_GT(stats.cache.hit_rate(), 0.4);
}

TEST(DocServiceTest, MultiGetIsPositional) {
  const Collection collection = TestCollection(1 << 18, 83);
  auto store = ShardedStore::Build(collection, {});
  DocService service(store.get(), {});
  const std::vector<size_t> ids = {3, 0, 3, collection.num_docs() - 1};
  std::vector<GetResult> results = service.MultiGet(ids);
  ASSERT_EQ(results.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i].text, collection.doc(ids[i]));
  }
}

TEST(DocServiceTest, BadIdFailsWithoutPoisoningTheService) {
  const Collection collection = TestCollection(1 << 18, 84);
  auto store = ShardedStore::Build(collection, {});
  DocService service(store.get(), {});
  GetResult bad = service.Get(collection.num_docs() + 5).get();
  EXPECT_FALSE(bad.ok());
  GetResult good = service.Get(0).get();
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good.text, collection.doc(0));
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(DocServiceTest, GetRangeCachedAndUncachedPaths) {
  const Collection collection = TestCollection(1 << 18, 85);
  auto store = ShardedStore::Build(collection, {});
  const std::string_view doc = collection.doc(1);
  const size_t offset = doc.size() / 3;

  DocServiceOptions uncached;
  uncached.cache_bytes = 0;
  DocService cold(store.get(), uncached);
  GetResult r1 = cold.GetRange(1, offset, 64).get();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1.text, doc.substr(offset, 64));

  DocService warm(store.get(), {});
  ASSERT_TRUE(warm.Get(1).get().ok());  // populate the cache
  GetResult r2 = warm.GetRange(1, offset, 64).get();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2.text, doc.substr(offset, 64));
  EXPECT_GE(warm.Stats().cache.hits, 1u);
  // Past-the-end range is an empty slice, not an error.
  GetResult r3 = warm.GetRange(1, doc.size() + 10, 8).get();
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.text->empty());
}

TEST(DocServiceTest, DrainWaitsForSubmittedWork) {
  const Collection collection = TestCollection(1 << 18, 86);
  auto store = ShardedStore::Build(collection, {});
  DocServiceOptions options;
  options.num_threads = 3;
  DocService service(store.get(), options);
  std::vector<std::future<GetResult>> futures;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      futures.push_back(service.Get(i));
    }
  }
  service.Drain();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 3 * collection.num_docs());
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_GT(stats.cpu_seconds, 0.0);
  // The makespan can never exceed all workers' CPU plus all disks' time.
  EXPECT_LE(stats.critical_path_seconds,
            stats.cpu_seconds + stats.disk_seconds + 1e-9);
}

// ---------------------------------------------------------------------------
// Overload protection (DESIGN.md §14): the priority-class queue, weighted
// admission, load shedding, and deadline expiry.

TEST(RequestQueueTest, StrictPriorityPopOrder) {
  BoundedRequestQueue queue(/*capacity=*/8);
  ServeRequest request;
  // Enqueue in worst-case order: best-effort first, high last.
  request.id = 1;
  request.priority = RequestPriority::kBestEffort;
  ASSERT_TRUE(queue.TryPush(request));
  request.id = 2;
  request.priority = RequestPriority::kNormal;
  ASSERT_TRUE(queue.TryPush(request));
  request.id = 3;
  request.priority = RequestPriority::kHigh;
  ASSERT_TRUE(queue.TryPush(request));
  EXPECT_EQ(queue.size(), 3u);
  // Pops come back high, normal, best-effort regardless of arrival order.
  ServeRequest out;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out.id, 1u);
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(RequestQueueTest, ClassCapsKeepHighHeadroom) {
  // Per-class rings: filling the best-effort (and normal) share leaves
  // the high-priority share untouched.
  const size_t caps[kNumPriorities] = {4, 2, 1};
  BoundedRequestQueue queue(caps);
  EXPECT_EQ(queue.capacity(RequestPriority::kHigh), 4u);
  EXPECT_EQ(queue.capacity(RequestPriority::kNormal), 2u);
  EXPECT_EQ(queue.capacity(RequestPriority::kBestEffort), 1u);
  ServeRequest request;
  request.priority = RequestPriority::kBestEffort;
  ASSERT_TRUE(queue.TryPush(request));
  EXPECT_FALSE(queue.HasRoom(RequestPriority::kBestEffort));
  EXPECT_FALSE(queue.TryPush(request));  // best-effort ring full: rejected
  request.priority = RequestPriority::kNormal;
  ASSERT_TRUE(queue.TryPush(request));
  ASSERT_TRUE(queue.TryPush(request));
  EXPECT_FALSE(queue.TryPush(request));  // normal ring full too
  // The high ring is unaffected by the bulk flood below it.
  EXPECT_TRUE(queue.HasRoom(RequestPriority::kHigh));
  request.priority = RequestPriority::kHigh;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(request));
  EXPECT_FALSE(queue.TryPush(request));
  EXPECT_EQ(queue.size(), 7u);
}

TEST(DocServiceTest, ExpiredDeadlineCompletesWithoutDecoding) {
  const Collection collection = TestCollection(1 << 18, 87);
  auto store = ShardedStore::Build(collection, {});
  DocService service(store.get(), {});
  // A deadline already in the past: every request must complete
  // kDeadlineExceeded at admission, with zero decode work charged.
  std::vector<BatchItem> items(8);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].id = i;
    items[i].deadline_ns = 1;  // epoch + 1ns: long expired
  }
  ServeBatch batch;
  service.SubmitBatch(items.data(), items.size(), &batch);
  const std::vector<GetResult>& results = batch.Wait();
  ASSERT_EQ(results.size(), items.size());
  for (const GetResult& result : results) {
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired, items.size());
  EXPECT_EQ(stats.disk_bytes, 0u);       // no archive reads
  EXPECT_EQ(stats.cache.misses, 0u);     // no cache traffic either
  // The service is not poisoned: a fresh request without a deadline works.
  GetResult good = service.Get(0).get();
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good.text, collection.doc(0));
}

TEST(DocServiceTest, RetryAfterHintStaysBounded) {
  const Collection collection = TestCollection(1 << 18, 88);
  auto store = ShardedStore::Build(collection, {});
  DocService service(store.get(), {});
  // Idle service: no queue, so the estimate is zero and the hint sits at
  // its floor.
  EXPECT_EQ(service.EstimatedQueueDelayUs(), 0u);
  EXPECT_EQ(service.SuggestedRetryAfterMs(), 1u);
  // After traffic the EWMA is warm but the drained queue keeps the
  // estimate at zero; the hint stays within its documented [1ms, 1s].
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE(service.Get(i).get().ok());
  }
  service.Drain();
  EXPECT_EQ(service.EstimatedQueueDelayUs(), 0u);
  const uint32_t hint = service.SuggestedRetryAfterMs();
  EXPECT_GE(hint, 1u);
  EXPECT_LE(hint, 1000u);
}

TEST(ConcurrencyTest, BestEffortShedsUnderSaturationHigherClassesServed) {
  // One worker, deep normal backlog: best-effort pushed past its class
  // share must shed (Unavailable, immediately) instead of queueing or
  // blocking the submitter, while every normal request is still served.
  const Collection collection = TestCollection(1 << 19, 94);
  auto store = ShardedStore::Build(collection, {});
  DocServiceOptions options;
  options.num_threads = 1;
  options.queue_depth = 256;  // best-effort share: 128
  options.cache_bytes = 0;    // every decode pays full price
  options.shed_queue_delay_us = 0;  // isolate the class-cap shed path
  DocService service(store.get(), options);
  const size_t num_docs = collection.num_docs();

  // Fill the normal ring with real work the lone worker must chew
  // through (strict priority: it drains normal before best-effort, so
  // the best-effort ring below cannot empty underneath us).
  std::vector<BatchItem> normal_items(512);
  for (size_t i = 0; i < normal_items.size(); ++i) {
    normal_items[i].id = i % num_docs;
  }
  ServeBatch normal_batch;
  service.SubmitBatch(normal_items.data(), normal_items.size(),
                      &normal_batch);

  // Now a best-effort flood larger than its 128-slot share. SubmitBatch
  // must return without blocking (sheds complete inline).
  std::vector<BatchItem> bulk_items(256);
  for (size_t i = 0; i < bulk_items.size(); ++i) {
    bulk_items[i].id = i % num_docs;
    bulk_items[i].priority = RequestPriority::kBestEffort;
  }
  ServeBatch bulk_batch;
  service.SubmitBatch(bulk_items.data(), bulk_items.size(), &bulk_batch);

  const std::vector<GetResult>& normal_results = normal_batch.Wait();
  const std::vector<GetResult>& bulk_results = bulk_batch.Wait();
  for (const GetResult& result : normal_results) {
    ASSERT_TRUE(result.ok()) << result.status.ToString();
  }
  size_t shed_seen = 0;
  for (size_t i = 0; i < bulk_results.size(); ++i) {
    const GetResult& result = bulk_results[i];
    if (result.ok()) {
      EXPECT_EQ(*result.text, collection.doc(bulk_items[i].id));
    } else {
      ASSERT_EQ(result.status.code(), StatusCode::kUnavailable)
          << result.status.ToString();
      ++shed_seen;
    }
  }
  EXPECT_GE(shed_seen, 1u);  // the flood exceeded the class share
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, shed_seen);
  EXPECT_EQ(stats.expired, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency regression suite (run under TSan by the `tsan` CI job).

// The historical BlockedArchive bug: Get mutated a single-block decode
// cache, so two threads resolving different blocks corrupted each other's
// documents (or crashed). Eight threads replay random ids and compare
// byte-for-byte against the source collection.
TEST(ConcurrencyTest, BlockedArchiveConcurrentGetsAreByteExact) {
  const Collection collection = TestCollection(1 << 20, 91);
  const BlockedArchive archive(collection, GetCompressor(CompressorId::kGzipx),
                               64 << 10);
  ASSERT_GT(archive.num_blocks(), 4u);  // the race needs distinct blocks
  constexpr int kThreads = 8;
  constexpr int kIters = 1200;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(5000 + t);
      SimDisk disk;  // per-thread, per the Archive contract
      std::string doc;
      for (int i = 0; i < kIters; ++i) {
        const size_t id = rng.Next() % collection.num_docs();
        if (!archive.Get(id, &doc, &disk).ok()) {
          errors.fetch_add(1);
          continue;
        }
        if (doc != collection.doc(id)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// Two threads ping-ponging documents in different blocks — the exact
// interleaving that corrupted the one-block cache.
TEST(ConcurrencyTest, BlockedArchiveDistinctBlockPingPong) {
  const Collection collection = TestCollection(1 << 19, 92);
  const BlockedArchive archive(collection, GetCompressor(CompressorId::kGzipx),
                               32 << 10);
  ASSERT_GE(archive.num_blocks(), 2u);
  const size_t first_doc = 0;
  const size_t last_doc = collection.num_docs() - 1;
  std::atomic<int> mismatches{0};
  auto hammer = [&](size_t id) {
    std::string doc;
    for (int i = 0; i < 2000; ++i) {
      if (!archive.Get(id, &doc).ok() || doc != collection.doc(id)) {
        mismatches.fetch_add(1);
        return;
      }
    }
  };
  std::thread a(hammer, first_doc);
  std::thread b(hammer, last_doc);
  a.join();
  b.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ShardedStoreConcurrentGetsAreByteExact) {
  const Collection collection = TestCollection(1 << 20, 93);
  ShardedStoreOptions options;
  options.num_shards = 4;
  auto store = ShardedStore::Build(collection, options);
  constexpr int kThreads = 8;
  constexpr int kIters = 800;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(7000 + t);
      SimDisk disk;
      std::string doc;
      std::string slice;
      for (int i = 0; i < kIters; ++i) {
        const size_t id = rng.Next() % collection.num_docs();
        if (!store->Get(id, &doc, &disk).ok() ||
            doc != collection.doc(id)) {
          mismatches.fetch_add(1);
          continue;
        }
        // Exercise the snippet path concurrently as well.
        if (!store->GetRange(id, 16, 64, &slice, &disk).ok() ||
            slice != collection.doc(id).substr(
                         std::min<size_t>(16, collection.doc(id).size()),
                         64)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Per-worker scratch reuse (DESIGN.md §9): eight threads hammer one
// shared ShardedStore, each reusing its own DecodeScratch across every
// request — the exact shape of DocService's worker loop. Any cross-request
// state leak in the scratch path shows up as a byte mismatch; any sharing
// bug shows up under TSan (this suite runs under the `concurrency` label).
TEST(ConcurrencyTest, ShardedStorePerWorkerScratchIsByteExact) {
  const Collection collection = TestCollection(1 << 20, 95);
  ShardedStoreOptions options;
  options.num_shards = 4;
  auto store = ShardedStore::Build(collection, options);
  constexpr int kThreads = 8;
  constexpr int kIters = 800;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(11000 + t);
      SimDisk disk;          // per-thread, per the Archive contract
      DecodeScratch scratch;  // per-thread, reused across all requests
      std::string doc;
      std::string slice;
      for (int i = 0; i < kIters; ++i) {
        const size_t id = rng.Next() % collection.num_docs();
        if (!store->Get(id, &doc, &disk, &scratch).ok() ||
            doc != collection.doc(id)) {
          mismatches.fetch_add(1);
          continue;
        }
        const std::string_view text = collection.doc(id);
        const size_t offset = rng.Next() % (text.size() + 1);
        if (!store->GetRange(id, offset, 48, &slice, &disk, &scratch).ok() ||
            slice != (offset < text.size() ? text.substr(offset, 48)
                                           : std::string_view())) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, DocServiceConcurrentClients) {
  const Collection collection = TestCollection(1 << 20, 94);
  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 4;
  options.cache_bytes = 4 << 20;  // small enough to keep evicting
  DocService service(store.get(), options);
  constexpr int kClients = 4;
  constexpr int kBatches = 15;
  constexpr int kBatch = 32;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Rng rng(9000 + c);
      for (int batch = 0; batch < kBatches; ++batch) {
        std::vector<size_t> ids(kBatch);
        for (auto& id : ids) id = rng.Next() % collection.num_docs();
        std::vector<GetResult> results = service.MultiGet(ids);
        for (size_t i = 0; i < ids.size(); ++i) {
          if (!results[i].ok() || *results[i].text != collection.doc(ids[i])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kClients) * kBatches * kBatch);
  EXPECT_EQ(stats.failures, 0u);
}

// ---------------------------------------------------------------------------
// Scale-out request path (DESIGN.md §10): options validation, the shard
// router, batched submission, stealing, and shutdown/drain races.

TEST(DocServiceTest, OptionsValidationClampsToDocumentedFloors) {
  DocServiceOptions options;
  options.num_threads = -3;
  options.cache_shards = 0;
  options.queue_depth = -1;
  options.cache_bytes = LruCache::kEntryOverheadBytes;  // can't admit anything
  const DocServiceOptions v = options.Validated();
  EXPECT_EQ(v.num_threads, 1);
  EXPECT_EQ(v.cache_shards, 1);
  EXPECT_EQ(v.queue_depth, 1);
  EXPECT_EQ(v.cache_bytes, 0u);  // too-small cache is a disabled cache

  // In-range values pass through untouched.
  DocServiceOptions fine;
  fine.num_threads = 2;
  fine.cache_bytes = 1 << 20;
  fine.cache_shards = 4;
  fine.queue_depth = 8;
  const DocServiceOptions kept = fine.Validated();
  EXPECT_EQ(kept.num_threads, 2);
  EXPECT_EQ(kept.cache_bytes, 1u << 20);
  EXPECT_EQ(kept.cache_shards, 4);
  EXPECT_EQ(kept.queue_depth, 8);

  // The constructor applies Validated(): a service built with hostile
  // options runs (one worker, one stripe, depth-1 queues) and serves.
  const Collection collection = TestCollection(1 << 16, 87);
  auto store = ShardedStore::Build(collection, {});
  DocService service(store.get(), options);
  EXPECT_EQ(service.options().num_threads, 1);
  EXPECT_EQ(service.options().queue_depth, 1);
  GetResult r = service.Get(0).get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.text, collection.doc(0));
}

TEST(ShardedStoreTest, RouterMatchesShardOf) {
  const Collection collection = TestCollection(1 << 19, 88);
  ShardedStoreOptions options;
  options.num_shards = 4;
  auto store = ShardedStore::Build(collection, options);
  const std::shared_ptr<const ShardRouter> router_snapshot =
      store->router_snapshot();
  const ShardRouter& router = *router_snapshot;
  ASSERT_EQ(router.num_shards(), static_cast<size_t>(store->num_shards()));
  EXPECT_EQ(router.num_docs(), store->num_docs());
  EXPECT_EQ(router.start(0), 0u);
  EXPECT_EQ(router.start(router.num_shards()), store->num_docs());
  for (size_t id = 0; id < store->num_docs(); ++id) {
    const size_t s = router.shard_of(id);
    EXPECT_EQ(s, store->shard_of(id));
    EXPECT_GE(id, router.start(s));
    EXPECT_LT(id, router.start(s + 1));
  }
}

TEST(DocServiceTest, SubmitBatchIsPositionalAndReusable) {
  const Collection collection = TestCollection(1 << 18, 89);
  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 3;
  DocService service(store.get(), options);

  // One batch reused across rounds; ids deliberately hit every shard and
  // repeat within a round (results are positional, so duplicates are fine).
  ServeBatch batch;
  Rng rng(4242);
  for (int round = 0; round < 8; ++round) {
    std::vector<size_t> ids(round * 7);  // varying size, including 0
    for (auto& id : ids) id = rng.Next() % collection.num_docs();
    service.SubmitBatch(ids, &batch);
    const std::vector<GetResult>& results = batch.Wait();
    ASSERT_EQ(results.size(), ids.size());
    EXPECT_EQ(batch.size(), ids.size());
    EXPECT_TRUE(batch.done());
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status.ToString();
      EXPECT_EQ(*results[i].text, collection.doc(ids[i]));
    }
  }
  // An out-of-range id fails positionally without poisoning neighbours.
  std::vector<size_t> mixed = {0, collection.num_docs() + 10, 1};
  service.SubmitBatch(mixed, &batch);
  const std::vector<GetResult>& results = batch.Wait();
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(DocServiceTest, WorkStealingDrainsSkewedRouting) {
  const Collection collection = TestCollection(1 << 19, 90);
  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 4;
  options.cache_bytes = 0;  // every request decodes: stealing has work
  DocService service(store.get(), options);
  // Every id lives in shard 0, so routing sends everything to one worker
  // queue; the three idle peers must steal to share the load.
  const size_t shard0_docs = store->router_snapshot()->start(1);
  ASSERT_GT(shard0_docs, 0u);
  ServeBatch batch;
  std::vector<size_t> ids(64);
  Rng rng(777);
  for (int round = 0; round < 8; ++round) {
    for (auto& id : ids) id = rng.Next() % shard0_docs;
    service.SubmitBatch(ids, &batch);
    for (const GetResult& r : batch.Wait()) {
      ASSERT_TRUE(r.ok());
    }
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 8u * 64u);
  EXPECT_GT(stats.steals, 0u);
}

TEST(DocServiceTest, SubmitAfterShutdownCompletesUnavailable) {
  const Collection collection = TestCollection(1 << 16, 96);
  auto store = ShardedStore::Build(collection, {});
  DocService service(store.get(), {});
  ASSERT_TRUE(service.Get(0).get().ok());
  service.Shutdown();
  service.Shutdown();  // idempotent

  GetResult rejected = service.Get(0).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  ServeBatch batch;
  std::vector<size_t> ids = {0, 1};
  service.SubmitBatch(ids, &batch);
  for (const GetResult& r : batch.Wait()) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  }
  for (const GetResult& r : service.MultiGet(ids)) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  }
  // Post-shutdown rejections are not counted as served requests.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 1u);
}

TEST(ConcurrencyTest, ShutdownWhileSubmitting) {
  const Collection collection = TestCollection(1 << 18, 97);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 2;
  options.queue_depth = 4;  // small queues: Shutdown races backpressure too
  DocService service(store.get(), options);
  constexpr int kProducers = 4;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> other_failures{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1300 + p);
      ServeBatch batch;
      std::vector<size_t> ids(16);
      for (int round = 0; round < 40; ++round) {
        for (auto& id : ids) id = rng.Next() % collection.num_docs();
        service.SubmitBatch(ids, &batch);
        for (const GetResult& r : batch.Wait()) {
          if (r.ok()) {
            served.fetch_add(1);
          } else if (r.status.code() == StatusCode::kUnavailable) {
            unavailable.fetch_add(1);
          } else {
            other_failures.fetch_add(1);
          }
        }
      }
    });
  }
  service.Shutdown();  // races the producers mid-submission
  for (auto& t : producers) t.join();
  // Every request either completed or was cleanly rejected — nothing hung
  // or failed any other way — and the drained stats account for exactly
  // the served ones.
  EXPECT_EQ(other_failures.load(), 0u);
  EXPECT_EQ(served.load() + unavailable.load(), kProducers * 40u * 16u);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, served.load());
}

TEST(ConcurrencyTest, DrainUnderSustainedMultiProducerLoad) {
  const Collection collection = TestCollection(1 << 18, 98);
  auto store = ShardedStore::Build(collection, {});
  DocServiceOptions options;
  options.num_threads = 2;
  DocService service(store.get(), options);
  constexpr int kProducers = 3;
  constexpr int kRounds = 25;
  constexpr int kBatch = 24;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(7100 + p);
      ServeBatch batch;
      std::vector<size_t> ids(kBatch);
      for (int round = 0; round < kRounds; ++round) {
        for (auto& id : ids) id = rng.Next() % collection.num_docs();
        service.SubmitBatch(ids, &batch);
        const std::vector<GetResult>& results = batch.Wait();
        for (size_t i = 0; i < ids.size(); ++i) {
          if (!results[i].ok() ||
              *results[i].text != collection.doc(ids[i])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Drain races the producers: each call returns at a momentary idle
  // point (producers pause between rounds) or, at the latest, when the
  // bounded load above completes — either way it must come back.
  for (int i = 0; i < 5; ++i) service.Drain();
  for (auto& t : producers) t.join();
  service.Drain();
  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kProducers) * kRounds * kBatch);
}

TEST(ConcurrencyTest, FullQueueBackpressureDeliversEverything) {
  const Collection collection = TestCollection(1 << 17, 99);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 2;
  options.queue_depth = 1;  // total queue space 2: every batch overflows
  options.cache_bytes = 0;  // slow consumers: decodes keep queues full
  DocService service(store.get(), options);
  constexpr int kProducers = 4;
  constexpr int kRounds = 10;
  constexpr int kBatch = 32;  // 16x the whole service's queue capacity
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(8200 + p);
      ServeBatch batch;
      std::vector<size_t> ids(kBatch);
      for (int round = 0; round < kRounds; ++round) {
        for (auto& id : ids) id = rng.Next() % collection.num_docs();
        service.SubmitBatch(ids, &batch);
        const std::vector<GetResult>& results = batch.Wait();
        for (size_t i = 0; i < ids.size(); ++i) {
          if (!results[i].ok() ||
              *results[i].text != collection.doc(ids[i])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kProducers) * kRounds * kBatch);
}

TEST(ConcurrencyTest, StatsNeverBlocksServing) {
  const Collection collection = TestCollection(1 << 18, 100);
  auto store = ShardedStore::Build(collection, {});
  DocServiceOptions options;
  options.num_threads = 2;
  DocService service(store.get(), options);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    Rng rng(6001);
    ServeBatch batch;
    std::vector<size_t> ids(32);
    for (int round = 0; round < 30; ++round) {
      for (auto& id : ids) id = rng.Next() % collection.num_docs();
      service.SubmitBatch(ids, &batch);
      batch.Wait();
    }
    done.store(true);
  });
  // Mid-flight Stats() reads only atomics: hammer it while serving runs
  // and check the monotone, eventually-exact request counter.
  uint64_t last = 0;
  while (!done.load()) {
    const ServiceStats stats = service.Stats();
    EXPECT_GE(stats.requests, last);
    last = stats.requests;
  }
  producer.join();
  service.Drain();
  EXPECT_EQ(service.Stats().requests, 30u * 32u);
}

TEST(ConcurrencyTest, DestructorDrainsOutstandingFutures) {
  const Collection collection = TestCollection(1 << 17, 101);
  auto store = ShardedStore::Build(collection, {});
  std::vector<std::future<GetResult>> futures;
  {
    DocServiceOptions options;
    options.num_threads = 2;
    DocService service(store.get(), options);
    for (int round = 0; round < 4; ++round) {
      for (size_t i = 0; i < collection.num_docs(); ++i) {
        futures.push_back(service.Get(i));
      }
    }
    // Destruction runs Shutdown(): every accepted request must complete.
  }
  for (auto& f : futures) {
    GetResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
}

}  // namespace
}  // namespace rlz
