#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "semistatic/semistatic_archive.h"
#include "semistatic/token_coder.h"
#include "semistatic/word_model.h"
#include "util/random.h"

namespace rlz {
namespace {

// ---------------------------------------------------------------------------
// Word model
// ---------------------------------------------------------------------------

std::string Rejoin(const std::vector<std::string_view>& tokens) {
  std::string out;
  for (auto t : tokens) out.append(t);
  return out;
}

TEST(WordModelTest, SplitAlternatesAndRejoins) {
  const std::string text = "Hello, world!  This is <b>markup</b>.";
  const auto tokens = SplitWordsAndSeparators(text);
  EXPECT_EQ(Rejoin(tokens), text);
  // Even positions are separators, odd are words.
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (char c : tokens[i]) {
      const bool word_byte = std::isalnum(static_cast<unsigned char>(c)) != 0;
      EXPECT_EQ(word_byte, i % 2 == 1) << "token " << i;
    }
  }
}

TEST(WordModelTest, LeadingWordYieldsEmptySeparator) {
  const auto tokens = SplitWordsAndSeparators("word then more");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "");
  EXPECT_EQ(tokens[1], "word");
}

TEST(WordModelTest, EmptyAndDegenerate) {
  EXPECT_TRUE(SplitWordsAndSeparators("").empty());
  EXPECT_EQ(Rejoin(SplitWordsAndSeparators("   ")), "   ");
  EXPECT_EQ(Rejoin(SplitWordsAndSeparators("abc")), "abc");
}

TEST(WordModelTest, VocabularyRanksByFrequency) {
  const std::string doc1 = "a a a b b c";
  const std::string doc2 = "a b a";
  WordVocabulary vocab = WordVocabulary::Build({doc1, doc2});
  // "a" occurs 5 times (most frequent word); the single-space separator
  // occurs 7 times overall and outranks it.
  auto rank_a = vocab.Rank("a");
  auto rank_b = vocab.Rank("b");
  auto rank_c = vocab.Rank("c");
  ASSERT_TRUE(rank_a.ok());
  ASSERT_TRUE(rank_b.ok());
  ASSERT_TRUE(rank_c.ok());
  EXPECT_LT(*rank_a, *rank_b);
  EXPECT_LT(*rank_b, *rank_c);
  EXPECT_FALSE(vocab.Rank("missing").ok());
}

TEST(WordModelTest, SingletonFraction) {
  WordVocabulary vocab = WordVocabulary::Build({"x x y z"});
  // tokens: "", x, " ", x, " ", y, " ", z -> singletons: "", y, z of
  // {"", x, " ", y, z}.
  EXPECT_NEAR(vocab.singleton_fraction(), 3.0 / 5.0, 1e-9);
  EXPECT_GT(vocab.memory_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Token coders
// ---------------------------------------------------------------------------

class TokenCoderTest : public ::testing::TestWithParam<SemiStaticScheme> {
 protected:
  std::unique_ptr<TokenCoder> MakeCoder(size_t vocab_size) const {
    if (GetParam() == SemiStaticScheme::kEtdc) {
      return std::make_unique<EtdcCoder>();
    }
    // Zipf-ish frequencies for PH.
    std::vector<uint64_t> freqs(vocab_size);
    for (size_t r = 0; r < vocab_size; ++r) {
      freqs[r] = 1 + vocab_size * 10 / (r + 1);
    }
    return std::make_unique<PlainHuffmanCoder>(freqs);
  }
};

TEST_P(TokenCoderTest, RoundTripAllRanks) {
  constexpr size_t kVocab = 70000;  // exercises 1-, 2-, 3-byte codes
  auto coder = MakeCoder(kVocab);
  std::string buf;
  for (uint32_t r = 0; r < kVocab; r += 97) coder->Encode(r, &buf);
  size_t pos = 0;
  for (uint32_t r = 0; r < kVocab; r += 97) {
    uint32_t got = 0;
    ASSERT_TRUE(coder->Decode(buf, &pos, &got).ok());
    ASSERT_EQ(got, r);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST_P(TokenCoderTest, FrequentRanksGetShortCodes) {
  auto coder = MakeCoder(100000);
  EXPECT_LE(coder->CodeLength(0), coder->CodeLength(99999));
  EXPECT_EQ(coder->CodeLength(0), 1u);
}

TEST_P(TokenCoderTest, CodeLengthMatchesEncoding) {
  auto coder = MakeCoder(300000);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t r = static_cast<uint32_t>(rng.Uniform(300000));
    std::string buf;
    coder->Encode(r, &buf);
    EXPECT_EQ(buf.size(), coder->CodeLength(r)) << "rank " << r;
  }
}

TEST_P(TokenCoderTest, TruncatedDecodeFails) {
  auto coder = MakeCoder(300000);
  std::string buf;
  coder->Encode(299999, &buf);
  ASSERT_GT(buf.size(), 1u);
  size_t pos = 0;
  uint32_t rank = 0;
  EXPECT_EQ(coder->Decode(std::string_view(buf).substr(0, buf.size() - 1),
                          &pos, &rank)
                .code(),
            StatusCode::kCorruption);
}

INSTANTIATE_TEST_SUITE_P(Schemes, TokenCoderTest,
                         ::testing::Values(SemiStaticScheme::kEtdc,
                                           SemiStaticScheme::kPlainHuffman),
                         [](const auto& info) {
                           return info.param == SemiStaticScheme::kEtdc
                                      ? "Etdc"
                                      : "PlainHuffman";
                         });

TEST(EtdcTest, DenseCodeBoundaries) {
  const EtdcCoder coder;
  EXPECT_EQ(coder.CodeLength(127), 1u);
  EXPECT_EQ(coder.CodeLength(128), 2u);
  EXPECT_EQ(coder.CodeLength(128 + 128 * 128 - 1), 2u);
  EXPECT_EQ(coder.CodeLength(128 + 128 * 128), 3u);
  // Exact boundary values round-trip.
  for (uint32_t r : {0u, 127u, 128u, 16511u, 16512u, 2113663u, 2113664u}) {
    std::string buf;
    coder.Encode(r, &buf);
    size_t pos = 0;
    uint32_t got = 0;
    ASSERT_TRUE(coder.Decode(buf, &pos, &got).ok());
    EXPECT_EQ(got, r);
  }
}

TEST(EtdcTest, CodesAreByteMonotonicInLength) {
  // Denser (lower) ranks never get longer codes — the defining property of
  // a dense code.
  const EtdcCoder coder;
  size_t prev = 1;
  for (uint32_t r = 0; r < 3000000; r += 1009) {
    const size_t len = coder.CodeLength(r);
    EXPECT_GE(len, prev);
    prev = len;
  }
}

TEST(PlainHuffmanTest, OptimalityBeatsOrEqualsEtdcWeighted) {
  // PH is the optimal byte-oriented code, so its weighted length is <=
  // ETDC's for any frequency profile.
  Rng rng(2);
  std::vector<uint64_t> freqs(5000);
  for (auto& f : freqs) f = 1 + rng.Uniform(10000);
  std::sort(freqs.rbegin(), freqs.rend());
  const PlainHuffmanCoder ph(freqs);
  const EtdcCoder etdc;
  uint64_t ph_bytes = 0;
  uint64_t etdc_bytes = 0;
  for (uint32_t r = 0; r < freqs.size(); ++r) {
    ph_bytes += freqs[r] * ph.CodeLength(r);
    etdc_bytes += freqs[r] * etdc.CodeLength(r);
  }
  EXPECT_LE(ph_bytes, etdc_bytes);
}

TEST(PlainHuffmanTest, SingleSymbolVocabulary) {
  const PlainHuffmanCoder ph({42});
  std::string buf;
  ph.Encode(0, &buf);
  EXPECT_EQ(buf.size(), 1u);
  size_t pos = 0;
  uint32_t rank = 1;
  ASSERT_TRUE(ph.Decode(buf, &pos, &rank).ok());
  EXPECT_EQ(rank, 0u);
}

// ---------------------------------------------------------------------------
// Archive
// ---------------------------------------------------------------------------

class SemiStaticArchiveTest
    : public ::testing::TestWithParam<SemiStaticScheme> {};

TEST_P(SemiStaticArchiveTest, RoundTripsEveryDocument) {
  CorpusOptions options;
  options.target_bytes = 1 << 20;
  options.seed = 81;
  const Corpus corpus = GenerateCorpus(options);
  auto archive = SemiStaticArchive::Build(corpus.collection, GetParam());
  ASSERT_EQ(archive->num_docs(), corpus.collection.num_docs());
  std::string doc;
  for (size_t i = 0; i < archive->num_docs(); ++i) {
    ASSERT_TRUE(archive->Get(i, &doc, nullptr).ok()) << i;
    ASSERT_EQ(doc, corpus.collection.doc(i)) << i;
  }
}

TEST_P(SemiStaticArchiveTest, CompressesButNotAsWellAsRlzWould) {
  CorpusOptions options;
  options.target_bytes = 1 << 20;
  options.seed = 82;
  const Corpus corpus = GenerateCorpus(options);
  auto archive = SemiStaticArchive::Build(corpus.collection, GetParam());
  const double pct = 100.0 * archive->stored_bytes() /
                     corpus.collection.size_bytes();
  // §2.1: semi-static word codes reach ~20-40% but cannot exploit global
  // repetition. Must compress (<70%) but stay well above RLZ's 10-15%.
  EXPECT_LT(pct, 70.0);
  EXPECT_GT(pct, 15.0);
}

TEST_P(SemiStaticArchiveTest, OutOfRangeGet) {
  Collection c;
  c.Append("one doc only");
  auto archive = SemiStaticArchive::Build(c, GetParam());
  std::string doc;
  EXPECT_EQ(archive->Get(3, &doc, nullptr).code(), StatusCode::kOutOfRange);
}

TEST_P(SemiStaticArchiveTest, ModelMemoryReported) {
  Collection c;
  c.Append("alpha beta gamma alpha");
  auto archive = SemiStaticArchive::Build(c, GetParam());
  EXPECT_GT(archive->model_memory_bytes(), 0u);
  EXPECT_GT(archive->vocabulary().size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SemiStaticArchiveTest,
                         ::testing::Values(SemiStaticScheme::kEtdc,
                                           SemiStaticScheme::kPlainHuffman),
                         [](const auto& info) {
                           return info.param == SemiStaticScheme::kEtdc
                                      ? "Etdc"
                                      : "PlainHuffman";
                         });

}  // namespace
}  // namespace rlz
