#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitio.h"
#include "util/crc32.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"

namespace rlz {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad flag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad flag");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad flag");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status UsesMacros(int v, int* out) {
  RLZ_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  RLZ_RETURN_IF_ERROR(Status::OK());
  return Status::OK();
}

TEST(StatusOrTest, Macros) {
  int out = 0;
  EXPECT_TRUE(UsesMacros(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesMacros(-2, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, HeadIsMoreFrequentThanTail) {
  Rng rng(11);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[0], 20 * std::max(1, counts[900]));
}

TEST(ZipfTest, CoversRange) {
  Rng rng(13);
  ZipfSampler zipf(5, 1.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(BitIoTest, SingleBits) {
  std::string buf;
  BitWriter bw(&buf);
  for (int i = 0; i < 20; ++i) bw.WriteBits(i & 1, 1);
  bw.Finish();
  BitReader br(buf);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(br.ReadBits(1), (i & 1u));
  EXPECT_FALSE(br.overflowed());
}

TEST(BitIoTest, MixedWidthRoundTrip) {
  Rng rng(17);
  std::vector<std::pair<uint64_t, int>> fields;
  for (int i = 0; i < 2000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.Uniform(57));
    const uint64_t mask = (nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1);
    fields.emplace_back(rng.Next() & mask, nbits);
  }
  std::string buf;
  BitWriter bw(&buf);
  for (auto [v, n] : fields) bw.WriteBits(v, n);
  bw.Finish();
  BitReader br(buf);
  for (auto [v, n] : fields) EXPECT_EQ(br.ReadBits(n), v);
  EXPECT_FALSE(br.overflowed());
}

TEST(BitIoTest, PeekAndSkip) {
  std::string buf;
  BitWriter bw(&buf);
  bw.WriteBits(0b1011, 4);
  bw.WriteBits(0b110, 3);
  bw.Finish();
  BitReader br(buf);
  EXPECT_EQ(br.PeekBits(4), 0b1011u);
  EXPECT_EQ(br.PeekBits(4), 0b1011u);  // peek does not consume
  br.SkipBits(4);
  EXPECT_EQ(br.ReadBits(3), 0b110u);
}

TEST(BitIoTest, OverflowFlag) {
  std::string buf;
  BitWriter bw(&buf);
  bw.WriteBits(0xFF, 8);
  bw.Finish();
  BitReader br(buf);
  br.ReadBits(8);
  EXPECT_FALSE(br.overflowed());
  br.ReadBits(8);
  EXPECT_TRUE(br.overflowed());
}

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 test vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(Crc32Test, SeedChaining) {
  const std::string data = "hello, world";
  const uint32_t whole = Crc32(data);
  const uint32_t part = Crc32(data.substr(5), Crc32(data.substr(0, 5)));
  EXPECT_EQ(whole, part);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(1024, 'a');
  const uint32_t before = Crc32(data);
  data[512] ^= 1;
  EXPECT_NE(before, Crc32(data));
}

// ---------------------------------------------------------------------------
// LatencyHistogram (the serving layer's percentile accounting).

TEST(LatencyHistogramTest, BucketGeometryIsConsistent) {
  // Every bucket's [low, low+width) must contain exactly the values that
  // index back to it; probe the edges across the full 64-bit range.
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const uint64_t low = LatencyHistogram::BucketLow(b);
    const uint64_t width = LatencyHistogram::BucketWidth(b);
    ASSERT_EQ(LatencyHistogram::BucketIndex(low), b) << "bucket " << b;
    ASSERT_EQ(LatencyHistogram::BucketIndex(low + width - 1), b)
        << "bucket " << b;
    if (b + 1 < LatencyHistogram::kNumBuckets) {
      ASSERT_EQ(LatencyHistogram::BucketIndex(low + width), b + 1)
          << "bucket " << b;
    }
  }
  // Small values get exact buckets.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 15);
  EXPECT_EQ(LatencyHistogram::BucketWidth(3), 1u);
}

TEST(LatencyHistogramTest, QuantilesWithinLogLinearError) {
  LatencyHistogram hist;
  // 1..1000 us, uniformly: p50 ~ 500us, p99 ~ 990us (each in ns).
  for (uint64_t us = 1; us <= 1000; ++us) hist.Record(us * 1000);
  LatencyHistogram::Snapshot snap;
  hist.AddTo(&snap);
  EXPECT_EQ(snap.total, 1000u);
  // Log-linear bucketing quantizes at 1/16 (~6%) relative error.
  EXPECT_NEAR(snap.ValueAtQuantile(0.50), 500e3, 500e3 * 0.08);
  EXPECT_NEAR(snap.ValueAtQuantile(0.99), 990e3, 990e3 * 0.08);
  EXPECT_NEAR(snap.ValueAtQuantile(1.0), 1000e3, 1000e3 * 0.08);
  EXPECT_LE(snap.ValueAtQuantile(0.0), 2e3);
}

TEST(LatencyHistogramTest, SnapshotsMergeAcrossHistograms) {
  LatencyHistogram fast;  // all at ~10us
  LatencyHistogram slow;  // all at ~10ms
  for (int i = 0; i < 900; ++i) fast.Record(10'000);
  for (int i = 0; i < 100; ++i) slow.Record(10'000'000);
  LatencyHistogram::Snapshot merged;
  fast.AddTo(&merged);
  slow.AddTo(&merged);
  EXPECT_EQ(merged.total, 1000u);
  // p50 sits in the fast mode, p99 in the slow one.
  EXPECT_NEAR(merged.ValueAtQuantile(0.50), 10e3, 10e3 * 0.10);
  EXPECT_NEAR(merged.ValueAtQuantile(0.99), 10e6, 10e6 * 0.10);
}

TEST(LatencyHistogramTest, EmptyAndExtremeValues) {
  LatencyHistogram::Snapshot empty;
  EXPECT_EQ(empty.ValueAtQuantile(0.5), 0.0);
  LatencyHistogram hist;
  hist.Record(0);
  hist.Record(~0ull);  // the top bucket must not overflow
  LatencyHistogram::Snapshot snap;
  hist.AddTo(&snap);
  EXPECT_EQ(snap.total, 2u);
  EXPECT_GE(snap.ValueAtQuantile(1.0), 1e18);
}

}  // namespace
}  // namespace rlz
