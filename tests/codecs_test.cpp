#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codecs/int_codecs.h"
#include "util/random.h"

namespace rlz {
namespace {

std::vector<uint32_t> RoundTrip(const IntCodec& codec,
                                const std::vector<uint32_t>& values) {
  std::string buf;
  codec.Encode(values, &buf);
  std::vector<uint32_t> out;
  size_t consumed = 0;
  const Status s = codec.Decode(buf, values.size(), &out, &consumed);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(consumed, buf.size());
  return out;
}

class IntCodecRoundTripTest : public ::testing::TestWithParam<IntCodecId> {};

TEST_P(IntCodecRoundTripTest, Empty) {
  const IntCodec* codec = GetIntCodec(GetParam());
  EXPECT_TRUE(RoundTrip(*codec, {}).empty());
}

TEST_P(IntCodecRoundTripTest, SingleValues) {
  const IntCodec* codec = GetIntCodec(GetParam());
  for (uint32_t v : {0u, 1u, 127u, 128u, 255u, 256u, 16383u, 16384u,
                     (1u << 28) - 1, 1u << 28, std::numeric_limits<uint32_t>::max()}) {
    const std::vector<uint32_t> values = {v};
    EXPECT_EQ(RoundTrip(*codec, values), values) << "value " << v;
  }
}

TEST_P(IntCodecRoundTripTest, AllZeros) {
  const IntCodec* codec = GetIntCodec(GetParam());
  const std::vector<uint32_t> values(1000, 0);
  EXPECT_EQ(RoundTrip(*codec, values), values);
}

TEST_P(IntCodecRoundTripTest, SmallValuesBulk) {
  const IntCodec* codec = GetIntCodec(GetParam());
  Rng rng(1);
  std::vector<uint32_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Uniform(100)));
  }
  EXPECT_EQ(RoundTrip(*codec, values), values);
}

TEST_P(IntCodecRoundTripTest, SkewedFactorLengthDistribution) {
  // Mimics the Fig. 3 length distribution: mostly < 100, rare large values.
  const IntCodec* codec = GetIntCodec(GetParam());
  Rng rng(2);
  std::vector<uint32_t> values;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.97)) {
      values.push_back(static_cast<uint32_t>(rng.Uniform(100)));
    } else {
      values.push_back(static_cast<uint32_t>(rng.Uniform(1 << 20)));
    }
  }
  EXPECT_EQ(RoundTrip(*codec, values), values);
}

TEST_P(IntCodecRoundTripTest, UniformFullRange) {
  const IntCodec* codec = GetIntCodec(GetParam());
  Rng rng(3);
  std::vector<uint32_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Next()));
  }
  EXPECT_EQ(RoundTrip(*codec, values), values);
}

TEST_P(IntCodecRoundTripTest, BlockBoundarySizes) {
  // Exercise counts around the PForDelta block size and Simple9 packing.
  const IntCodec* codec = GetIntCodec(GetParam());
  Rng rng(4);
  for (size_t n : {1u, 2u, 27u, 28u, 29u, 127u, 128u, 129u, 255u, 256u, 257u}) {
    std::vector<uint32_t> values;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(static_cast<uint32_t>(rng.Uniform(1000)));
    }
    EXPECT_EQ(RoundTrip(*codec, values), values) << "n=" << n;
  }
}

TEST_P(IntCodecRoundTripTest, TruncatedInputIsCorruption) {
  const IntCodec* codec = GetIntCodec(GetParam());
  std::vector<uint32_t> values(100, 12345);
  std::string buf;
  codec->Encode(values, &buf);
  std::vector<uint32_t> out;
  size_t consumed = 0;
  const Status s = codec->Decode(std::string_view(buf).substr(0, buf.size() / 2),
                                 values.size(), &out, &consumed);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, IntCodecRoundTripTest,
                         ::testing::Values(IntCodecId::kU32, IntCodecId::kVByte,
                                           IntCodecId::kSimple9,
                                           IntCodecId::kPForDelta),
                         [](const auto& info) {
                           return std::string(IntCodecName(info.param)) ==
                                          "PFD"
                                      ? "PForDelta"
                                      : std::string(IntCodecName(info.param)) ==
                                                "S9"
                                            ? "Simple9"
                                            : IntCodecName(info.param);
                         });

TEST(VByteTest, EncodingSizes) {
  const VByteCodec codec;
  auto encoded_size = [&](uint32_t v) {
    std::string buf;
    codec.Encode({v}, &buf);
    return buf.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size(16383), 2u);
  EXPECT_EQ(encoded_size(16384), 3u);
  EXPECT_EQ(encoded_size(std::numeric_limits<uint32_t>::max()), 5u);
}

TEST(VByteTest, MajorityOfSmallLengthsAreOneByte) {
  // The paper's rationale for vbyte (§3.4): most factor lengths < 100
  // encode in a single byte.
  const VByteCodec codec;
  std::vector<uint32_t> values;
  for (uint32_t v = 0; v < 100; ++v) values.push_back(v);
  std::string buf;
  codec.Encode(values, &buf);
  EXPECT_EQ(buf.size(), values.size());
}

TEST(VByteTest, RejectsOverlongEncoding) {
  // Six continuation bytes cannot be a valid u32.
  const std::string bad = "\xFF\xFF\xFF\xFF\xFF\xFF";
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_EQ(VByteCodec::Get(bad, &pos, &v).code(), StatusCode::kCorruption);
}

TEST(U32Test, FixedWidth) {
  const U32Codec codec;
  std::string buf;
  codec.Encode({1, 2, 3}, &buf);
  EXPECT_EQ(buf.size(), 12u);
}

TEST(U32Test, LittleEndianLayout) {
  const U32Codec codec;
  std::string buf;
  codec.Encode({0x01020304u}, &buf);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
}

TEST(Simple9Test, PacksSmallValuesDensely) {
  const Simple9Codec codec;
  // 28 one-bit values should fit one 32-bit word.
  std::vector<uint32_t> values(28, 1);
  std::string buf;
  codec.Encode(values, &buf);
  EXPECT_EQ(buf.size(), 4u);
}

TEST(Simple9Test, EscapesLargeValues) {
  const Simple9Codec codec;
  std::vector<uint32_t> values = {1u << 28, (1u << 31) + 5};
  std::string buf;
  codec.Encode(values, &buf);
  std::vector<uint32_t> out;
  size_t consumed = 0;
  ASSERT_TRUE(codec.Decode(buf, values.size(), &out, &consumed).ok());
  EXPECT_EQ(out, values);
}

TEST(Simple9Test, RejectsBadSelector) {
  // Selector 10..15 (except the escape 9) is invalid.
  std::string buf = {'\0', '\0', '\0', static_cast<char>(0xA0)};
  const Simple9Codec codec;
  std::vector<uint32_t> out;
  size_t consumed = 0;
  EXPECT_EQ(codec.Decode(buf, 5, &out, &consumed).code(),
            StatusCode::kCorruption);
}

TEST(PForDeltaTest, ExceptionsPatched) {
  const PForDeltaCodec codec;
  std::vector<uint32_t> values(128, 3);
  values[7] = 1u << 30;   // exception
  values[100] = 1u << 25; // exception
  std::string buf;
  codec.Encode(values, &buf);
  std::vector<uint32_t> out;
  size_t consumed = 0;
  ASSERT_TRUE(codec.Decode(buf, values.size(), &out, &consumed).ok());
  EXPECT_EQ(out, values);
}

TEST(PForDeltaTest, CompressesSkewedBetterThanU32) {
  Rng rng(5);
  std::vector<uint32_t> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(rng.Bernoulli(0.95)
                         ? static_cast<uint32_t>(rng.Uniform(64))
                         : static_cast<uint32_t>(rng.Uniform(1 << 22)));
  }
  std::string pfd;
  std::string u32;
  GetIntCodec(IntCodecId::kPForDelta)->Encode(values, &pfd);
  GetIntCodec(IntCodecId::kU32)->Encode(values, &u32);
  EXPECT_LT(pfd.size(), u32.size() / 2);
}

TEST(CodecNamesTest, RoundTrip) {
  for (IntCodecId id : {IntCodecId::kU32, IntCodecId::kVByte,
                        IntCodecId::kSimple9, IntCodecId::kPForDelta}) {
    auto parsed = IntCodecFromName(IntCodecName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(IntCodecFromName("bogus").ok());
}

}  // namespace
}  // namespace rlz
