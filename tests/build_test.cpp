// The parallel build pipeline (DESIGN.md §7): the word-packed Bitmap,
// FactorStats merging, BuildPipeline's ordered-merge contract, and the
// headline property — parallel builds are byte-identical to serial ones
// for every backend (RLZ, blocked, semistatic, sharded), at every tested
// thread count, across random, repetitive, and empty-document
// collections. Runs under ThreadSanitizer in CI (ctest label
// `concurrency`).

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "build/archive_builder.h"
#include "build/build_pipeline.h"
#include "core/rlz.h"
#include "corpus/generator.h"
#include "io/file.h"
#include "semistatic/semistatic_archive.h"
#include "serve/sharded_store.h"
#include "store/blocked_archive.h"
#include "util/bitmap.h"
#include "util/random.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

// ---------------------------------------------------------------------------
// Bitmap
// ---------------------------------------------------------------------------

// Reference implementation to property-check against.
std::vector<bool> ReferenceSetRange(std::vector<bool> bits, size_t begin,
                                    size_t len) {
  for (size_t i = begin; i < begin + len; ++i) bits[i] = true;
  return bits;
}

bool Matches(const Bitmap& bitmap, const std::vector<bool>& reference) {
  if (bitmap.size() != reference.size()) return false;
  for (size_t i = 0; i < reference.size(); ++i) {
    if (bitmap.Test(i) != reference[i]) return false;
  }
  return true;
}

TEST(BitmapTest, SetRangeMatchesReferenceAcrossWordBoundaries) {
  Rng rng(7);
  constexpr size_t kBits = 1000;
  Bitmap bitmap(kBits);
  std::vector<bool> reference(kBits, false);
  // Ranges chosen to hit within-word, word-crossing, and word-aligned
  // cases (word size is 64).
  const size_t cases[][2] = {{0, 1},    {63, 1},   {64, 1},  {60, 8},
                             {0, 64},   {64, 128}, {5, 200}, {999, 1},
                             {930, 70}, {128, 0}};
  for (const auto& c : cases) {
    bitmap.SetRange(c[0], c[1]);
    reference = ReferenceSetRange(std::move(reference), c[0], c[1]);
    ASSERT_TRUE(Matches(bitmap, reference))
        << "after SetRange(" << c[0] << ", " << c[1] << ")";
    ASSERT_EQ(bitmap.CountSet(),
              static_cast<size_t>(
                  std::count(reference.begin(), reference.end(), true)));
  }
  // Random ranges.
  for (int i = 0; i < 200; ++i) {
    const size_t begin = rng.Next() % kBits;
    const size_t len = rng.Next() % (kBits - begin + 1);
    bitmap.SetRange(begin, len);
    reference = ReferenceSetRange(std::move(reference), begin, len);
  }
  EXPECT_TRUE(Matches(bitmap, reference));
}

TEST(BitmapTest, OrWithMergesPartitionsExactly) {
  Rng rng(8);
  constexpr size_t kBits = 777;
  Bitmap full(kBits);
  Bitmap parts[4] = {Bitmap(kBits), Bitmap(kBits), Bitmap(kBits),
                     Bitmap(kBits)};
  for (int i = 0; i < 300; ++i) {
    const size_t begin = rng.Next() % kBits;
    const size_t len = rng.Next() % (kBits - begin + 1);
    full.SetRange(begin, len);
    parts[rng.Next() % 4].SetRange(begin, len);
  }
  // Merge in a scrambled order: OR is commutative and associative.
  Bitmap merged(kBits);
  for (int p : {2, 0, 3, 1}) merged.OrWith(parts[p]);
  EXPECT_EQ(merged, full);
  EXPECT_EQ(merged.CountSet(), full.CountSet());
}

TEST(BitmapTest, FractionSetTracksCoverage) {
  Bitmap bitmap(100);
  EXPECT_DOUBLE_EQ(bitmap.FractionSet(), 0.0);
  bitmap.SetRange(0, 25);
  EXPECT_DOUBLE_EQ(bitmap.FractionSet(), 0.25);
  bitmap.SetRange(0, 100);
  EXPECT_DOUBLE_EQ(bitmap.FractionSet(), 1.0);
  EXPECT_DOUBLE_EQ(Bitmap().FractionSet(), 0.0);  // empty: defined as 0
}

TEST(BitmapTest, EqualityIsExact) {
  Bitmap a(65);
  Bitmap b(65);
  EXPECT_EQ(a, b);
  a.Set(64);
  EXPECT_NE(a, b);
  b.Set(64);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Bitmap(64));  // same words, different size
}

// ---------------------------------------------------------------------------
// FactorStats
// ---------------------------------------------------------------------------

TEST(FactorStatsTest, MergeSumsAllCounters) {
  FactorStats a;
  a.num_factors = 10;
  a.num_literals = 3;
  a.text_bytes = 1000;
  FactorStats b;
  b.num_factors = 5;
  b.num_literals = 1;
  b.text_bytes = 500;
  a.Merge(b);
  EXPECT_EQ(a.num_factors, 15u);
  EXPECT_EQ(a.num_literals, 4u);
  EXPECT_EQ(a.text_bytes, 1500u);
  EXPECT_DOUBLE_EQ(a.avg_factor_length(), 100.0);
}

TEST(FactorStatsTest, AvgFactorDecayMeasuresStaleness) {
  // The live store's staleness trigger (DESIGN.md §11): decay is the
  // fractional drop in average factor length against a baseline build.
  FactorStats baseline;
  baseline.num_factors = 10;
  baseline.text_bytes = 1000;  // avg 100
  FactorStats decayed;
  decayed.num_factors = 40;
  decayed.text_bytes = 1000;  // avg 25: a 75% drop
  EXPECT_DOUBLE_EQ(decayed.avg_factor_decay(baseline), 0.75);
  // As-good-or-better factors never report decay.
  EXPECT_DOUBLE_EQ(baseline.avg_factor_decay(baseline), 0.0);
  EXPECT_DOUBLE_EQ(baseline.avg_factor_decay(decayed), 0.0);
  // Degenerate inputs (no factors on either side) are defined as 0.
  EXPECT_DOUBLE_EQ(FactorStats().avg_factor_decay(baseline), 0.0);
  EXPECT_DOUBLE_EQ(baseline.avg_factor_decay(FactorStats()), 0.0);
}

// ---------------------------------------------------------------------------
// BuildPipeline
// ---------------------------------------------------------------------------

TEST(BuildPipelineTest, PartitionCoversAllDocsContiguously) {
  const auto ranges = BuildPipeline::Partition(100, 7);
  ASSERT_EQ(ranges.size(), 15u);
  size_t expect_begin = 0;
  for (const DocRange& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_GT(r.end, r.begin);
    expect_begin = r.end;
  }
  EXPECT_EQ(ranges.back().end, 100u);
  EXPECT_TRUE(BuildPipeline::Partition(0, 4).empty());
}

class BuildPipelineThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(BuildPipelineThreadsTest, MergesRunInSubmissionOrder) {
  BuildPipelineOptions options;
  options.num_threads = GetParam();
  options.max_inflight_chunks = 3;  // exercise backpressure
  BuildPipeline pipeline(options);
  constexpr int kChunks = 200;
  std::vector<int> merged;
  std::vector<std::unique_ptr<int>> encoded(kChunks);
  for (int i = 0; i < kChunks; ++i) {
    pipeline.Submit(
        [&encoded, i](int worker) {
          ASSERT_GE(worker, 0);
          // Unequal encode costs so completion order differs from
          // submission order when threads > 1.
          volatile int spin = (i % 7) * 1000;
          while (spin > 0) spin = spin - 1;
          encoded[i] = std::make_unique<int>(i);
        },
        [&merged, &encoded, i]() {
          // The chunk's own encode must have happened...
          ASSERT_NE(encoded[i], nullptr);
          merged.push_back(*encoded[i]);
        });
  }
  const BuildPipelineStats stats = pipeline.Finish();
  EXPECT_EQ(stats.chunks, static_cast<size_t>(kChunks));
  // ...and merges landed in exact submission order, no locks needed in
  // the merge callbacks themselves.
  std::vector<int> expected(kChunks);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merged, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, BuildPipelineThreadsTest,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Parallel build == serial build, byte for byte
// ---------------------------------------------------------------------------

Collection RandomCollection(uint64_t seed, size_t num_docs,
                            size_t max_doc_bytes) {
  Rng rng(seed);
  Collection collection;
  std::string doc;
  for (size_t i = 0; i < num_docs; ++i) {
    doc.clear();
    const size_t len = rng.Next() % (max_doc_bytes + 1);
    for (size_t j = 0; j < len; ++j) {
      doc.push_back(static_cast<char>(rng.Next() % 256));
    }
    collection.Append(doc);
  }
  return collection;
}

Collection RepetitiveCollection(size_t num_docs) {
  Collection collection;
  const std::string unit = "the quick brown fox jumps over the lazy dog. ";
  for (size_t i = 0; i < num_docs; ++i) {
    std::string doc;
    for (size_t r = 0; r < 1 + i % 40; ++r) doc += unit;
    collection.Append(doc);
  }
  return collection;
}

// Every third document empty, including leading and trailing runs.
Collection EmptyDocCollection(uint64_t seed, size_t num_docs) {
  Rng rng(seed);
  Collection collection;
  for (size_t i = 0; i < num_docs; ++i) {
    if (i % 3 != 1) {
      collection.Append("");
      continue;
    }
    std::string doc;
    const size_t len = rng.Next() % 2000;
    for (size_t j = 0; j < len; ++j) {
      doc.push_back(static_cast<char>('a' + rng.Next() % 26));
    }
    collection.Append(doc);
  }
  return collection;
}

struct NamedCollection {
  const char* name;
  Collection collection;
};

std::vector<NamedCollection> TestCollections() {
  CorpusOptions options;
  options.target_bytes = 1 << 20;
  options.seed = 202;
  std::vector<NamedCollection> collections;
  collections.push_back({"web", GenerateCorpus(options).collection});
  collections.push_back({"random", RandomCollection(31, 120, 4000)});
  collections.push_back({"repetitive", RepetitiveCollection(150)});
  collections.push_back({"empty-docs", EmptyDocCollection(32, 100)});
  collections.push_back({"all-empty", [] {
                           Collection c;
                           for (int i = 0; i < 50; ++i) c.Append("");
                           return c;
                         }()});
  collections.push_back({"no-docs", Collection()});
  return collections;
}

// Serializes an archive and returns the exact file bytes — the strongest
// possible identity check (payload, document map, dictionary, CRC).
std::string ArchiveBytes(const RlzArchive& archive, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/build_test_" + tag;
  EXPECT_TRUE(archive.Save(path).ok());
  auto bytes = ReadFile(path);
  EXPECT_TRUE(bytes.ok());
  std::remove(path.c_str());
  return bytes.ok() ? *bytes : std::string();
}

class ParallelIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelIdentityTest, RlzBuildByteIdenticalToSerial) {
  const int threads = GetParam();
  for (NamedCollection& item : TestCollections()) {
    const Collection& collection = item.collection;
    auto dict = std::shared_ptr<const Dictionary>(DictionaryBuilder::BuildSampled(
        collection.data(), 32 << 10, 512));

    RlzBuildOptions serial;
    serial.coding = kZV;
    serial.track_coverage = true;
    RlzBuildInfo serial_info;
    auto baseline = RlzArchive::Build(collection, dict, serial, &serial_info);
    const std::string baseline_bytes =
        ArchiveBytes(*baseline, std::string(item.name) + "_serial");

    // Chunk size must never affect the output: cover tiny, odd, and auto.
    for (const size_t chunk_docs : {size_t{1}, size_t{7}, size_t{0}}) {
      RlzBuildOptions parallel = serial;
      parallel.num_threads = threads;
      parallel.chunk_docs = chunk_docs;
      RlzBuildInfo parallel_info;
      auto archive = RlzArchive::Build(collection, dict, parallel,
                                       &parallel_info);
      SCOPED_TRACE(std::string(item.name) + " threads=" +
                   std::to_string(threads) + " chunk_docs=" +
                   std::to_string(chunk_docs));
      EXPECT_EQ(ArchiveBytes(*archive, std::string(item.name) + "_par"),
                baseline_bytes);
      EXPECT_EQ(parallel_info.stats.num_factors,
                serial_info.stats.num_factors);
      EXPECT_EQ(parallel_info.stats.num_literals,
                serial_info.stats.num_literals);
      EXPECT_EQ(parallel_info.stats.text_bytes, serial_info.stats.text_bytes);
      EXPECT_EQ(parallel_info.coverage, serial_info.coverage);
      EXPECT_DOUBLE_EQ(parallel_info.unused_dictionary_fraction,
                       serial_info.unused_dictionary_fraction);
    }
  }
}

TEST_P(ParallelIdentityTest, StreamingBuilderMatchesBatchBuild) {
  const int threads = GetParam();
  const Collection collection = RandomCollection(77, 90, 3000);
  auto dict = std::shared_ptr<const Dictionary>(DictionaryBuilder::BuildSampled(
      collection.data(), 16 << 10, 512));

  auto batch = RlzArchive::Build(collection, dict, {});

  ArchiveBuilderOptions options;
  options.num_threads = threads;
  options.chunk_docs = 5;
  options.max_inflight_chunks = 2;  // force backpressure while streaming
  RlzArchiveBuilder builder(dict, options);
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    // AddDocument copies: hand it a transient string to prove it.
    const std::string transient(collection.doc(i));
    builder.AddDocument(transient);
  }
  EXPECT_EQ(builder.num_docs(), collection.num_docs());
  ArchiveBuildReport report;
  auto streamed = std::move(builder).Finish(&report);

  EXPECT_EQ(ArchiveBytes(*streamed, "streamed"),
            ArchiveBytes(*batch, "batch"));
  EXPECT_EQ(report.stats.text_bytes, collection.size_bytes());
  if (threads > 1) {
    EXPECT_EQ(report.chunks, (collection.num_docs() + 4) / 5);
    EXPECT_EQ(report.num_threads, threads);
  }
}

TEST_P(ParallelIdentityTest, BlockedArchiveByteIdenticalToSerial) {
  const int threads = GetParam();
  CorpusOptions corpus_options;
  corpus_options.target_bytes = 1 << 20;
  corpus_options.seed = 203;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;
  const GzipxCompressor gzipx;
  for (const uint64_t block_bytes : {uint64_t{0}, uint64_t{64} << 10}) {
    const BlockedArchive baseline(collection, &gzipx, block_bytes);
    const BlockedArchive parallel(collection, &gzipx, block_bytes,
                                  /*cache_bytes=*/0, threads);
    SCOPED_TRACE("block_bytes=" + std::to_string(block_bytes) +
                 " threads=" + std::to_string(threads));
    ASSERT_EQ(parallel.num_docs(), baseline.num_docs());
    EXPECT_EQ(parallel.num_blocks(), baseline.num_blocks());
    EXPECT_EQ(parallel.stored_bytes(), baseline.stored_bytes());
    std::string a;
    std::string b;
    for (size_t i = 0; i < baseline.num_docs(); ++i) {
      ASSERT_TRUE(parallel.Get(i, &a).ok());
      ASSERT_TRUE(baseline.Get(i, &b).ok());
      ASSERT_EQ(a, b) << "doc " << i;
    }
  }
}

TEST_P(ParallelIdentityTest, SemiStaticArchiveByteIdenticalToSerial) {
  const int threads = GetParam();
  CorpusOptions corpus_options;
  corpus_options.target_bytes = 1 << 19;
  corpus_options.seed = 204;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;
  for (const SemiStaticScheme scheme :
       {SemiStaticScheme::kEtdc, SemiStaticScheme::kPlainHuffman}) {
    auto baseline = SemiStaticArchive::Build(collection, scheme);
    auto parallel = SemiStaticArchive::Build(collection, scheme, threads);
    ASSERT_EQ(parallel->num_docs(), baseline->num_docs());
    EXPECT_EQ(parallel->stored_bytes(), baseline->stored_bytes());
    std::string a;
    std::string b;
    for (size_t i = 0; i < baseline->num_docs(); i += 3) {
      ASSERT_TRUE(parallel->Get(i, &a).ok());
      ASSERT_TRUE(baseline->Get(i, &b).ok());
      ASSERT_EQ(a, b) << "doc " << i;
    }
  }
}

TEST_P(ParallelIdentityTest, ShardedStoreDeterministicForAnyThreadCount) {
  const int threads = GetParam();
  CorpusOptions corpus_options;
  corpus_options.target_bytes = 1 << 20;
  corpus_options.seed = 205;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;

  ShardedStoreOptions baseline_options;
  baseline_options.num_shards = 4;
  baseline_options.dict_bytes = 64 << 10;
  baseline_options.build_threads = 1;
  const auto baseline = ShardedStore::Build(collection, baseline_options);

  ShardedStoreOptions parallel_options = baseline_options;
  parallel_options.build_threads = threads;
  parallel_options.threads_per_shard = threads > 1 ? 2 : 1;
  const auto store = ShardedStore::Build(collection, parallel_options);

  ASSERT_EQ(store->num_docs(), baseline->num_docs());
  EXPECT_EQ(store->stored_bytes(), baseline->stored_bytes());
  for (int s = 0; s < store->num_shards(); ++s) {
    EXPECT_EQ(store->shard(s).payload_bytes(),
              baseline->shard(s).payload_bytes());
  }
  std::string a;
  std::string b;
  for (size_t i = 0; i < baseline->num_docs(); i += 7) {
    ASSERT_TRUE(store->Get(i, &a).ok());
    ASSERT_TRUE(baseline->Get(i, &b).ok());
    ASSERT_EQ(a, b) << "doc " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelIdentityTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace rlz
