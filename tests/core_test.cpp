#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "util/random.h"

namespace rlz {
namespace {

std::string RandomText(Rng& rng, size_t len, int alphabet) {
  std::string s(len, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.Uniform(alphabet));
  return s;
}

// Reference greedy factorizer: at every position, scan the whole dictionary
// for the longest match. Quadratic; used as the oracle.
std::vector<Factor> NaiveFactorize(std::string_view doc,
                                   std::string_view dict) {
  std::vector<Factor> out;
  size_t i = 0;
  while (i < doc.size()) {
    size_t best_len = 0;
    size_t best_pos = 0;
    for (size_t p = 0; p < dict.size(); ++p) {
      size_t l = 0;
      while (i + l < doc.size() && p + l < dict.size() &&
             dict[p + l] == doc[i + l]) {
        ++l;
      }
      if (l > best_len) {
        best_len = l;
        best_pos = p;
      }
    }
    if (best_len == 0) {
      out.push_back(Factor{static_cast<uint8_t>(doc[i]), 0});
      i += 1;
    } else {
      out.push_back(Factor{static_cast<uint32_t>(best_pos),
                           static_cast<uint32_t>(best_len)});
      i += best_len;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Factorizer
// ---------------------------------------------------------------------------

TEST(FactorizerTest, PaperWorkedExample) {
  // §3: x = bbaancabb relative to d = cabbaabba factorizes into
  // (3,4) ("bbaa"), ('n',0), (1,4) ("cabb") with 1-based offsets.
  Dictionary dict("cabbaabba");
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  factorizer.Factorize("bbaancabb", &factors);
  ASSERT_EQ(factors.size(), 3u);
  EXPECT_EQ(factors[0].len, 4u);
  EXPECT_EQ(dict.text().substr(factors[0].pos, 4), "bbaa");
  EXPECT_EQ(factors[1].len, 0u);
  EXPECT_EQ(factors[1].pos, static_cast<uint32_t>('n'));
  EXPECT_EQ(factors[2].len, 4u);
  EXPECT_EQ(dict.text().substr(factors[2].pos, 4), "cabb");
}

TEST(FactorizerTest, DecodeInvertsFactorize) {
  Rng rng(21);
  for (int iter = 0; iter < 20; ++iter) {
    Dictionary dict(RandomText(rng, 500, 4));
    Factorizer factorizer(&dict);
    const std::string doc = RandomText(rng, 300, 4);
    std::vector<Factor> factors;
    factorizer.Factorize(doc, &factors);
    std::string decoded;
    ASSERT_TRUE(Factorizer::Decode(factors, dict, &decoded).ok());
    EXPECT_EQ(decoded, doc);
  }
}

TEST(FactorizerTest, GreedyMatchesNaiveLengths) {
  // Greedy parsing is canonical: factor lengths (hence count) must match
  // the quadratic oracle even if positions differ (ties).
  Rng rng(22);
  for (int iter = 0; iter < 15; ++iter) {
    const std::string dict_text = RandomText(rng, 400, 3);
    Dictionary dict(dict_text);
    Factorizer factorizer(&dict);
    const std::string doc = RandomText(rng, 200, 3);
    std::vector<Factor> fast;
    factorizer.Factorize(doc, &fast);
    const std::vector<Factor> slow = NaiveFactorize(doc, dict_text);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].len, slow[i].len) << "factor " << i;
      if (fast[i].len > 0) {
        EXPECT_EQ(dict_text.substr(fast[i].pos, fast[i].len),
                  dict_text.substr(slow[i].pos, slow[i].len));
      } else {
        EXPECT_EQ(fast[i].pos, slow[i].pos);
      }
    }
  }
}

TEST(FactorizerTest, DocEqualToDictionaryIsOneFactor) {
  const std::string text = "abracadabra simsalabim";
  Dictionary dict(text);
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  factorizer.Factorize(text, &factors);
  ASSERT_EQ(factors.size(), 1u);
  EXPECT_EQ(factors[0].pos, 0u);
  EXPECT_EQ(factors[0].len, text.size());
}

TEST(FactorizerTest, AllLiteralsWhenNothingMatches) {
  Dictionary dict("aaaa");
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  factorizer.Factorize("xyz", &factors);
  ASSERT_EQ(factors.size(), 3u);
  for (const Factor& f : factors) EXPECT_EQ(f.len, 0u);
  EXPECT_EQ(factorizer.stats().num_literals, 3u);
}

TEST(FactorizerTest, StatsAccumulate) {
  Dictionary dict("hello world hello world");
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  factorizer.Factorize("hello", &factors);
  factorizer.Factorize("world", &factors);
  EXPECT_EQ(factorizer.stats().text_bytes, 10u);
  EXPECT_EQ(factorizer.stats().num_factors, 2u);
  EXPECT_DOUBLE_EQ(factorizer.stats().avg_factor_length(), 5.0);
}

TEST(FactorizerTest, CoverageTracking) {
  Dictionary dict("abcdefgh");
  Factorizer factorizer(&dict, /*track_coverage=*/true);
  std::vector<Factor> factors;
  factorizer.Factorize("abcd", &factors);  // covers dict[0..3]
  EXPECT_DOUBLE_EQ(factorizer.UnusedFraction(), 0.5);
  factorizer.Factorize("efgh", &factors);  // covers the rest
  EXPECT_DOUBLE_EQ(factorizer.UnusedFraction(), 0.0);
}

TEST(FactorizerTest, EmptyDoc) {
  Dictionary dict("abc");
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  factorizer.Factorize("", &factors);
  EXPECT_TRUE(factors.empty());
}

TEST(FactorizerTest, DecodeRejectsOutOfRangeFactor) {
  Dictionary dict("short");
  std::string out;
  EXPECT_EQ(
      Factorizer::Decode({Factor{3, 100}}, dict, &out).code(),
      StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// DictionaryBuilder
// ---------------------------------------------------------------------------

TEST(DictionaryBuilderTest, SampledSizeApproximatelyRequested) {
  Rng rng(23);
  const std::string collection = RandomText(rng, 100000, 26);
  auto dict = DictionaryBuilder::BuildSampled(collection, 10000, 1000);
  EXPECT_GE(dict->size(), 9000u);
  EXPECT_LE(dict->size(), 11000u);
}

TEST(DictionaryBuilderTest, SmallCollectionBecomesWholeDictionary) {
  auto dict = DictionaryBuilder::BuildSampled("tiny", 1000, 100);
  EXPECT_EQ(dict->text(), "tiny");
}

TEST(DictionaryBuilderTest, SamplesAreEvenlySpaced) {
  // Collection of 10 distinct 100-byte runs; a 500-byte dictionary of
  // 100-byte samples must pick 5 distinct evenly spaced runs.
  std::string collection;
  for (int i = 0; i < 10; ++i) {
    collection += std::string(100, static_cast<char>('a' + i));
  }
  auto dict = DictionaryBuilder::BuildSampled(collection, 500, 100);
  ASSERT_EQ(dict->size(), 500u);
  EXPECT_EQ(dict->text().substr(0, 1)[0], 'a');
  // Samples at strides of 2 runs: a, c, e, g, i.
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(dict->text()[s * 100], 'a' + 2 * s) << "sample " << s;
  }
}

TEST(DictionaryBuilderTest, PrefixDictionaryUsesOnlyPrefix) {
  std::string collection = std::string(5000, 'a') + std::string(5000, 'b');
  auto dict =
      DictionaryBuilder::BuildFromPrefix(collection, 0.5, 1000, 100);
  EXPECT_EQ(dict->text().find('b'), std::string::npos);
}

TEST(DictionaryBuilderTest, PrunedDictionaryDropsUnusedRuns) {
  Rng rng(24);
  const std::string collection = RandomText(rng, 50000, 26);
  auto dict = DictionaryBuilder::BuildSampled(collection, 2000, 200);
  Bitmap used(dict->size());
  // Mark only the first half of the dictionary used.
  used.SetRange(0, dict->size() / 2);
  auto pruned = DictionaryBuilder::BuildPruned(collection, *dict, used, 200);
  // The used half survives; freed space is refilled with fresh samples up
  // to at most the original size.
  EXPECT_LE(pruned->size(), dict->size());
  EXPECT_GE(pruned->size(), dict->size() / 2);
  EXPECT_EQ(pruned->text().substr(0, dict->size() / 2),
            dict->text().substr(0, dict->size() / 2));
}

// ---------------------------------------------------------------------------
// FactorCoder
// ---------------------------------------------------------------------------

class FactorCoderTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FactorCoderTest, RoundTripFactors) {
  auto coding = PairCoding::FromName(GetParam());
  ASSERT_TRUE(coding.ok());
  const FactorCoder coder(*coding);
  Rng rng(25);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Factor> factors;
    const size_t n = rng.Uniform(500);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.1)) {
        factors.push_back(Factor{static_cast<uint32_t>(rng.Uniform(256)), 0});
      } else {
        factors.push_back(Factor{static_cast<uint32_t>(rng.Uniform(1 << 20)),
                                 1 + static_cast<uint32_t>(rng.Uniform(100))});
      }
    }
    std::string buf;
    coder.EncodeDoc(factors, &buf);
    std::vector<Factor> decoded;
    size_t consumed = 0;
    ASSERT_TRUE(coder.DecodeFactors(buf, &decoded, &consumed).ok());
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(decoded, factors);
  }
}

TEST_P(FactorCoderTest, DecodeDocMatchesFactorExpansion) {
  auto coding = PairCoding::FromName(GetParam());
  ASSERT_TRUE(coding.ok());
  const FactorCoder coder(*coding);
  Rng rng(26);
  Dictionary dict(RandomText(rng, 2000, 4));
  Factorizer factorizer(&dict);
  const std::string doc = RandomText(rng, 1500, 4);
  std::vector<Factor> factors;
  factorizer.Factorize(doc, &factors);
  std::string buf;
  coder.EncodeDoc(factors, &buf);
  std::string text;
  ASSERT_TRUE(coder.DecodeDoc(buf, dict, &text).ok());
  EXPECT_EQ(text, doc);
}

TEST_P(FactorCoderTest, ConcatenatedDocsDecodeWithConsumed) {
  auto coding = PairCoding::FromName(GetParam());
  ASSERT_TRUE(coding.ok());
  const FactorCoder coder(*coding);
  std::vector<Factor> doc1 = {{5, 3}, {'x', 0}};
  std::vector<Factor> doc2 = {{0, 7}};
  std::string buf;
  coder.EncodeDoc(doc1, &buf);
  const size_t split = buf.size();
  coder.EncodeDoc(doc2, &buf);

  std::vector<Factor> out1;
  size_t consumed = 0;
  ASSERT_TRUE(coder.DecodeFactors(buf, &out1, &consumed).ok());
  EXPECT_EQ(consumed, split);
  EXPECT_EQ(out1, doc1);
  std::vector<Factor> out2;
  ASSERT_TRUE(
      coder.DecodeFactors(std::string_view(buf).substr(split), &out2, nullptr)
          .ok());
  EXPECT_EQ(out2, doc2);
}

TEST_P(FactorCoderTest, EmptyFactorList) {
  auto coding = PairCoding::FromName(GetParam());
  ASSERT_TRUE(coding.ok());
  const FactorCoder coder(*coding);
  std::string buf;
  coder.EncodeDoc({}, &buf);
  std::vector<Factor> out;
  ASSERT_TRUE(coder.DecodeFactors(buf, &out, nullptr).ok());
  EXPECT_TRUE(out.empty());
}

INSTANTIATE_TEST_SUITE_P(AllCodings, FactorCoderTest,
                         ::testing::Values("ZZ", "ZV", "UZ", "UV", "US", "UP",
                                           "PV", "PZ"),
                         [](const auto& info) { return info.param; });

TEST(PairCodingTest, Names) {
  EXPECT_EQ(kZZ.name(), "ZZ");
  EXPECT_EQ(kZV.name(), "ZV");
  EXPECT_EQ(kUZ.name(), "UZ");
  EXPECT_EQ(kUV.name(), "UV");
  EXPECT_FALSE(PairCoding::FromName("XX").ok());
  EXPECT_FALSE(PairCoding::FromName("Z").ok());
}

// ---------------------------------------------------------------------------
// End-to-end compression on a synthetic collection
// ---------------------------------------------------------------------------

TEST(CompressCollectionTest, RoundTripsEveryDocument) {
  CorpusOptions options;
  options.target_bytes = 1 << 20;
  options.seed = 31;
  const Corpus corpus = GenerateCorpus(options);

  RlzOptions rlz_options;
  rlz_options.dict_bytes = 64 << 10;
  rlz_options.sample_bytes = 1024;
  rlz_options.coding = kZV;
  RlzBuildInfo info;
  auto archive = CompressCollection(corpus.collection, rlz_options, &info);

  ASSERT_EQ(archive->num_docs(), corpus.collection.num_docs());
  std::string doc;
  for (size_t i = 0; i < archive->num_docs(); ++i) {
    ASSERT_TRUE(archive->Get(i, &doc, nullptr).ok());
    ASSERT_EQ(doc, corpus.collection.doc(i)) << "doc " << i;
  }
  EXPECT_GT(info.stats.avg_factor_length(), 1.0);
}

TEST(CompressCollectionTest, CompressesWebCorpusWell) {
  CorpusOptions options;
  options.target_bytes = 2 << 20;
  options.seed = 32;
  const Corpus corpus = GenerateCorpus(options);
  RlzOptions rlz_options;
  rlz_options.dict_bytes = 128 << 10;
  auto archive = CompressCollection(corpus.collection, rlz_options);
  // The paper reports 9-14% on web data; our synthetic corpus should land
  // in the same ballpark (well under 35% even at small scale).
  const double ratio = static_cast<double>(archive->stored_bytes()) /
                       corpus.collection.size_bytes();
  EXPECT_LT(ratio, 0.35);
}

TEST(CompressCollectionTest, OutOfRangeGetFails) {
  Collection collection;
  collection.Append("only doc");
  auto archive = CompressCollection(collection, {});
  std::string doc;
  EXPECT_EQ(archive->Get(5, &doc, nullptr).code(), StatusCode::kOutOfRange);
}

TEST(CompressCollectionTest, LargerDictionaryNeverHurtsMuch) {
  CorpusOptions options;
  options.target_bytes = 2 << 20;
  options.seed = 33;
  const Corpus corpus = GenerateCorpus(options);
  RlzOptions small;
  small.dict_bytes = 32 << 10;
  RlzOptions large;
  large.dict_bytes = 256 << 10;
  auto a_small = CompressCollection(corpus.collection, small);
  auto a_large = CompressCollection(corpus.collection, large);
  // Larger dictionaries give at least as good payload compression
  // (Tables 4/8 trend). Compare payload only: the dictionary itself is
  // amortized at real scale but dominates at 2 MB test scale.
  EXPECT_LE(a_large->payload_bytes(), a_small->payload_bytes() * 1.02);
}

TEST(DictionarySaveLoadTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/dict_roundtrip.bin";
  Dictionary dict("some dictionary payload with structure structure");
  ASSERT_TRUE(dict.Save(path).ok());
  auto loaded = Dictionary::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->text(), dict.text());
  // The rebuilt matcher must behave identically.
  EXPECT_EQ((*loaded)->matcher().LongestMatch("structure").len, 9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlz
