// Adversarial inputs for the core pipeline: degenerate dictionaries,
// binary documents, pathological repetition, and full-alphabet coverage.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/rlz.h"
#include "util/random.h"

namespace rlz {
namespace {

std::string AllBytes() {
  std::string s(256, '\0');
  for (int i = 0; i < 256; ++i) s[i] = static_cast<char>(i);
  return s;
}

TEST(AdversarialTest, FullAlphabetDictionaryNeverEmitsLiterals) {
  // If every byte occurs in the dictionary, the factorization contains no
  // literal factors (case 2 of the §3 definition never triggers).
  Dictionary dict(AllBytes());
  Factorizer factorizer(&dict);
  Rng rng(1);
  std::string doc(5000, '\0');
  for (auto& c : doc) c = static_cast<char>(rng.Uniform(256));
  std::vector<Factor> factors;
  factorizer.Factorize(doc, &factors);
  EXPECT_EQ(factorizer.stats().num_literals, 0u);
  std::string decoded;
  ASSERT_TRUE(Factorizer::Decode(factors, dict, &decoded).ok());
  EXPECT_EQ(decoded, doc);
}

TEST(AdversarialTest, SingleByteDictionary) {
  Dictionary dict("a");
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  factorizer.Factorize("aaabaa", &factors);
  std::string decoded;
  ASSERT_TRUE(Factorizer::Decode(factors, dict, &decoded).ok());
  EXPECT_EQ(decoded, "aaabaa");
  // "aaa" cannot be one factor (dict has one 'a'), so: a,a,a,'b',a,a.
  EXPECT_EQ(factors.size(), 6u);
}

TEST(AdversarialTest, PeriodicDictionaryLongMatches) {
  std::string period;
  for (int i = 0; i < 1000; ++i) period += "ab";
  Dictionary dict(period);
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  std::string doc;
  for (int i = 0; i < 900; ++i) doc += "ab";
  factorizer.Factorize(doc, &factors);
  ASSERT_EQ(factors.size(), 1u);
  EXPECT_EQ(factors[0].len, doc.size());
}

TEST(AdversarialTest, DocIsDictionaryReversed) {
  Rng rng(2);
  std::string text(2000, '\0');
  for (auto& c : text) c = static_cast<char>('a' + rng.Uniform(26));
  Dictionary dict(text);
  Factorizer factorizer(&dict);
  std::string reversed(text.rbegin(), text.rend());
  std::vector<Factor> factors;
  factorizer.Factorize(reversed, &factors);
  std::string decoded;
  ASSERT_TRUE(Factorizer::Decode(factors, dict, &decoded).ok());
  EXPECT_EQ(decoded, reversed);
}

TEST(AdversarialTest, BinaryDocumentsThroughFullPipeline) {
  Rng rng(3);
  Collection c;
  for (int d = 0; d < 20; ++d) {
    std::string doc(500 + rng.Uniform(2000), '\0');
    for (auto& ch : doc) ch = static_cast<char>(rng.Uniform(256));
    c.Append(doc);
  }
  for (const char* coding : {"ZZ", "ZV", "UZ", "UV"}) {
    RlzOptions options;
    options.dict_bytes = 4 << 10;
    options.sample_bytes = 256;
    options.coding = *PairCoding::FromName(coding);
    auto archive = CompressCollection(c, options);
    std::string doc;
    for (size_t i = 0; i < c.num_docs(); ++i) {
      ASSERT_TRUE(archive->Get(i, &doc).ok()) << coding << " doc " << i;
      ASSERT_EQ(doc, c.doc(i)) << coding << " doc " << i;
    }
  }
}

TEST(AdversarialTest, HugeSingleDocument) {
  // One 2 MB document, tiny dictionary: stresses long factor streams and
  // 32-bit length handling.
  Rng rng(4);
  std::string doc;
  std::string unit = "segment ";
  for (int i = 0; i < 40; ++i) {
    unit.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  while (doc.size() < (2u << 20)) {
    doc += unit;
    if (rng.Bernoulli(0.05)) doc += std::to_string(rng.Next());
  }
  Collection c;
  c.Append(doc);
  RlzOptions options;
  options.dict_bytes = 8 << 10;
  auto archive = CompressCollection(c, options);
  std::string out;
  ASSERT_TRUE(archive->Get(0, &out).ok());
  EXPECT_EQ(out, doc);
  EXPECT_LT(archive->payload_bytes(), doc.size() / 4);
}

TEST(AdversarialTest, ManyTinyDocuments) {
  Collection c;
  for (int i = 0; i < 3000; ++i) {
    c.Append(i % 3 == 0 ? "" : "d" + std::to_string(i % 10));
  }
  RlzOptions options;
  options.dict_bytes = 1 << 10;
  options.sample_bytes = 64;
  auto archive = CompressCollection(c, options);
  std::string doc;
  for (size_t i = 0; i < c.num_docs(); i += 97) {
    ASSERT_TRUE(archive->Get(i, &doc).ok());
    ASSERT_EQ(doc, c.doc(i));
  }
}

TEST(AdversarialTest, DictionaryLargerThanCollection) {
  Collection c;
  c.Append("small collection");
  RlzOptions options;
  options.dict_bytes = 1 << 20;  // bigger than the data
  auto archive = CompressCollection(c, options);
  // Whole collection becomes the dictionary; every doc is one factor.
  EXPECT_EQ(archive->dictionary().size(), c.size_bytes());
  std::string doc;
  ASSERT_TRUE(archive->Get(0, &doc).ok());
  EXPECT_EQ(doc, "small collection");
}

}  // namespace
}  // namespace rlz
