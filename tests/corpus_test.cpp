#include <algorithm>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "corpus/collection.h"
#include "corpus/generator.h"

namespace rlz {
namespace {

TEST(CollectionTest, AppendAndAccess) {
  Collection c;
  c.Append("first doc");
  c.Append("second");
  c.Append("");
  c.Append("fourth document here");
  ASSERT_EQ(c.num_docs(), 4u);
  EXPECT_EQ(c.doc(0), "first doc");
  EXPECT_EQ(c.doc(1), "second");
  EXPECT_EQ(c.doc(2), "");
  EXPECT_EQ(c.doc(3), "fourth document here");
  EXPECT_EQ(c.size_bytes(), 9u + 6u + 0u + 20u);
  EXPECT_EQ(c.doc_offset(1), 9u);
  EXPECT_EQ(c.doc_size(3), 20u);
}

TEST(CollectionTest, DataIsConcatenation) {
  Collection c;
  c.Append("ab");
  c.Append("cd");
  EXPECT_EQ(c.data(), "abcd");
}

TEST(CollectionTest, SaveLoadRoundTrip) {
  Collection c;
  c.Append("doc one with some text");
  c.Append(std::string(1000, 'x'));
  c.Append("tail");
  const std::string path = ::testing::TempDir() + "/collection_roundtrip.bin";
  ASSERT_TRUE(c.Save(path).ok());
  auto loaded = Collection::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_docs(), c.num_docs());
  for (size_t i = 0; i < c.num_docs(); ++i) {
    EXPECT_EQ(loaded->doc(i), c.doc(i));
  }
  std::remove(path.c_str());
}

TEST(CollectionTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/collection_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a collection", f);
  fclose(f);
  EXPECT_FALSE(Collection::Load(path).ok());
  std::remove(path.c_str());
}

CorpusOptions SmallWebOptions() {
  CorpusOptions options;
  options.target_bytes = 2 << 20;
  options.style = CorpusStyle::kWeb;
  options.seed = 7;
  return options;
}

TEST(GeneratorTest, Deterministic) {
  const Corpus a = GenerateCorpus(SmallWebOptions());
  const Corpus b = GenerateCorpus(SmallWebOptions());
  ASSERT_EQ(a.collection.num_docs(), b.collection.num_docs());
  EXPECT_EQ(a.collection.data(), b.collection.data());
  EXPECT_EQ(a.urls, b.urls);
}

TEST(GeneratorTest, SeedChangesOutput) {
  CorpusOptions o1 = SmallWebOptions();
  CorpusOptions o2 = SmallWebOptions();
  o2.seed = 8;
  EXPECT_NE(GenerateCorpus(o1).collection.data(),
            GenerateCorpus(o2).collection.data());
}

TEST(GeneratorTest, HitsTargetSizeApproximately) {
  const Corpus corpus = GenerateCorpus(SmallWebOptions());
  const double actual = static_cast<double>(corpus.collection.size_bytes());
  const double target = 2 << 20;
  EXPECT_GT(actual, 0.5 * target);
  EXPECT_LT(actual, 2.0 * target);
}

TEST(GeneratorTest, AverageDocSizeNearStyleDefault) {
  const Corpus corpus = GenerateCorpus(SmallWebOptions());
  const double avg = corpus.collection.avg_doc_bytes();
  EXPECT_GT(avg, 9 * 1024);   // style default is 18 KB
  EXPECT_LT(avg, 36 * 1024);
}

TEST(GeneratorTest, UrlsParallelToDocs) {
  const Corpus corpus = GenerateCorpus(SmallWebOptions());
  ASSERT_EQ(corpus.urls.size(), corpus.collection.num_docs());
  for (const std::string& url : corpus.urls) {
    EXPECT_EQ(url.rfind("http://", 0), 0u) << url;
  }
}

TEST(GeneratorTest, DocsLookLikeHtml) {
  const Corpus corpus = GenerateCorpus(SmallWebOptions());
  for (size_t i = 0; i < std::min<size_t>(10, corpus.collection.num_docs());
       ++i) {
    const std::string_view doc = corpus.collection.doc(i);
    EXPECT_NE(doc.find("<html>"), std::string_view::npos);
    EXPECT_NE(doc.find("</html>"), std::string_view::npos);
  }
}

TEST(GeneratorTest, GlobalRedundancyExists) {
  // Two documents from different hosts should share boilerplate fragments:
  // find a 64-byte chunk of doc 0's header in some other host's doc.
  const Corpus corpus = GenerateCorpus(SmallWebOptions());
  ASSERT_GT(corpus.collection.num_docs(), 20u);
  // Find a document with an embedded <style> fragment to use as the probe.
  std::string_view probe;
  size_t src = 0;
  for (size_t i = 0; i < corpus.collection.num_docs(); ++i) {
    const std::string_view doc = corpus.collection.doc(i);
    const size_t p = doc.find("<style");
    if (p != std::string_view::npos && p + 64 <= doc.size()) {
      probe = doc.substr(p, 64);
      src = i;
      break;
    }
  }
  ASSERT_FALSE(probe.empty());
  auto host_of = [](const std::string& url) {
    return url.substr(0, url.find('/', 7));
  };
  bool found = false;
  for (size_t i = 0; i < corpus.collection.num_docs() && !found; ++i) {
    if (host_of(corpus.urls[i]) == host_of(corpus.urls[src])) continue;
    found = corpus.collection.doc(i).find(probe) != std::string_view::npos;
  }
  EXPECT_TRUE(found);
}

TEST(GeneratorTest, UrlOrderIsSorted) {
  const Corpus corpus = GenerateCorpus(SmallWebOptions(), DocOrder::kUrl);
  EXPECT_TRUE(std::is_sorted(corpus.urls.begin(), corpus.urls.end()));
}

TEST(GeneratorTest, UrlSortPreservesContent) {
  const Corpus crawl = GenerateCorpus(SmallWebOptions());
  const Corpus sorted = SortByUrl(crawl);
  ASSERT_EQ(sorted.collection.num_docs(), crawl.collection.num_docs());
  EXPECT_EQ(sorted.collection.size_bytes(), crawl.collection.size_bytes());
  // Multiset of documents must be identical.
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (size_t i = 0; i < crawl.collection.num_docs(); ++i) {
    a.emplace_back(crawl.collection.doc(i));
    b.emplace_back(sorted.collection.doc(i));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(GeneratorTest, WikiStyleHasLargerDocs) {
  CorpusOptions web = SmallWebOptions();
  CorpusOptions wiki = SmallWebOptions();
  wiki.style = CorpusStyle::kWiki;
  wiki.target_bytes = 4 << 20;
  const double web_avg = GenerateCorpus(web).collection.avg_doc_bytes();
  const double wiki_avg = GenerateCorpus(wiki).collection.avg_doc_bytes();
  EXPECT_GT(wiki_avg, 1.5 * web_avg);
}

TEST(GeneratorTest, MirrorsShareContentUnderDifferentUrls) {
  CorpusOptions options = SmallWebOptions();
  options.target_bytes = 4 << 20;
  options.mirror_fraction = 0.5;  // force mirrors to exist
  const Corpus corpus = GenerateCorpus(options);
  // Look for two documents with identical bodies but different URLs.
  bool found = false;
  for (size_t i = 0; i < corpus.collection.num_docs() && !found; ++i) {
    for (size_t j = i + 1; j < corpus.collection.num_docs() && !found; ++j) {
      if (corpus.urls[i] != corpus.urls[j] &&
          corpus.collection.doc_size(i) == corpus.collection.doc_size(j) &&
          corpus.collection.doc(i) == corpus.collection.doc(j)) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rlz
