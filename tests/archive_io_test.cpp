// On-disk archive format: save/load round trips, corruption injection,
// and the unified container-envelope suite (every Archive format plus the
// ShardedStore manifest) — ctest label `format`.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codecs/int_codecs.h"
#include "core/rlz.h"
#include "corpus/generator.h"
#include "io/file.h"
#include "semistatic/semistatic_archive.h"
#include "serve/sharded_store.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "store/format.h"
#include "store/open_archive.h"
#include "util/crc32.h"
#include "util/random.h"

namespace rlz {
namespace {

class ArchiveIoTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 1 << 20;
    options.seed = 91;
    collection_ = new Collection(GenerateCorpus(options).collection);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  std::string TempPath(const std::string& tag) const {
    return ::testing::TempDir() + "/rlza_" + tag + "_" + GetParam() + ".bin";
  }

  std::unique_ptr<RlzArchive> BuildArchive() const {
    RlzOptions options;
    options.dict_bytes = 32 << 10;
    options.coding = *PairCoding::FromName(GetParam());
    return CompressCollection(*collection_, options);
  }

  static const Collection* collection_;
};

const Collection* ArchiveIoTest::collection_ = nullptr;

TEST_P(ArchiveIoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());

  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_docs(), archive->num_docs());
  EXPECT_EQ((*loaded)->coder().coding().name(), GetParam());
  EXPECT_EQ((*loaded)->dictionary().text(), archive->dictionary().text());
  EXPECT_EQ((*loaded)->stored_bytes(), archive->stored_bytes());

  std::string a;
  std::string b;
  for (size_t i = 0; i < archive->num_docs(); i += 3) {
    ASSERT_TRUE(archive->Get(i, &a).ok());
    ASSERT_TRUE((*loaded)->Get(i, &b).ok());
    ASSERT_EQ(a, b) << "doc " << i;
    ASSERT_EQ(a, collection_->doc(i)) << "doc " << i;
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, AnySingleByteFlipIsDetected) {
  const std::string path = TempPath("flip");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  Rng rng(17);
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = *raw;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    if (corrupt == *raw) continue;  // xor produced the same byte
    ASSERT_TRUE(WriteFile(path, corrupt).ok());
    auto loaded = RlzArchive::Load(path);
    EXPECT_FALSE(loaded.ok()) << "flip trial " << trial << " undetected";
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, TruncationIsDetected) {
  const std::string path = TempPath("trunc");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    const size_t keep = static_cast<size_t>(raw->size() * frac);
    ASSERT_TRUE(WriteFile(path, std::string_view(*raw).substr(0, keep)).ok());
    EXPECT_FALSE(RlzArchive::Load(path).ok()) << "kept " << frac;
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, EmptyAndGarbageFiles) {
  const std::string path = TempPath("garbage");
  ASSERT_TRUE(WriteFile(path, "").ok());
  EXPECT_FALSE(RlzArchive::Load(path).ok());
  ASSERT_TRUE(WriteFile(path, "RLZAnot really an archive at all").ok());
  EXPECT_FALSE(RlzArchive::Load(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(RlzArchive::Load(path).status().code(), StatusCode::kIOError);
}

INSTANTIATE_TEST_SUITE_P(Codings, ArchiveIoTest,
                         ::testing::Values("ZZ", "ZV", "UZ", "UV"),
                         [](const auto& info) { return info.param; });

TEST(ArchiveIoEdgeTest, EmptyCollection) {
  Collection empty;
  auto archive = CompressCollection(empty, {});
  const std::string path = ::testing::TempDir() + "/rlza_empty.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_docs(), 0u);
  std::remove(path.c_str());
}

// The v1 format stores the dictionary size, document count, and per-doc
// payload sizes as 32-bit vbytes; Save must refuse anything larger instead
// of truncating it under a valid CRC. The guard is tested directly so no
// 4 GiB allocations are needed.
TEST(ArchiveFormatLimitsTest, AcceptsSizesUpToTheLimit) {
  EXPECT_TRUE(RlzArchive::CheckFormatLimits(0, 0, 0).ok());
  EXPECT_TRUE(RlzArchive::CheckFormatLimits(RlzArchive::kMaxFormatValue,
                                            RlzArchive::kMaxFormatValue,
                                            RlzArchive::kMaxFormatValue)
                  .ok());
}

TEST(ArchiveFormatLimitsTest, RejectsOversizedDictionary) {
  const Status s =
      RlzArchive::CheckFormatLimits(RlzArchive::kMaxFormatValue + 1, 0, 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ArchiveFormatLimitsTest, RejectsOversizedDocCount) {
  const Status s =
      RlzArchive::CheckFormatLimits(0, RlzArchive::kMaxFormatValue + 1, 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ArchiveFormatLimitsTest, RejectsOversizedEncodedDoc) {
  const Status s =
      RlzArchive::CheckFormatLimits(0, 0, RlzArchive::kMaxFormatValue + 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

// Wraps `header_and_payload` in the v1 container: magic, version, a valid
// ZV coding pair, and a correct CRC trailer — so Load gets past the
// checksum and must reject the malformed header on its own.
std::string CraftArchive(const std::string& header_and_payload) {
  std::string out;
  out.append("RLZA", 4);
  out.push_back(1);  // kArchiveVersion
  out.push_back(1);  // PosCoding::kZlib  ("Z")
  out.push_back(0);  // LenCoding::kVByte ("V")
  out.append(header_and_payload);
  const uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return out;
}

TEST(ArchiveIoEdgeTest, TruncationAtEveryPrefixIsDetected) {
  Collection c;
  c.Append("the quick brown fox jumps over the lazy dog");
  c.Append("the quick brown fox naps under the shady log");
  c.Append("an entirely different document about archives");
  RlzOptions options;
  options.dict_bytes = 256;
  auto archive = CompressCollection(c, options);

  const std::string path = ::testing::TempDir() + "/rlza_every_prefix.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  for (size_t keep = 0; keep < raw->size(); ++keep) {
    ASSERT_TRUE(WriteFile(path, std::string_view(*raw).substr(0, keep)).ok());
    auto loaded = RlzArchive::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes undetected";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "prefix of " << keep << " bytes: " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, SizeTableRunningIntoTrailerIsCorruption) {
  // One document whose size vbyte never terminates inside the body: the
  // two continuation bytes make the read spill into the CRC trailer (the
  // trailer's third byte, 0x4a, terminates it past payload_end), so the
  // header must be rejected even though the checksum is valid.
  std::string body;
  VByteCodec::Put(0, &body);  // dictionary: empty
  VByteCodec::Put(1, &body);  // num_docs
  body.push_back(static_cast<char>(0x80));  // size[0]: unterminated vbyte
  body.push_back(static_cast<char>(0x80));
  const std::string path = ::testing::TempDir() + "/rlza_short_table.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("truncated size table"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, HugeDocCountIsRejectedBeforeAllocating) {
  // A crafted count must be rejected by comparing against the bytes left in
  // the file, not by attempting a ~16 GiB size-table allocation.
  std::string body;
  VByteCodec::Put(0, &body);           // dictionary: empty
  VByteCodec::Put(0xFFFFFFFFu, &body);  // num_docs
  const std::string path = ::testing::TempDir() + "/rlza_huge_count.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, PayloadSizeMismatchIsCorruption) {
  // Size table promises 5 payload bytes but only 2 are present.
  std::string body;
  VByteCodec::Put(0, &body);  // dictionary: empty
  VByteCodec::Put(1, &body);  // num_docs
  VByteCodec::Put(5, &body);  // size[0]
  body.append("ab");
  const std::string path = ::testing::TempDir() + "/rlza_payload_short.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, DictionaryRunningIntoTrailerIsCorruption) {
  // Dictionary size field claims more bytes than exist before the trailer.
  std::string body;
  VByteCodec::Put(64, &body);  // dictionary size, but only 2 bytes follow
  body.append("ab");
  const std::string path = ::testing::TempDir() + "/rlza_dict_short.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, CollectionWithEmptyDocs) {
  Collection c;
  c.Append("");
  c.Append("content");
  c.Append("");
  auto archive = CompressCollection(c, {});
  const std::string path = ::testing::TempDir() + "/rlza_emptydocs.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok());
  std::string doc;
  ASSERT_TRUE((*loaded)->Get(0, &doc).ok());
  EXPECT_EQ(doc, "");
  ASSERT_TRUE((*loaded)->Get(1, &doc).ok());
  EXPECT_EQ(doc, "content");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Unified container suite: every archive format (and the sharded manifest)
// must round-trip byte-identically through Save -> OpenArchive, and every
// corruption/truncation/version-mismatch path must return Corruption or
// InvalidArgument — never crash.

struct FormatCase {
  const char* tag;            // test name suffix
  const char* format_id;      // envelope format id Save must record
  std::function<std::unique_ptr<Archive>(const Collection&)> build;
};

std::vector<FormatCase> AllFormats() {
  return {
      {"Rlz", RlzArchive::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         RlzOptions options;
         options.dict_bytes = 8 << 10;
         return CompressCollection(c, options);
       }},
      {"Ascii", AsciiArchive::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         return std::make_unique<AsciiArchive>(c);
       }},
      {"BlockedGzipx", BlockedArchive::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         return std::make_unique<BlockedArchive>(
             c, GetCompressor(CompressorId::kGzipx), 16 << 10);
       }},
      {"BlockedLzmax", BlockedArchive::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         return std::make_unique<BlockedArchive>(
             c, GetCompressor(CompressorId::kLzmax), 16 << 10);
       }},
      {"SemistaticEtdc", SemiStaticArchive::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         return SemiStaticArchive::Build(c, SemiStaticScheme::kEtdc);
       }},
      {"SemistaticPh", SemiStaticArchive::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         return SemiStaticArchive::Build(c, SemiStaticScheme::kPlainHuffman);
       }},
      {"Sharded", ShardedStore::kFormatId,
       [](const Collection& c) -> std::unique_ptr<Archive> {
         ShardedStoreOptions options;
         options.num_shards = 3;
         options.dict_bytes = 8 << 10;
         return ShardedStore::Build(c, options);
       }},
  };
}

class UnifiedFormatTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 256 << 10;
    options.seed = 17;
    collection_ = new Collection(GenerateCorpus(options).collection);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  const FormatCase& Case() const {
    static const std::vector<FormatCase>* cases =
        new std::vector<FormatCase>(AllFormats());
    return (*cases)[GetParam()];
  }

  std::string TempPath(const std::string& tag) const {
    return ::testing::TempDir() + "/fmt_" + tag + "_" + Case().tag + ".bin";
  }

  // A three-document collection small enough that truncation at *every*
  // prefix stays cheap even for the compressed formats.
  static Collection TinyCollection() {
    Collection c;
    c.Append("the quick brown fox jumps over the lazy dog");
    c.Append("the quick brown fox naps under the shady log");
    c.Append("an entirely different document about container formats");
    return c;
  }

  static void ExpectAllDocsEqual(const Collection& collection,
                                 const Archive& archive, size_t step = 1) {
    ASSERT_EQ(archive.num_docs(), collection.num_docs());
    std::string doc;
    for (size_t i = 0; i < collection.num_docs(); i += step) {
      ASSERT_TRUE(archive.Get(i, &doc).ok()) << "doc " << i;
      ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
    }
  }

  static const Collection* collection_;
};

const Collection* UnifiedFormatTest::collection_ = nullptr;

TEST_P(UnifiedFormatTest, RoundTripsThroughOpenArchive) {
  const std::string path = TempPath("roundtrip");
  auto archive = Case().build(*collection_);
  ASSERT_TRUE(archive->Save(path).ok());

  auto info = SniffArchiveFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_id, Case().format_id);

  auto loaded = OpenArchive(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), archive->name());
  EXPECT_EQ((*loaded)->stored_bytes(), archive->stored_bytes());
  ExpectAllDocsEqual(*collection_, **loaded, /*step=*/3);
  std::remove(path.c_str());
}

TEST_P(UnifiedFormatTest, EmptyCollectionRoundTrips) {
  const std::string path = TempPath("empty");
  Collection empty;
  auto archive = Case().build(empty);
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = OpenArchive(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_docs(), 0u);
  std::remove(path.c_str());
}

TEST_P(UnifiedFormatTest, TruncationAtEveryPrefixIsDetected) {
  const std::string path = TempPath("prefix");
  const Collection tiny = TinyCollection();
  auto archive = Case().build(tiny);
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  for (size_t keep = 0; keep < raw->size(); ++keep) {
    ASSERT_TRUE(WriteFile(path, std::string_view(*raw).substr(0, keep)).ok());
    auto loaded = OpenArchive(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes undetected";
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kInvalidArgument)
        << "prefix of " << keep
        << " bytes: " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_P(UnifiedFormatTest, AnySingleByteFlipIsDetected) {
  const std::string path = TempPath("flip");
  const Collection tiny = TinyCollection();
  auto archive = Case().build(tiny);
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  Rng rng(23);
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = *raw;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    if (corrupt == *raw) continue;  // xor produced the same byte
    ASSERT_TRUE(WriteFile(path, corrupt).ok());
    auto loaded = OpenArchive(path);
    EXPECT_FALSE(loaded.ok()) << "flip trial " << trial << " undetected";
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Formats, UnifiedFormatTest, ::testing::Range<size_t>(0, 7),
    [](const auto& info) { return AllFormats()[info.param].tag; });

// ---------------------------------------------------------------------------
// Envelope-level gates: wrong magic, wrong format id, future versions.

TEST(ContainerEnvelopeTest, WrongMagicIsCorruption) {
  const std::string path = ::testing::TempDir() + "/fmt_badmagic.bin";
  ASSERT_TRUE(WriteFile(path, "ZLRAxxxxxxxxxxxxxxxx").ok());
  auto loaded = OpenArchive(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ContainerEnvelopeTest, FutureContainerLayoutIsInvalidArgument) {
  // Magic plus a layout byte from the future: rejected as "written by a
  // future version", not corruption.
  const std::string path = ::testing::TempDir() + "/fmt_futurelayout.bin";
  std::string raw = "RLZA";
  raw.push_back(static_cast<char>(kContainerLayoutVersion + 1));
  raw += "rest of some future container";
  ASSERT_TRUE(WriteFile(path, raw).ok());
  auto loaded = OpenArchive(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ContainerEnvelopeTest, UnknownFormatIdIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/fmt_unknownid.bin";
  EnvelopeWriter writer("no-such-format", 1);
  writer.PutBytes("whatever");
  ASSERT_TRUE(std::move(writer).WriteTo(path).ok());
  auto loaded = OpenArchive(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ContainerEnvelopeTest, FutureFormatVersionIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/fmt_futurever.bin";
  EnvelopeWriter writer(RlzArchive::kFormatId,
                        RlzArchive::kFormatVersion + 7);
  writer.PutBytes("body from the future");
  ASSERT_TRUE(std::move(writer).WriteTo(path).ok());
  auto loaded = OpenArchive(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ContainerEnvelopeTest, WrongFormatIdViaTypedLoaderIsInvalidArgument) {
  // A valid ascii container refused by the rlz and blocked typed loaders:
  // the envelope parses fine, the format id does not match.
  Collection c;
  c.Append("one doc");
  const std::string path = ::testing::TempDir() + "/fmt_wrongtype.bin";
  ASSERT_TRUE(AsciiArchive(c).Save(path).ok());
  EXPECT_EQ(RlzArchive::Load(path).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BlockedArchive::Load(path).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedStore::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  // The format-agnostic path, by contrast, dispatches on the id and loads.
  auto open = OpenArchive(path);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ((*open)->num_docs(), 1u);
  std::remove(path.c_str());
}

TEST(ContainerEnvelopeTest, TrailingJunkIsCorruption) {
  Collection c;
  c.Append("one doc");
  const std::string path = ::testing::TempDir() + "/fmt_trailing.bin";
  ASSERT_TRUE(AsciiArchive(c).Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(WriteFile(path, *raw + "junk").ok());
  auto loaded = OpenArchive(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ContainerEnvelopeTest, OverlongVarintIsCorruption) {
  // 2^64 encoded in ten varint bytes: the 10th byte carries payload bits
  // past bit 63, so the value does not fit — it must be rejected, not
  // silently truncated to 0.
  const std::string overlong("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x02", 10);
  EnvelopeReader reader(overlong, "overlong varint");
  uint64_t value = 0;
  EXPECT_EQ(reader.ReadVarint64(&value).code(), StatusCode::kCorruption);
  // The largest encodable value (2^64-1: nine 0xFF then 0x01) still decodes.
  const std::string max_value("\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x01", 10);
  EnvelopeReader max_reader(max_value, "max varint");
  ASSERT_TRUE(max_reader.ReadVarint64(&value).ok());
  EXPECT_EQ(value, 0xFFFFFFFFFFFFFFFFull);
}

TEST(ContainerEnvelopeTest, OverlongVarintFieldIsCorruption) {
  // A CRC-valid ascii container whose document count is the overlong
  // encoding of 2^64. Without the high-bit check this decodes as count 0
  // and the file "loads" as an empty archive; it must be Corruption.
  const std::string path = ::testing::TempDir() + "/fmt_overlongfield.bin";
  EnvelopeWriter writer(AsciiArchive::kFormatId, AsciiArchive::kFormatVersion);
  writer.PutBytes(std::string("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x02", 10));
  ASSERT_TRUE(std::move(writer).WriteTo(path).ok());
  auto loaded = OpenArchive(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Legacy read-compat and the serving-only (no suffix array) open path.

TEST(LegacyCompatTest, LegacyV1RlzFileStillLoads) {
  CorpusOptions options;
  options.target_bytes = 64 << 10;
  options.seed = 29;
  const Collection collection = GenerateCorpus(options).collection;
  RlzOptions rlz_options;
  rlz_options.dict_bytes = 8 << 10;
  auto archive = CompressCollection(collection, rlz_options);

  const std::string path = ::testing::TempDir() + "/fmt_legacy_v1.bin";
  ASSERT_TRUE(archive->SaveLegacyV1(path).ok());

  auto info = SniffArchiveFile(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_id, "rlz");
  EXPECT_EQ(info->version, 1u);

  // Both the typed loader and the registry open the pre-envelope layout.
  auto typed = RlzArchive::Load(path);
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  auto open = OpenArchive(path);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::string a;
  std::string b;
  for (size_t i = 0; i < collection.num_docs(); i += 5) {
    ASSERT_TRUE((*typed)->Get(i, &a).ok());
    ASSERT_TRUE((*open)->Get(i, &b).ok());
    ASSERT_EQ(a, collection.doc(i));
    ASSERT_EQ(b, collection.doc(i));
  }
  std::remove(path.c_str());
}

TEST(ServingOnlyOpenTest, GetWorksWithoutSuffixArray) {
  CorpusOptions options;
  options.target_bytes = 64 << 10;
  options.seed = 31;
  const Collection collection = GenerateCorpus(options).collection;
  RlzOptions rlz_options;
  rlz_options.dict_bytes = 8 << 10;
  auto archive = CompressCollection(collection, rlz_options);
  const std::string path = ::testing::TempDir() + "/fmt_nosa.bin";
  ASSERT_TRUE(archive->Save(path).ok());

  OpenOptions open_options;
  open_options.build_suffix_array = false;
  auto loaded = RlzArchive::Load(path, open_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The serving-only open really skipped the suffix array...
  EXPECT_FALSE((*loaded)->dictionary().has_matcher());
  // ...and decoding is untouched: every document and range byte-matches.
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE((*loaded)->Get(i, &doc).ok()) << "doc " << i;
    ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
  }
  std::string window;
  ASSERT_TRUE((*loaded)->GetRange(0, 5, 20, &window).ok());
  EXPECT_EQ(window, collection.doc(0).substr(5, 20));

  // The default open still builds the matcher (the factorization path).
  auto with_sa = RlzArchive::Load(path);
  ASSERT_TRUE(with_sa.ok());
  EXPECT_TRUE((*with_sa)->dictionary().has_matcher());
  std::remove(path.c_str());
}

TEST(ShardedStorePersistenceTest, RoundTripsAndServesWithoutSuffixArrays) {
  CorpusOptions options;
  options.target_bytes = 128 << 10;
  options.seed = 37;
  const Collection collection = GenerateCorpus(options).collection;
  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = 16 << 10;
  auto store = ShardedStore::Build(collection, store_options);

  const std::string path = ::testing::TempDir() + "/fmt_store.sharded";
  ASSERT_TRUE(store->Save(path).ok());

  OpenOptions open_options;
  open_options.build_suffix_array = false;
  auto reopened = ShardedStore::Open(path, open_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), store->num_shards());
  EXPECT_EQ((*reopened)->num_docs(), collection.num_docs());
  for (int s = 0; s < (*reopened)->num_shards(); ++s) {
    EXPECT_FALSE((*reopened)->shard(s).dictionary().has_matcher());
    EXPECT_EQ((*reopened)->starts(s), store->starts(s));
  }
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); i += 7) {
    ASSERT_TRUE((*reopened)->Get(i, &doc).ok()) << "doc " << i;
    ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
  }
  std::string window;
  ASSERT_TRUE((*reopened)->GetRange(1, 3, 25, &window).ok());
  EXPECT_EQ(window, collection.doc(1).substr(3, 25));

  for (int s = 0; s < store->num_shards(); ++s) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".shard%04d", s);
    std::remove((path + suffix).c_str());
  }
  std::remove(path.c_str());
}

TEST(ShardedStorePersistenceTest, MissingShardFileFailsToOpen) {
  Collection collection;
  for (int i = 0; i < 12; ++i) {
    collection.Append("document number " + std::to_string(i) +
                      " with a little shared text");
  }
  ShardedStoreOptions store_options;
  store_options.num_shards = 3;
  store_options.dict_bytes = 1 << 10;
  auto store = ShardedStore::Build(collection, store_options);

  const std::string path = ::testing::TempDir() + "/fmt_missing.sharded";
  ASSERT_TRUE(store->Save(path).ok());
  ASSERT_EQ(std::remove((path + ".shard0001").c_str()), 0);

  auto reopened = ShardedStore::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIOError)
      << reopened.status().ToString();

  std::remove((path + ".shard0000").c_str());
  std::remove((path + ".shard0002").c_str());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Collection and Dictionary on the shared envelope (satellite: one
// CRC/bounds-check implementation, read-compat for pre-envelope files).

TEST(CollectionPersistenceTest, LegacyRco1FileStillLoads) {
  // Hand-craft the pre-envelope layout: "RCO1", vbyte count, vbyte sizes,
  // raw data — what every collection file on disk looked like before.
  std::string raw = "RCO1";
  VByteCodec::Put(2, &raw);
  VByteCodec::Put(5, &raw);
  VByteCodec::Put(3, &raw);
  raw += "helloabc";
  const std::string path = ::testing::TempDir() + "/fmt_legacy.rcol";
  ASSERT_TRUE(WriteFile(path, raw).ok());
  auto loaded = Collection::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_docs(), 2u);
  EXPECT_EQ(loaded->doc(0), "hello");
  EXPECT_EQ(loaded->doc(1), "abc");
  std::remove(path.c_str());
}

TEST(CollectionPersistenceTest, EnvelopeSaveIsCrcProtected) {
  Collection c;
  c.Append("some document text");
  c.Append("another document");
  const std::string path = ::testing::TempDir() + "/fmt_col_crc.rcol";
  ASSERT_TRUE(c.Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());
  // The new writer emits the shared envelope...
  auto info = SniffArchiveFile(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_id, "collection");
  // ...so a flipped payload byte is now detected (the legacy layout had
  // no checksum at all).
  std::string corrupt = *raw;
  corrupt[corrupt.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteFile(path, corrupt).ok());
  EXPECT_FALSE(Collection::Load(path).ok());
  std::remove(path.c_str());
}

TEST(DictionaryPersistenceTest, EnvelopeAndLegacyBothLoad) {
  const std::string path = ::testing::TempDir() + "/fmt_dict.bin";
  Dictionary dict("structure structure structure text");
  ASSERT_TRUE(dict.Save(path).ok());
  auto loaded = Dictionary::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->text(), dict.text());
  EXPECT_TRUE((*loaded)->has_matcher());

  // Serving-only load: text intact, no suffix array built.
  auto serving = Dictionary::Load(path, /*build_suffix_array=*/false);
  ASSERT_TRUE(serving.ok());
  EXPECT_EQ((*serving)->text(), dict.text());
  EXPECT_FALSE((*serving)->has_matcher());

  // A pre-envelope dictionary is bare text; it must keep loading as-is.
  ASSERT_TRUE(WriteFile(path, "legacy bare dictionary bytes").ok());
  auto legacy = Dictionary::Load(path);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ((*legacy)->text(), "legacy bare dictionary bytes");

  // A *damaged* envelope must surface as an error, not be misread as a
  // legacy bare-text dictionary.
  ASSERT_TRUE(dict.Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());
  std::string corrupt = *raw;
  corrupt[corrupt.size() - 2] ^= 0x01;  // inside the CRC trailer
  ASSERT_TRUE(WriteFile(path, corrupt).ok());
  EXPECT_FALSE(Dictionary::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlz
