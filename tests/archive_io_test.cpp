// On-disk archive format: save/load round trips and corruption injection.

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "codecs/int_codecs.h"
#include "core/rlz.h"
#include "corpus/generator.h"
#include "io/file.h"
#include "util/crc32.h"
#include "util/random.h"

namespace rlz {
namespace {

class ArchiveIoTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 1 << 20;
    options.seed = 91;
    collection_ = new Collection(GenerateCorpus(options).collection);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  std::string TempPath(const std::string& tag) const {
    return ::testing::TempDir() + "/rlza_" + tag + "_" + GetParam() + ".bin";
  }

  std::unique_ptr<RlzArchive> BuildArchive() const {
    RlzOptions options;
    options.dict_bytes = 32 << 10;
    options.coding = *PairCoding::FromName(GetParam());
    return CompressCollection(*collection_, options);
  }

  static const Collection* collection_;
};

const Collection* ArchiveIoTest::collection_ = nullptr;

TEST_P(ArchiveIoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());

  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_docs(), archive->num_docs());
  EXPECT_EQ((*loaded)->coder().coding().name(), GetParam());
  EXPECT_EQ((*loaded)->dictionary().text(), archive->dictionary().text());
  EXPECT_EQ((*loaded)->stored_bytes(), archive->stored_bytes());

  std::string a;
  std::string b;
  for (size_t i = 0; i < archive->num_docs(); i += 3) {
    ASSERT_TRUE(archive->Get(i, &a).ok());
    ASSERT_TRUE((*loaded)->Get(i, &b).ok());
    ASSERT_EQ(a, b) << "doc " << i;
    ASSERT_EQ(a, collection_->doc(i)) << "doc " << i;
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, AnySingleByteFlipIsDetected) {
  const std::string path = TempPath("flip");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  Rng rng(17);
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = *raw;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    if (corrupt == *raw) continue;  // xor produced the same byte
    ASSERT_TRUE(WriteFile(path, corrupt).ok());
    auto loaded = RlzArchive::Load(path);
    EXPECT_FALSE(loaded.ok()) << "flip trial " << trial << " undetected";
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, TruncationIsDetected) {
  const std::string path = TempPath("trunc");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    const size_t keep = static_cast<size_t>(raw->size() * frac);
    ASSERT_TRUE(WriteFile(path, std::string_view(*raw).substr(0, keep)).ok());
    EXPECT_FALSE(RlzArchive::Load(path).ok()) << "kept " << frac;
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, EmptyAndGarbageFiles) {
  const std::string path = TempPath("garbage");
  ASSERT_TRUE(WriteFile(path, "").ok());
  EXPECT_FALSE(RlzArchive::Load(path).ok());
  ASSERT_TRUE(WriteFile(path, "RLZAnot really an archive at all").ok());
  EXPECT_FALSE(RlzArchive::Load(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(RlzArchive::Load(path).status().code(), StatusCode::kIOError);
}

INSTANTIATE_TEST_SUITE_P(Codings, ArchiveIoTest,
                         ::testing::Values("ZZ", "ZV", "UZ", "UV"),
                         [](const auto& info) { return info.param; });

TEST(ArchiveIoEdgeTest, EmptyCollection) {
  Collection empty;
  auto archive = CompressCollection(empty, {});
  const std::string path = ::testing::TempDir() + "/rlza_empty.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_docs(), 0u);
  std::remove(path.c_str());
}

// The v1 format stores the dictionary size, document count, and per-doc
// payload sizes as 32-bit vbytes; Save must refuse anything larger instead
// of truncating it under a valid CRC. The guard is tested directly so no
// 4 GiB allocations are needed.
TEST(ArchiveFormatLimitsTest, AcceptsSizesUpToTheLimit) {
  EXPECT_TRUE(RlzArchive::CheckFormatLimits(0, 0, 0).ok());
  EXPECT_TRUE(RlzArchive::CheckFormatLimits(RlzArchive::kMaxFormatValue,
                                            RlzArchive::kMaxFormatValue,
                                            RlzArchive::kMaxFormatValue)
                  .ok());
}

TEST(ArchiveFormatLimitsTest, RejectsOversizedDictionary) {
  const Status s =
      RlzArchive::CheckFormatLimits(RlzArchive::kMaxFormatValue + 1, 0, 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ArchiveFormatLimitsTest, RejectsOversizedDocCount) {
  const Status s =
      RlzArchive::CheckFormatLimits(0, RlzArchive::kMaxFormatValue + 1, 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ArchiveFormatLimitsTest, RejectsOversizedEncodedDoc) {
  const Status s =
      RlzArchive::CheckFormatLimits(0, 0, RlzArchive::kMaxFormatValue + 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

// Wraps `header_and_payload` in the v1 container: magic, version, a valid
// ZV coding pair, and a correct CRC trailer — so Load gets past the
// checksum and must reject the malformed header on its own.
std::string CraftArchive(const std::string& header_and_payload) {
  std::string out;
  out.append("RLZA", 4);
  out.push_back(1);  // kArchiveVersion
  out.push_back(1);  // PosCoding::kZlib  ("Z")
  out.push_back(0);  // LenCoding::kVByte ("V")
  out.append(header_and_payload);
  const uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return out;
}

TEST(ArchiveIoEdgeTest, TruncationAtEveryPrefixIsDetected) {
  Collection c;
  c.Append("the quick brown fox jumps over the lazy dog");
  c.Append("the quick brown fox naps under the shady log");
  c.Append("an entirely different document about archives");
  RlzOptions options;
  options.dict_bytes = 256;
  auto archive = CompressCollection(c, options);

  const std::string path = ::testing::TempDir() + "/rlza_every_prefix.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  for (size_t keep = 0; keep < raw->size(); ++keep) {
    ASSERT_TRUE(WriteFile(path, std::string_view(*raw).substr(0, keep)).ok());
    auto loaded = RlzArchive::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes undetected";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "prefix of " << keep << " bytes: " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, SizeTableRunningIntoTrailerIsCorruption) {
  // One document whose size vbyte never terminates inside the body: the
  // two continuation bytes make the read spill into the CRC trailer (the
  // trailer's third byte, 0x4a, terminates it past payload_end), so the
  // header must be rejected even though the checksum is valid.
  std::string body;
  VByteCodec::Put(0, &body);  // dictionary: empty
  VByteCodec::Put(1, &body);  // num_docs
  body.push_back(static_cast<char>(0x80));  // size[0]: unterminated vbyte
  body.push_back(static_cast<char>(0x80));
  const std::string path = ::testing::TempDir() + "/rlza_short_table.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("truncated size table"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, HugeDocCountIsRejectedBeforeAllocating) {
  // A crafted count must be rejected by comparing against the bytes left in
  // the file, not by attempting a ~16 GiB size-table allocation.
  std::string body;
  VByteCodec::Put(0, &body);           // dictionary: empty
  VByteCodec::Put(0xFFFFFFFFu, &body);  // num_docs
  const std::string path = ::testing::TempDir() + "/rlza_huge_count.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, PayloadSizeMismatchIsCorruption) {
  // Size table promises 5 payload bytes but only 2 are present.
  std::string body;
  VByteCodec::Put(0, &body);  // dictionary: empty
  VByteCodec::Put(1, &body);  // num_docs
  VByteCodec::Put(5, &body);  // size[0]
  body.append("ab");
  const std::string path = ::testing::TempDir() + "/rlza_payload_short.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, DictionaryRunningIntoTrailerIsCorruption) {
  // Dictionary size field claims more bytes than exist before the trailer.
  std::string body;
  VByteCodec::Put(64, &body);  // dictionary size, but only 2 bytes follow
  body.append("ab");
  const std::string path = ::testing::TempDir() + "/rlza_dict_short.bin";
  ASSERT_TRUE(WriteFile(path, CraftArchive(body)).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, CollectionWithEmptyDocs) {
  Collection c;
  c.Append("");
  c.Append("content");
  c.Append("");
  auto archive = CompressCollection(c, {});
  const std::string path = ::testing::TempDir() + "/rlza_emptydocs.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok());
  std::string doc;
  ASSERT_TRUE((*loaded)->Get(0, &doc).ok());
  EXPECT_EQ(doc, "");
  ASSERT_TRUE((*loaded)->Get(1, &doc).ok());
  EXPECT_EQ(doc, "content");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlz
