// On-disk archive format: save/load round trips and corruption injection.

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "io/file.h"
#include "util/random.h"

namespace rlz {
namespace {

class ArchiveIoTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 1 << 20;
    options.seed = 91;
    collection_ = new Collection(GenerateCorpus(options).collection);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  std::string TempPath(const std::string& tag) const {
    return ::testing::TempDir() + "/rlza_" + tag + "_" + GetParam() + ".bin";
  }

  std::unique_ptr<RlzArchive> BuildArchive() const {
    RlzOptions options;
    options.dict_bytes = 32 << 10;
    options.coding = *PairCoding::FromName(GetParam());
    return CompressCollection(*collection_, options);
  }

  static const Collection* collection_;
};

const Collection* ArchiveIoTest::collection_ = nullptr;

TEST_P(ArchiveIoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());

  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_docs(), archive->num_docs());
  EXPECT_EQ((*loaded)->coder().coding().name(), GetParam());
  EXPECT_EQ((*loaded)->dictionary().text(), archive->dictionary().text());
  EXPECT_EQ((*loaded)->stored_bytes(), archive->stored_bytes());

  std::string a;
  std::string b;
  for (size_t i = 0; i < archive->num_docs(); i += 3) {
    ASSERT_TRUE(archive->Get(i, &a).ok());
    ASSERT_TRUE((*loaded)->Get(i, &b).ok());
    ASSERT_EQ(a, b) << "doc " << i;
    ASSERT_EQ(a, collection_->doc(i)) << "doc " << i;
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, AnySingleByteFlipIsDetected) {
  const std::string path = TempPath("flip");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());

  Rng rng(17);
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = *raw;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    if (corrupt == *raw) continue;  // xor produced the same byte
    ASSERT_TRUE(WriteFile(path, corrupt).ok());
    auto loaded = RlzArchive::Load(path);
    EXPECT_FALSE(loaded.ok()) << "flip trial " << trial << " undetected";
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, TruncationIsDetected) {
  const std::string path = TempPath("trunc");
  auto archive = BuildArchive();
  ASSERT_TRUE(archive->Save(path).ok());
  auto raw = ReadFile(path);
  ASSERT_TRUE(raw.ok());
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    const size_t keep = static_cast<size_t>(raw->size() * frac);
    ASSERT_TRUE(WriteFile(path, std::string_view(*raw).substr(0, keep)).ok());
    EXPECT_FALSE(RlzArchive::Load(path).ok()) << "kept " << frac;
  }
  std::remove(path.c_str());
}

TEST_P(ArchiveIoTest, EmptyAndGarbageFiles) {
  const std::string path = TempPath("garbage");
  ASSERT_TRUE(WriteFile(path, "").ok());
  EXPECT_FALSE(RlzArchive::Load(path).ok());
  ASSERT_TRUE(WriteFile(path, "RLZAnot really an archive at all").ok());
  EXPECT_FALSE(RlzArchive::Load(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(RlzArchive::Load(path).status().code(), StatusCode::kIOError);
}

INSTANTIATE_TEST_SUITE_P(Codings, ArchiveIoTest,
                         ::testing::Values("ZZ", "ZV", "UZ", "UV"),
                         [](const auto& info) { return info.param; });

TEST(ArchiveIoEdgeTest, EmptyCollection) {
  Collection empty;
  auto archive = CompressCollection(empty, {});
  const std::string path = ::testing::TempDir() + "/rlza_empty.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_docs(), 0u);
  std::remove(path.c_str());
}

TEST(ArchiveIoEdgeTest, CollectionWithEmptyDocs) {
  Collection c;
  c.Append("");
  c.Append("content");
  c.Append("");
  auto archive = CompressCollection(c, {});
  const std::string path = ::testing::TempDir() + "/rlza_emptydocs.bin";
  ASSERT_TRUE(archive->Save(path).ok());
  auto loaded = RlzArchive::Load(path);
  ASSERT_TRUE(loaded.ok());
  std::string doc;
  ASSERT_TRUE((*loaded)->Get(0, &doc).ok());
  EXPECT_EQ(doc, "");
  ASSERT_TRUE((*loaded)->Get(1, &doc).ok());
  EXPECT_EQ(doc, "content");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlz
